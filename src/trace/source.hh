/**
 * @file
 * TraceSource: one abstraction over the three ways a core can obtain
 * its instruction stream, all byte-identical for a given
 * (profile, seed):
 *
 *  - Generate:     run the TraceGenerator inline (the default; zero
 *                  memory overhead, RNG + pattern math per record).
 *  - Materialized: read from a shared in-memory MaterializedTrace that
 *                  lazily generates and caches the stream, so repeated
 *                  runs over the same (profile, seed) — e.g. the
 *                  A/B/A sweeps bench_speed performs — pay generation
 *                  once and replay with an array load afterwards.
 *  - Pack:         replay a pre-generated binary .rtp file produced by
 *                  tools/trace-pack (see trace_pack.hh).
 *
 * Replay sources hold a finite prefix. When a run consumes past the
 * prefix the source "fast-forwards" a fresh generator over the records
 * it already served and continues generating live — a one-time O(N)
 * cost that preserves exactness instead of failing the run.
 */

#ifndef RRM_TRACE_SOURCE_HH
#define RRM_TRACE_SOURCE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "trace/generator.hh"
#include "trace/trace_pack.hh"

namespace rrm::trace
{

/** How cores obtain their instruction streams (SystemConfig). */
enum class TraceMode : std::uint8_t
{
    Generate = 0, ///< inline TraceGenerator (default)
    Materialized, ///< shared lazily-generated in-memory cache
    Pack,         ///< pre-generated .rtp files
};

/**
 * A lazily materialized prefix of one (profile, seed) trace stream,
 * shareable between concurrently running systems.
 *
 * Records are generated on demand in fixed-size chunks under a mutex
 * and published with a release-store; readers below the published
 * watermark touch no locks. The chunk-pointer table is sized up front
 * so readers never race a reallocation.
 */
class MaterializedTrace
{
  public:
    static constexpr std::uint64_t chunkRecords = 64 * 1024;

    /** Default prefix length (256 MiB of records). */
    static constexpr std::uint64_t defaultCapRecords = 16u << 20;

    MaterializedTrace(const BenchmarkProfile &profile, std::uint64_t seed,
                      std::uint64_t capRecords = defaultCapRecords);

    const BenchmarkProfile &profile() const { return profile_; }
    std::uint64_t seed() const { return seed_; }
    std::uint64_t capRecords() const { return cap_; }
    std::uint64_t footprintBytes() const { return footprint_; }
    double meanGapInstructions() const { return meanGap_; }

    /** Records generated so far (monotone; for tests / telemetry). */
    std::uint64_t
    publishedRecords() const
    {
        return published_.load(std::memory_order_acquire);
    }

    /**
     * Record `i` of the stream; `i` must be < capRecords(). Generates
     * (and caches) up to the containing chunk if needed.
     */
    TraceRecord
    record(std::uint64_t i)
    {
        if (i >= published_.load(std::memory_order_acquire))
            extendTo(i);
        return chunks_[i / chunkRecords][i % chunkRecords];
    }

  private:
    void extendTo(std::uint64_t i);

    const BenchmarkProfile &profile_;
    std::uint64_t seed_;
    std::uint64_t cap_;
    std::uint64_t footprint_;
    double meanGap_;

    /** Fixed-size chunk pointer table (never reallocated). */
    std::vector<std::unique_ptr<TraceRecord[]>> chunks_;
    std::atomic<std::uint64_t> published_{0};

    std::mutex growthMutex_;
    TraceGenerator gen_;            ///< guarded by growthMutex_
    std::uint64_t generated_ = 0;   ///< guarded by growthMutex_
};

/**
 * Process-wide registry of MaterializedTraces keyed by
 * (&profile, seed). Thread-safe: the bench runner executes runs from a
 * thread pool and all of them share one cache.
 *
 * Keys use profile *identity*, which is stable for the built-in
 * benchmarkProfile() singletons; callers passing custom profiles must
 * keep them alive for the cache's lifetime.
 */
class TraceCache
{
  public:
    std::shared_ptr<MaterializedTrace>
    get(const BenchmarkProfile &profile, std::uint64_t seed,
        std::uint64_t capRecords = MaterializedTrace::defaultCapRecords);

    /** Number of distinct (profile, seed) streams cached. */
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::pair<const BenchmarkProfile *, std::uint64_t>,
             std::shared_ptr<MaterializedTrace>>
        entries_;
};

/**
 * The stream handle a core consumes. Move-only; owns the position
 * cursor and (in Generate / fast-forward mode) the generator itself.
 */
class TraceSource
{
  public:
    /** Inline generation (byte-identical to the pre-redesign path). */
    static TraceSource generate(const BenchmarkProfile &profile,
                                std::uint64_t seed);

    /** Replay from a shared materialized stream. */
    static TraceSource materialized(std::shared_ptr<MaterializedTrace> mat);

    /**
     * Replay from a .rtp pack. Validates the pack's profile name,
     * seed, and footprint against the expected stream; fatal() on any
     * mismatch.
     */
    static TraceSource pack(std::shared_ptr<TracePackReader> reader,
                            const BenchmarkProfile &profile,
                            std::uint64_t seed);

    TraceSource(TraceSource &&) = default;
    TraceSource &operator=(TraceSource &&) = default;

    /** Next record of the stream. */
    TraceRecord next();

    /** Records served so far (the checkpointed replay cursor). */
    std::uint64_t consumed() const { return consumed_; }

    /**
     * Checkpoint restore: position the stream as if `consumed`
     * records had already been served. Replay backends simply move
     * their cursor; Generate mode (and a replay prefix shorter than
     * `consumed`) fast-forwards a fresh generator over the served
     * records, the same O(N) mechanism as fastForwardTail. Only legal
     * on a freshly constructed source.
     */
    void seek(std::uint64_t consumed);

    const BenchmarkProfile &profile() const { return *profile_; }
    std::uint64_t footprintBytes() const { return footprint_; }
    double meanGapInstructions() const { return meanGap_; }

  private:
    TraceSource(const BenchmarkProfile &profile, std::uint64_t seed);

    /**
     * Replace the replay backend with a live generator fast-forwarded
     * past the `consumed` records already served.
     */
    void fastForwardTail(std::uint64_t consumed);

    const BenchmarkProfile *profile_;
    std::uint64_t seed_;
    std::uint64_t footprint_ = 0;
    double meanGap_ = 0.0;

    /** Live generator (Generate mode, or the replay tail). */
    std::optional<TraceGenerator> gen_;

    std::shared_ptr<MaterializedTrace> mat_;
    std::shared_ptr<TracePackReader> pack_;
    std::uint64_t pos_ = 0;      ///< next replay index
    std::uint64_t replayEnd_ = 0; ///< replay records available
    std::uint64_t consumed_ = 0; ///< records served via next()
};

} // namespace rrm::trace

#endif // RRM_TRACE_SOURCE_HH
