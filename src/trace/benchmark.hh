/**
 * @file
 * The nine SPEC CPU2006-like benchmark profiles of Table VII.
 *
 * SPEC binaries and traces are not redistributable, so each benchmark
 * is modelled as a weighted mixture of access-pattern components
 * (pattern.hh) plus a memory-intensity (gap) distribution. Component
 * parameters are calibrated so the realized LLC MPKI through the
 * simulated cache hierarchy lands near the paper's Table VII values
 * and the region-level write behaviour has the Table III shape; the
 * calibration is asserted by tests/test_profiles.cc.
 */

#ifndef RRM_TRACE_BENCHMARK_HH
#define RRM_TRACE_BENCHMARK_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "trace/pattern.hh"

namespace rrm::trace
{

/** The benchmarks of paper Table VII. */
enum class Benchmark : std::uint8_t
{
    Bwaves = 0,
    GemsFDTD,
    Hmmer,
    Lbm,
    Leslie3d,
    Libquantum,
    Mcf,
    Milc,
    Zeusmp,
};

constexpr std::size_t numBenchmarks = 9;

constexpr std::array<Benchmark, numBenchmarks> allBenchmarks = {
    Benchmark::Bwaves,   Benchmark::GemsFDTD,   Benchmark::Hmmer,
    Benchmark::Lbm,      Benchmark::Leslie3d,   Benchmark::Libquantum,
    Benchmark::Mcf,      Benchmark::Milc,       Benchmark::Zeusmp,
};

/** Declarative description of one pattern component. */
struct PatternSpec
{
    enum class Kind : std::uint8_t
    {
        Stride,
        ZipfRegion,
        Chase,
    };

    Kind kind;
    double weight;               ///< share of the access stream
    std::uint64_t footprintBytes;
    double writeFraction;

    // Stride-specific.
    std::uint64_t strideBytes = 16;

    // ZipfRegion-specific.
    std::uint64_t regionBytes = 4096;
    double zipfSkew = 0.8;
    unsigned maxBurstBlocks = 8;

    /** Instantiate the pattern this spec describes. */
    std::unique_ptr<AccessPattern> build() const;
};

/** Full benchmark profile. */
struct BenchmarkProfile
{
    std::string_view name;
    double memOpsPerKiloInstr; ///< memory instructions per 1000 instr
    double tableMpki;          ///< paper Table VII LLC MPKI (target)
    std::vector<PatternSpec> patterns;

    /** Sum of component footprints. */
    std::uint64_t footprintBytes() const;
};

/** Profile of a benchmark (singleton, lazily constructed). */
const BenchmarkProfile &benchmarkProfile(Benchmark b);

/** Benchmark name as used in the paper ("GemsFDTD", ...). */
std::string_view benchmarkName(Benchmark b);

/** Parse a benchmark name; fatal() on unknown names. */
Benchmark benchmarkFromName(std::string_view name);

} // namespace rrm::trace

#endif // RRM_TRACE_BENCHMARK_HH
