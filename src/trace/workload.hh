/**
 * @file
 * Multi-core workload definitions (paper Table VII) and the N-core
 * mix-spec grammar.
 *
 * A workload assigns one benchmark copy per core (with distinct
 * seeds and address slices) and, optionally, groups cores into
 * tenants for the multi-tenant fairness machinery. The paper's
 * evaluation shapes are canned specs: single-benchmark workloads run
 * four identical copies; MIX_1 and MIX_2 combine four different
 * benchmarks. Arbitrary N-core mixes come from the spec grammar
 *
 *     mix    := entry ("," entry)*
 *     entry  := <benchmark>[":"<count>]      e.g. "zeusmp,lbm,lbm,milc:2"
 *     tenants:= <id> ("," <id>)*             one id per core, "0,0,1,1"
 *
 * parsed by parseWorkloadSpec() with every violation aggregated into
 * one error list (mirroring SystemConfig::validate()).
 */

#ifndef RRM_TRACE_WORKLOAD_HH
#define RRM_TRACE_WORKLOAD_HH

#include <string>
#include <vector>

#include "trace/benchmark.hh"

namespace rrm::trace
{

/** Core count of the canned paper workloads (Table VII). */
constexpr std::size_t workloadCores = 4;

/** A named N-core benchmark assignment with tenant grouping. */
struct Workload
{
    std::string name;
    std::vector<Benchmark> perCore;

    /**
     * Tenant id of each core. Empty (the default, and the shape of
     * every canned workload) means one tenant owning every core, and
     * keeps all multi-tenant machinery — per-tenant stats, results
     * sections, config JSON fields — switched off so single-tenant
     * runs stay byte-identical to the pre-tenant simulator.
     */
    std::vector<unsigned> tenantOf;

    /** Cores this workload instantiates. */
    std::size_t numCores() const { return perCore.size(); }

    /** Tenant of core `c` (0 when tenantOf is defaulted). */
    unsigned
    tenantOfCore(std::size_t c) const
    {
        return c < tenantOf.size() ? tenantOf[c] : 0u;
    }

    /** Distinct tenants (1 when tenantOf is defaulted). */
    unsigned numTenants() const;

    /** True when the workload declares more than one tenant. */
    bool multiTenant() const { return numTenants() > 1; }
};

/** The single-benchmark workload for `b` (4 identical copies). */
Workload singleWorkload(Benchmark b);

/** MIX_1 = mcf + bwaves + zeusmp + milc. */
Workload mix1Workload();

/** MIX_2 = GemsFDTD + libquantum + lbm + leslie3d. */
Workload mix2Workload();

/**
 * The paper's full evaluation set: the 9 single-benchmark workloads
 * followed by MIX_1 and MIX_2.
 */
std::vector<Workload> standardWorkloads();

/** Look a standard workload up by name; fatal() if unknown. */
Workload workloadFromName(const std::string &name);

/**
 * Parse a mix spec (grammar above; benchmark names match
 * case-insensitively) plus an optional tenant grouping into `out`.
 * Returns one message per violation (empty = valid); `out` is only
 * meaningful when the return is empty. The workload is named by its
 * canonical spec (mixSpecOf), so run ids stay readable.
 */
std::vector<std::string> parseWorkloadSpec(const std::string &mix,
                                           const std::string &tenants,
                                           Workload &out);

/**
 * parseWorkloadSpec() with all violations aggregated into one
 * fatal() — the CLI entry point for `--mix` / `--tenants`.
 */
Workload workloadFromSpec(const std::string &mix,
                          const std::string &tenants = "");

/**
 * Canonical mix spec of a workload: consecutive identical benchmarks
 * collapse into one `name:count` entry ("lbm:6,libquantum:2");
 * parseWorkloadSpec() round-trips it to the same perCore assignment.
 */
std::string mixSpecOf(const Workload &w);

/** Canonical tenant spec ("0,0,1,1"); "" for single-tenant. */
std::string tenantSpecOf(const Workload &w);

/**
 * Append one message per tenant-grouping violation: size mismatch
 * against perCore, or ids not forming a contiguous 0..T-1 range.
 * Used by parseWorkloadSpec() and SystemConfig::validate().
 */
void collectTenantErrors(const Workload &w,
                         std::vector<std::string> &errors);

} // namespace rrm::trace

#endif // RRM_TRACE_WORKLOAD_HH
