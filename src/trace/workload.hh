/**
 * @file
 * Multi-core workload definitions (paper Table VII).
 *
 * A workload assigns one benchmark copy to each of the four cores:
 * single-benchmark workloads run four identical copies (with distinct
 * seeds and address slices); MIX_1 and MIX_2 combine four different
 * benchmarks.
 */

#ifndef RRM_TRACE_WORKLOAD_HH
#define RRM_TRACE_WORKLOAD_HH

#include <array>
#include <string>
#include <vector>

#include "trace/benchmark.hh"

namespace rrm::trace
{

/** Number of cores every workload targets. */
constexpr std::size_t workloadCores = 4;

/** A named 4-core benchmark assignment. */
struct Workload
{
    std::string name;
    std::array<Benchmark, workloadCores> perCore;
};

/** The single-benchmark workload for `b` (4 identical copies). */
Workload singleWorkload(Benchmark b);

/** MIX_1 = mcf + bwaves + zeusmp + milc. */
Workload mix1Workload();

/** MIX_2 = GemsFDTD + libquantum + lbm + leslie3d. */
Workload mix2Workload();

/**
 * The paper's full evaluation set: the 9 single-benchmark workloads
 * followed by MIX_1 and MIX_2.
 */
std::vector<Workload> standardWorkloads();

/** Look a standard workload up by name; fatal() if unknown. */
Workload workloadFromName(const std::string &name);

} // namespace rrm::trace

#endif // RRM_TRACE_WORKLOAD_HH
