/**
 * @file
 * Workload table implementation.
 */

#include "workload.hh"

#include "common/logging.hh"

namespace rrm::trace
{

Workload
singleWorkload(Benchmark b)
{
    return Workload{std::string(benchmarkName(b)), {b, b, b, b}};
}

Workload
mix1Workload()
{
    return Workload{"MIX_1",
                    {Benchmark::Mcf, Benchmark::Bwaves, Benchmark::Zeusmp,
                     Benchmark::Milc}};
}

Workload
mix2Workload()
{
    return Workload{"MIX_2",
                    {Benchmark::GemsFDTD, Benchmark::Libquantum,
                     Benchmark::Lbm, Benchmark::Leslie3d}};
}

std::vector<Workload>
standardWorkloads()
{
    std::vector<Workload> all;
    for (Benchmark b : allBenchmarks)
        all.push_back(singleWorkload(b));
    all.push_back(mix1Workload());
    all.push_back(mix2Workload());
    return all;
}

Workload
workloadFromName(const std::string &name)
{
    for (auto &w : standardWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '", name, "'");
}

} // namespace rrm::trace
