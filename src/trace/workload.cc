/**
 * @file
 * Workload table and mix-spec grammar implementation.
 */

#include "workload.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace rrm::trace
{

namespace
{

/** Case-insensitive ASCII string equality. */
bool
equalsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

/** Case-insensitive benchmark lookup; false when unknown. */
bool
findBenchmark(const std::string &name, Benchmark &out)
{
    for (Benchmark b : allBenchmarks) {
        if (equalsIgnoreCase(benchmarkName(b), name)) {
            out = b;
            return true;
        }
    }
    return false;
}

/** Split `s` on commas, keeping empty fields (they are errors). */
std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string field;
    std::stringstream ss(s);
    while (std::getline(ss, field, ','))
        out.push_back(field);
    if (!s.empty() && s.back() == ',')
        out.emplace_back();
    return out;
}

/** Parse a strictly-decimal non-negative integer; false on junk. */
bool
parseUint(const std::string &s, unsigned long &out)
{
    if (s.empty())
        return false;
    for (const char ch : s) {
        if (!std::isdigit(static_cast<unsigned char>(ch)))
            return false;
    }
    out = std::strtoul(s.c_str(), nullptr, 10);
    return true;
}

} // namespace

unsigned
Workload::numTenants() const
{
    if (tenantOf.empty())
        return perCore.empty() ? 0u : 1u;
    unsigned max_id = 0;
    for (const unsigned t : tenantOf)
        max_id = std::max(max_id, t);
    return max_id + 1;
}

Workload
singleWorkload(Benchmark b)
{
    return Workload{std::string(benchmarkName(b)),
                    {b, b, b, b},
                    {}};
}

Workload
mix1Workload()
{
    return Workload{"MIX_1",
                    {Benchmark::Mcf, Benchmark::Bwaves, Benchmark::Zeusmp,
                     Benchmark::Milc},
                    {}};
}

Workload
mix2Workload()
{
    return Workload{"MIX_2",
                    {Benchmark::GemsFDTD, Benchmark::Libquantum,
                     Benchmark::Lbm, Benchmark::Leslie3d},
                    {}};
}

std::vector<Workload>
standardWorkloads()
{
    std::vector<Workload> all;
    for (Benchmark b : allBenchmarks)
        all.push_back(singleWorkload(b));
    all.push_back(mix1Workload());
    all.push_back(mix2Workload());
    return all;
}

Workload
workloadFromName(const std::string &name)
{
    for (auto &w : standardWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '", name, "'");
}

std::vector<std::string>
parseWorkloadSpec(const std::string &mix, const std::string &tenants,
                  Workload &out)
{
    std::vector<std::string> errors;
    out = Workload{};

    if (mix.empty()) {
        errors.push_back("mix spec is empty");
        return errors;
    }
    for (const std::string &entry : splitCommas(mix)) {
        if (entry.empty()) {
            errors.push_back("mix spec has an empty entry");
            continue;
        }
        std::string bench_name = entry;
        unsigned long count = 1;
        const std::size_t colon = entry.find(':');
        if (colon != std::string::npos) {
            bench_name = entry.substr(0, colon);
            const std::string count_str = entry.substr(colon + 1);
            if (!parseUint(count_str, count)) {
                errors.push_back("mix entry '" + entry +
                                 "' has a malformed count '" +
                                 count_str + "'");
                continue;
            }
            if (count == 0) {
                errors.push_back("mix entry '" + entry +
                                 "' asks for zero cores");
                continue;
            }
        }
        Benchmark b{};
        if (!findBenchmark(bench_name, b)) {
            errors.push_back("mix entry '" + entry +
                             "' names unknown benchmark '" +
                             bench_name + "'");
            continue;
        }
        for (unsigned long i = 0; i < count; ++i)
            out.perCore.push_back(b);
    }
    if (errors.empty() && out.perCore.empty())
        errors.push_back("mix spec selects zero cores");

    if (!tenants.empty()) {
        for (const std::string &field : splitCommas(tenants)) {
            unsigned long id = 0;
            if (!parseUint(field, id)) {
                errors.push_back("tenant spec has malformed id '" +
                                 field + "' (want a decimal integer)");
                continue;
            }
            out.tenantOf.push_back(static_cast<unsigned>(id));
        }
    }

    if (errors.empty()) {
        collectTenantErrors(out, errors);
        out.name = mixSpecOf(out);
    }
    return errors;
}

Workload
workloadFromSpec(const std::string &mix, const std::string &tenants)
{
    Workload w;
    const std::vector<std::string> errors =
        parseWorkloadSpec(mix, tenants, w);
    if (!errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += (joined.empty() ? "" : "; ") + e;
        fatal("invalid workload spec '", mix, "' (", errors.size(),
              " problem(s)): ", joined);
    }
    return w;
}

std::string
mixSpecOf(const Workload &w)
{
    std::string spec;
    std::size_t i = 0;
    while (i < w.perCore.size()) {
        std::size_t run = 1;
        while (i + run < w.perCore.size() &&
               w.perCore[i + run] == w.perCore[i]) {
            ++run;
        }
        if (!spec.empty())
            spec += ',';
        spec += std::string(benchmarkName(w.perCore[i]));
        if (run > 1)
            spec += ':' + std::to_string(run);
        i += run;
    }
    return spec;
}

std::string
tenantSpecOf(const Workload &w)
{
    if (!w.multiTenant())
        return "";
    std::string spec;
    for (std::size_t c = 0; c < w.numCores(); ++c) {
        if (!spec.empty())
            spec += ',';
        spec += std::to_string(w.tenantOfCore(c));
    }
    return spec;
}

void
collectTenantErrors(const Workload &w, std::vector<std::string> &errors)
{
    if (w.tenantOf.empty())
        return;
    if (w.tenantOf.size() != w.perCore.size()) {
        errors.push_back(
            "tenant spec names " + std::to_string(w.tenantOf.size()) +
            " cores but the mix has " + std::to_string(w.perCore.size()));
        return;
    }
    const unsigned num = w.numTenants();
    std::vector<bool> used(num, false);
    for (const unsigned t : w.tenantOf)
        used[t] = true;
    for (unsigned t = 0; t < num; ++t) {
        if (!used[t]) {
            errors.push_back("tenant ids must be contiguous from 0: id " +
                             std::to_string(t) + " is unused but id " +
                             std::to_string(num - 1) + " appears");
            return;
        }
    }
}

} // namespace rrm::trace
