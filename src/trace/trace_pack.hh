/**
 * @file
 * Binary pre-generated trace packs (.rtp).
 *
 * A trace pack stores a finite prefix of one (profile, seed) trace
 * stream in a compact, mmap-able, little-endian format so a run can
 * replay memory instructions with a pointer bump instead of paying
 * RNG and pattern arithmetic per record. Packs are produced offline
 * by `tools/trace-pack` and consumed through TraceSource (source.hh).
 *
 * Layout (all fields little-endian):
 *
 *   offset size  field
 *        0    4  magic "RTPK"
 *        4    4  version (currently 1)
 *        8    8  recordCount
 *       16    8  seed           (generator seed the records came from)
 *       24    8  footprintBytes (generator footprint, for validation)
 *       32    8  meanGapInstructions (IEEE-754 double)
 *       40   24  profileName    (NUL-padded ASCII)
 *       64  16*N records: { u64 addr; u32 gapInstructions;
 *                           u8 type; u8 pad[3]; }
 *
 * Readers validate magic, version, and size, and a consumer validates
 * (profileName, seed) against the stream it expects, so a stale or
 * misplaced pack is a hard error rather than silent wrong physics.
 * Reading past recordCount is fatal: a pack represents a *guaranteed*
 * prefix, not a best-effort cache.
 */

#ifndef RRM_TRACE_TRACE_PACK_HH
#define RRM_TRACE_TRACE_PACK_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "trace/access.hh"

namespace rrm::trace
{

class TraceGenerator;

/** Fixed-size .rtp header (64 bytes on disk). */
struct TracePackHeader
{
    static constexpr char magic[4] = {'R', 'T', 'P', 'K'};
    static constexpr std::uint32_t currentVersion = 1;
    static constexpr std::size_t nameBytes = 24;
    static constexpr std::size_t sizeBytes = 64;

    std::uint32_t version = currentVersion;
    std::uint64_t recordCount = 0;
    std::uint64_t seed = 0;
    std::uint64_t footprintBytes = 0;
    double meanGapInstructions = 0.0;
    std::string profileName;
};

/** On-disk record layout (16 bytes). */
struct PackedTraceRecord
{
    std::uint64_t addr;
    std::uint32_t gapInstructions;
    std::uint8_t type;
    std::uint8_t pad[3];
};

static_assert(sizeof(PackedTraceRecord) == 16,
              "packed trace record must be exactly 16 bytes");

/**
 * Write a pack holding the first `count` records of `gen`'s stream.
 * The generator is consumed (advanced past `count` records).
 * fatal()s on I/O errors.
 */
void writeTracePack(const std::string &path, const std::string &profile,
                    std::uint64_t seed, TraceGenerator &gen,
                    std::uint64_t count);

/**
 * Memory-mapped reader for one .rtp file. Opening validates the
 * header; record access is a bounds check plus a load. Thread-safe
 * after construction (the mapping is immutable).
 */
class TracePackReader
{
  public:
    /** Open and validate; fatal() on missing/corrupt files. */
    explicit TracePackReader(const std::string &path);
    ~TracePackReader();

    TracePackReader(const TracePackReader &) = delete;
    TracePackReader &operator=(const TracePackReader &) = delete;

    const TracePackHeader &header() const { return header_; }
    const std::string &path() const { return path_; }
    std::uint64_t recordCount() const { return header_.recordCount; }

    /** Fetch record `i`; fatal() past the end (pack exhausted). */
    TraceRecord
    record(std::uint64_t i) const
    {
        if (i >= header_.recordCount) {
            fatal("trace pack '", path_, "' exhausted: record ", i,
                  " requested but the pack holds ",
                  header_.recordCount,
                  " (regenerate a longer pack with tools/trace-pack)");
        }
        PackedTraceRecord p;
        std::memcpy(&p, records_ + i * sizeof(PackedTraceRecord),
                    sizeof(p));
        TraceRecord rec;
        rec.addr = p.addr;
        rec.gapInstructions = p.gapInstructions;
        rec.type = static_cast<AccessType>(p.type);
        return rec;
    }

  private:
    std::string path_;
    TracePackHeader header_;
    const unsigned char *mapBase_ = nullptr; ///< whole-file mapping
    std::size_t mapLen_ = 0;
    const unsigned char *records_ = nullptr; ///< first record
    std::unique_ptr<unsigned char[]> fallback_; ///< non-mmap path
};

} // namespace rrm::trace

#endif // RRM_TRACE_TRACE_PACK_HH
