/**
 * @file
 * Benchmark profile table.
 *
 * Component parameters below were calibrated against the simulated
 * cache hierarchy (4 cores, 32 KB L1D, 256 KB L2, 6 MB shared LLC) so
 * that realized MPKI approximates Table VII. Where SPEC behaviour is
 * documented in the literature it guided the mixture choice:
 * libquantum/lbm are streaming, mcf is pointer chasing over a large
 * heap, GemsFDTD/zeusmp/leslie3d re-sweep grid working sets (the hot
 * written regions of Table III), hmmer is cache resident.
 */

#include "benchmark.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace rrm::trace
{

std::unique_ptr<AccessPattern>
PatternSpec::build() const
{
    switch (kind) {
      case Kind::Stride:
        return std::make_unique<StridePattern>(footprintBytes,
                                               strideBytes,
                                               writeFraction);
      case Kind::ZipfRegion:
        return std::make_unique<ZipfRegionPattern>(
            footprintBytes / regionBytes, regionBytes, zipfSkew,
            writeFraction, maxBurstBlocks);
      case Kind::Chase:
        return std::make_unique<ChasePattern>(footprintBytes,
                                              writeFraction);
    }
    panic("invalid pattern kind");
}

std::uint64_t
BenchmarkProfile::footprintBytes() const
{
    std::uint64_t total = 0;
    for (const auto &p : patterns)
        total += p.footprintBytes;
    return total;
}

namespace
{

using Kind = PatternSpec::Kind;

PatternSpec
stride(double weight, std::uint64_t footprint, double wf,
       std::uint64_t stride_bytes)
{
    PatternSpec s{};
    s.kind = Kind::Stride;
    s.weight = weight;
    s.footprintBytes = footprint;
    s.writeFraction = wf;
    s.strideBytes = stride_bytes;
    return s;
}

PatternSpec
zipf(double weight, std::uint64_t footprint, double wf, double skew,
     unsigned burst = 8)
{
    PatternSpec s{};
    s.kind = Kind::ZipfRegion;
    s.weight = weight;
    s.footprintBytes = footprint;
    s.writeFraction = wf;
    s.zipfSkew = skew;
    s.maxBurstBlocks = burst;
    return s;
}

PatternSpec
chase(double weight, std::uint64_t footprint, double wf)
{
    PatternSpec s{};
    s.kind = Kind::Chase;
    s.weight = weight;
    s.footprintBytes = footprint;
    s.writeFraction = wf;
    return s;
}

std::vector<BenchmarkProfile>
makeProfiles()
{
    std::vector<BenchmarkProfile> p(numBenchmarks);

    // memOpsPerKiloInstr is the rate of *distinct cache line touches*
    // per kilo-instruction: the generators emit one record per line
    // touched (intra-line word reuse hits in L1 and is folded into the
    // instruction gap), so real memory-instruction rates (~300/kinstr)
    // map to ~1/8 of that in records for array codes and ~1/1 for
    // pointer chasing.

    p[size_t(Benchmark::Bwaves)] = {
        "bwaves", 45.0, 11.69,
        {zipf(0.12, 128_KiB, 0.50, 0.30, 64),
         zipf(0.61, 1_MiB, 0.50, 0.30, 32),
         zipf(0.12, 2_MiB, 0.45, 1.00, 16),
         stride(0.10, 256_MiB, 0.35, 64),
         chase(0.05, 64_MiB, 0.10)}};

    p[size_t(Benchmark::GemsFDTD)] = {
        "GemsFDTD", 42.0, 26.56,
        {zipf(0.16, 192_KiB, 0.60, 0.30, 64),
         zipf(0.54, 2_MiB, 0.60, 0.30, 32),
         zipf(0.10, 12_MiB, 0.50, 0.80, 24),
         stride(0.10, 128_MiB, 0.40, 64),
         chase(0.10, 256_MiB, 0.05)}};

    p[size_t(Benchmark::Hmmer)] = {
        "hmmer", 48.0, 2.84,
        {zipf(0.30, 128_KiB, 0.50, 0.30, 64),
         zipf(0.64, 768_KiB, 0.50, 0.30, 32),
         stride(0.04, 64_MiB, 0.30, 64),
         chase(0.02, 32_MiB, 0.10)}};

    p[size_t(Benchmark::Lbm)] = {
        "lbm", 60.0, 55.15,
        {stride(0.68, 512_MiB, 0.50, 64),
         zipf(0.24, 1_MiB, 0.60, 0.30, 32),
         zipf(0.03, 2_MiB, 0.50, 0.80, 16),
         chase(0.05, 128_MiB, 0.05)}};

    p[size_t(Benchmark::Leslie3d)] = {
        "leslie3d", 40.0, 10.46,
        {zipf(0.12, 128_KiB, 0.50, 0.30, 64),
         zipf(0.62, 1_MiB, 0.50, 0.30, 32),
         zipf(0.08, 3_MiB, 0.50, 1.00, 16),
         stride(0.13, 192_MiB, 0.40, 64),
         chase(0.05, 64_MiB, 0.05)}};

    p[size_t(Benchmark::Libquantum)] = {
        "libquantum", 55.0, 52.07,
        {stride(0.70, 768_MiB, 0.50, 64),
         zipf(0.26, 768_KiB, 0.60, 0.30, 32),
         zipf(0.04, 1_MiB, 0.40, 0.80, 16)}};

    p[size_t(Benchmark::Mcf)] = {
        "mcf", 110.0, 73.42,
        {chase(0.44, 768_MiB, 0.15),
         zipf(0.44, 1_MiB, 0.45, 0.30, 16),
         zipf(0.08, 128_KiB, 0.45, 0.30, 64),
         stride(0.04, 96_MiB, 0.25, 64)}};

    p[size_t(Benchmark::Milc)] = {
        "milc", 50.0, 34.40,
        {stride(0.27, 384_MiB, 0.45, 64),
         zipf(0.49, 2_MiB, 0.50, 0.30, 32),
         zipf(0.14, 4_MiB, 0.50, 0.85, 16),
         chase(0.10, 256_MiB, 0.10)}};

    p[size_t(Benchmark::Zeusmp)] = {
        "zeusmp", 38.0, 7.64,
        {zipf(0.15, 128_KiB, 0.50, 0.30, 64),
         zipf(0.65, 1_MiB, 0.50, 0.30, 32),
         zipf(0.10, 3_MiB, 0.50, 1.10, 16),
         stride(0.07, 96_MiB, 0.40, 64),
         chase(0.03, 48_MiB, 0.10)}};

    return p;
}

const std::vector<BenchmarkProfile> &
profiles()
{
    static const std::vector<BenchmarkProfile> table = makeProfiles();
    return table;
}

} // namespace

const BenchmarkProfile &
benchmarkProfile(Benchmark b)
{
    const auto idx = static_cast<std::size_t>(b);
    RRM_ASSERT(idx < numBenchmarks, "invalid benchmark");
    return profiles()[idx];
}

std::string_view
benchmarkName(Benchmark b)
{
    return benchmarkProfile(b).name;
}

Benchmark
benchmarkFromName(std::string_view name)
{
    for (Benchmark b : allBenchmarks)
        if (benchmarkName(b) == name)
            return b;
    fatal("unknown benchmark '", name, "'");
}

} // namespace rrm::trace
