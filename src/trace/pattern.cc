/**
 * @file
 * Access pattern implementations.
 */

#include "pattern.hh"

#include "common/logging.hh"
#include "common/math_util.hh"

namespace rrm::trace
{

namespace
{

constexpr std::uint64_t blockBytes = 64;

} // namespace

StridePattern::StridePattern(std::uint64_t footprint_bytes,
                             std::uint64_t stride_bytes,
                             double write_fraction)
    : footprint_(footprint_bytes),
      stride_(stride_bytes),
      writeFraction_(write_fraction)
{
    RRM_ASSERT(stride_ > 0, "stride must be positive");
    RRM_ASSERT(footprint_ >= 2 * stride_, "footprint too small");
    RRM_ASSERT(write_fraction >= 0.0 && write_fraction <= 1.0,
               "write fraction out of [0,1]");
    half_ = footprint_ / 2;
}

void
StridePattern::next(Random &rng, Addr &addr, AccessType &type)
{
    if (rng.chance(writeFraction_)) {
        type = AccessType::Write;
        addr = half_ + writeCursor_;
        writeCursor_ += stride_;
        if (writeCursor_ + stride_ > half_)
            writeCursor_ = 0;
    } else {
        type = AccessType::Read;
        addr = readCursor_;
        readCursor_ += stride_;
        if (readCursor_ + stride_ > half_)
            readCursor_ = 0;
    }
}

ZipfRegionPattern::ZipfRegionPattern(std::uint64_t num_regions,
                                     std::uint64_t region_bytes,
                                     double zipf_skew,
                                     double write_fraction,
                                     unsigned max_burst_blocks)
    : numRegions_(num_regions),
      regionBytes_(region_bytes),
      writeFraction_(write_fraction),
      maxBurstBlocks_(max_burst_blocks),
      zipf_(num_regions, zipf_skew)
{
    RRM_ASSERT(numRegions_ > 0, "need at least one region");
    RRM_ASSERT(isPowerOfTwo(regionBytes_) && regionBytes_ >= blockBytes,
               "region size must be a power of two >= one block");
    RRM_ASSERT(maxBurstBlocks_ >= 1, "burst must cover >= 1 block");
    RRM_ASSERT(write_fraction >= 0.0 && write_fraction <= 1.0,
               "write fraction out of [0,1]");
}

void
ZipfRegionPattern::startBurst(Random &rng)
{
    const std::uint64_t region = zipf_.sample(rng);
    const std::uint64_t blocks_per_region = regionBytes_ / blockBytes;
    std::uint64_t start_block;
    if (maxBurstBlocks_ >= blocks_per_region) {
        // Whole-region sweep (stencil-style page rewrite): every
        // block of the region is touched in order.
        burstLeft_ = static_cast<unsigned>(blocks_per_region);
        start_block = 0;
    } else {
        burstLeft_ =
            1 + static_cast<unsigned>(rng.uniform(maxBurstBlocks_));
        start_block = rng.uniform(blocks_per_region - burstLeft_ + 1);
    }
    burstBase_ = region * regionBytes_ + start_block * blockBytes;
    burstBlock_ = 0;
    burstIsWrite_ = rng.chance(writeFraction_);
}

void
ZipfRegionPattern::next(Random &rng, Addr &addr, AccessType &type)
{
    if (burstLeft_ == 0)
        startBurst(rng);
    addr = burstBase_ + static_cast<Addr>(burstBlock_) * blockBytes;
    type = burstIsWrite_ ? AccessType::Write : AccessType::Read;
    ++burstBlock_;
    --burstLeft_;
}

ChasePattern::ChasePattern(std::uint64_t footprint_bytes,
                           double write_fraction)
    : footprint_(footprint_bytes), writeFraction_(write_fraction)
{
    RRM_ASSERT(footprint_ >= blockBytes, "footprint below one block");
    RRM_ASSERT(write_fraction >= 0.0 && write_fraction <= 1.0,
               "write fraction out of [0,1]");
}

void
ChasePattern::next(Random &rng, Addr &addr, AccessType &type)
{
    const std::uint64_t blocks = footprint_ / blockBytes;
    addr = rng.uniform(blocks) * blockBytes;
    type = rng.chance(writeFraction_) ? AccessType::Write
                                      : AccessType::Read;
}

} // namespace rrm::trace
