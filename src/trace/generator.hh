/**
 * @file
 * TraceGenerator: turns a BenchmarkProfile into an infinite,
 * deterministic stream of TraceRecords.
 */

#ifndef RRM_TRACE_GENERATOR_HH
#define RRM_TRACE_GENERATOR_HH

#include <memory>
#include <vector>

#include "common/random.hh"
#include "trace/access.hh"
#include "trace/benchmark.hh"

namespace rrm::trace
{

/**
 * Synthesizes the memory-instruction stream of one benchmark copy.
 *
 * Component footprints are laid out back to back (64 B aligned) inside
 * the generator's private address space starting at 0; the system maps
 * that space into the core's physical slice. The stream is fully
 * determined by (profile, seed).
 */
class TraceGenerator
{
  public:
    TraceGenerator(const BenchmarkProfile &profile, std::uint64_t seed);

    /** Produce the next memory instruction. */
    TraceRecord next();

    /** Total bytes of address space the stream can touch. */
    std::uint64_t footprintBytes() const { return footprint_; }

    const BenchmarkProfile &profile() const { return profile_; }

    /** Mean non-memory instructions between memory instructions. */
    double meanGapInstructions() const { return meanGap_; }

  private:
    struct Component
    {
        std::unique_ptr<AccessPattern> pattern;
        Addr base;
        double cumulativeWeight;
    };

    const BenchmarkProfile &profile_;
    Random rng_;
    std::vector<Component> components_;
    std::uint64_t footprint_ = 0;
    double meanGap_ = 0.0;
};

} // namespace rrm::trace

#endif // RRM_TRACE_GENERATOR_HH
