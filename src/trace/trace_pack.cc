/**
 * @file
 * Trace pack writer and mmap reader (format in trace_pack.hh).
 */

#include "trace/trace_pack.hh"

#include <cstdio>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "trace/generator.hh"

namespace rrm::trace
{

namespace
{

// All fields are stored little-endian. The simulator only targets
// little-endian hosts (x86-64 / aarch64), so stores are plain memcpy;
// the static check below turns a big-endian port into a compile-time
// task instead of silent corruption.
static_assert(std::endian::native == std::endian::little,
              "trace packs are little-endian; add byte swaps before "
              "porting to a big-endian host");

template <typename T>
void
put(unsigned char *dst, std::size_t offset, T value)
{
    std::memcpy(dst + offset, &value, sizeof(T));
}

template <typename T>
T
get(const unsigned char *src, std::size_t offset)
{
    T value;
    std::memcpy(&value, src + offset, sizeof(T));
    return value;
}

void
encodeHeader(unsigned char (&buf)[TracePackHeader::sizeBytes],
             const TracePackHeader &h)
{
    std::memset(buf, 0, sizeof(buf));
    std::memcpy(buf, TracePackHeader::magic, 4);
    put(buf, 4, h.version);
    put(buf, 8, h.recordCount);
    put(buf, 16, h.seed);
    put(buf, 24, h.footprintBytes);
    put(buf, 32, h.meanGapInstructions);
    RRM_ASSERT(h.profileName.size() < TracePackHeader::nameBytes,
               "profile name '", h.profileName,
               "' too long for a trace pack header");
    std::memcpy(buf + 40, h.profileName.data(), h.profileName.size());
}

TracePackHeader
decodeHeader(const unsigned char *buf, const std::string &path)
{
    if (std::memcmp(buf, TracePackHeader::magic, 4) != 0)
        fatal("'", path, "' is not a trace pack (bad magic)");
    TracePackHeader h;
    h.version = get<std::uint32_t>(buf, 4);
    if (h.version != TracePackHeader::currentVersion) {
        fatal("trace pack '", path, "' has version ", h.version,
              " but this build reads version ",
              TracePackHeader::currentVersion);
    }
    h.recordCount = get<std::uint64_t>(buf, 8);
    h.seed = get<std::uint64_t>(buf, 16);
    h.footprintBytes = get<std::uint64_t>(buf, 24);
    h.meanGapInstructions = get<double>(buf, 32);
    const char *name = reinterpret_cast<const char *>(buf + 40);
    h.profileName.assign(
        name, strnlen(name, TracePackHeader::nameBytes));
    return h;
}

} // namespace

void
writeTracePack(const std::string &path, const std::string &profile,
               std::uint64_t seed, TraceGenerator &gen,
               std::uint64_t count)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot create trace pack '", path, "'");

    TracePackHeader h;
    h.recordCount = count;
    h.seed = seed;
    h.footprintBytes = gen.footprintBytes();
    h.meanGapInstructions = gen.meanGapInstructions();
    h.profileName = profile;
    unsigned char headerBuf[TracePackHeader::sizeBytes];
    encodeHeader(headerBuf, h);
    if (std::fwrite(headerBuf, sizeof(headerBuf), 1, f) != 1)
        fatal("short write on trace pack '", path, "'");

    // Buffer records so the common multi-million-record pack is a few
    // large writes rather than one syscall per record.
    constexpr std::size_t batch = 1 << 16;
    std::vector<PackedTraceRecord> buf;
    buf.reserve(batch);
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceRecord rec = gen.next();
        PackedTraceRecord p{};
        p.addr = rec.addr;
        p.gapInstructions = rec.gapInstructions;
        p.type = static_cast<std::uint8_t>(rec.type);
        buf.push_back(p);
        if (buf.size() == batch) {
            if (std::fwrite(buf.data(), sizeof(PackedTraceRecord),
                            buf.size(), f) != buf.size())
                fatal("short write on trace pack '", path, "'");
            buf.clear();
        }
    }
    if (!buf.empty() &&
        std::fwrite(buf.data(), sizeof(PackedTraceRecord), buf.size(),
                    f) != buf.size())
        fatal("short write on trace pack '", path, "'");
    if (std::fclose(f) != 0)
        fatal("error closing trace pack '", path, "'");
}

TracePackReader::TracePackReader(const std::string &path)
    : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fatal("cannot open trace pack '", path, "'");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fatal("cannot stat trace pack '", path, "'");
    }
    const auto fileLen = static_cast<std::size_t>(st.st_size);
    if (fileLen < TracePackHeader::sizeBytes) {
        ::close(fd);
        fatal("trace pack '", path, "' truncated (", fileLen,
              " bytes, header needs ", TracePackHeader::sizeBytes, ")");
    }

    // Decode the header and validate the promised record count against
    // the real file size BEFORE mapping: a pack truncated by a crashed
    // or killed writer is rejected with an exact diagnostic instead of
    // faulting later when the reader walks off the end of the mapping.
    unsigned char headerBuf[TracePackHeader::sizeBytes];
    std::size_t got = 0;
    while (got < sizeof(headerBuf)) {
        const ssize_t n = ::pread(fd, headerBuf + got,
                                  sizeof(headerBuf) - got,
                                  static_cast<off_t>(got));
        if (n <= 0) {
            ::close(fd);
            fatal("cannot read trace pack header from '", path, "'");
        }
        got += static_cast<std::size_t>(n);
    }
    header_ = decodeHeader(headerBuf, path_);
    const std::size_t need =
        TracePackHeader::sizeBytes +
        header_.recordCount * sizeof(PackedTraceRecord);
    if (fileLen < need) {
        ::close(fd);
        fatal("trace pack '", path, "' truncated: header promises ",
              header_.recordCount, " records (", need,
              " bytes) but the file has only ", fileLen);
    }

    void *map = ::mmap(nullptr, fileLen, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
        mapBase_ = static_cast<const unsigned char *>(map);
        mapLen_ = fileLen;
    } else {
        // mmap can fail on exotic filesystems; fall back to reading
        // the whole file into memory.
        fallback_ = std::make_unique<unsigned char[]>(fileLen);
        got = 0;
        while (got < fileLen) {
            const ssize_t n =
                ::read(fd, fallback_.get() + got, fileLen - got);
            if (n <= 0) {
                ::close(fd);
                fatal("cannot read trace pack '", path, "'");
            }
            got += static_cast<std::size_t>(n);
        }
        mapBase_ = fallback_.get();
    }
    ::close(fd);

    records_ = mapBase_ + TracePackHeader::sizeBytes;
}

TracePackReader::~TracePackReader()
{
    if (mapLen_ != 0)
        ::munmap(const_cast<unsigned char *>(mapBase_), mapLen_);
}

} // namespace rrm::trace
