/**
 * @file
 * Address-stream building blocks for synthetic SPEC-like workloads.
 *
 * Each pattern emits (address, read/write) pairs inside its private
 * footprint, starting at address 0; the generator relocates component
 * footprints into the benchmark's address space. Three families cover
 * the behaviours the RRM is sensitive to (DESIGN.md section 4):
 *
 *  - StridePattern: streaming sweeps (high spatial, no temporal write
 *    locality — the case the RRM's dirty-write filter must reject);
 *  - ZipfRegionPattern: a hot region set revisited with Zipf
 *    popularity (the Table III hot-written regions);
 *  - ChasePattern: dependent-random pointer chasing (mcf-like, high
 *    MPKI, read dominant).
 */

#ifndef RRM_TRACE_PATTERN_HH
#define RRM_TRACE_PATTERN_HH

#include <cstdint>
#include <memory>

#include "common/random.hh"
#include "common/units.hh"
#include "trace/access.hh"

namespace rrm::trace
{

/** Base interface of an address-stream component. */
class AccessPattern
{
  public:
    virtual ~AccessPattern() = default;

    /** Produce the next access (address relative to the footprint). */
    virtual void next(Random &rng, Addr &addr, AccessType &type) = 0;

    /** Bytes of address space this pattern touches. */
    virtual std::uint64_t footprintBytes() const = 0;
};

/**
 * Streaming sweep: a read cursor and a write cursor advance through
 * disjoint halves of the footprint with a fixed element stride
 * (stream-copy style). Each region is written in one pass and then not
 * touched again until the sweep wraps around the whole footprint.
 */
class StridePattern : public AccessPattern
{
  public:
    /**
     * @param footprint_bytes Total footprint (read + write streams).
     * @param stride_bytes    Element stride.
     * @param write_fraction  Probability an access is a (write-stream)
     *                        store.
     */
    StridePattern(std::uint64_t footprint_bytes,
                  std::uint64_t stride_bytes, double write_fraction);

    void next(Random &rng, Addr &addr, AccessType &type) override;
    std::uint64_t footprintBytes() const override { return footprint_; }

  private:
    std::uint64_t footprint_;
    std::uint64_t stride_;
    double writeFraction_;
    std::uint64_t half_;
    Addr readCursor_ = 0;
    Addr writeCursor_ = 0;
};

/**
 * Zipf-popular region set: each access picks a region with Zipf(s)
 * popularity, then performs a short sequential burst of block-sized
 * accesses inside it. The popular head of the region set is revisited
 * at an interval set by the pattern's share of the access stream —
 * this is the hot-written working set the RRM exists to find.
 */
class ZipfRegionPattern : public AccessPattern
{
  public:
    /**
     * @param num_regions     Region count.
     * @param region_bytes    Region size (the paper uses 4 KB).
     * @param zipf_skew       Zipf exponent (higher = hotter head).
     * @param write_fraction  Probability an access is a store.
     * @param max_burst_blocks Max sequential 64 B blocks per burst.
     */
    ZipfRegionPattern(std::uint64_t num_regions,
                      std::uint64_t region_bytes, double zipf_skew,
                      double write_fraction,
                      unsigned max_burst_blocks = 8);

    void next(Random &rng, Addr &addr, AccessType &type) override;

    std::uint64_t
    footprintBytes() const override
    {
        return numRegions_ * regionBytes_;
    }

  private:
    void startBurst(Random &rng);

    std::uint64_t numRegions_;
    std::uint64_t regionBytes_;
    double writeFraction_;
    unsigned maxBurstBlocks_;
    ZipfSampler zipf_;

    Addr burstBase_ = 0;
    unsigned burstLeft_ = 0;
    unsigned burstBlock_ = 0;
    bool burstIsWrite_ = false;
};

/**
 * Pointer chase: uniformly random block-granularity accesses over a
 * large footprint, read-dominant, no spatial locality.
 */
class ChasePattern : public AccessPattern
{
  public:
    ChasePattern(std::uint64_t footprint_bytes, double write_fraction);

    void next(Random &rng, Addr &addr, AccessType &type) override;
    std::uint64_t footprintBytes() const override { return footprint_; }

  private:
    std::uint64_t footprint_;
    double writeFraction_;
};

} // namespace rrm::trace

#endif // RRM_TRACE_PATTERN_HH
