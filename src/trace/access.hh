/**
 * @file
 * Memory access records produced by the workload generators and
 * consumed by the core model / cache hierarchy.
 */

#ifndef RRM_TRACE_ACCESS_HH
#define RRM_TRACE_ACCESS_HH

#include <cstdint>

#include "common/units.hh"

namespace rrm::trace
{

/** Kind of a core-level memory operation. */
enum class AccessType : std::uint8_t
{
    Read = 0,
    Write,
};

/**
 * One memory instruction in a synthetic trace.
 *
 * `gapInstructions` is the number of non-memory instructions the core
 * executes before this access issues; the generator draws it from the
 * profile's memory-intensity distribution.
 */
struct TraceRecord
{
    Addr addr = 0;
    AccessType type = AccessType::Read;
    std::uint32_t gapInstructions = 0;
};

} // namespace rrm::trace

#endif // RRM_TRACE_ACCESS_HH
