/**
 * @file
 * TraceGenerator implementation.
 */

#include "generator.hh"

#include "common/logging.hh"
#include "common/math_util.hh"

namespace rrm::trace
{

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    RRM_ASSERT(!profile.patterns.empty(),
               "profile '", profile.name, "' has no patterns");
    RRM_ASSERT(profile.memOpsPerKiloInstr > 0.0 &&
                   profile.memOpsPerKiloInstr <= 1000.0,
               "memory intensity out of range");

    double total_weight = 0.0;
    Addr base = 0;
    for (const auto &spec : profile.patterns) {
        RRM_ASSERT(spec.weight > 0.0, "pattern weight must be positive");
        total_weight += spec.weight;
        Component c;
        c.pattern = spec.build();
        c.base = base;
        c.cumulativeWeight = total_weight;
        base += divCeil(c.pattern->footprintBytes(), 64) * 64;
        components_.push_back(std::move(c));
    }
    footprint_ = base;
    // Normalize cumulative weights to [0, 1].
    for (auto &c : components_)
        c.cumulativeWeight /= total_weight;
    components_.back().cumulativeWeight = 1.0;

    meanGap_ =
        (1000.0 - profile.memOpsPerKiloInstr) / profile.memOpsPerKiloInstr;
}

TraceRecord
TraceGenerator::next()
{
    const double u = rng_.uniformDouble();
    Component *chosen = &components_.back();
    for (auto &c : components_) {
        if (u < c.cumulativeWeight) {
            chosen = &c;
            break;
        }
    }

    TraceRecord rec;
    AccessType type = AccessType::Read;
    Addr addr = 0;
    chosen->pattern->next(rng_, addr, type);
    rec.addr = chosen->base + addr;
    rec.type = type;
    // Geometric gap with the profile's mean; gaps of zero model
    // back-to-back memory instructions.
    rec.gapInstructions = static_cast<std::uint32_t>(
        rng_.geometric(meanGap_ + 1.0) - 1);
    return rec;
}

} // namespace rrm::trace
