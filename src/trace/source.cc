/**
 * @file
 * MaterializedTrace, TraceCache, and TraceSource implementation.
 */

#include "trace/source.hh"

#include "common/logging.hh"

namespace rrm::trace
{

MaterializedTrace::MaterializedTrace(const BenchmarkProfile &profile,
                                     std::uint64_t seed,
                                     std::uint64_t capRecords)
    : profile_(profile),
      seed_(seed),
      cap_(capRecords),
      gen_(profile, seed)
{
    RRM_ASSERT(cap_ >= chunkRecords,
               "materialized trace cap too small to hold one chunk");
    footprint_ = gen_.footprintBytes();
    meanGap_ = gen_.meanGapInstructions();
    chunks_.resize((cap_ + chunkRecords - 1) / chunkRecords);
}

void
MaterializedTrace::extendTo(std::uint64_t i)
{
    RRM_ASSERT(i < cap_, "materialized trace read past its cap");
    std::lock_guard<std::mutex> lock(growthMutex_);
    // Another thread may have published past i while we waited.
    while (generated_ <= i) {
        const std::uint64_t chunk = generated_ / chunkRecords;
        const std::uint64_t fill =
            std::min(chunkRecords, cap_ - generated_);
        auto records = std::make_unique<TraceRecord[]>(fill);
        for (std::uint64_t r = 0; r < fill; ++r)
            records[r] = gen_.next();
        chunks_[chunk] = std::move(records);
        generated_ += fill;
        // Release-publish: the chunk pointer store above must be
        // visible to any reader that observes the new watermark.
        published_.store(generated_, std::memory_order_release);
    }
}

std::shared_ptr<MaterializedTrace>
TraceCache::get(const BenchmarkProfile &profile, std::uint64_t seed,
                std::uint64_t capRecords)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = entries_[{&profile, seed}];
    if (!slot)
        slot = std::make_shared<MaterializedTrace>(profile, seed,
                                                   capRecords);
    return slot;
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

TraceSource::TraceSource(const BenchmarkProfile &profile,
                         std::uint64_t seed)
    : profile_(&profile), seed_(seed)
{
}

TraceSource
TraceSource::generate(const BenchmarkProfile &profile, std::uint64_t seed)
{
    TraceSource src(profile, seed);
    src.gen_.emplace(profile, seed);
    src.footprint_ = src.gen_->footprintBytes();
    src.meanGap_ = src.gen_->meanGapInstructions();
    return src;
}

TraceSource
TraceSource::materialized(std::shared_ptr<MaterializedTrace> mat)
{
    TraceSource src(mat->profile(), mat->seed());
    src.footprint_ = mat->footprintBytes();
    src.meanGap_ = mat->meanGapInstructions();
    src.replayEnd_ = mat->capRecords();
    src.mat_ = std::move(mat);
    return src;
}

TraceSource
TraceSource::pack(std::shared_ptr<TracePackReader> reader,
                  const BenchmarkProfile &profile, std::uint64_t seed)
{
    const TracePackHeader &h = reader->header();
    if (h.profileName != profile.name) {
        fatal("trace pack '", reader->path(), "' holds profile '",
              h.profileName, "' but the run needs '", profile.name,
              "'");
    }
    if (h.seed != seed) {
        fatal("trace pack '", reader->path(), "' was generated with "
              "seed ", h.seed, " but the run needs seed ", seed,
              " (regenerate with tools/trace-pack)");
    }
    TraceSource src(profile, seed);
    // Cross-check the derived stream parameters too: a profile whose
    // definition drifted since the pack was written must not replay.
    TraceGenerator probe(profile, seed);
    if (h.footprintBytes != probe.footprintBytes() ||
        h.meanGapInstructions != probe.meanGapInstructions()) {
        fatal("trace pack '", reader->path(),
              "' is stale: profile '", profile.name,
              "' has changed since it was packed");
    }
    src.footprint_ = h.footprintBytes;
    src.meanGap_ = h.meanGapInstructions;
    src.replayEnd_ = h.recordCount;
    src.pack_ = std::move(reader);
    return src;
}

void
TraceSource::fastForwardTail(std::uint64_t consumed)
{
    // The replay prefix ran out. Rebuild the generator and discard the
    // records already served; the stream stays byte-identical, the
    // one-time cost is O(consumed).
    inform("trace replay for '", profile_->name, "' seed ", seed_,
           " exhausted after ", consumed,
           " records; continuing with live generation");
    gen_.emplace(*profile_, seed_);
    for (std::uint64_t i = 0; i < consumed; ++i)
        gen_->next();
    mat_.reset();
    pack_.reset();
}

TraceRecord
TraceSource::next()
{
    ++consumed_;
    if (gen_)
        return gen_->next();
    if (pos_ < replayEnd_) {
        const std::uint64_t i = pos_++;
        return mat_ ? mat_->record(i) : pack_->record(i);
    }
    fastForwardTail(pos_);
    return gen_->next();
}

void
TraceSource::seek(std::uint64_t consumed)
{
    RRM_ASSERT(consumed_ == 0,
               "TraceSource::seek() on a stream already in use");
    if (gen_) {
        for (std::uint64_t i = 0; i < consumed; ++i)
            gen_->next();
    } else if (consumed <= replayEnd_) {
        pos_ = consumed;
    } else {
        fastForwardTail(consumed);
    }
    consumed_ = consumed;
}

} // namespace rrm::trace
