/**
 * @file
 * RetentionTracker implementation.
 */

#include "retention_tracker.hh"

#include <algorithm>
#include <utility>

#include "ckpt/ckpt.hh"
#include "common/check.hh"

namespace rrm::fault
{

RetentionTracker::RetentionTracker(double time_scale,
                                   double track_max_seconds,
                                   double slack_seconds)
    : timeScale_(time_scale), trackMaxSeconds_(track_max_seconds),
      slackTicks_(secondsToTicks(slack_seconds))
{
    RRM_CHECK(timeScale_ > 0.0, "retention tracker time scale must "
                                "be > 0");
    RRM_CHECK(trackMaxSeconds_ > 0.0, "retention tracking bound must "
                                      "be > 0");
}

bool
RetentionTracker::tracks(pcm::WriteMode mode) const
{
    return pcm::retentionSeconds(mode) <= trackMaxSeconds_;
}

Tick
RetentionTracker::retentionTicks(pcm::WriteMode mode) const
{
    return secondsToTicks(pcm::retentionSeconds(mode) / timeScale_) +
           slackTicks_;
}

void
RetentionTracker::stamp(Addr block, pcm::WriteMode mode, Tick now)
{
    const Tick deadline = now + retentionTicks(mode);
    deadlines_[block] = deadline;
    heap_.push(HeapEntry{deadline, block});
    ++stamps_;
}

void
RetentionTracker::recordWrite(Addr block, pcm::WriteMode mode, Tick now)
{
    if (tracks(mode))
        stamp(block, mode, now);
    else
        deadlines_.erase(block);
}

void
RetentionTracker::recordRefresh(Addr block, pcm::WriteMode mode,
                                Tick now)
{
    // A refresh rewrites the block's data, so the deadline semantics
    // match a demand write: short-retention refreshes restart the
    // clock, long-retention rewrites drop the obligation.
    recordWrite(block, mode, now);
}

void
RetentionTracker::clear(Addr block)
{
    deadlines_.erase(block);
}

void
RetentionTracker::dropStaleTop()
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.top();
        auto it = deadlines_.find(top.block);
        if (it != deadlines_.end() && it->second == top.deadline)
            return;
        heap_.pop();
    }
}

std::uint64_t
RetentionTracker::sweep(Tick now)
{
    std::uint64_t raised = 0;
    for (dropStaleTop(); !heap_.empty(); dropStaleTop()) {
        const HeapEntry top = heap_.top();
        // A deadline met exactly at `now` is still satisfied; only
        // strictly-late refreshes violate retention.
        if (top.deadline >= now)
            break;
        heap_.pop();
        deadlines_.erase(top.block);
        ++violations_;
        ++raised;
        if (onViolation_)
            onViolation_(top.block, top.deadline, now);
    }
    return raised;
}

std::optional<Tick>
RetentionTracker::nextDeadline()
{
    dropStaleTop();
    if (heap_.empty())
        return std::nullopt;
    return heap_.top().deadline;
}

void
RetentionTracker::setViolationCallback(ViolationCallback cb)
{
    onViolation_ = std::move(cb);
}

void
RetentionTracker::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u64(stamps_);
    w.u64(violations_);
    // rrm-lint: allow(det-unordered-iter) drained into a vector and
    // sorted before anything order-dependent happens.
    std::vector<std::pair<Addr, Tick>> sorted(deadlines_.begin(),
                                              deadlines_.end());
    std::sort(sorted.begin(), sorted.end());
    w.u64(sorted.size());
    for (const auto &[block, deadline] : sorted) {
        w.u64(block);
        w.u64(deadline);
    }
}

void
RetentionTracker::restoreCkpt(ckpt::ChunkReader &r)
{
    stamps_ = r.u64();
    violations_ = r.u64();
    deadlines_.clear();
    heap_ = {};
    const std::uint64_t n = r.u64();
    deadlines_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr block = r.u64();
        const Tick deadline = r.u64();
        if (!deadlines_.emplace(block, deadline).second)
            throw ckpt::CkptError(
                "retention checkpoint stamps block " +
                std::to_string(block) + " twice");
        heap_.push(HeapEntry{deadline, block});
    }
}

void
RetentionTracker::audit() const
{
    // Every live deadline must still be represented in the heap; the
    // heap may additionally hold stale (superseded) entries.
    RRM_AUDIT(heap_.size() >= deadlines_.size(),
              "retention heap lost live deadlines");
}

} // namespace rrm::fault
