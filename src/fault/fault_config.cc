/**
 * @file
 * FaultConfig validation.
 */

#include "fault_config.hh"

namespace rrm::fault
{

void
FaultConfig::collectErrors(std::vector<std::string> &errors,
                           unsigned refresh_queue_cap) const
{
    auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
    if (!rate_ok(transientWriteFailureRate))
        errors.push_back("fault transient write failure rate must be "
                         "within [0, 1]");
    if (!rate_ok(stuckAtRate))
        errors.push_back("fault stuck-at rate must be within [0, 1]");
    if (trackRetentionMaxSeconds <= 0.0)
        errors.push_back("fault retention tracking bound must be > 0");
    if (retentionSlackSeconds < 0.0)
        errors.push_back("fault retention slack must be >= 0");
    if (transientWriteFailureRate > 0.0 && maxWriteRetries == 0)
        errors.push_back("fault write retries must be > 0 when "
                         "transient failures are injected");
    if (retryBackoff == 0 || maxRetryBackoff < retryBackoff)
        errors.push_back("fault retry backoff must be > 0 and at most "
                         "the backoff cap");
    if (refreshStallSeconds < 0.0 || refreshStallPeriodSeconds < 0.0)
        errors.push_back("fault refresh stall knobs must be >= 0");
    if (refreshStallSeconds > 0.0 &&
        effectiveStallPeriodSeconds() <= refreshStallSeconds)
        errors.push_back("fault refresh stall period must exceed the "
                         "stall duration");
    if (fallback) {
        if (fallbackLowWatermark >= fallbackHighWatermark)
            errors.push_back("fault fallback low watermark must be "
                             "below the high watermark");
        if (fallbackHighWatermark > refresh_queue_cap)
            errors.push_back("fault fallback high watermark must not "
                             "exceed the refresh queue capacity");
        if (fallbackPollSeconds <= 0.0)
            errors.push_back("fault fallback poll period must be > 0");
        if (fallbackEnterPolls == 0)
            errors.push_back("fault fallback enter-poll count must "
                             "be > 0");
    }
}

} // namespace rrm::fault
