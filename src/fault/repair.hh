/**
 * @file
 * Stuck-at repair: ECP-style per-line pointer budget plus line
 * retirement into a spare-block pool.
 */

#ifndef RRM_FAULT_REPAIR_HH
#define RRM_FAULT_REPAIR_HH

#include <cstdint>
#include <map>

#include "common/units.hh"

namespace rrm::ckpt
{
class ChunkWriter;
class ChunkReader;
} // namespace rrm::ckpt

namespace rrm::fault
{

/**
 * Error-correcting-pointers budget: each memory line owns a fixed
 * number of replacement cells; every repaired stuck-at consumes one.
 */
class EcpRepair
{
  public:
    explicit EcpRepair(unsigned budget_per_line)
        : budget_(budget_per_line)
    {}

    /**
     * Consume one pointer for a new stuck-at cell in `line`. Returns
     * false when the line's budget is already exhausted.
     */
    bool
    repair(Addr line)
    {
        unsigned &used = used_[line];
        if (used >= budget_)
            return false;
        ++used;
        return true;
    }

    unsigned
    used(Addr line) const
    {
        auto it = used_.find(line);
        return it == used_.end() ? 0 : it->second;
    }

    unsigned budgetPerLine() const { return budget_; }
    std::size_t repairedLines() const { return used_.size(); }

    /** @{ Checkpoint the per-line pointer-usage map. */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    void audit() const;

  private:
    unsigned budget_;
    /** Ordered: audit diagnostics walk lines in address order. */
    std::map<Addr, unsigned> used_;
};

/**
 * Retirement pool: lines whose ECP budget is exhausted are remapped
 * to spare blocks carved from the top of physical memory. The spare
 * range aliases ordinary memory — acceptable for a timing/wear model
 * that never stores data — but the remap keeps traffic, wear and
 * retention obligations flowing to distinct addresses.
 */
class LineRetirement
{
  public:
    LineRetirement(std::uint64_t memory_bytes, std::uint64_t block_bytes,
                   std::uint64_t spare_blocks);

    /**
     * Retire `line` onto the next free spare. Returns false (and
     * leaves the line mapped in place) when spares are exhausted.
     */
    bool retire(Addr line);

    bool
    isRetired(Addr line) const
    {
        return map_.find(line) != map_.end();
    }

    /**
     * Live address for `block`: identity for an unretired line, else
     * the end of its retirement chain (a spare can itself wear out
     * and retire onto a later spare; chains never cycle because every
     * retirement targets a fresh, higher-index spare).
     */
    Addr
    remap(Addr block) const
    {
        auto it = map_.find(block);
        while (it != map_.end()) {
            block = it->second;
            it = map_.find(block);
        }
        return block;
    }

    std::uint64_t retiredCount() const { return map_.size(); }
    std::uint64_t spareCapacity() const { return spareBlocks_; }

    /** @{ Checkpoint the remap chains and the spare cursor. */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    void audit() const;

  private:
    std::uint64_t blockBytes_;
    std::uint64_t spareBlocks_;
    Addr spareBase_;
    std::uint64_t nextSpare_ = 0;
    /** Ordered: remap chains and audits resolve in address order,
     *  independent of retirement arrival order. */
    std::map<Addr, Addr> map_;
};

} // namespace rrm::fault

#endif // RRM_FAULT_REPAIR_HH
