/**
 * @file
 * FaultManager implementation.
 */

#include "fault_manager.hh"

#include <algorithm>
#include <utility>

#include "ckpt/ckpt.hh"
#include "common/logging.hh"

namespace rrm::fault
{

namespace
{

/** Stats are optional until regStats runs (unit tests). */
void
bump(stats::Scalar *s)
{
    if (s)
        ++*s;
}

} // namespace

FaultManager::FaultManager(const FaultConfig &config,
                           const memctrl::MemoryParams &memory,
                           double time_scale, std::uint64_t system_seed,
                           EventQueue &queue,
                           memctrl::Controller &controller,
                           pcm::WearTracker &wear,
                           policy::WritePolicy *policy)
    : config_(config), timeScale_(time_scale), queue_(queue),
      controller_(controller), wear_(wear), policy_(policy),
      addressMap_(memory), numChannels_(memory.numChannels),
      blockBytes_(memory.blockBytes),
      injector_(config.transientWriteFailureRate, config.stuckAtRate,
                config.seed ^ (system_seed * 0x9e3779b97f4a7c15ULL)),
      retention_(time_scale, config.trackRetentionMaxSeconds,
                 config.retentionSlackSeconds),
      ecp_(config.repairBudgetPerLine),
      retirement_(memory.memoryBytes, memory.blockBytes,
                  config.spareBlocks)
{
    if (config_.useStartGap) {
        startGap_ = std::make_unique<memctrl::StartGapRemapper>(
            memory.memoryBytes, config_.startGap);
    }
    retention_.setViolationCallback(
        [this](Addr block, Tick deadline, Tick now) {
            bump(statRetentionViolations_);
            if (statViolationsByChannel_) {
                statViolationsByChannel_->add(
                    addressMap_.decode(block).channel);
            }
            RRM_TRACE(traceSink_, now, obs::TraceCategory::Fault,
                      "retentionViolation", RRM_TF("block", block),
                      RRM_TF("deadline", deadline),
                      RRM_TF("lateTicks", now - deadline));
            if (config_.strict) {
                RRM_CHECK(false, "retention violation on block ",
                          block, ": deadline ", deadline,
                          " missed at ", now);
            }
        });
}

FaultManager::~FaultManager()
{
    if (sweepArmed_)
        queue_.cancel(sweepEvent_);
}

void
FaultManager::start()
{
    if (config_.refreshStallSeconds > 0.0) {
        const Tick period =
            secondsToTicks(config_.effectiveStallPeriodSeconds());
        stallTask_ = std::make_unique<PeriodicTask>(
            queue_, period, queue_.now() + period,
            [this] { injectRefreshStall(); });
    }
    if (config_.fallback && policy_ &&
        policy_->supportsPressureFallback()) {
        const Tick period =
            secondsToTicks(config_.fallbackPollSeconds);
        governorTask_ = std::make_unique<PeriodicTask>(
            queue_, period, queue_.now() + period,
            [this] { pollRefreshPressure(); });
    }
}

Addr
FaultManager::translate(Addr block) const
{
    Addr phys = block;
    if (startGap_)
        phys = startGap_->remap(phys);
    return retirement_.remap(phys);
}

void
FaultManager::onDemandWriteIssued(Addr phys)
{
    if (!startGap_)
        return;
    if (startGap_->onWrite(phys)) {
        // A gap move copies one StartGap line (lineBytes) to the gap
        // slot: charge the copy's wear as block writes attributed to
        // the written address's neighbourhood (same remap domain).
        const std::uint64_t blocks =
            std::max<std::uint64_t>(1,
                config_.startGap.lineBytes / blockBytes_);
        for (std::uint64_t i = 0; i < blocks; ++i)
            wear_.recordBlockWrite(phys, pcm::WearCause::DemandWrite);
    }
}

void
FaultManager::armRetentionSweep()
{
    const auto next = retention_.nextDeadline();
    if (!next) {
        if (sweepArmed_) {
            queue_.cancel(sweepEvent_);
            sweepArmed_ = false;
        }
        return;
    }
    // Fire one tick past the deadline: a refresh landing exactly on
    // the deadline is still in time.
    const Tick when = *next + 1;
    if (sweepArmed_) {
        if (sweepAt_ == when)
            return;
        queue_.cancel(sweepEvent_);
    }
    sweepEvent_ = queue_.schedule(when, [this] {
        sweepArmed_ = false;
        sweepRetention();
    });
    sweepAt_ = when;
    sweepArmed_ = true;
}

void
FaultManager::sweepRetention()
{
    retention_.sweep(queue_.now());
    armRetentionSweep();
}

void
FaultManager::onWriteCompleted(Addr phys, pcm::WriteMode mode,
                               Tick when)
{
    if (injector_.writeFails()) {
        bump(statTransientWriteFaults_);
        unsigned &attempts = retryAttempts_[phys];
        ++attempts;
        RRM_TRACE(traceSink_, when, obs::TraceCategory::Fault,
                  "transientWriteFault", RRM_TF("block", phys),
                  RRM_TF("attempt", attempts));
        if (attempts > config_.maxWriteRetries) {
            bump(statWritesUnrecovered_);
            retryAttempts_.erase(phys);
            warn_once("fault.writeUnrecovered", "block write failed ",
                      config_.maxWriteRetries,
                      " consecutive rewrites; data declared lost "
                      "(block ", phys, ")");
            if (config_.strict) {
                RRM_CHECK(false, "unrecovered write on block ", phys);
            }
        } else if (rewrite_) {
            const Tick backoff = std::min<Tick>(
                config_.maxRetryBackoff,
                config_.retryBackoff << (attempts - 1));
            bump(statWriteRetries_);
            ++pendingRewriteEvents_;
            queue_.scheduleAfter(backoff, [this, phys, mode] {
                --pendingRewriteEvents_;
                rewrite_(phys, mode);
            });
            // The failed write leaves no (reliable) data behind, so
            // no retention deadline is stamped until a rewrite lands.
            return;
        }
    } else {
        retryAttempts_.erase(phys);
        maybeDevelopStuckAt(phys, when);
    }
    if (config_.retentionTracking) {
        if (retention_.tracks(mode))
            bump(statRetentionStamps_);
        retention_.recordWrite(phys, mode, when);
        armRetentionSweep();
    }
}

void
FaultManager::onRefreshAccounted(Addr phys, pcm::WriteMode mode,
                                 Tick now)
{
    if (!config_.retentionTracking)
        return;
    if (retention_.tracks(mode))
        bump(statRetentionStamps_);
    retention_.recordRefresh(phys, mode, now);
    armRetentionSweep();
}

void
FaultManager::onRefreshCompleted(Addr phys, pcm::WriteMode mode,
                                 Tick when)
{
    onRefreshAccounted(phys, mode, when);
}

void
FaultManager::onRefreshDropped(Addr phys)
{
    bump(statRefreshDropped_);
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Fault,
              "refreshDropped", RRM_TF("block", phys));
}

void
FaultManager::maybeDevelopStuckAt(Addr phys, Tick when)
{
    if (config_.stuckAtWearThreshold == 0)
        return;
    const std::uint64_t region = wear_.regionIndex(phys);
    const std::uint64_t level =
        wear_.regionWear(region) / config_.stuckAtWearThreshold;
    std::uint64_t &last = wearLevel_[region];
    if (level <= last) {
        // Wear counters reset with the measurement window; follow
        // them down without drawing new faults.
        last = std::min(last, level);
        return;
    }
    while (last < level) {
        ++last;
        if (injector_.developsStuckAt())
            handleStuckAt(phys, when);
    }
}

void
FaultManager::handleStuckAt(Addr phys, Tick when)
{
    // Writes already in flight when their line was retired complete
    // on the stale address; the fault belongs to the spare that now
    // backs the line (which carries its own ECP budget).
    phys = retirement_.remap(phys);
    bump(statStuckAtFaults_);
    if (ecp_.repair(phys)) {
        bump(statStuckAtRepaired_);
        RRM_TRACE(traceSink_, when, obs::TraceCategory::Fault,
                  "stuckAtRepaired", RRM_TF("block", phys),
                  RRM_TF("ecpUsed", ecp_.used(phys)));
        return;
    }
    if (retirement_.retire(phys)) {
        bump(statLinesRetired_);
        if (config_.retentionTracking)
            retention_.clear(phys);
        RRM_TRACE(traceSink_, when, obs::TraceCategory::Fault,
                  "lineRetired", RRM_TF("block", phys),
                  RRM_TF("spare", retirement_.remap(phys)));
        return;
    }
    bump(statSpareExhausted_);
    warn_once("fault.spareExhausted", "spare pool exhausted; block ",
              phys, " keeps its stuck-at cells unrepaired");
}

void
FaultManager::injectRefreshStall()
{
    const Tick until =
        queue_.now() + secondsToTicks(config_.refreshStallSeconds);
    for (unsigned c = 0; c < numChannels_; ++c)
        controller_.channel(c).holdRefreshes(until);
    bump(statRefreshStalls_);
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Fault,
              "refreshStall", RRM_TF("until", until));
}

void
FaultManager::pollRefreshPressure()
{
    std::size_t deepest = 0;
    for (unsigned c = 0; c < numChannels_; ++c) {
        deepest = std::max(deepest,
                           controller_.channel(c).refreshQueueSize());
    }
    if (!fallbackActive_) {
        if (deepest >= config_.fallbackHighWatermark) {
            if (++saturatedPolls_ >= config_.fallbackEnterPolls)
                enterFallback(deepest);
        } else {
            saturatedPolls_ = 0;
        }
    } else if (deepest <= config_.fallbackLowWatermark) {
        exitFallback(deepest);
    }
}

void
FaultManager::enterFallback(std::size_t deepest_queue)
{
    fallbackActive_ = true;
    saturatedPolls_ = 0;
    bump(statFallbackEntries_);
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Fault,
              "fallbackEnter", RRM_TF("refreshQueue", deepest_queue));
    policy_->setPressureFallback(true);
}

void
FaultManager::exitFallback(std::size_t deepest_queue)
{
    fallbackActive_ = false;
    bump(statFallbackExits_);
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Fault,
              "fallbackExit", RRM_TF("refreshQueue", deepest_queue));
    policy_->setPressureFallback(false);
}

void
FaultManager::setRewriteCallback(RewriteCallback cb)
{
    rewrite_ = std::move(cb);
}

std::uint64_t
FaultManager::startGapMoves() const
{
    return startGap_ ? startGap_->totalGapMoves() : 0;
}

void
FaultManager::regStats(stats::StatGroup &root)
{
    stats::StatGroup &g = root.addChild("fault");
    statRetentionStamps_ = &g.addScalar(
        "retentionStamps", "short-retention deadlines stamped");
    statRetentionViolations_ = &g.addScalar(
        "retentionViolations",
        "blocks whose refresh deadline expired");
    std::vector<std::string> bins;
    bins.reserve(numChannels_);
    for (unsigned c = 0; c < numChannels_; ++c)
        bins.push_back("ch" + std::to_string(c));
    statViolationsByChannel_ = &g.addVector(
        "retentionViolationsByChannel",
        "retention violations per memory channel", std::move(bins));
    statTransientWriteFaults_ = &g.addScalar(
        "transientWriteFaults", "injected transient write failures");
    statWriteRetries_ = &g.addScalar(
        "writeRetries", "rewrites issued after a transient failure");
    statWritesUnrecovered_ = &g.addScalar(
        "writesUnrecovered",
        "writes lost after exhausting the retry budget");
    statStuckAtFaults_ = &g.addScalar(
        "stuckAtFaults", "stuck-at cells developed by wear");
    statStuckAtRepaired_ = &g.addScalar(
        "stuckAtRepaired", "stuck-at cells absorbed by ECP");
    statLinesRetired_ = &g.addScalar(
        "linesRetired", "lines remapped to spares (ECP exhausted)");
    statSpareExhausted_ = &g.addScalar(
        "spareExhausted", "retirements refused: spare pool empty");
    statRefreshDropped_ = &g.addScalar(
        "refreshDropped", "refreshes refused by a full queue");
    statRefreshStalls_ = &g.addScalar(
        "refreshStalls", "injected refresh-queue stalls");
    statFallbackEntries_ = &g.addScalar(
        "fallbackEntries", "refresh-pressure fallback activations");
    statFallbackExits_ = &g.addScalar(
        "fallbackExits", "refresh-pressure fallback deactivations");
    g.addFormula("retentionStampRate",
                 "violations per stamped deadline", [this] {
                     const double stamps =
                         statRetentionStamps_->value();
                     return stamps > 0.0
                                ? statRetentionViolations_->value() /
                                      stamps
                                : 0.0;
                 });
    if (startGap_) {
        g.addFormula("startGapMoves",
                     "StartGap gap movements (cumulative)", [this] {
                         return static_cast<double>(
                             startGap_->totalGapMoves());
                     });
    }
}

void
FaultManager::saveCkpt(ckpt::ChunkWriter &w) const
{
    RRM_ASSERT(pendingRewriteEvents_ == 0,
               "checkpoint with rewrite retries still scheduled");
    injector_.saveCkpt(w);
    retention_.saveCkpt(w);
    ecp_.saveCkpt(w);
    retirement_.saveCkpt(w);
    w.b(startGap_ != nullptr);
    if (startGap_)
        startGap_->saveCkpt(w);
    w.u64(retryAttempts_.size());
    for (const auto &[block, attempts] : retryAttempts_) {
        w.u64(block);
        w.u32(attempts);
    }
    w.u64(wearLevel_.size());
    for (const auto &[region, level] : wearLevel_) {
        w.u64(region);
        w.u64(level);
    }
    w.b(fallbackActive_);
    w.u32(saturatedPolls_);
    w.b(stallTask_ != nullptr);
    if (stallTask_)
        w.u64(stallTask_->nextFireAt());
    w.b(governorTask_ != nullptr);
    if (governorTask_)
        w.u64(governorTask_->nextFireAt());
    w.b(sweepArmed_);
    if (sweepArmed_)
        w.u64(sweepAt_);
}

void
FaultManager::restoreCkpt(ckpt::ChunkReader &r)
{
    RRM_ASSERT(!stallTask_ && !governorTask_ && !sweepArmed_,
               "restoreCkpt() on a started FaultManager");
    injector_.restoreCkpt(r);
    retention_.restoreCkpt(r);
    ecp_.restoreCkpt(r);
    retirement_.restoreCkpt(r);
    const bool has_start_gap = r.b();
    if (has_start_gap != (startGap_ != nullptr))
        throw ckpt::CkptError(
            "StartGap enablement differs between the checkpoint and "
            "the configuration");
    if (startGap_)
        startGap_->restoreCkpt(r);
    retryAttempts_.clear();
    const std::uint64_t retries = r.u64();
    for (std::uint64_t i = 0; i < retries; ++i) {
        const Addr block = r.u64();
        retryAttempts_[block] = r.u32();
    }
    wearLevel_.clear();
    const std::uint64_t levels = r.u64();
    for (std::uint64_t i = 0; i < levels; ++i) {
        const std::uint64_t region = r.u64();
        wearLevel_[region] = r.u64();
    }
    fallbackActive_ = r.b();
    saturatedPolls_ = r.u32();
    // Re-arm in ascending last-arm order (next fire minus period) so
    // re-created same-priority events reproduce the interrupted run's
    // relative sequence numbers at any coinciding future fire tick;
    // ties keep start()'s stall-before-governor order, which is what
    // a coincident fire re-establishes (DESIGN.md section 16).
    const bool stall_armed = r.b();
    const Tick stall_next = stall_armed ? r.u64() : 0;
    const bool governor_armed = r.b();
    const Tick governor_next = governor_armed ? r.u64() : 0;
    const Tick stall_period =
        secondsToTicks(config_.effectiveStallPeriodSeconds());
    const Tick governor_period =
        secondsToTicks(config_.fallbackPollSeconds);
    const auto arm_stall = [&] {
        if (stall_armed) {
            stallTask_ = std::make_unique<PeriodicTask>(
                queue_, stall_period, stall_next,
                [this] { injectRefreshStall(); });
        }
    };
    const auto arm_governor = [&] {
        if (governor_armed) {
            governorTask_ = std::make_unique<PeriodicTask>(
                queue_, governor_period, governor_next,
                [this] { pollRefreshPressure(); });
        }
    };
    if (stall_armed && governor_armed &&
        governor_next - governor_period < stall_next - stall_period) {
        arm_governor();
        arm_stall();
    } else {
        arm_stall();
        arm_governor();
    }
    if (r.b()) {
        const Tick when = r.u64();
        sweepEvent_ = queue_.schedule(when, [this] {
            sweepArmed_ = false;
            sweepRetention();
        });
        sweepAt_ = when;
        sweepArmed_ = true;
    }
    // The restored fallback state is already reflected in the policy's
    // own checkpoint section; no setPressureFallback() replay here.
}

void
FaultManager::audit() const
{
    retention_.audit();
    ecp_.audit();
    retirement_.audit();
    if (startGap_)
        runAudit(*startGap_);
    for (const auto &[block, attempts] : retryAttempts_) {
        RRM_AUDIT(attempts <= config_.maxWriteRetries,
                  "block ", block, " carries ", attempts,
                  " retry attempts, beyond the cap");
    }
    RRM_AUDIT(retirement_.retiredCount() <= retirement_.spareCapacity(),
              "more lines retired than spares exist");
    RRM_AUDIT(!fallbackActive_ ||
                  (policy_ && policy_->supportsPressureFallback()),
              "fallback active without a policy able to demote");
}

} // namespace rrm::fault
