/**
 * @file
 * FaultManager: owns the retention-expiry model, the seeded fault
 * injector and every graceful-degradation policy, and exposes the
 * hook surface System wires into the memory path.
 *
 * Fault taxonomy and policy pairing:
 *  - retention violation  -> detection only (stat/trace/strict check)
 *  - transient write fail -> write-verify-and-retry, capped backoff
 *  - stuck-at hard fault  -> ECP repair budget, then line retirement
 *  - refresh-queue stall  -> injected pressure; the refresh-pressure
 *                            fallback demotes hot regions to slow
 *                            writes until the queues drain
 */

#ifndef RRM_FAULT_FAULT_MANAGER_HH
#define RRM_FAULT_FAULT_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/auditable.hh"
#include "common/units.hh"
#include "fault/fault_config.hh"
#include "fault/fault_injector.hh"
#include "fault/repair.hh"
#include "fault/retention_tracker.hh"
#include "memctrl/address_map.hh"
#include "memctrl/controller.hh"
#include "memctrl/start_gap.hh"
#include "obs/trace.hh"
#include "pcm/wear_tracker.hh"
#include "policy/write_policy.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace rrm::fault
{

class FaultManager : public Auditable
{
  public:
    /** Rewrite callback: reissue a demand write (addr, mode). */
    using RewriteCallback = std::function<void(Addr, pcm::WriteMode)>;

    FaultManager(const FaultConfig &config,
                 const memctrl::MemoryParams &memory, double time_scale,
                 std::uint64_t system_seed, EventQueue &queue,
                 memctrl::Controller &controller,
                 pcm::WearTracker &wear,
                 policy::WritePolicy *policy);
    ~FaultManager() override;

    FaultManager(const FaultManager &) = delete;
    FaultManager &operator=(const FaultManager &) = delete;

    /** Arm the stall schedule and the fallback governor. */
    void start();

    /**
     * Physical routing for a block address: StartGap remap first,
     * then retirement remap. Applied by System to every controller
     * address; cache-fill callbacks keep the logical address.
     */
    Addr translate(Addr block) const;

    /** A demand write is about to issue to `phys` (StartGap wear). */
    void onDemandWriteIssued(Addr phys);

    /** A demand write completed on the bus. */
    void onWriteCompleted(Addr phys, pcm::WriteMode mode, Tick when);

    /**
     * A timing-invisible (rate-corrected away) refresh was accounted
     * at emission; it satisfies its retention deadline immediately.
     */
    void onRefreshAccounted(Addr phys, pcm::WriteMode mode, Tick now);

    /** A timing-visible refresh completed on the bus. */
    void onRefreshCompleted(Addr phys, pcm::WriteMode mode, Tick when);

    /** Controller refused a refresh (queue full). */
    void onRefreshDropped(Addr phys);

    void setRewriteCallback(RewriteCallback cb);
    void setTraceSink(obs::TraceSink *sink) { traceSink_ = sink; }
    void regStats(stats::StatGroup &root);

    bool fallbackActive() const { return fallbackActive_; }
    std::uint64_t startGapMoves() const;
    const RetentionTracker &retention() const { return retention_; }

    /**
     * Scheduled-but-unfired rewrite (write-retry backoff) events.
     * Nonzero means the fault layer is not quiescent: a checkpoint
     * drain must keep stepping until every rewrite has re-entered the
     * write path and completed.
     */
    unsigned pendingRewriteEvents() const
    {
        return pendingRewriteEvents_;
    }

    /**
     * @{ Checkpoint injector RNG streams, retention deadlines, ECP /
     * retirement maps, StartGap domains, retry bookkeeping, wear-level
     * markers, fallback governor state, and the armed next-fire ticks
     * of the stall / governor tasks and the retention sweep.
     * restoreCkpt re-arms the periodic tasks in ascending last-arm
     * order (next fire minus period) so coincident-tick fires keep
     * the interrupted run's sequence order, then the sweep; the
     * manager must not have been start()ed.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    std::string_view auditName() const override { return "fault"; }
    void audit() const override;

  private:
    void armRetentionSweep();
    void sweepRetention();
    void maybeDevelopStuckAt(Addr phys, Tick when);
    void handleStuckAt(Addr phys, Tick when);
    void injectRefreshStall();
    void pollRefreshPressure();
    void enterFallback(std::size_t deepest_queue);
    void exitFallback(std::size_t deepest_queue);

    FaultConfig config_;
    double timeScale_;
    EventQueue &queue_;
    memctrl::Controller &controller_;
    pcm::WearTracker &wear_;
    policy::WritePolicy *policy_;
    memctrl::AddressMap addressMap_;
    unsigned numChannels_;
    std::uint64_t blockBytes_;

    FaultInjector injector_;
    RetentionTracker retention_;
    EcpRepair ecp_;
    LineRetirement retirement_;
    std::unique_ptr<memctrl::StartGapRemapper> startGap_;

    obs::TraceSink *traceSink_ = nullptr;
    RewriteCallback rewrite_;

    /** Outstanding rewrite attempts per faulted block. Ordered:
     *  audits and any future export iterate deterministically. */
    std::map<Addr, unsigned> retryAttempts_;

    /** Last wear-threshold multiple checked per wear region. */
    std::map<std::uint64_t, std::uint64_t> wearLevel_;

    /** One pending event for the earliest retention deadline. */
    EventHandle sweepEvent_;
    Tick sweepAt_ = 0;
    bool sweepArmed_ = false;

    std::unique_ptr<PeriodicTask> stallTask_;
    std::unique_ptr<PeriodicTask> governorTask_;
    bool fallbackActive_ = false;
    unsigned saturatedPolls_ = 0;
    unsigned pendingRewriteEvents_ = 0;

    stats::Scalar *statRetentionStamps_ = nullptr;
    stats::Scalar *statRetentionViolations_ = nullptr;
    stats::VectorStat *statViolationsByChannel_ = nullptr;
    stats::Scalar *statTransientWriteFaults_ = nullptr;
    stats::Scalar *statWriteRetries_ = nullptr;
    stats::Scalar *statWritesUnrecovered_ = nullptr;
    stats::Scalar *statStuckAtFaults_ = nullptr;
    stats::Scalar *statStuckAtRepaired_ = nullptr;
    stats::Scalar *statLinesRetired_ = nullptr;
    stats::Scalar *statSpareExhausted_ = nullptr;
    stats::Scalar *statRefreshDropped_ = nullptr;
    stats::Scalar *statRefreshStalls_ = nullptr;
    stats::Scalar *statFallbackEntries_ = nullptr;
    stats::Scalar *statFallbackExits_ = nullptr;
};

} // namespace rrm::fault

#endif // RRM_FAULT_FAULT_MANAGER_HH
