/**
 * @file
 * Retention-expiry model: per-block refresh deadlines.
 *
 * Every tracked write stamps its block with a deadline derived from
 * the write mode's Table I retention (compressed by the system
 * timeScale, plus an optional unscaled slack). A refresh or rewrite
 * in a tracked mode re-stamps the deadline; a rewrite in an untracked
 * (long-retention) mode clears the obligation. sweep() expires every
 * deadline strictly in the past and reports each as a retention
 * violation.
 */

#ifndef RRM_FAULT_RETENTION_TRACKER_HH
#define RRM_FAULT_RETENTION_TRACKER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.hh"
#include "pcm/write_mode.hh"

namespace rrm::ckpt
{
class ChunkWriter;
class ChunkReader;
} // namespace rrm::ckpt

namespace rrm::fault
{

class RetentionTracker
{
  public:
    /** (block, missed deadline, sweep time). */
    using ViolationCallback = std::function<void(Addr, Tick, Tick)>;

    RetentionTracker(double time_scale, double track_max_seconds,
                     double slack_seconds);

    /** True when `mode` is short-retention enough to be tracked. */
    bool tracks(pcm::WriteMode mode) const;

    /**
     * Ticks a tracked block may stay unrefreshed: the mode's scaled
     * retention plus the configured slack. The 2.01 s retention of
     * 3-SETs against the RRM's 2.0 s refresh cadence leaves exactly
     * the 0.01 s guardband (scaled) of margin.
     */
    Tick retentionTicks(pcm::WriteMode mode) const;

    /** A demand write landed: stamp or clear the block's deadline. */
    void recordWrite(Addr block, pcm::WriteMode mode, Tick now);

    /** A refresh landed: same deadline semantics as a write. */
    void recordRefresh(Addr block, pcm::WriteMode mode, Tick now);

    /** Drop any obligation for `block` (line retired). */
    void clear(Addr block);

    /**
     * Expire every deadline < `now`; each expiry is removed, counted
     * and reported through the violation callback. Returns the number
     * of violations raised by this sweep.
     */
    std::uint64_t sweep(Tick now);

    /** Earliest outstanding deadline, if any blocks are tracked. */
    std::optional<Tick> nextDeadline();

    std::size_t trackedCount() const { return deadlines_.size(); }
    std::uint64_t stamps() const { return stamps_; }
    std::uint64_t violations() const { return violations_; }

    void setViolationCallback(ViolationCallback cb);

    /**
     * @{ Checkpoint the live deadline map (sorted by block for a
     * canonical byte stream) and the stamp/violation counters. The
     * restore rebuilds a clean heap — equivalent to the lazily
     * invalidated original, since stale entries are discarded without
     * side effects when they surface.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    /** Internal-coherence checks, called from FaultManager::audit. */
    void audit() const;

  private:
    struct HeapEntry
    {
        Tick deadline;
        Addr block;
        bool
        operator>(const HeapEntry &o) const
        {
            return deadline > o.deadline ||
                   (deadline == o.deadline && block > o.block);
        }
    };

    void stamp(Addr block, pcm::WriteMode mode, Tick now);

    /** Pop heap entries that no longer match the live deadline map. */
    void dropStaleTop();

    double timeScale_;
    double trackMaxSeconds_;
    Tick slackTicks_;

    /** Live deadline per tracked block. */
    std::unordered_map<Addr, Tick> deadlines_;

    /**
     * Min-heap over (deadline, block) with lazy invalidation:
     * re-stamps leave stale entries behind which are discarded when
     * they reach the top and disagree with the map.
     */
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>>
        heap_;

    ViolationCallback onViolation_;
    std::uint64_t stamps_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace rrm::fault

#endif // RRM_FAULT_RETENTION_TRACKER_HH
