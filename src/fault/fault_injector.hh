/**
 * @file
 * Deterministic, seeded fault-draw streams.
 *
 * Each fault class draws from its own split of the injector seed so
 * enabling one class never perturbs another class's sequence — the
 * foundation of the byte-identical `fault.*` stats contract.
 */

#ifndef RRM_FAULT_FAULT_INJECTOR_HH
#define RRM_FAULT_FAULT_INJECTOR_HH

#include <cstdint>

#include "ckpt/ckpt.hh"
#include "common/random.hh"

namespace rrm::fault
{

class FaultInjector
{
  public:
    FaultInjector(double transient_write_failure_rate,
                  double stuck_at_rate, std::uint64_t seed)
        : seeder_(seed), writeRng_(seeder_.split()),
          stuckRng_(seeder_.split()),
          transientRate_(transient_write_failure_rate),
          stuckAtRate_(stuck_at_rate)
    {}

    /** Draw: does this completed write fail transiently? */
    bool
    writeFails()
    {
        return transientRate_ > 0.0 && writeRng_.chance(transientRate_);
    }

    /** Draw: does this wear-threshold crossing develop a stuck-at? */
    bool
    developsStuckAt()
    {
        return stuckAtRate_ > 0.0 && stuckRng_.chance(stuckAtRate_);
    }

    /** @{ Checkpoint all three RNG stream positions. */
    void
    saveCkpt(ckpt::ChunkWriter &w) const
    {
        for (const Random *rng : {&seeder_, &writeRng_, &stuckRng_})
            for (const std::uint64_t word : rng->state())
                w.u64(word);
    }

    void
    restoreCkpt(ckpt::ChunkReader &r)
    {
        for (Random *rng : {&seeder_, &writeRng_, &stuckRng_}) {
            std::array<std::uint64_t, 4> state;
            for (std::uint64_t &word : state)
                word = r.u64();
            rng->setState(state);
        }
    }
    /** @} */

  private:
    Random seeder_;
    Random writeRng_;
    Random stuckRng_;
    double transientRate_;
    double stuckAtRate_;
};

} // namespace rrm::fault

#endif // RRM_FAULT_FAULT_INJECTOR_HH
