/**
 * @file
 * EcpRepair / LineRetirement implementation.
 */

#include "repair.hh"

#include "common/check.hh"

namespace rrm::fault
{

void
EcpRepair::audit() const
{
    for (const auto &[line, used] : used_) {
        RRM_AUDIT(used > 0 && used <= budget_, "line ", line,
                  " carries an out-of-budget ECP count ", used);
    }
}

LineRetirement::LineRetirement(std::uint64_t memory_bytes,
                               std::uint64_t block_bytes,
                               std::uint64_t spare_blocks)
    : blockBytes_(block_bytes), spareBlocks_(spare_blocks),
      spareBase_(memory_bytes - spare_blocks * block_bytes)
{
    RRM_CHECK(block_bytes > 0, "retirement block size must be > 0");
    RRM_CHECK(spare_blocks * block_bytes <= memory_bytes,
              "spare pool larger than memory");
}

bool
LineRetirement::retire(Addr line)
{
    RRM_CHECK(!isRetired(line), "line ", line, " retired twice");
    if (nextSpare_ >= spareBlocks_)
        return false;
    map_[line] = spareBase_ + nextSpare_ * blockBytes_;
    ++nextSpare_;
    return true;
}

void
LineRetirement::audit() const
{
    RRM_AUDIT(map_.size() == nextSpare_,
              "retirement map size ", map_.size(),
              " disagrees with spares handed out ", nextSpare_);
    for (const auto &[line, spare] : map_) {
        RRM_AUDIT(spare >= spareBase_ &&
                      spare < spareBase_ + spareBlocks_ * blockBytes_,
                  "retired line ", line, " mapped outside the spare "
                  "pool");
        RRM_AUDIT(line != spare, "line retired onto itself");
    }
}

} // namespace rrm::fault
