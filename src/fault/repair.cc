/**
 * @file
 * EcpRepair / LineRetirement implementation.
 */

#include "repair.hh"

#include "ckpt/ckpt.hh"
#include "common/check.hh"

namespace rrm::fault
{

void
EcpRepair::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u64(used_.size());
    for (const auto &[line, used] : used_) {
        w.u64(line);
        w.u32(used);
    }
}

void
EcpRepair::restoreCkpt(ckpt::ChunkReader &r)
{
    used_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr line = r.u64();
        const unsigned used = r.u32();
        if (used == 0 || used > budget_)
            throw ckpt::CkptError(
                "ECP checkpoint carries an out-of-budget count " +
                std::to_string(used) + " for line " +
                std::to_string(line));
        used_[line] = used;
    }
}

void
EcpRepair::audit() const
{
    for (const auto &[line, used] : used_) {
        RRM_AUDIT(used > 0 && used <= budget_, "line ", line,
                  " carries an out-of-budget ECP count ", used);
    }
}

LineRetirement::LineRetirement(std::uint64_t memory_bytes,
                               std::uint64_t block_bytes,
                               std::uint64_t spare_blocks)
    : blockBytes_(block_bytes), spareBlocks_(spare_blocks),
      spareBase_(memory_bytes - spare_blocks * block_bytes)
{
    RRM_CHECK(block_bytes > 0, "retirement block size must be > 0");
    RRM_CHECK(spare_blocks * block_bytes <= memory_bytes,
              "spare pool larger than memory");
}

bool
LineRetirement::retire(Addr line)
{
    RRM_CHECK(!isRetired(line), "line ", line, " retired twice");
    if (nextSpare_ >= spareBlocks_)
        return false;
    map_[line] = spareBase_ + nextSpare_ * blockBytes_;
    ++nextSpare_;
    return true;
}

void
LineRetirement::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u64(nextSpare_);
    w.u64(map_.size());
    for (const auto &[line, spare] : map_) {
        w.u64(line);
        w.u64(spare);
    }
}

void
LineRetirement::restoreCkpt(ckpt::ChunkReader &r)
{
    nextSpare_ = r.u64();
    map_.clear();
    const std::uint64_t n = r.u64();
    if (n != nextSpare_ || n > spareBlocks_)
        throw ckpt::CkptError(
            "retirement checkpoint holds " + std::to_string(n) +
            " entries against " + std::to_string(nextSpare_) +
            " spares handed out (pool of " +
            std::to_string(spareBlocks_) + ")");
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr line = r.u64();
        const Addr spare = r.u64();
        map_[line] = spare;
    }
}

void
LineRetirement::audit() const
{
    RRM_AUDIT(map_.size() == nextSpare_,
              "retirement map size ", map_.size(),
              " disagrees with spares handed out ", nextSpare_);
    for (const auto &[line, spare] : map_) {
        RRM_AUDIT(spare >= spareBase_ &&
                      spare < spareBase_ + spareBlocks_ * blockBytes_,
                  "retired line ", line, " mapped outside the spare "
                  "pool");
        RRM_AUDIT(line != spare, "line retired onto itself");
    }
}

} // namespace rrm::fault
