/**
 * @file
 * Fault-injection and graceful-degradation configuration.
 */

#ifndef RRM_FAULT_FAULT_CONFIG_HH
#define RRM_FAULT_FAULT_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "memctrl/start_gap.hh"

namespace rrm::fault
{

/**
 * Static configuration of the fault model. All knobs default to
 * "off": a default-constructed FaultConfig is `!enabled()` and the
 * simulator behaves (and emits output) exactly as if the fault layer
 * did not exist.
 */
struct FaultConfig
{
    // ----- retention-expiry model -------------------------------------

    /**
     * Stamp every short-retention block write with a deadline derived
     * from the Table I retention numbers (scaled by the system
     * timeScale) and raise a retention-violation fault when no
     * refresh or rewrite arrives in time.
     */
    bool retentionTracking = false;

    /**
     * Only write modes whose *unscaled* retention is at or below this
     * bound are deadline-tracked. The default covers 3-SETs (2.01 s)
     * but not 4-SETs (24.05 s) and above, whose deadlines are orders
     * of magnitude beyond any simulated window.
     */
    double trackRetentionMaxSeconds = 3.0;

    /**
     * Extra allowance added to every deadline, in *simulated* seconds
     * (not divided by timeScale). The paper's 0.01 s guardband
     * compresses with timeScale while queue service time does not;
     * this knob restores headroom for heavily compressed runs.
     */
    double retentionSlackSeconds = 0.0;

    /** RRM_CHECK on any retention violation or unrecovered write. */
    bool strict = false;

    // ----- transient write failures -----------------------------------

    /** Probability that a completed write is injected as failed. */
    double transientWriteFailureRate = 0.0;

    /** Rewrite attempts before a failed write is declared lost. */
    unsigned maxWriteRetries = 3;

    /** First rewrite backoff; doubles per attempt up to the cap. */
    Tick retryBackoff = 200_ns;
    Tick maxRetryBackoff = 10_us;

    // ----- stuck-at hard faults ---------------------------------------

    /**
     * Every time a wear region's write count crosses a multiple of
     * this threshold, draw for a new stuck-at cell. 0 disables.
     */
    std::uint64_t stuckAtWearThreshold = 0;

    /** Probability that a threshold crossing develops a stuck-at. */
    double stuckAtRate = 1.0;

    /** ECP-style per-line repair budget (ECP-6 by default). */
    unsigned repairBudgetPerLine = 6;

    /** Spare blocks available for retiring budget-exhausted lines. */
    std::uint64_t spareBlocks = 1024;

    // ----- refresh-queue stalls ---------------------------------------

    /**
     * Periodically hold all refresh issue for `refreshStallSeconds`
     * (simulated seconds); demand traffic is unaffected. 0 disables.
     */
    double refreshStallSeconds = 0.0;

    /** Stall period; 0 means 4x the stall duration. */
    double refreshStallPeriodSeconds = 0.0;

    // ----- refresh-pressure fallback ----------------------------------

    /**
     * Demote hot regions to slow writes while any channel's refresh
     * queue stays above the high watermark, restoring fast writes
     * once the deepest queue falls to the low watermark. Only active
     * under the RRM scheme when the fault layer is enabled.
     */
    bool fallback = true;
    unsigned fallbackHighWatermark = 48;
    unsigned fallbackLowWatermark = 8;

    /** Governor poll period in simulated seconds. */
    double fallbackPollSeconds = 0.0005;

    /** Consecutive saturated polls required to enter fallback. */
    unsigned fallbackEnterPolls = 2;

    // ----- wear-leveling remap ----------------------------------------

    /** Route block addresses through a StartGap remapper. */
    bool useStartGap = false;
    memctrl::StartGapParams startGap;

    /** Mixed with the system seed for the injector RNG streams. */
    std::uint64_t seed = 0;

    /** True when any part of the fault layer is switched on. */
    bool
    enabled() const
    {
        return retentionTracking || transientWriteFailureRate > 0.0 ||
               stuckAtWearThreshold > 0 || refreshStallSeconds > 0.0 ||
               useStartGap;
    }

    double
    effectiveStallPeriodSeconds() const
    {
        return refreshStallPeriodSeconds > 0.0 ? refreshStallPeriodSeconds
                                               : 4.0 * refreshStallSeconds;
    }

    /** Append configuration errors; empty vector means valid. */
    void collectErrors(std::vector<std::string> &errors,
                       unsigned refresh_queue_cap) const;
};

} // namespace rrm::fault

#endif // RRM_FAULT_FAULT_CONFIG_HH
