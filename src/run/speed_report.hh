/**
 * @file
 * Machine-readable throughput report of one executed RunPlan — the
 * payload of bench_speed's BENCH_speed.json and the input format of
 * tools/bench-diff.
 *
 * Schema (schemaVersion 1):
 *   {
 *     "schemaVersion": 1,
 *     "bench": "<name>",
 *     "metadata": { tool, gitDescribe, timestampUtc },
 *     "runs": [ { "id", "status", "eventsExecuted",
 *                 "wallSeconds", "eventsPerSecond" }, ... ],
 *     "totals": { "eventsExecuted", "wallSeconds",
 *                 "eventsPerSecond" }
 *   }
 *
 * Determinism contract: run ids, statuses, and eventsExecuted depend
 * only on the plan's configs. The wall-clock metrics come from
 * obs::monotonicSeconds(), so under SOURCE_DATE_EPOCH every
 * wallSeconds / eventsPerSecond field is exactly 0 and the report is
 * byte-identical across --jobs values (the jobs 1-vs-4 test relies on
 * this; execution details like the worker count are excluded).
 */

#ifndef RRM_RUN_SPEED_REPORT_HH
#define RRM_RUN_SPEED_REPORT_HH

#include <ostream>
#include <string>

#include "run/run_report.hh"

namespace rrm::run
{

/** Schema version of the speed reports. */
constexpr int speedReportSchemaVersion = 1;

/**
 * Write the throughput report of `report` (see the schema above).
 * `totals.wallSeconds` is the whole-plan wall time, so
 * `totals.eventsPerSecond` reflects actual parallel throughput, not
 * the sum of per-run rates.
 */
void writeSpeedReport(std::ostream &os, const std::string &bench_name,
                      const RunReport &report);

} // namespace rrm::run

#endif // RRM_RUN_SPEED_REPORT_HH
