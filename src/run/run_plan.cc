/**
 * @file
 * RunPlan implementation: construction helpers and plan validation.
 */

#include "run_plan.hh"

#include <map>
#include <set>

#include "common/logging.hh"

namespace rrm::run
{

RunSpec &
RunPlan::add(sys::SystemConfig config, std::string id, std::string label)
{
    RunSpec spec;
    if (id.empty())
        id = config.workload.name + "." + config.scheme.name();
    spec.id = std::move(id);
    spec.label = label.empty() ? spec.id : std::move(label);
    spec.config = std::move(config);
    runs_.push_back(std::move(spec));
    return runs_.back();
}

RunPlan
RunPlan::matrix(const std::vector<trace::Workload> &workloads,
                const std::vector<sys::Scheme> &schemes,
                const std::function<sys::SystemConfig(
                    const trace::Workload &, const sys::Scheme &)>
                    &configFor)
{
    RunPlan plan;
    for (const auto &w : workloads)
        for (const auto &s : schemes)
            plan.add(configFor(w, s));
    return plan;
}

void
RunPlan::validate() const
{
    std::vector<std::string> errors;
    if (runs_.empty())
        errors.push_back("plan has no runs");

    std::set<std::string> ids;
    // Output path -> id of the run that claimed it first.
    std::map<std::string, std::string> outputs;
    for (const RunSpec &spec : runs_) {
        if (spec.id.empty())
            errors.push_back("a run has an empty id");
        else if (!ids.insert(spec.id).second)
            errors.push_back("duplicate run id '" + spec.id + "'");

        for (const std::string &err : spec.config.validate())
            errors.push_back(spec.id + ": " + err);

        const obs::ObsOptions &o = spec.config.obs;
        for (const std::string &path :
             {o.runRecordFile, o.sampleCsvFile, o.sampleJsonlFile,
              o.traceFile, o.perfettoFile, o.telemetryJsonFile,
              o.telemetryCsvFile}) {
            if (path.empty())
                continue;
            const auto [it, inserted] = outputs.emplace(path, spec.id);
            if (!inserted) {
                errors.push_back(spec.id + ": output file '" + path +
                                 "' clashes with run '" + it->second +
                                 "'");
            }
        }
    }

    if (errors.empty())
        return;
    std::string joined;
    for (const auto &e : errors)
        joined += (joined.empty() ? "" : "; ") + e;
    fatal("invalid run plan (", errors.size(), " problem(s)): ",
          joined);
}

} // namespace rrm::run
