/**
 * @file
 * Speed-report writer implementation.
 */

#include "speed_report.hh"

#include "obs/json.hh"
#include "obs/run_record.hh"

namespace rrm::run
{

void
writeSpeedReport(std::ostream &os, const std::string &bench_name,
                 const RunReport &report)
{
    obs::JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("schemaVersion", speedReportSchemaVersion);
    json.field("bench", bench_name);
    json.key("metadata");
    obs::writeRunMetadata(json, obs::currentRunMetadata());

    std::uint64_t total_events = 0;
    json.key("runs");
    json.beginArray();
    for (const RunResult &run : report.runs) {
        json.beginObject();
        json.field("id", run.id);
        json.field("status", runStatusName(run.status));
        json.field("eventsExecuted", run.eventsExecuted);
        json.field("wallSeconds", run.wallSeconds);
        json.field("eventsPerSecond", run.eventsPerSecond);
        json.endObject();
        total_events += run.eventsExecuted;
    }
    json.endArray();

    json.key("totals");
    json.beginObject();
    json.field("eventsExecuted", total_events);
    json.field("wallSeconds", report.wallSeconds);
    json.field("eventsPerSecond",
               report.wallSeconds > 0.0
                   ? static_cast<double>(total_events) /
                         report.wallSeconds
                   : 0.0);
    json.endObject();

    json.endObject();
    os << '\n';
}

} // namespace rrm::run
