/**
 * @file
 * Runner: executes a RunPlan on a pool of worker threads.
 *
 * Determinism contract: every run owns a fully isolated System,
 * EventQueue, and RNG seeded from its own config, so a run's
 * SimResults and observability outputs depend only on its
 * SystemConfig — never on sibling runs or the worker count. The
 * report lists results in plan order; with distinct per-run output
 * files (enforced by RunPlan::validate) the batch output is
 * byte-identical for any --jobs value. Only wall-clock fields
 * (RunResult::wallSeconds, the report profile) vary.
 *
 * Shared process-global state the workers touch is thread-safe by
 * construction: the log sink and warn_once registry are mutexed, the
 * check-violation counters are atomic, and the static
 * workload/write-mode tables are immutable after their (thread-safe)
 * first-use initialization. See DESIGN.md section 9.
 */

#ifndef RRM_RUN_RUNNER_HH
#define RRM_RUN_RUNNER_HH

#include <functional>

#include "run/run_plan.hh"
#include "run/run_report.hh"

namespace rrm::run
{

/** Progress snapshot passed to RunnerOptions::onProgress. */
struct RunProgress
{
    /** Plan-order index of the run that just finished. */
    std::size_t index = 0;

    /** Status it finished with. */
    RunStatus status = RunStatus::Ok;

    /** Runs finished (ok or failed) so far, including this one. */
    std::size_t finished = 0;

    std::size_t total = 0;

    /** Wall seconds of this run. */
    double runSeconds = 0.0;

    /** Slowest completed run seen so far (the watermark). */
    double slowestSeconds = 0.0;

    /** Simulator events this run executed (0 unless Ok). */
    std::uint64_t eventsExecuted = 0;

    /**
     * Host throughput of this run: eventsExecuted / runSeconds.
     * 0 when the clock is pinned (SOURCE_DATE_EPOCH) or the run
     * was not Ok. Nondeterministic.
     */
    double eventsPerSecond = 0.0;

    /**
     * Naive remaining-time estimate: mean completed-run seconds x
     * remaining runs / workers. 0 once the plan is done or while
     * the clock is pinned. Nondeterministic.
     */
    double etaSeconds = 0.0;
};

/** Execution policy of one Runner. */
struct RunnerOptions
{
    /**
     * Worker threads. 0 selects the hardware concurrency; 1 runs the
     * plan inline on the calling thread (the historical serial
     * behavior — no threads are created).
     */
    unsigned jobs = 0;

    /**
     * Stop dispatching after the first failed run: queued runs are
     * reported Cancelled instead of executed. Runs already in flight
     * on other workers complete normally.
     */
    bool failFast = false;

    /** Print per-run progress lines to stderr. */
    bool verbose = false;

    /**
     * Per-run wall-clock budget in seconds, applied to every run whose
     * config does not already set SystemConfig::wallTimeoutSeconds.
     * A run over budget raises SimTimeoutError between event batches
     * and is recorded TimedOut (after exhausting retries) without
     * stalling the rest of the plan. 0 disables the runner-level
     * timeout.
     */
    double timeoutSeconds = 0.0;

    /**
     * Re-attempts after a failed or timed-out run: each run executes
     * at most `1 + retries` times on a fresh System; the first Ok
     * attempt wins. The final status reflects the last attempt.
     * When the run's config enables checkpointing, re-attempts set
     * SystemConfig::resumeFromCheckpoint so they continue from the
     * newest valid checkpoint (older on corruption, then cold)
     * instead of repeating the completed portion. Interrupted runs
     * (SIGINT/SIGTERM) are never retried.
     */
    unsigned retries = 0;

    /**
     * Called after every run finishes, serialized under the runner's
     * progress lock (callbacks never overlap). Runs may finish in any
     * order under jobs > 1.
     */
    std::function<void(const RunProgress &)> onProgress;
};

/** Executes RunPlans; stateless between execute() calls. */
class Runner
{
  public:
    explicit Runner(RunnerOptions options = {});

    /** Effective worker count for a plan of `plan_size` runs. */
    unsigned effectiveJobs(std::size_t plan_size) const;

    /**
     * Validate and execute the plan; returns the plan-order report.
     * Run failures (FatalError, CheckError, any std::exception) are
     * captured per run, never thrown; plan-level validation failures
     * throw FatalError before anything executes.
     */
    RunReport execute(const RunPlan &plan) const;

    const RunnerOptions &options() const { return options_; }

  private:
    RunnerOptions options_;
};

} // namespace rrm::run

#endif // RRM_RUN_RUNNER_HH
