/**
 * @file
 * Runner implementation: worker pool, dispatch, failure capture.
 */

#include "runner.hh"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/interrupt.hh"
#include "common/logging.hh"
#include "obs/run_record.hh"
#include "system/system.hh"

namespace rrm::run
{

namespace
{

/**
 * Seconds elapsed since `start` (an obs::monotonicSeconds() reading).
 * Under SOURCE_DATE_EPOCH both readings are 0, so every wall-clock
 * field collapses to 0 and reports are byte-reproducible.
 */
double
secondsSince(double start)
{
    return obs::monotonicSeconds() - start;
}

/** Shared execution state of one plan; workers hold a reference. */
struct Execution
{
    Execution(const RunPlan &p, const RunnerOptions &o, RunReport &r)
        : plan(p), options(o), report(r)
    {}

    const RunPlan &plan;
    const RunnerOptions &options;
    RunReport &report;

    /** Next plan index to dispatch. */
    std::atomic<std::size_t> next{0};

    /** Set by the first failure when failFast is on. */
    std::atomic<bool> aborted{false};

    /** Serializes progress accounting and the onProgress callback. */
    std::mutex progressMutex;
    std::size_t finished = 0;          // guarded by progressMutex
    double slowestSeconds = 0.0;       // guarded by progressMutex
    double finishedSeconds = 0.0;      // guarded by progressMutex
};

/** Execute plan run `index`, filling its plan-order report slot. */
void
executeOne(Execution &ex, std::size_t index)
{
    const RunSpec &spec = ex.plan[index];
    RunResult &slot = ex.report.runs[index];

    // A graceful-stop request between dispatch and start leaves the
    // slot Cancelled, exactly like a run that was never dispatched.
    if (interruptRequested())
        return;
    const double start = obs::monotonicSeconds();

    sys::SystemConfig config = spec.config;
    if (config.wallTimeoutSeconds == 0.0)
        config.wallTimeoutSeconds = ex.options.timeoutSeconds;
    const bool checkpointing = config.checkpointEveryEpochs > 0 &&
                               !config.checkpointDir.empty();

    const unsigned attempts = 1 + ex.options.retries;
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        // Stop retrying once a stop was requested; the last attempt's
        // status (TimedOut/Failed) stands.
        if (attempt > 1 && interruptRequested())
            break;
        slot.attempts = attempt;
        // Re-attempts of a checkpointing run pick up from the newest
        // valid checkpoint the failed attempt published (tryResume
        // falls back older -> cold start on corruption), so a timed
        // out long run does not repeat its completed hours.
        if (attempt > 1 && checkpointing)
            config.resumeFromCheckpoint = true;
        try {
            sys::System system(config);
            slot.results = system.run();
            if (spec.postRun)
                spec.postRun(system, slot.results);
            slot.status = RunStatus::Ok;
            slot.error.clear();
            break;
        } catch (const sys::SimInterruptedError &e) {
            // The System already drained and wrote its best-effort
            // final checkpoint before unwinding. Never retried: the
            // user asked the whole pool to stop.
            slot.status = RunStatus::Interrupted;
            slot.error = e.what();
            break;
        } catch (const sys::SimTimeoutError &e) {
            slot.status = RunStatus::TimedOut;
            slot.error = e.what();
        } catch (const std::exception &e) {
            slot.status = RunStatus::Failed;
            slot.error = e.what();
        }
    }
    if (slot.status != RunStatus::Ok && ex.options.failFast)
        ex.aborted.store(true, std::memory_order_relaxed);
    slot.wallSeconds = secondsSince(start);
    if (slot.status == RunStatus::Ok) {
        slot.eventsExecuted = slot.results.eventsExecuted;
        if (slot.wallSeconds > 0.0) {
            slot.eventsPerSecond =
                static_cast<double>(slot.eventsExecuted) /
                slot.wallSeconds;
        }
    }

    RunProgress progress;
    progress.index = index;
    progress.status = slot.status;
    progress.runSeconds = slot.wallSeconds;
    progress.total = ex.plan.size();
    progress.eventsExecuted = slot.eventsExecuted;
    progress.eventsPerSecond = slot.eventsPerSecond;
    {
        const std::lock_guard<std::mutex> lock(ex.progressMutex);
        progress.finished = ++ex.finished;
        if (slot.status == RunStatus::Ok &&
            slot.wallSeconds > ex.slowestSeconds) {
            ex.slowestSeconds = slot.wallSeconds;
        }
        progress.slowestSeconds = ex.slowestSeconds;
        ex.finishedSeconds += slot.wallSeconds;
        const std::size_t remaining = progress.total - progress.finished;
        if (remaining > 0 && ex.finishedSeconds > 0.0) {
            const double mean = ex.finishedSeconds /
                                static_cast<double>(progress.finished);
            progress.etaSeconds =
                mean * static_cast<double>(remaining) /
                static_cast<double>(ex.report.jobs ? ex.report.jobs : 1);
        }
        if (ex.options.verbose) {
            std::fprintf(stderr,
                         "  [%zu/%zu] %-9s %-32s %6.2f s"
                         " (slowest %.2f s)\n",
                         progress.finished, progress.total,
                         runStatusName(slot.status), spec.label.c_str(),
                         slot.wallSeconds, progress.slowestSeconds);
        }
        if (ex.options.onProgress)
            ex.options.onProgress(progress);
    }
}

/** Worker loop: pull plan indices until the plan (or dispatch) ends. */
void
workerLoop(Execution &ex)
{
    while (true) {
        // A stop request drains the pool exactly like --fail-fast:
        // dispatch ends, in-flight runs finish (each recording
        // Interrupted through the serialized progress path), queued
        // runs stay Cancelled, and the report is still complete.
        if (ex.aborted.load(std::memory_order_relaxed) ||
            interruptRequested()) {
            return;
        }
        const std::size_t index =
            ex.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= ex.plan.size())
            return;
        executeOne(ex, index);
    }
}

} // namespace

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {}

unsigned
Runner::effectiveJobs(std::size_t plan_size) const
{
    unsigned jobs = options_.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (plan_size > 0 &&
        jobs > plan_size) {
        jobs = static_cast<unsigned>(plan_size);
    }
    return jobs < 1 ? 1 : jobs;
}

RunReport
Runner::execute(const RunPlan &plan) const
{
    plan.validate();

    RunReport report;
    report.runs.resize(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        report.runs[i].id = plan[i].id;
        report.runs[i].label = plan[i].label;
        report.runs[i].status = RunStatus::Cancelled;
    }
    report.jobs = effectiveJobs(plan.size());

    const double start = obs::monotonicSeconds();
    Execution ex{plan, options_, report};
    if (report.jobs <= 1) {
        // Serial path: no threads, identical to the historical loop.
        workerLoop(ex);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(report.jobs);
        for (unsigned w = 0; w < report.jobs; ++w)
            workers.emplace_back([&ex] { workerLoop(ex); });
        for (auto &t : workers)
            t.join();
    }
    report.wallSeconds = secondsSince(start);
    return report;
}

} // namespace rrm::run
