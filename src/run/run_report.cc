/**
 * @file
 * RunReport implementation.
 */

#include "run_report.hh"

#include "common/logging.hh"

namespace rrm::run
{

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok:
        return "ok";
      case RunStatus::Failed:
        return "failed";
      case RunStatus::Cancelled:
        return "cancelled";
      case RunStatus::TimedOut:
        return "timed-out";
      case RunStatus::Interrupted:
        return "interrupted";
    }
    return "unknown";
}

std::size_t
RunReport::completedCount() const
{
    std::size_t n = 0;
    for (const auto &r : runs)
        n += r.status == RunStatus::Ok;
    return n;
}

std::size_t
RunReport::failedCount() const
{
    std::size_t n = 0;
    for (const auto &r : runs)
        n += r.status == RunStatus::Failed;
    return n;
}

std::size_t
RunReport::cancelledCount() const
{
    std::size_t n = 0;
    for (const auto &r : runs)
        n += r.status == RunStatus::Cancelled;
    return n;
}

std::size_t
RunReport::timedOutCount() const
{
    std::size_t n = 0;
    for (const auto &r : runs)
        n += r.status == RunStatus::TimedOut;
    return n;
}

std::size_t
RunReport::interruptedCount() const
{
    std::size_t n = 0;
    for (const auto &r : runs)
        n += r.status == RunStatus::Interrupted;
    return n;
}

std::size_t
RunReport::slowestRunIndex() const
{
    std::size_t slowest = std::string::npos;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].status != RunStatus::Ok)
            continue;
        if (slowest == std::string::npos ||
            runs[i].wallSeconds > runs[slowest].wallSeconds) {
            slowest = i;
        }
    }
    return slowest;
}

const RunResult *
RunReport::find(const std::string &id) const
{
    for (const auto &r : runs) {
        if (r.id == id)
            return &r;
    }
    return nullptr;
}

std::vector<sys::SimResults>
RunReport::okResults() const
{
    std::vector<sys::SimResults> out;
    out.reserve(runs.size());
    for (const auto &r : runs) {
        if (r.status != RunStatus::Ok)
            fatal("run ", r.id, " is ", runStatusName(r.status),
                  r.error.empty() ? "" : ": ", r.error);
        out.push_back(r.results);
    }
    return out;
}

void
RunReport::registerStats(stats::StatGroup &parent) const
{
    auto &g = parent.addChild("run");
    g.addScalar("runs", "runs in the executed plan")
        .set(static_cast<double>(runs.size()));
    g.addScalar("completed", "runs that finished ok")
        .set(static_cast<double>(completedCount()));
    g.addScalar("failed", "runs that threw")
        .set(static_cast<double>(failedCount()));
    g.addScalar("cancelled", "runs cancelled by --fail-fast")
        .set(static_cast<double>(cancelledCount()));
    g.addScalar("timedOut", "runs that exceeded their timeout")
        .set(static_cast<double>(timedOutCount()));
    g.addScalar("interrupted", "runs stopped by SIGINT/SIGTERM")
        .set(static_cast<double>(interruptedCount()));
    g.addScalar("jobs", "worker threads used")
        .set(static_cast<double>(jobs));
    g.addScalar("wallSeconds", "host wall-clock of the whole plan")
        .set(wallSeconds);
    const std::size_t slowest = slowestRunIndex();
    g.addScalar("slowestRunSeconds",
                "host wall-clock of the slowest completed run")
        .set(slowest == std::string::npos
                 ? 0.0
                 : runs[slowest].wallSeconds);
}

obs::Profiler
RunReport::profile() const
{
    obs::Profiler prof;
    prof.enter("run");
    for (const auto &r : runs) {
        if (r.status != RunStatus::Ok)
            continue;
        prof.enter(r.id.c_str());
        prof.leave(static_cast<std::uint64_t>(r.wallSeconds * 1e9));
    }
    prof.leave(static_cast<std::uint64_t>(wallSeconds * 1e9));
    return prof;
}

std::string
RunReport::failureSummary() const
{
    std::string out;
    for (const auto &r : runs) {
        if (r.status == RunStatus::Ok)
            continue;
        out += (out.empty() ? "" : "; ") + r.id + " " +
               runStatusName(r.status);
        if (!r.error.empty())
            out += " (" + r.error + ")";
    }
    return out;
}

} // namespace rrm::run
