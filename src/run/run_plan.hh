/**
 * @file
 * RunPlan: an ordered list of fully-resolved simulation runs.
 *
 * A plan is the unit of batch execution: every paper figure is a
 * matrix of independent (workload, scheme) simulations, and a sweep
 * is the same matrix with per-run config variations. Each run carries
 * a stable, plan-unique id (the default matrix id is
 * "<workload>.<scheme>", which is also the naming tag of per-run
 * observability outputs) so results, output files, and failure
 * reports all refer to runs the same way regardless of execution
 * order. The Runner (runner.hh) executes a plan on a worker pool and
 * returns results in plan order.
 */

#ifndef RRM_RUN_RUN_PLAN_HH
#define RRM_RUN_RUN_PLAN_HH

#include <functional>
#include <string>
#include <vector>

#include "system/system.hh"
#include "trace/workload.hh"

namespace rrm::run
{

/**
 * Called on the worker thread right after a run finishes, with the
 * still-live System (for post-run component inspection, e.g. the
 * Table III region profiler) and its results. The hook must not
 * touch state shared with other runs without its own synchronization;
 * a thrown exception marks the run failed.
 */
using PostRunHook = std::function<void(const sys::System &,
                                       const sys::SimResults &)>;

/** One fully-resolved run of a plan. */
struct RunSpec
{
    /** Stable plan-unique id, e.g. "GemsFDTD.RRM". */
    std::string id;

    /** Display label for progress output; defaults to the id. */
    std::string label;

    sys::SystemConfig config;

    PostRunHook postRun;
};

/** Ordered list of runs; the execution contract of one batch. */
class RunPlan
{
  public:
    /**
     * Append a run. An empty id defaults to
     * "<workload>.<scheme>"; an empty label defaults to the id.
     * Returns the spec for further adjustment (hooks, config edits).
     */
    RunSpec &add(sys::SystemConfig config, std::string id = "",
                 std::string label = "");

    /**
     * Build the standard figure matrix: every workload under every
     * scheme, in (workload-major) order, ids "<workload>.<scheme>".
     * `configFor` produces the fully-resolved config of one cell.
     */
    static RunPlan matrix(
        const std::vector<trace::Workload> &workloads,
        const std::vector<sys::Scheme> &schemes,
        const std::function<sys::SystemConfig(
            const trace::Workload &, const sys::Scheme &)> &configFor);

    /**
     * Validate the whole plan, aggregating every problem into one
     * FatalError: each run's SystemConfig::validate() failures
     * (prefixed with the run id), duplicate run ids, and observability
     * output files claimed by more than one run (which would silently
     * overwrite each other — and race under parallel execution).
     */
    void validate() const;

    /** @{ Plan contents, in execution-independent plan order. */
    std::size_t size() const { return runs_.size(); }
    bool empty() const { return runs_.empty(); }
    const RunSpec &operator[](std::size_t i) const { return runs_.at(i); }
    const std::vector<RunSpec> &runs() const { return runs_; }
    /** @} */

  private:
    std::vector<RunSpec> runs_;
};

} // namespace rrm::run

#endif // RRM_RUN_RUN_PLAN_HH
