/**
 * @file
 * RunReport: the aggregated outcome of executing a RunPlan.
 *
 * Results appear in plan order regardless of how many workers
 * executed the plan or how their runs interleaved, so everything
 * derived from a report (tables, bench JSON, geomeans) is
 * byte-identical across --jobs settings. Wall-clock observations
 * (per-run seconds, the slowest-run watermark, the "run" profile) are
 * the only nondeterministic fields and stay out of the deterministic
 * payloads, mirroring the stats-vs-profile split of the obs layer.
 */

#ifndef RRM_RUN_RUN_REPORT_HH
#define RRM_RUN_RUN_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "obs/profiler.hh"
#include "stats/stats.hh"
#include "system/results.hh"

namespace rrm::run
{

/** Outcome of one run of the plan. */
enum class RunStatus : std::uint8_t
{
    Ok = 0,
    Failed,    ///< the run threw; see RunResult::error
    Cancelled, ///< never started: --fail-fast after an earlier failure
    TimedOut,  ///< exceeded its wall-clock timeout on every attempt

    /**
     * Stopped by a graceful-stop request (SIGINT/SIGTERM via
     * common/interrupt.hh). The run wrote a best-effort final
     * checkpoint first when checkpointing was configured; it is
     * never retried.
     */
    Interrupted,
};

/**
 * Stable lower-case status name
 * ("ok", "failed", "cancelled", "timed-out", "interrupted").
 */
const char *runStatusName(RunStatus status);

/** One run's outcome, in the plan-order slot of its spec. */
struct RunResult
{
    std::string id;
    std::string label;
    RunStatus status = RunStatus::Cancelled;

    /** Failure message ("" unless status is Failed / TimedOut). */
    std::string error;

    /** Valid only when status == Ok. */
    sys::SimResults results;

    /** Attempts executed (0 = never started; > 1 means retried). */
    unsigned attempts = 0;

    /**
     * Host wall-clock seconds of this run, across all attempts
     * (nondeterministic).
     */
    double wallSeconds = 0.0;

    /** Simulator events the winning attempt executed (0 unless Ok). */
    std::uint64_t eventsExecuted = 0;

    /**
     * Host throughput: eventsExecuted / wallSeconds, 0 when the
     * clock is pinned via SOURCE_DATE_EPOCH (nondeterministic).
     */
    double eventsPerSecond = 0.0;
};

/** Aggregated outcome of one executed plan. */
struct RunReport
{
    /** One entry per plan run, in plan order. */
    std::vector<RunResult> runs;

    /** Worker threads the plan was executed with. */
    unsigned jobs = 1;

    /** Host wall-clock seconds of the whole plan (nondeterministic). */
    double wallSeconds = 0.0;

    /** @{ Outcome tallies. */
    std::size_t completedCount() const;
    std::size_t failedCount() const;
    std::size_t cancelledCount() const;
    std::size_t timedOutCount() const;
    std::size_t interruptedCount() const;
    bool allOk() const { return completedCount() == runs.size(); }
    /** @} */

    /** Plan-order index of the slowest completed run (npos if none). */
    std::size_t slowestRunIndex() const;

    /** Result by run id (nullptr if the id is not in the plan). */
    const RunResult *find(const std::string &id) const;

    /**
     * Results of every Ok run, in plan order — the common input shape
     * of table formatting. fatal() if any run is not Ok (callers
     * decide failure policy first; see allOk()).
     */
    std::vector<sys::SimResults> okResults() const;

    /**
     * Register the plan-level execution counters as a "run" child of
     * `parent`: runs/completed/failed/cancelled/jobs plus the
     * (nondeterministic) wallSeconds and slowestRunSeconds.
     */
    void registerStats(stats::StatGroup &parent) const;

    /**
     * Wall-clock profile of the execution: "run" (whole plan) with
     * one "run.<id>" child per completed run, fed in plan order.
     */
    obs::Profiler profile() const;

    /** One-line failure summary, e.g. for fatal() ("" if allOk). */
    std::string failureSummary() const;
};

} // namespace rrm::run

#endif // RRM_RUN_RUN_REPORT_HH
