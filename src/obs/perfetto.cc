/**
 * @file
 * PerfettoTraceWriter implementation.
 */

#include "perfetto.hh"

#include <cstring>
#include <fstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace rrm::obs
{

namespace
{

/** Track ids (tids) of the fixed taxonomy; see perfetto.hh. */
constexpr int kCategoryTidBase = 10; ///< + category index
constexpr int kEpochTid = 20;
constexpr int kChannelTidBase = 100; ///< + channel index

const TraceEvent::Field *
findField(const TraceEvent &ev, const char *key)
{
    for (std::size_t i = 0; i < ev.numFields(); ++i)
        if (std::strcmp(ev.fields[i].key, key) == 0)
            return &ev.fields[i];
    return nullptr;
}

bool
isServiceSpan(const char *name)
{
    return std::strcmp(name, "readService") == 0 ||
           std::strcmp(name, "writeService") == 0 ||
           std::strcmp(name, "refreshService") == 0;
}

bool
isQueueCounter(const char *name)
{
    return std::strcmp(name, "readEnq") == 0 ||
           std::strcmp(name, "writeEnq") == 0 ||
           std::strcmp(name, "refreshEnq") == 0;
}

bool
isCoreProgress(const char *name)
{
    return std::strcmp(name, "coreProgress") == 0;
}

bool
isTenantRefreshQ(const char *name)
{
    return std::strcmp(name, "tenantRefreshQ") == 0;
}

} // namespace

PerfettoTraceWriter::PerfettoTraceWriter(std::ostream &os) : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

PerfettoTraceWriter::~PerfettoTraceWriter()
{
    finish();
}

double
PerfettoTraceWriter::toMicros(Tick tick)
{
    return static_cast<double>(tick) / static_cast<double>(tickPerUs);
}

void
PerfettoTraceWriter::beginEvent(const char *name, const char *cat,
                                char phase, double ts_us)
{
    os_ << (first_ ? "\n" : ",\n");
    if (first_) {
        // Name the process once, ahead of the first real event.
        first_ = false;
        os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"rrm-sim\"}},\n";
    }
    os_ << "{\"name\":\"" << jsonEscape(name) << "\",\"cat\":\""
        << jsonEscape(cat) << "\",\"ph\":\"" << phase
        << "\",\"ts\":" << jsonNumber(ts_us) << ",\"pid\":1";
}

void
PerfettoTraceWriter::nameTrack(int tid, const std::string &name)
{
    if (!namedTracks_.insert(tid).second)
        return;
    os_ << (first_ ? "\n" : ",\n");
    if (first_) {
        first_ = false;
        os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"rrm-sim\"}},\n";
    }
    os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << tid << ",\"args\":{\"name\":\"" << jsonEscape(name)
        << "\"}}";
}

void
PerfettoTraceWriter::writeArgs(const TraceEvent &ev,
                               std::size_t first_field)
{
    os_ << ",\"args\":{";
    bool sep = false;
    for (std::size_t i = first_field; i < ev.numFields(); ++i) {
        if (sep)
            os_ << ',';
        sep = true;
        os_ << '"' << jsonEscape(ev.fields[i].key)
            << "\":" << jsonNumber(ev.fields[i].value);
    }
    os_ << '}';
}

void
PerfettoTraceWriter::write(const TraceEvent &ev)
{
    if (finished_)
        return;
    const char *name = ev.name ? ev.name : "?";
    const char *cat = traceCategoryName(ev.category);
    const double ts = toMicros(ev.tick);

    if (isServiceSpan(name)) {
        // Channel busy window: duration known at issue time.
        const TraceEvent::Field *ch = findField(ev, "channel");
        const TraceEvent::Field *dur = findField(ev, "dur");
        const int tid =
            kChannelTidBase +
            (ch ? static_cast<int>(ch->value) : 0);
        nameTrack(tid, "channel" +
                           std::to_string(ch ? static_cast<int>(
                                                   ch->value)
                                             : 0) +
                           " busy");
        beginEvent(name, cat, 'X', ts);
        os_ << ",\"tid\":" << tid << ",\"dur\":"
            << jsonNumber(dur ? toMicros(static_cast<Tick>(dur->value))
                              : 0.0);
        writeArgs(ev, 0);
        os_ << '}';
        return;
    }

    if (ev.category == TraceCategory::Queue && isQueueCounter(name)) {
        // Queue occupancy counter series, one track per channel.
        const TraceEvent::Field *ch = findField(ev, "channel");
        const int chan = ch ? static_cast<int>(ch->value) : 0;
        const std::string counter =
            "ch" + std::to_string(chan) + " queues";
        beginEvent(counter.c_str(), cat, 'C', ts);
        os_ << ",\"args\":{";
        bool sep = false;
        for (const char *key : {"readQ", "writeQ", "refreshQ"}) {
            if (const TraceEvent::Field *f = findField(ev, key)) {
                if (sep)
                    os_ << ',';
                sep = true;
                os_ << '"' << jsonEscape(key)
                    << "\":" << jsonNumber(f->value);
            }
        }
        os_ << "}}";
        return;
    }

    if (ev.category == TraceCategory::Queue && isCoreProgress(name)) {
        // Instruction-progress counter series, one track per core.
        const TraceEvent::Field *core = findField(ev, "core");
        const int c = core ? static_cast<int>(core->value) : 0;
        const std::string counter =
            "core" + std::to_string(c) + " progress";
        beginEvent(counter.c_str(), cat, 'C', ts);
        os_ << ",\"args\":{";
        if (const TraceEvent::Field *f = findField(ev, "instructions")) {
            os_ << "\"instructions\":" << jsonNumber(f->value);
        }
        os_ << "}}";
        return;
    }

    if (ev.category == TraceCategory::Queue && isTenantRefreshQ(name)) {
        // Outstanding-refresh counter series, one track per tenant.
        const TraceEvent::Field *tf = findField(ev, "tenant");
        const int t = tf ? static_cast<int>(tf->value) : 0;
        const std::string counter =
            "tenant" + std::to_string(t) + " refreshQ";
        beginEvent(counter.c_str(), cat, 'C', ts);
        os_ << ",\"args\":{";
        if (const TraceEvent::Field *f = findField(ev, "refreshQ")) {
            os_ << "\"refreshQ\":" << jsonNumber(f->value);
        }
        os_ << "}}";
        return;
    }

    if (ev.category == TraceCategory::Sampler) {
        // Consecutive samples bound one settled decay epoch each.
        if (haveSample_ && ev.tick > lastSampleTick_) {
            nameTrack(kEpochTid, "decay epochs");
            beginEvent("epoch", cat, 'X', toMicros(lastSampleTick_));
            os_ << ",\"tid\":" << kEpochTid << ",\"dur\":"
                << jsonNumber(toMicros(ev.tick - lastSampleTick_));
            writeArgs(ev, 0);
            os_ << '}';
        }
        haveSample_ = true;
        lastSampleTick_ = ev.tick;
        return;
    }

    // Default: a thread-scoped instant on the category's track.
    const int tid =
        kCategoryTidBase + static_cast<int>(ev.category);
    nameTrack(tid, cat);
    beginEvent(name, cat, 'i', ts);
    os_ << ",\"tid\":" << tid << ",\"s\":\"t\"";
    writeArgs(ev, 0);
    os_ << '}';
}

void
PerfettoTraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n]}\n";
}

namespace
{

/**
 * A Perfetto writer owning the file it writes to. The file is an
 * AtomicFile: the timeline lands under its final name only on
 * finish() (which also closes the JSON array), so a killed run never
 * leaves a truncated — and therefore unloadable — .perfetto file.
 */
class OwningPerfettoWriter : public TraceWriter
{
  public:
    explicit OwningPerfettoWriter(const std::string &path) : file_(path)
    {
        writer_ = std::make_unique<PerfettoTraceWriter>(file_.stream());
    }

    void write(const TraceEvent &ev) override { writer_->write(ev); }

    void finish() override
    {
        if (finished_)
            return;
        finished_ = true;
        writer_->finish();
        file_.commit();
    }

  private:
    AtomicFile file_;
    std::unique_ptr<PerfettoTraceWriter> writer_;
    bool finished_ = false;
};

} // namespace

std::unique_ptr<TraceWriter>
openPerfettoFile(const std::string &path)
{
    return std::make_unique<OwningPerfettoWriter>(path);
}

} // namespace rrm::obs
