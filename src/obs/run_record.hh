/**
 * @file
 * Run-record metadata: everything needed to attribute an exported
 * JSON document to a build and a moment in time. The simulator parts
 * of a run record (config, results, stats) are assembled by
 * System::writeRunRecord; this header owns the generic envelope.
 */

#ifndef RRM_OBS_RUN_RECORD_HH
#define RRM_OBS_RUN_RECORD_HH

#include <cstdint>
#include <string>

#include "obs/json.hh"

namespace rrm::obs
{

/**
 * Seconds since the Unix epoch, honoring SOURCE_DATE_EPOCH (the
 * reproducible-builds convention): when that variable is set its value
 * is returned instead of the host clock, so identical runs emit
 * byte-identical records.
 *
 * This is the simulator's ONLY sanctioned wall-clock read — rrm-lint's
 * det-wall-clock rule flags every other call site. Anything needing
 * "now" as a date must come through here so determinism harnesses can
 * pin it from the environment.
 */
std::int64_t wallClockSeconds();

/**
 * Monotonic host time in seconds, for measuring durations (run wall
 * time, events/sec, timeouts). Under SOURCE_DATE_EPOCH this returns
 * 0.0 unconditionally, so every derived duration and rate collapses
 * to zero and seeded determinism harnesses stay byte-identical across
 * machines and --jobs settings (wall timeouts are then inert, which
 * pinned runs never rely on).
 *
 * This is the simulator's only sanctioned monotonic-clock read
 * outside the self-profiler — rrm-lint's det-monotonic-clock rule
 * flags every other steady_clock/high_resolution_clock call site.
 */
double monotonicSeconds();

/** Schema version stamped into every exported run record. */
constexpr int runRecordSchemaVersion = 1;

/** Build / host metadata of the running binary. */
struct RunMetadata
{
    std::string tool = "rrm_pcm";
    std::string gitDescribe; ///< from the build system; "unknown" if absent
    std::string timestampUtc; ///< ISO-8601, empty if unavailable
};

/**
 * Metadata of this process: git describe captured at configure time
 * plus the current UTC wall-clock time.
 */
RunMetadata currentRunMetadata();

/**
 * Emit the metadata envelope ({"tool": ..., "gitDescribe": ...,
 * "timestampUtc": ...}) at the writer's current value slot.
 */
void writeRunMetadata(JsonWriter &json, const RunMetadata &meta);

} // namespace rrm::obs

#endif // RRM_OBS_RUN_RECORD_HH
