/**
 * @file
 * Run-record metadata: everything needed to attribute an exported
 * JSON document to a build and a moment in time. The simulator parts
 * of a run record (config, results, stats) are assembled by
 * System::writeRunRecord; this header owns the generic envelope.
 */

#ifndef RRM_OBS_RUN_RECORD_HH
#define RRM_OBS_RUN_RECORD_HH

#include <string>

#include "obs/json.hh"

namespace rrm::obs
{

/** Schema version stamped into every exported run record. */
constexpr int runRecordSchemaVersion = 1;

/** Build / host metadata of the running binary. */
struct RunMetadata
{
    std::string tool = "rrm_pcm";
    std::string gitDescribe; ///< from the build system; "unknown" if absent
    std::string timestampUtc; ///< ISO-8601, empty if unavailable
};

/**
 * Metadata of this process: git describe captured at configure time
 * plus the current UTC wall-clock time.
 */
RunMetadata currentRunMetadata();

/**
 * Emit the metadata envelope ({"tool": ..., "gitDescribe": ...,
 * "timestampUtc": ...}) at the writer's current value slot.
 */
void writeRunMetadata(JsonWriter &json, const RunMetadata &meta);

} // namespace rrm::obs

#endif // RRM_OBS_RUN_RECORD_HH
