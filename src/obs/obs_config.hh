/**
 * @file
 * User-facing observability knobs, embedded in SystemConfig. All
 * outputs are off by default so untouched configurations behave (and
 * cost) exactly as before.
 */

#ifndef RRM_OBS_OBS_CONFIG_HH
#define RRM_OBS_OBS_CONFIG_HH

#include <cstdint>
#include <string>

#include "obs/trace.hh"

namespace rrm::obs
{

/** Observability configuration of one simulation run. */
struct ObsOptions
{
    /**
     * Trace output file; empty disables tracing entirely (the trace
     * macros then cost one pointer test). JSONL by default.
     */
    std::string traceFile;

    /** Human-readable text instead of JSONL. */
    bool traceText = false;

    /**
     * Chrome-trace / Perfetto JSON timeline (loadable in
     * ui.perfetto.dev); may be combined with traceFile — both then
     * receive the same event stream through a tee.
     */
    std::string perfettoFile;

    /** Enabled trace categories (bits of obs::TraceCategory). */
    std::uint32_t traceCategories = traceAllCategories;

    /**
     * Ring capacity used while no writer is attached (pre-attach
     * buffering and sinks created without a file).
     */
    std::size_t traceRingCapacity = 4096;

    /**
     * Sampling interval in *scaled* seconds. 0 disables sampling;
     * negative selects the RRM decay-tick interval (0.125 s at native
     * scale — one row per decay epoch), or 0.125 s / timeScale for
     * static schemes.
     */
    double sampleIntervalSeconds = 0.0;

    /** Sampled time series outputs; empty = keep in memory only. */
    std::string sampleCsvFile;
    std::string sampleJsonlFile;

    /**
     * Full run record (metadata + config + results + stats tree +
     * profile) written at the end of System::run().
     */
    std::string runRecordFile;

    /** Collect wall-clock self-profiling data. */
    bool profiling = false;

    /**
     * Collect hot-path telemetry (event histograms, queue occupancy;
     * see obs/telemetry.hh). Implied by either telemetry output file.
     * The telemetry stats tree is separate from the run record, so
     * seeded run records stay byte-identical either way.
     */
    bool telemetry = false;

    /** Telemetry stats exports (JSON / CSV); empty = not written. */
    std::string telemetryJsonFile;
    std::string telemetryCsvFile;

    /** True if telemetry collection is requested. */
    bool
    telemetryEnabled() const
    {
        return telemetry || !telemetryJsonFile.empty() ||
               !telemetryCsvFile.empty();
    }

    /** True if any observability feature is requested. */
    bool
    anyEnabled() const
    {
        return !traceFile.empty() || !perfettoFile.empty() ||
               sampleIntervalSeconds != 0.0 ||
               !sampleCsvFile.empty() || !sampleJsonlFile.empty() ||
               !runRecordFile.empty() || profiling ||
               telemetryEnabled();
    }
};

} // namespace rrm::obs

#endif // RRM_OBS_OBS_CONFIG_HH
