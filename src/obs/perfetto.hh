/**
 * @file
 * Chrome-trace / Perfetto JSON export of the RRM_TRACE stream.
 *
 * PerfettoTraceWriter renders trace events into the Chrome trace
 * event format (the JSON flavour ui.perfetto.dev opens directly),
 * mapping the stream onto a deterministic track taxonomy:
 *
 *  - channel busy windows: "readService" / "writeService" /
 *    "refreshService" events (emitted by memctrl::Channel at issue
 *    time with a known duration) become complete ("X") slices on one
 *    track per channel;
 *  - queue pressure: "readEnq" / "writeEnq" / "refreshEnq" events
 *    become counter ("C") series per channel;
 *  - core progress: "coreProgress" events become one instruction
 *    counter ("C") series per core, and "tenantRefreshQ" events one
 *    outstanding-refresh counter series per tenant (both emitted on
 *    the sampling cadence by the System's sample hook);
 *  - decay epochs: consecutive sampler "sample" events bound "epoch"
 *    slices on a dedicated track (one slice per settled decay epoch);
 *  - everything else (RRM lifecycle, refresh drains, fault retries,
 *    Start-Gap moves): thread-scoped instants on one track per trace
 *    category, args carrying the event fields.
 *
 * Timestamps are microseconds of simulated time, so two seeded runs
 * export byte-identical traces. The trailer is written by finish()
 * (idempotent; also invoked from the destructor), which TraceSink
 * forwards through finishWriter() at end of run.
 */

#ifndef RRM_OBS_PERFETTO_HH
#define RRM_OBS_PERFETTO_HH

#include <memory>
#include <ostream>
#include <set>
#include <string>

#include "obs/trace.hh"

namespace rrm::obs
{

/** Streams trace events as Chrome trace JSON (see file comment). */
class PerfettoTraceWriter : public TraceWriter
{
  public:
    explicit PerfettoTraceWriter(std::ostream &os);
    ~PerfettoTraceWriter() override;

    void write(const TraceEvent &ev) override;

    /** Write the JSON trailer; further write() calls are ignored. */
    void finish() override;

  private:
    /** Start one event object ("," separator + shared fields). */
    void beginEvent(const char *name, const char *cat, char phase,
                    double ts_us);
    void writeArgs(const TraceEvent &ev, std::size_t first_field);
    /** Emit the thread_name metadata record once per track. */
    void nameTrack(int tid, const std::string &name);
    static double toMicros(Tick tick);

    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
    /** Tids that already carry a thread_name metadata record. */
    std::set<int> namedTracks_;
    /** Previous sampler tick bounding the current decay epoch. */
    Tick lastSampleTick_ = 0;
    bool haveSample_ = false;
};

/**
 * Open `path` and return a Perfetto writer owning the file stream.
 * fatal() if the file cannot be opened.
 */
std::unique_ptr<TraceWriter> openPerfettoFile(const std::string &path);

} // namespace rrm::obs

#endif // RRM_OBS_PERFETTO_HH
