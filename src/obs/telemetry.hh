/**
 * @file
 * Hot-path telemetry: per-event-type counters and log2-bucketed
 * histograms over the simulator's queues and latencies.
 *
 * The Telemetry object owns a *standalone* stats tree (root group
 * "telemetry") that is deliberately NOT attached to the System's stat
 * root: run records and stats exports of a seeded run stay
 * byte-identical whether telemetry is on or off (the PR 5 golden
 * contract). Telemetry output goes to its own files through the
 * existing JSON/CSV stat writers.
 *
 * Wiring: components below the obs layer cannot name this class, so
 * they accept small structs of non-owning stats pointers instead —
 * EventQueueTelemetry (declared in sim/event_queue.hh) and
 * WritePathTelemetry (here). Telemetry registers the stats and hands
 * the filled structs out; System::setupObservability does the
 * attaching. With telemetry off no struct is attached and every hook
 * costs one pointer test.
 */

#ifndef RRM_OBS_TELEMETRY_HH
#define RRM_OBS_TELEMETRY_HH

#include <cstdint>
#include <ostream>

#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace rrm::obs
{

/** Non-owning telemetry sinks for the WritePath staging queues. */
struct WritePathTelemetry
{
    /** Writeback drain-queue occupancy, sampled at each enqueue. */
    stats::HistogramStat *writebackOccupancy = nullptr;
    /** Refresh overflow-queue occupancy, sampled at each deferral. */
    stats::HistogramStat *refreshOverflowOccupancy = nullptr;
};

/**
 * Owner of the telemetry stats tree. Construct once per System when
 * any telemetry output is requested; hand queueHooks() to the
 * EventQueue and writePathHooks() to the WritePath.
 */
class Telemetry
{
  public:
    Telemetry();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** The standalone "telemetry" stats tree (for export / tests). */
    const stats::StatGroup &statsRoot() const { return group_; }

    /** Sinks for EventQueue::setTelemetry (valid for our lifetime). */
    const EventQueueTelemetry *queueHooks() const { return &queueHooks_; }

    /** Sinks for WritePath::setTelemetry (valid for our lifetime). */
    const WritePathTelemetry *writePathHooks() const
    {
        return &writePathHooks_;
    }

    /**
     * Record refresh-queue pressure for one timing-visible refresh
     * submission, as an integer percentage of the deepest channel
     * refresh queue against its capacity (0..100, saturating).
     */
    void
    recordRefreshPressure(double fraction)
    {
        if (fraction < 0.0)
            fraction = 0.0;
        if (fraction > 1.0)
            fraction = 1.0;
        refreshPressure_->add(
            static_cast<std::uint64_t>(fraction * 100.0));
    }

    /**
     * @{ The telemetry tree is standalone (not under the System's
     * stat root), so the main stats section does not cover it;
     * checkpoint it separately so telemetry exports also survive a
     * resume.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const { group_.saveCkpt(w); }
    void restoreCkpt(ckpt::ChunkReader &r) { group_.restoreCkpt(r); }
    /** @} */

    /** Export the telemetry tree via the standard stat writers. */
    void writeJson(std::ostream &os) const;
    void writeCsv(std::ostream &os) const;

  private:
    stats::StatGroup group_{"telemetry"};
    EventQueueTelemetry queueHooks_;
    WritePathTelemetry writePathHooks_;

    stats::HistogramStat *refreshPressure_ = nullptr;
};

} // namespace rrm::obs

#endif // RRM_OBS_TELEMETRY_HH
