/**
 * @file
 * Profiler implementation.
 */

#include "profiler.hh"

#include <iomanip>

#include "common/logging.hh"

namespace rrm::obs
{

void
Profiler::enter(const char *name)
{
    std::string path =
        stack_.empty() ? std::string(name)
                       : stack_.back() + "." + name;
    stack_.push_back(std::move(path));
}

void
Profiler::leave(std::uint64_t elapsed_ns)
{
    RRM_ASSERT(!stack_.empty(), "profiler leave() without enter()");
    Node &node = nodes_[stack_.back()];
    ++node.calls;
    node.totalNs += elapsed_ns;
    stack_.pop_back();
}

void
Profiler::reset()
{
    nodes_.clear();
}

std::uint64_t
Profiler::childNs(const std::string &path) const
{
    // Direct children are keys of the form path + "." + leaf with no
    // further dot; map ordering clusters them right after `path`.
    const std::string prefix = path + ".";
    std::uint64_t ns = 0;
    for (auto it = nodes_.upper_bound(prefix); it != nodes_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        if (it->first.find('.', prefix.size()) == std::string::npos)
            ns += it->second.totalNs;
    }
    return ns;
}

std::uint64_t
Profiler::rootNs() const
{
    // Wall time covered by the outermost recorded scopes: nodes with
    // no recorded ancestor (nested nodes are already counted inside
    // their parents). Checking ancestors rather than dot-free names
    // keeps dotted scope names with absent parents -- e.g. the
    // system's "system.run.*" family -- summing to a real total.
    std::uint64_t ns = 0;
    for (const auto &[path, node] : nodes_) {
        bool nested = false;
        for (std::size_t dot = path.rfind('.');
             dot != std::string::npos;
             dot = path.rfind('.', dot - 1)) {
            if (nodes_.count(path.substr(0, dot)) != 0) {
                nested = true;
                break;
            }
            if (dot == 0)
                break;
        }
        if (!nested)
            ns += node.totalNs;
    }
    return ns;
}

void
Profiler::report(std::ostream &os) const
{
    const std::uint64_t root_ns = rootNs();

    os << std::left << std::setw(44) << "profile node" << std::right
       << std::setw(10) << "calls" << std::setw(14) << "total ms"
       << std::setw(14) << "excl ms" << std::setw(10) << "% total"
       << '\n';
    for (const auto &[path, node] : nodes_) {
        const std::uint64_t excl_ns =
            node.totalNs >= childNs(path) ? node.totalNs - childNs(path)
                                          : 0;
        const double percent =
            root_ns ? 100.0 * static_cast<double>(node.totalNs) /
                          static_cast<double>(root_ns)
                    : 0.0;
        os << std::left << std::setw(44) << ("profile." + path)
           << std::right << std::setw(10) << node.calls
           << std::setw(14) << std::fixed << std::setprecision(3)
           << static_cast<double>(node.totalNs) / 1e6 << std::setw(14)
           << static_cast<double>(excl_ns) / 1e6 << std::setw(9)
           << std::setprecision(1) << percent << '%' << '\n';
    }
    os.unsetf(std::ios::fixed);
}

void
Profiler::writeJson(JsonWriter &json) const
{
    const std::uint64_t root_ns = rootNs();
    json.beginObject();
    for (const auto &[path, node] : nodes_) {
        const std::uint64_t children = childNs(path);
        json.key(path);
        json.beginObject();
        json.field("calls", node.calls);
        json.field("totalNs", node.totalNs);
        json.field("exclusiveNs", node.totalNs >= children
                                      ? node.totalNs - children
                                      : 0);
        json.field("percentOfTotal",
                   root_ns ? 100.0 *
                                 static_cast<double>(node.totalNs) /
                                 static_cast<double>(root_ns)
                           : 0.0);
        json.endObject();
    }
    json.endObject();
}

} // namespace rrm::obs
