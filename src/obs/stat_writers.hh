/**
 * @file
 * Machine-readable StatVisitor backends.
 *
 * Both writers walk a statistics tree via StatGroup::visit and emit
 * deterministic output (see obs/json.hh for the number-formatting
 * contract), so two identical seeded runs export byte-identical
 * files.
 *
 * JSON schema (one nested object per StatGroup):
 *   Scalar / Formula   -> number
 *   VectorStat         -> {"bins": {name: number, ...}, "total": n}
 *   DistributionStat   -> {"samples": n, "mean": x,
 *                          "buckets": {label: count, ...}}
 *   HistogramStat      -> {"samples": n, "mean": x, "min": n, "max": n,
 *                          "buckets": {label: count, ...}} where only
 *                         non-empty log2 buckets are emitted
 *
 * CSV schema: header "stat,value,description", one row per scalar
 * value using the flattened text-report names (vector bins and
 * distribution buckets become path::bin rows).
 */

#ifndef RRM_OBS_STAT_WRITERS_HH
#define RRM_OBS_STAT_WRITERS_HH

#include <ostream>
#include <string>

#include "obs/json.hh"
#include "stats/stats.hh"

namespace rrm::obs
{

/**
 * Render a stats tree as nested JSON. Use via writeStatsJson(), or
 * drive it from an enclosing JsonWriter to embed the tree inside a
 * larger document (the run record does this): position the writer
 * where an object value is expected, then call StatGroup::visit.
 */
class JsonStatWriter : public stats::StatVisitor
{
  public:
    explicit JsonStatWriter(JsonWriter &json) : json_(json) {}

    void visitScalar(const std::string &path,
                     const stats::Scalar &stat) override;
    void visitVector(const std::string &path,
                     const stats::VectorStat &stat) override;
    void visitFormula(const std::string &path,
                      const stats::Formula &stat) override;
    void visitDistribution(const std::string &path,
                           const stats::DistributionStat &stat) override;
    void visitHistogram(const std::string &path,
                        const stats::HistogramStat &stat) override;
    void enterGroup(const std::string &path) override;
    void leaveGroup(const std::string &path) override;

  private:
    /** Trailing path segment ("a.b.c" -> "c"). */
    static std::string leaf(const std::string &path);

    JsonWriter &json_;
    bool root_ = true;
};

/** Render a stats tree as flat CSV rows. */
class CsvStatWriter : public stats::StatVisitor
{
  public:
    /** Writes the header row immediately. */
    explicit CsvStatWriter(std::ostream &os);

    void visitScalar(const std::string &path,
                     const stats::Scalar &stat) override;
    void visitVector(const std::string &path,
                     const stats::VectorStat &stat) override;
    void visitFormula(const std::string &path,
                      const stats::Formula &stat) override;
    void visitDistribution(const std::string &path,
                           const stats::DistributionStat &stat) override;
    void visitHistogram(const std::string &path,
                        const stats::HistogramStat &stat) override;

  private:
    void row(const std::string &name, double value,
             const std::string &desc);

    std::ostream &os_;
};

/** Quote a CSV field (RFC 4180: quote when needed, double quotes). */
std::string csvQuote(const std::string &field);

/** Export a whole stats tree as a standalone JSON document. */
void writeStatsJson(std::ostream &os, const stats::StatGroup &root,
                    bool pretty = true);

/** Export a whole stats tree as CSV. */
void writeStatsCsv(std::ostream &os, const stats::StatGroup &root);

} // namespace rrm::obs

#endif // RRM_OBS_STAT_WRITERS_HH
