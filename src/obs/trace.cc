/**
 * @file
 * Trace sink and writer implementations.
 */

#include "trace.hh"

#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace rrm::obs
{

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::RrmLifecycle:
        return "rrm";
      case TraceCategory::Refresh:
        return "refresh";
      case TraceCategory::Queue:
        return "queue";
      case TraceCategory::StartGap:
        return "startgap";
      case TraceCategory::Sampler:
        return "sampler";
      case TraceCategory::Fault:
        return "fault";
      case TraceCategory::NumCategories:
        break;
    }
    return "?";
}

std::uint32_t
parseTraceCategories(const std::string &list)
{
    std::uint32_t mask = 0;
    std::stringstream ss(list);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty())
            continue;
        if (name == "all") {
            mask |= traceAllCategories;
            continue;
        }
        bool found = false;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(
                     TraceCategory::NumCategories);
             ++i) {
            const auto c = static_cast<TraceCategory>(i);
            if (name == traceCategoryName(c)) {
                mask |= traceBit(c);
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown trace category '", name, "'");
    }
    return mask;
}

void
TextTraceWriter::write(const TraceEvent &ev)
{
    os_ << ev.tick << " [" << traceCategoryName(ev.category) << "] "
        << (ev.name ? ev.name : "?");
    for (std::size_t i = 0; i < ev.numFields(); ++i) {
        os_ << ' ' << ev.fields[i].key << '='
            << jsonNumber(ev.fields[i].value);
    }
    os_ << '\n';
}

void
JsonlTraceWriter::write(const TraceEvent &ev)
{
    JsonWriter w(os_);
    w.beginObject();
    w.field("tick", ev.tick);
    w.field("cat", traceCategoryName(ev.category));
    w.field("event", ev.name ? ev.name : "?");
    for (std::size_t i = 0; i < ev.numFields(); ++i)
        w.field(ev.fields[i].key, ev.fields[i].value);
    w.endObject();
    os_ << '\n';
}

TeeTraceWriter::TeeTraceWriter(std::unique_ptr<TraceWriter> a,
                               std::unique_ptr<TraceWriter> b)
    : a_(std::move(a)), b_(std::move(b))
{
    RRM_ASSERT(a_ && b_, "tee writer needs two live writers");
}

void
TeeTraceWriter::write(const TraceEvent &ev)
{
    a_->write(ev);
    b_->write(ev);
}

void
TeeTraceWriter::finish()
{
    a_->finish();
    b_->finish();
}

TraceSink::TraceSink(std::size_t capacity, std::uint32_t categories)
    : capacity_(capacity), categoryMask_(categories)
{
    RRM_ASSERT(capacity_ > 0, "trace ring needs a positive capacity");
}

void
TraceSink::setWriter(std::unique_ptr<TraceWriter> writer)
{
    writer_ = std::move(writer);
    flush();
}

void
TraceSink::record(const TraceEvent &ev)
{
    ++recorded_;
    if (writer_) {
        writer_->write(ev);
        return;
    }
    if (ring_.size() >= capacity_) {
        ring_.pop_front();
        ++dropped_;
    }
    ring_.push_back(ev);
}

void
TraceSink::flush()
{
    if (!writer_)
        return;
    for (const TraceEvent &ev : ring_)
        writer_->write(ev);
    ring_.clear();
}

void
TraceSink::finishWriter()
{
    flush();
    if (writer_)
        writer_->finish();
}

namespace
{

/**
 * A writer wrapper owning the file it writes to. The file is an
 * AtomicFile: the trace lands under its final name only on finish(),
 * so a killed run leaves no truncated trace behind.
 */
template <typename WriterT>
class OwningFileWriter : public TraceWriter
{
  public:
    explicit OwningFileWriter(const std::string &path)
        : file_(path), writer_(file_.stream())
    {
    }

    void write(const TraceEvent &ev) override { writer_.write(ev); }

    void finish() override
    {
        if (finished_)
            return;
        finished_ = true;
        writer_.finish();
        file_.commit();
    }

  private:
    AtomicFile file_;
    WriterT writer_;
    bool finished_ = false;
};

} // namespace

std::unique_ptr<TraceWriter>
openTraceFile(const std::string &path, bool text_format)
{
    if (text_format)
        return std::make_unique<OwningFileWriter<TextTraceWriter>>(path);
    return std::make_unique<OwningFileWriter<JsonlTraceWriter>>(path);
}

} // namespace rrm::obs
