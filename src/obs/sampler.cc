/**
 * @file
 * Sampler implementation.
 */

#include "sampler.hh"

#include "ckpt/ckpt.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace rrm::obs
{

double
statValue(const stats::StatBase *stat)
{
    if (!stat)
        return 0.0;
    if (const auto *s = dynamic_cast<const stats::Scalar *>(stat))
        return s->value();
    if (const auto *f = dynamic_cast<const stats::Formula *>(stat))
        return f->value();
    if (const auto *v = dynamic_cast<const stats::VectorStat *>(stat))
        return v->total();
    if (const auto *d =
            dynamic_cast<const stats::DistributionStat *>(stat))
        return static_cast<double>(d->samples().count());
    return 0.0;
}

Sampler::Sampler(EventQueue &queue, Tick interval)
    : queue_(queue), interval_(interval)
{
    RRM_ASSERT(interval_ > 0, "sampler interval must be positive");
}

void
Sampler::addColumn(std::string name, ColumnFn fn)
{
    RRM_ASSERT(rows_.empty(),
               "sampler columns must be registered before sampling");
    RRM_ASSERT(fn, "sampler column needs a function");
    columnNames_.push_back(std::move(name));
    columns_.push_back(std::move(fn));
}

void
Sampler::addStat(const stats::StatGroup &root, const std::string &path)
{
    addColumn(path,
              [&root, path] { return statValue(root.find(path)); });
}

void
Sampler::start()
{
    RRM_ASSERT(!task_, "sampler already started");
    task_ = std::make_unique<PeriodicTask>(
        queue_, interval_, queue_.now() + interval_,
        [this] { sampleNow(); }, EventPriority::Sampler);
}

void
Sampler::stop()
{
    task_.reset();
}

void
Sampler::sampleNow()
{
    Row row;
    row.tick = queue_.now();
    row.values.reserve(columns_.size());
    for (const ColumnFn &fn : columns_)
        row.values.push_back(fn());
    rows_.push_back(std::move(row));
    RRM_TRACE(traceSink_, queue_.now(), TraceCategory::Sampler,
              "sample", RRM_TF("row", rows_.size() - 1),
              RRM_TF("columns", columns_.size()));
    if (sampleHook_)
        sampleHook_();
}

void
Sampler::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u64(interval_);
    w.u64(columns_.size());
    w.u64(rows_.size());
    for (const Row &row : rows_) {
        w.u64(row.tick);
        for (const double v : row.values)
            w.f64(v);
    }
    w.b(task_ != nullptr);
    if (task_)
        w.u64(task_->nextFireAt());
}

void
Sampler::restoreCkpt(ckpt::ChunkReader &r)
{
    RRM_ASSERT(!task_ && rows_.empty(),
               "restoreCkpt() on a started sampler");
    const std::uint64_t interval = r.u64();
    const std::uint64_t cols = r.u64();
    if (interval != interval_ || cols != columns_.size())
        throw ckpt::CkptError(
            "sampler checkpoint shape mismatch: have interval " +
            std::to_string(interval_) + " x " +
            std::to_string(columns_.size()) + " columns, got " +
            std::to_string(interval) + " x " + std::to_string(cols));
    const std::uint64_t n = r.u64();
    rows_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Row row;
        row.tick = r.u64();
        row.values.reserve(cols);
        for (std::uint64_t c = 0; c < cols; ++c)
            row.values.push_back(r.f64());
        rows_.push_back(std::move(row));
    }
    if (r.b()) {
        const Tick first = r.u64();
        task_ = std::make_unique<PeriodicTask>(
            queue_, interval_, first, [this] { sampleNow(); },
            EventPriority::Sampler);
    }
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "time_s";
    for (const std::string &name : columnNames_)
        os << ',' << name;
    os << '\n';
    for (const Row &row : rows_) {
        os << jsonNumber(ticksToSeconds(row.tick));
        for (const double v : row.values)
            os << ',' << jsonNumber(v);
        os << '\n';
    }
}

void
Sampler::writeJsonl(std::ostream &os) const
{
    for (const Row &row : rows_) {
        JsonWriter json(os);
        json.beginObject();
        json.field("time_s", ticksToSeconds(row.tick));
        for (std::size_t c = 0; c < columns_.size(); ++c)
            json.field(columnNames_[c], row.values[c]);
        json.endObject();
        os << '\n';
    }
}

} // namespace rrm::obs
