/**
 * @file
 * Periodic statistics sampling.
 *
 * A Sampler owns a set of named numeric columns — arbitrary closures
 * or dotted stat paths resolved through StatGroup::find — and
 * snapshots all of them every `interval` ticks of simulated time,
 * driven by the event queue. Samples run at EventPriority::Sampler,
 * i.e. after every other event of the same tick (RRM decay ticks,
 * memory completions, core activity), so a sample aligned with the
 * RRM's decay epoch observes the post-decay state of that epoch.
 *
 * The collected time series stays in memory and can be rendered as
 * CSV or JSONL; both formats use the deterministic number formatting
 * of obs/json.hh.
 */

#ifndef RRM_OBS_SAMPLER_HH
#define RRM_OBS_SAMPLER_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace rrm::obs
{

/**
 * Numeric value of any stat kind: Scalar/Formula value, VectorStat
 * total, DistributionStat sample count. Null returns 0.
 */
double statValue(const stats::StatBase *stat);

/** Periodic sampler over named numeric columns. */
class Sampler
{
  public:
    using ColumnFn = std::function<double()>;

    /** One sampled row. */
    struct Row
    {
        Tick tick;
        std::vector<double> values;
    };

    /**
     * @param queue    Event queue driving the periodic samples.
     * @param interval Ticks between samples (> 0).
     */
    Sampler(EventQueue &queue, Tick interval);

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Register a column; must happen before the first sample. */
    void addColumn(std::string name, ColumnFn fn);

    /**
     * Register a column reading the stat at `path` under `root`
     * (resolved lazily each sample, so stats registered later under
     * an existing path still bind). The column is named `path`.
     */
    void addStat(const stats::StatGroup &root, const std::string &path);

    /**
     * Arm the periodic sample task. The first sample is taken at
     * now() + interval (one full epoch of data before the first row).
     */
    void start();

    /** Cancel future samples (collected rows are kept). */
    void stop();

    /** Take one sample right now (also used by the periodic task). */
    void sampleNow();

    /** Report each sample as a trace event (category Sampler). */
    void setTraceSink(TraceSink *sink) { traceSink_ = sink; }

    /**
     * Hook invoked at the end of every sample (periodic or manual),
     * after the row is collected and the Sampler-category trace event
     * is emitted. The System uses it to piggy-back per-core progress
     * and per-tenant queue counters onto the sampling cadence.
     */
    void setSampleHook(std::function<void()> hook)
    {
        sampleHook_ = std::move(hook);
    }

    Tick interval() const { return interval_; }
    const std::vector<std::string> &columnNames() const
    {
        return columnNames_;
    }
    const std::vector<Row> &rows() const { return rows_; }

    /**
     * @{ Checkpoint the collected rows and the armed task's next-fire
     * tick. restoreCkpt() requires the same columns registered and
     * the task not yet started; if the saved sampler was armed the
     * periodic task re-arms at its saved next-fire tick.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    /** CSV: header "time_s,<col>,..." then one row per sample. */
    void writeCsv(std::ostream &os) const;

    /** JSONL: one {"time_s": ..., "<col>": ...} object per sample. */
    void writeJsonl(std::ostream &os) const;

  private:
    EventQueue &queue_;
    Tick interval_;
    std::vector<std::string> columnNames_;
    std::vector<ColumnFn> columns_;
    std::vector<Row> rows_;
    std::unique_ptr<PeriodicTask> task_;
    TraceSink *traceSink_ = nullptr;
    std::function<void()> sampleHook_;
};

} // namespace rrm::obs

#endif // RRM_OBS_SAMPLER_HH
