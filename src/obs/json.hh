/**
 * @file
 * Minimal deterministic JSON emission used by every machine-readable
 * exporter (stat writers, trace JSONL, run records, bench reports).
 *
 * Determinism contract: for a given sequence of calls the emitted
 * bytes are identical across runs and platforms — numbers are
 * formatted with a fixed snprintf recipe (integers without a decimal
 * point, everything else with %.17g), keys are written in caller
 * order, and no locale-dependent facilities are used. Two identical
 * seeded simulations therefore export byte-identical JSON, which the
 * golden-file tests rely on.
 */

#ifndef RRM_OBS_JSON_HH
#define RRM_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rrm::obs
{

/** Escape a string for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Format a double deterministically: integral values within the
 * exactly-representable range print without a fraction; non-finite
 * values (which JSON cannot represent) print as null.
 */
std::string jsonNumber(double v);

/**
 * A streaming JSON writer with automatic comma / indentation
 * management. Call sequence errors (value without a key inside an
 * object, unbalanced end*) are programming bugs and panic.
 */
class JsonWriter
{
  public:
    /** @param pretty Two-space indentation and newlines when true. */
    explicit JsonWriter(std::ostream &os, bool pretty = false)
        : os_(os), pretty_(pretty)
    {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /** @{ Containers. */
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** @} */

    /** Write an object key; must be followed by a value/container. */
    void key(std::string_view k);

    /** @{ Values. */
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);
    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void null();
    /** @} */

    /** @{ key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }
    /** @} */

  private:
    enum class Frame : std::uint8_t { Object, Array };

    /** Emit separators/indentation before a value or key. */
    void prepareValue();
    void newlineIndent();

    std::ostream &os_;
    bool pretty_;
    bool keyPending_ = false;
    std::vector<Frame> stack_;
    std::vector<bool> firstInFrame_;
};

} // namespace rrm::obs

#endif // RRM_OBS_JSON_HH
