/**
 * @file
 * Simulator self-profiling: scoped wall-clock timers aggregated into
 * a hierarchy of dotted nodes ("system.run.measure", "rrm.decay",
 * ...). Every ScopedTimer that runs while another is open becomes a
 * child of the open one, so the report shows where wall time actually
 * went — a baseline for future performance work.
 *
 * The profiler is single-threaded like the simulator itself. Timings
 * are wall-clock and therefore nondeterministic; the JSON exporters
 * keep profile data in a separate "profile" section so the
 * deterministic stats payload stays byte-reproducible.
 */

#ifndef RRM_OBS_PROFILER_HH
#define RRM_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace rrm::obs
{

/** Aggregated hierarchical wall-clock profile. */
class Profiler
{
  public:
    /** One aggregation node (all samples of one dotted path). */
    struct Node
    {
        std::uint64_t calls = 0;
        std::uint64_t totalNs = 0;
    };

    /**
     * Open a scope named `name` nested under the currently open
     * scope. Prefer RRM_PROFILE / ScopedTimer; the raw enter/leave
     * pair exists for tests, which feed deterministic durations.
     */
    void enter(const char *name);

    /** Close the innermost scope, crediting it `elapsed_ns`. */
    void leave(std::uint64_t elapsed_ns);

    /** Nodes keyed by dotted path (sorted, deterministic order). */
    const std::map<std::string, Node> &nodes() const { return nodes_; }

    /** Currently open scope depth (0 at quiescence). */
    std::size_t depth() const { return stack_.size(); }

    /** Drop all aggregated data (open scopes stay open). */
    void reset();

    /**
     * Human-readable report: one line per node with call count,
     * total ms, and exclusive ms (total minus direct children).
     */
    void report(std::ostream &os) const;

    /**
     * Emit {"path": {"calls": n, "totalNs": n, "exclusiveNs": n,
     * "percentOfTotal": p}} into an enclosing JsonWriter positioned
     * at a value slot.
     */
    void writeJson(JsonWriter &json) const;

  private:
    /** Sum of totalNs over the direct children of `path`. */
    std::uint64_t childNs(const std::string &path) const;

    /** Wall time covered by the root (dot-free) scopes. */
    std::uint64_t rootNs() const;

    std::map<std::string, Node> nodes_;
    std::vector<std::string> stack_; ///< dotted path per open scope
};

/**
 * RAII wall-clock timer. A null profiler makes it a no-op, so call
 * sites need no separate "is profiling on" branch.
 */
class ScopedTimer
{
  public:
    ScopedTimer(Profiler *profiler, const char *name)
        : profiler_(profiler)
    {
        if (profiler_) {
            profiler_->enter(name);
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ScopedTimer()
    {
        if (profiler_) {
            const auto elapsed =
                std::chrono::steady_clock::now() - start_;
            profiler_->leave(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed)
                    .count()));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Profiler *profiler_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace rrm::obs

/** @{ Scoped profiling of the rest of the enclosing block. */
#define RRM_PROFILE_CAT2(a, b) a##b
#define RRM_PROFILE_CAT(a, b) RRM_PROFILE_CAT2(a, b)
#define RRM_PROFILE(profiler, name)                                         \
    ::rrm::obs::ScopedTimer RRM_PROFILE_CAT(rrm_prof_scope_,                \
                                            __LINE__)((profiler), (name))
/** @} */

#endif // RRM_OBS_PROFILER_HH
