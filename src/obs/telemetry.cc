/**
 * @file
 * Telemetry implementation: stat registration and export.
 */

#include "telemetry.hh"

#include "obs/stat_writers.hh"

namespace rrm::obs
{

Telemetry::Telemetry()
{
    queueHooks_.executedByPriority = &group_.addVector(
        "eventsByPriority",
        "events executed per EventPriority class",
        EventQueueTelemetry::priorityBinNames());
    queueHooks_.scheduleLatency = &group_.addHistogram(
        "scheduleLatency",
        "schedule() lead time (ticks between scheduling and firing)");
    queueHooks_.queueDepth = &group_.addHistogram(
        "queueDepth", "pending events observed at each schedule()");
    writePathHooks_.writebackOccupancy = &group_.addHistogram(
        "writebackOccupancy",
        "writeback drain-queue occupancy at each enqueue");
    writePathHooks_.refreshOverflowOccupancy = &group_.addHistogram(
        "refreshOverflowOccupancy",
        "refresh overflow-queue occupancy at each deferral");
    refreshPressure_ = &group_.addHistogram(
        "refreshPressure",
        "refresh-queue pressure (percent of capacity) per "
        "timing-visible refresh");
}

void
Telemetry::writeJson(std::ostream &os) const
{
    writeStatsJson(os, group_);
}

void
Telemetry::writeCsv(std::ostream &os) const
{
    writeStatsCsv(os, group_);
}

} // namespace rrm::obs
