/**
 * @file
 * JSON emission implementation.
 */

#include "json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace rrm::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // 2^53: largest range where every integer is exact in a double.
    constexpr double exact = 9007199254740992.0;
    if (v == std::floor(v) && v > -exact && v < exact) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty()) {
        RRM_ASSERT(!keyPending_, "JSON key outside any object");
        return;
    }
    if (stack_.back() == Frame::Object) {
        RRM_ASSERT(keyPending_, "JSON value in object without a key");
        keyPending_ = false;
        return;
    }
    // Array element: comma-separate from the previous element.
    if (!firstInFrame_.back())
        os_ << ',';
    else
        firstInFrame_.back() = false;
    if (pretty_)
        newlineIndent();
}

void
JsonWriter::key(std::string_view k)
{
    RRM_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
               "JSON key outside an object");
    RRM_ASSERT(!keyPending_, "JSON key after a dangling key");
    if (!firstInFrame_.back())
        os_ << ',';
    else
        firstInFrame_.back() = false;
    if (pretty_)
        newlineIndent();
    os_ << '"' << jsonEscape(k) << (pretty_ ? "\": " : "\":");
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    prepareValue();
    os_ << '{';
    stack_.push_back(Frame::Object);
    firstInFrame_.push_back(true);
}

void
JsonWriter::endObject()
{
    RRM_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
               "unbalanced endObject");
    RRM_ASSERT(!keyPending_, "endObject after a dangling key");
    const bool empty = firstInFrame_.back();
    stack_.pop_back();
    firstInFrame_.pop_back();
    if (pretty_ && !empty)
        newlineIndent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    prepareValue();
    os_ << '[';
    stack_.push_back(Frame::Array);
    firstInFrame_.push_back(true);
}

void
JsonWriter::endArray()
{
    RRM_ASSERT(!stack_.empty() && stack_.back() == Frame::Array,
               "unbalanced endArray");
    const bool empty = firstInFrame_.back();
    stack_.pop_back();
    firstInFrame_.pop_back();
    if (pretty_ && !empty)
        newlineIndent();
    os_ << ']';
}

void
JsonWriter::value(double v)
{
    prepareValue();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(std::string_view v)
{
    prepareValue();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::null()
{
    prepareValue();
    os_ << "null";
}

} // namespace rrm::obs
