/**
 * @file
 * JSON / CSV stat writer implementations.
 */

#include "stat_writers.hh"

namespace rrm::obs
{

std::string
JsonStatWriter::leaf(const std::string &path)
{
    const auto dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(dot + 1);
}

void
JsonStatWriter::enterGroup(const std::string &path)
{
    if (root_) {
        // The root group becomes the top-level object itself.
        root_ = false;
        json_.beginObject();
        return;
    }
    json_.key(leaf(path));
    json_.beginObject();
}

void
JsonStatWriter::leaveGroup(const std::string &path)
{
    (void)path;
    json_.endObject();
}

void
JsonStatWriter::visitScalar(const std::string &path,
                            const stats::Scalar &stat)
{
    json_.field(leaf(path), stat.value());
}

void
JsonStatWriter::visitFormula(const std::string &path,
                             const stats::Formula &stat)
{
    json_.field(leaf(path), stat.value());
}

void
JsonStatWriter::visitVector(const std::string &path,
                            const stats::VectorStat &stat)
{
    json_.key(leaf(path));
    json_.beginObject();
    json_.key("bins");
    json_.beginObject();
    for (std::size_t i = 0; i < stat.size(); ++i)
        json_.field(stat.binName(i), stat.value(i));
    json_.endObject();
    json_.field("total", stat.total());
    json_.endObject();
}

void
JsonStatWriter::visitDistribution(const std::string &path,
                                  const stats::DistributionStat &stat)
{
    json_.key(leaf(path));
    json_.beginObject();
    json_.field("samples", stat.samples().count());
    json_.field("mean", stat.samples().mean());
    json_.key("buckets");
    json_.beginObject();
    const BoundedHistogram &hist = stat.histogram();
    for (std::size_t i = 0; i < hist.numBuckets(); ++i)
        json_.field(hist.bucketLabel(i), hist.count(i));
    json_.endObject();
    json_.endObject();
}

void
JsonStatWriter::visitHistogram(const std::string &path,
                               const stats::HistogramStat &stat)
{
    json_.key(leaf(path));
    json_.beginObject();
    json_.field("samples", stat.samples());
    json_.field("mean", stat.mean());
    json_.field("min", stat.minSample());
    json_.field("max", stat.maxSample());
    json_.key("buckets");
    json_.beginObject();
    for (std::size_t i = 0; i < stats::HistogramStat::kNumBuckets; ++i) {
        if (stat.count(i) == 0)
            continue;
        json_.field(stats::HistogramStat::bucketLabel(i), stat.count(i));
    }
    json_.endObject();
    json_.endObject();
}

std::string
csvQuote(const std::string &field)
{
    const bool needs =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs)
        return field;
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

CsvStatWriter::CsvStatWriter(std::ostream &os) : os_(os)
{
    os_ << "stat,value,description\n";
}

void
CsvStatWriter::row(const std::string &name, double value,
                   const std::string &desc)
{
    os_ << csvQuote(name) << ',' << jsonNumber(value) << ','
        << csvQuote(desc) << '\n';
}

void
CsvStatWriter::visitScalar(const std::string &path,
                           const stats::Scalar &stat)
{
    row(path, stat.value(), stat.desc());
}

void
CsvStatWriter::visitFormula(const std::string &path,
                            const stats::Formula &stat)
{
    row(path, stat.value(), stat.desc());
}

void
CsvStatWriter::visitVector(const std::string &path,
                           const stats::VectorStat &stat)
{
    for (std::size_t i = 0; i < stat.size(); ++i)
        row(path + "::" + stat.binName(i), stat.value(i), stat.desc());
    row(path + "::total", stat.total(), stat.desc());
}

void
CsvStatWriter::visitDistribution(const std::string &path,
                                 const stats::DistributionStat &stat)
{
    row(path + "::samples",
        static_cast<double>(stat.samples().count()), stat.desc());
    row(path + "::mean", stat.samples().mean(), stat.desc());
    const BoundedHistogram &hist = stat.histogram();
    for (std::size_t i = 0; i < hist.numBuckets(); ++i) {
        row(path + "::" + hist.bucketLabel(i),
            static_cast<double>(hist.count(i)), stat.desc());
    }
}

void
CsvStatWriter::visitHistogram(const std::string &path,
                              const stats::HistogramStat &stat)
{
    row(path + "::samples", static_cast<double>(stat.samples()),
        stat.desc());
    row(path + "::mean", stat.mean(), stat.desc());
    row(path + "::min", static_cast<double>(stat.minSample()),
        stat.desc());
    row(path + "::max", static_cast<double>(stat.maxSample()),
        stat.desc());
    for (std::size_t i = 0; i < stats::HistogramStat::kNumBuckets; ++i) {
        if (stat.count(i) == 0)
            continue;
        row(path + "::" + stats::HistogramStat::bucketLabel(i),
            static_cast<double>(stat.count(i)), stat.desc());
    }
}

void
writeStatsJson(std::ostream &os, const stats::StatGroup &root,
               bool pretty)
{
    JsonWriter json(os, pretty);
    JsonStatWriter writer(json);
    root.visit(writer);
    os << '\n';
}

void
writeStatsCsv(std::ostream &os, const stats::StatGroup &root)
{
    CsvStatWriter writer(os);
    root.visit(writer);
}

} // namespace rrm::obs
