/**
 * @file
 * Structured event tracing for the simulator.
 *
 * Components emit small, fixed-size numeric events through the
 * RRM_TRACE macro. Events carry a simulation tick, a category, a
 * static event name, and up to four (key, value) fields; they land in
 * a TraceSink, which either streams them to an attached TraceWriter
 * (null / human-readable text / JSONL) or buffers them in a bounded
 * ring that keeps the most recent events and counts the overwritten
 * ones.
 *
 * Cost model: with no sink attached the macro is one pointer test;
 * with a sink but the category masked off it is one pointer test plus
 * one bitmask test — field expressions are never evaluated. Compiling
 * with -DRRM_TRACE_DISABLED removes the macro body entirely so traced
 * hot paths carry zero overhead.
 *
 * Field values are doubles: every quantity traced here (addresses
 * below a few GiB, counters, queue depths) is exactly representable
 * below 2^53.
 */

#ifndef RRM_OBS_TRACE_HH
#define RRM_OBS_TRACE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>

#include "common/units.hh"

namespace rrm::obs
{

/** Trace event categories; each is one bit in the sink's mask. */
enum class TraceCategory : std::uint32_t
{
    RrmLifecycle = 0, ///< RRM entry register/alloc/promote/decay/evict
    Refresh,          ///< refresh issue and completion
    Queue,            ///< controller queue occupancy changes
    StartGap,         ///< Start-Gap gap movements
    Sampler,          ///< sampler self-reporting
    Fault,            ///< fault injection, violations, degradation
    NumCategories,
};

/** Bitmask bit of one category. */
constexpr std::uint32_t
traceBit(TraceCategory c)
{
    return 1u << static_cast<std::uint32_t>(c);
}

/** Mask enabling every category. */
constexpr std::uint32_t traceAllCategories =
    (1u << static_cast<std::uint32_t>(TraceCategory::NumCategories)) - 1;

/** Stable lower-case name of a category (e.g. "rrm", "refresh"). */
const char *traceCategoryName(TraceCategory c);

/**
 * Parse a comma-separated category list ("rrm,refresh") into a mask;
 * "all" selects every category. Unknown names are fatal().
 */
std::uint32_t parseTraceCategories(const std::string &list);

/** One trace event. POD-sized; copied by value into the ring. */
struct TraceEvent
{
    /** One numeric field. A null key marks an unused slot. */
    struct Field
    {
        const char *key = nullptr;
        double value = 0.0;
    };

    static constexpr std::size_t maxFields = 4;

    Tick tick = 0;
    TraceCategory category = TraceCategory::RrmLifecycle;
    const char *name = nullptr;
    std::array<Field, maxFields> fields{};

    /** Number of populated fields (leading non-null keys). */
    std::size_t
    numFields() const
    {
        std::size_t n = 0;
        while (n < maxFields && fields[n].key)
            ++n;
        return n;
    }
};

/** Build an event from up to four fields (used by RRM_TRACE). */
inline TraceEvent
makeTraceEvent(Tick tick, TraceCategory category, const char *name,
               TraceEvent::Field f0 = {}, TraceEvent::Field f1 = {},
               TraceEvent::Field f2 = {}, TraceEvent::Field f3 = {})
{
    TraceEvent ev;
    ev.tick = tick;
    ev.category = category;
    ev.name = name;
    ev.fields = {f0, f1, f2, f3};
    return ev;
}

/** Output backend for trace events. */
class TraceWriter
{
  public:
    virtual ~TraceWriter() = default;

    virtual void write(const TraceEvent &ev) = 0;

    /**
     * Finalise the output (formats with a trailer, e.g. the Perfetto
     * JSON array close, override this). Must be idempotent; events
     * written afterwards may be dropped. Default: no-op.
     */
    virtual void finish() {}
};

/** Discards every event (measuring trace overhead in benches). */
class NullTraceWriter : public TraceWriter
{
  public:
    void write(const TraceEvent &) override {}
};

/** Human-readable one-line-per-event text. */
class TextTraceWriter : public TraceWriter
{
  public:
    explicit TextTraceWriter(std::ostream &os) : os_(os) {}

    void write(const TraceEvent &ev) override;

  private:
    std::ostream &os_;
};

/** Fans one event stream out to two writers (e.g. JSONL + Perfetto). */
class TeeTraceWriter : public TraceWriter
{
  public:
    TeeTraceWriter(std::unique_ptr<TraceWriter> a,
                   std::unique_ptr<TraceWriter> b);

    void write(const TraceEvent &ev) override;
    void finish() override;

  private:
    std::unique_ptr<TraceWriter> a_;
    std::unique_ptr<TraceWriter> b_;
};

/** One JSON object per line (JSONL). */
class JsonlTraceWriter : public TraceWriter
{
  public:
    explicit JsonlTraceWriter(std::ostream &os) : os_(os) {}

    void write(const TraceEvent &ev) override;

  private:
    std::ostream &os_;
};

/**
 * Event collection point.
 *
 * Buffering model: while no writer is attached, record() appends to a
 * bounded ring that keeps the most recent `capacity` events; each
 * event the ring pushes out increments dropped(). Once a writer is
 * attached (setWriter), buffered events are flushed to it and
 * subsequent events stream through directly, so a long run with a
 * file writer never drops anything.
 */
class TraceSink
{
  public:
    explicit TraceSink(std::size_t capacity = 4096,
                       std::uint32_t categories = traceAllCategories);

    /** True if events of this category are collected. */
    bool
    enabled(TraceCategory c) const
    {
        return (categoryMask_ & traceBit(c)) != 0;
    }

    std::uint32_t categoryMask() const { return categoryMask_; }
    void setCategoryMask(std::uint32_t mask) { categoryMask_ = mask; }

    /** Attach a writer (flushes the ring into it); null detaches. */
    void setWriter(std::unique_ptr<TraceWriter> writer);

    /** Record one event (callers should gate on enabled()). */
    void record(const TraceEvent &ev);

    /** Drain buffered events to the writer, if one is attached. */
    void flush();

    /** flush() then finalise the writer (Perfetto JSON trailer). */
    void finishWriter();

    /** Events accepted over the sink's lifetime. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events pushed out of the ring before any writer saw them. */
    std::uint64_t dropped() const { return dropped_; }

    /** @{ Ring introspection (tests / post-run inspection). */
    std::size_t capacity() const { return capacity_; }
    std::size_t bufferedCount() const { return ring_.size(); }
    const TraceEvent &buffered(std::size_t i) const { return ring_.at(i); }
    /** @} */

  private:
    std::size_t capacity_;
    std::uint32_t categoryMask_;
    std::deque<TraceEvent> ring_;
    std::unique_ptr<TraceWriter> writer_;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Open `path` and return a streaming writer (text or JSONL) that owns
 * the file stream. fatal() if the file cannot be opened.
 */
std::unique_ptr<TraceWriter> openTraceFile(const std::string &path,
                                           bool text_format);

} // namespace rrm::obs

/** Shorthand for a trace field; parentheses keep macro commas safe. */
#define RRM_TF(key, val)                                                    \
    ::rrm::obs::TraceEvent::Field                                           \
    {                                                                       \
        (key), static_cast<double>(val)                                     \
    }

#ifndef RRM_TRACE_DISABLED
/**
 * Emit a trace event into `sink` (a TraceSink*, may be null) if the
 * category is enabled. Field expressions are only evaluated when the
 * event is actually recorded.
 */
#define RRM_TRACE(sink, tick, category, name, ...)                          \
    do {                                                                    \
        ::rrm::obs::TraceSink *rrm_trace_sink_ = (sink);                    \
        if (rrm_trace_sink_ && rrm_trace_sink_->enabled(category)) {        \
            rrm_trace_sink_->record(::rrm::obs::makeTraceEvent(             \
                (tick), (category), (name), ##__VA_ARGS__));                \
        }                                                                   \
    } while (0)
#else
#define RRM_TRACE(sink, tick, category, name, ...)                          \
    do {                                                                    \
    } while (0)
#endif

#endif // RRM_OBS_TRACE_HH
