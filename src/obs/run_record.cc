/**
 * @file
 * Run-record metadata implementation.
 */

#include "run_record.hh"

#include <chrono>
#include <cstdlib>
#include <ctime>

namespace rrm::obs
{

std::int64_t
wallClockSeconds()
{
    if (const char *epoch = std::getenv("SOURCE_DATE_EPOCH"))
        return static_cast<std::int64_t>(std::atoll(epoch));
    // rrm-lint: allow(det-wall-clock) the single sanctioned wall-clock
    // read; SOURCE_DATE_EPOCH above overrides it for reproducible runs
    return static_cast<std::int64_t>(std::time(nullptr));
}

double
monotonicSeconds()
{
    if (std::getenv("SOURCE_DATE_EPOCH") != nullptr)
        return 0.0;
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

RunMetadata
currentRunMetadata()
{
    RunMetadata meta;
#ifdef RRM_GIT_DESCRIBE
    meta.gitDescribe = RRM_GIT_DESCRIBE;
#else
    meta.gitDescribe = "unknown";
#endif
    const auto now = static_cast<std::time_t>(wallClockSeconds());
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc)) {
        char buf[32];
        if (std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ",
                          &tm_utc)) {
            meta.timestampUtc = buf;
        }
    }
    return meta;
}

void
writeRunMetadata(JsonWriter &json, const RunMetadata &meta)
{
    json.beginObject();
    json.field("tool", meta.tool);
    json.field("gitDescribe", meta.gitDescribe);
    json.field("timestampUtc", meta.timestampUtc);
    json.endObject();
}

} // namespace rrm::obs
