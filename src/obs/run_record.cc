/**
 * @file
 * Run-record metadata implementation.
 */

#include "run_record.hh"

#include <cstdlib>
#include <ctime>

namespace rrm::obs
{

RunMetadata
currentRunMetadata()
{
    RunMetadata meta;
#ifdef RRM_GIT_DESCRIBE
    meta.gitDescribe = RRM_GIT_DESCRIBE;
#else
    meta.gitDescribe = "unknown";
#endif
    // SOURCE_DATE_EPOCH (the reproducible-builds convention) pins the
    // timestamp so identical runs emit byte-identical records — the
    // determinism tests and CI diff jobs rely on it.
    std::time_t now = std::time(nullptr);
    if (const char *epoch = std::getenv("SOURCE_DATE_EPOCH"))
        now = static_cast<std::time_t>(std::atoll(epoch));
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc)) {
        char buf[32];
        if (std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ",
                          &tm_utc)) {
            meta.timestampUtc = buf;
        }
    }
    return meta;
}

void
writeRunMetadata(JsonWriter &json, const RunMetadata &meta)
{
    json.beginObject();
    json.field("tool", meta.tool);
    json.field("gitDescribe", meta.gitDescribe);
    json.field("timestampUtc", meta.timestampUtc);
    json.endObject();
}

} // namespace rrm::obs
