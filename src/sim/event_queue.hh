/**
 * @file
 * The event-driven simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Components schedule plain std::function callbacks or recurring
 * PeriodicTask objects (used for the RRM's 2 s short-retention
 * interrupt and 0.125 s decay tick). Ties at the same tick are broken
 * first by priority (lower value runs first), then by scheduling order,
 * which keeps runs fully deterministic.
 *
 * The queue stores callbacks inline in its heap, so memory usage is
 * proportional to the number of *pending* events, not the number ever
 * scheduled — important for multi-million-event runs.
 */

#ifndef RRM_SIM_EVENT_QUEUE_HH
#define RRM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/auditable.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "stats/stats.hh"

namespace rrm
{

/** Standard event priorities; lower runs earlier within a tick. */
enum class EventPriority : int
{
    RefreshInterrupt = 0, ///< RRM retention interrupts fire first
    MemoryResponse = 10,  ///< memory completions before new activity
    Default = 20,
    CpuTick = 30,         ///< cores advance after the memory system
    Sampler = 40,         ///< stat sampling observes the settled tick
};

/**
 * Optional hot-path telemetry sinks for the event kernel.
 *
 * A struct of non-owning stats pointers rather than an obs type:
 * src/sim sits below src/obs in the layer order, so the kernel cannot
 * name the telemetry subsystem — obs::Telemetry owns and registers
 * the stats and hands this struct to EventQueue::setTelemetry()
 * (wired in System::setupObservability). All pointers must be
 * non-null when the struct is attached; with no struct attached the
 * per-event cost is a single pointer test.
 */
struct EventQueueTelemetry
{
    /** Events executed, binned by EventPriority class. */
    // rrm-lint: allow(stats-register-once) non-owning sink pointer;
    // owned and registered by obs::Telemetry
    stats::VectorStat *executedByPriority = nullptr;
    /** schedule() lead time (when - now()) in ticks. */
    // rrm-lint: allow(stats-register-once) non-owning sink pointer;
    // owned and registered by obs::Telemetry
    stats::HistogramStat *scheduleLatency = nullptr;
    /** Pending-event count observed at each schedule(). */
    // rrm-lint: allow(stats-register-once) non-owning sink pointer;
    // owned and registered by obs::Telemetry
    stats::HistogramStat *queueDepth = nullptr;

    /** Number of priority bins (one per EventPriority class). */
    static constexpr std::size_t kNumPriorityBins = 5;

    /** Bin index for a raw priority value; matches priorityBinNames(). */
    static std::size_t
    priorityBin(int prio)
    {
        const int bin = prio / 10;
        if (bin < 0)
            return 0;
        return bin > 4 ? 4 : static_cast<std::size_t>(bin);
    }

    /** Bin names aligned with priorityBin(), for VectorStat setup. */
    static std::vector<std::string>
    priorityBinNames()
    {
        return {"refreshInterrupt", "memoryResponse", "default",
                "cpuTick", "sampler"};
    }
};

/** Global discrete-event queue. */
class EventQueue : public Auditable
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** True if no pending events remain. */
    bool empty() const { return size() == 0; }

    /**
     * Number of pending (non-cancelled) events. May overestimate
     * slightly if ids of already-executed events were cancelled.
     */
    std::size_t
    size() const
    {
        return heap_.size() > cancelled_.size()
                   ? heap_.size() - cancelled_.size()
                   : 0;
    }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick, must be >= now().
     * @return An id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb,
                     EventPriority prio = EventPriority::Default);

    /** Schedule a callback `delay` ticks in the future. */
    EventId
    scheduleAfter(Tick delay, Callback cb,
                  EventPriority prio = EventPriority::Default)
    {
        return schedule(now_ + delay, std::move(cb), prio);
    }

    /**
     * Cancel a pending event. Cancelling an already-executed or
     * already-cancelled id is a harmless no-op (ids are never reused
     * within one queue).
     */
    void cancel(EventId id);

    /**
     * Execute events until the queue empties, the next event is past
     * `until`, or `max_events` have run. Time advances to `until`
     * (if bounded) once the queue drains below it; stopping at the
     * event cap leaves time at the last executed event so the caller
     * can interleave work (e.g. audits) and continue.
     *
     * @param until      Absolute tick bound (inclusive); maxTick = no
     *                   bound.
     * @param max_events Stop after this many events (the audit-cadence
     *                   hook); default unlimited.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick until = maxTick,
                      std::uint64_t max_events = ~std::uint64_t(0));

    /** Execute exactly one event if available. @return true if run. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /**
     * Attach (or detach, with nullptr) hot-path telemetry sinks. The
     * struct must outlive the queue or be detached first; see
     * EventQueueTelemetry for the ownership story.
     */
    void setTelemetry(const EventQueueTelemetry *t) { telemetry_ = t; }

    // ---- Auditable ----
    std::string_view auditName() const override { return "eventQueue"; }

    /**
     * Invariants: simulated time never decreases across audits, every
     * pending event is scheduled at or after now(), the internal heap
     * satisfies the heap property, and cancellation bookkeeping only
     * references ids that were actually issued.
     */
    void audit() const override;

  private:
    struct Entry
    {
        Tick when;
        int prio;
        EventId id;
        Callback cb;

        /** Min-heap order: earliest (when, prio, id) first. */
        bool
        laterThan(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return id > o.id;
        }
    };

    void heapPush(Entry entry);
    Entry heapPop();
    const Entry &heapTop() const { return heap_.front(); }

    /** Pop entries until top is live; @return false if queue drained. */
    bool skipCancelled();

    Tick now_ = 0;
    EventId nextId_ = 0;
    std::uint64_t executed_ = 0;
    const EventQueueTelemetry *telemetry_ = nullptr;
    std::vector<Entry> heap_;
    std::unordered_set<EventId> cancelled_;

    /** Audit bookkeeping: now() observed by the previous audit. */
    mutable Tick lastAuditedNow_ = 0;
};

/**
 * A self-rescheduling periodic task, e.g. refresh interrupts.
 * The task stays armed until stop(); the owner must keep both the task
 * and the queue alive while armed.
 */
class PeriodicTask
{
  public:
    /**
     * @param queue   Queue to run on.
     * @param period  Interval between invocations (> 0).
     * @param first   Absolute tick of the first invocation.
     */
    PeriodicTask(EventQueue &queue, Tick period, Tick first,
                 EventQueue::Callback cb,
                 EventPriority prio = EventPriority::Default);

    ~PeriodicTask() { stop(); }

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Cancel future invocations. */
    void stop();

    bool running() const { return running_; }
    Tick period() const { return period_; }

  private:
    void arm(Tick when);

    EventQueue &queue_;
    Tick period_;
    EventQueue::Callback cb_;
    EventPriority prio_;
    EventQueue::EventId pending_ = 0;
    bool running_ = false;
};

} // namespace rrm

#endif // RRM_SIM_EVENT_QUEUE_HH
