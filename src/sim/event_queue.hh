/**
 * @file
 * The event-driven simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Components schedule EventCallback closures (non-allocating, see
 * callback.hh) or recurring PeriodicTask objects (used for the RRM's
 * 2 s short-retention interrupt and 0.125 s decay tick). Ties at the
 * same tick are broken first by priority (lower value runs first),
 * then by scheduling order, which keeps runs fully deterministic.
 *
 * Internally the queue is built for throughput:
 *
 *  - *Event arena*: every pending event lives in a pooled slot
 *    (vector + freelist); scheduling allocates no memory once the
 *    pool has grown to the steady-state depth. Handles carry a
 *    generation counter so cancelling an already-executed event is a
 *    cheap, exact no-op.
 *  - *Calendar queue*: instead of one big binary heap, near events
 *    (below `frontierEnd_`) sit in a small exact-ordered heap, mid
 *    events hash into a timing wheel of `kNumBuckets` buckets of
 *    `kBucketWidth` ticks, and far events (beyond the wheel horizon)
 *    wait in an overflow heap. Buckets migrate into the frontier as
 *    time advances, so heap operations touch O(log frontier) entries
 *    rather than O(log total). Ordering is exact: the frontier heap
 *    compares the full (tick, priority, sequence) key, and everything
 *    outside it is provably later than everything inside it.
 *
 * See DESIGN.md section 15 for the geometry and the overflow policy.
 */

#ifndef RRM_SIM_EVENT_QUEUE_HH
#define RRM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/auditable.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "sim/callback.hh"
#include "stats/stats.hh"

namespace rrm
{

/** Standard event priorities; lower runs earlier within a tick. */
enum class EventPriority : int
{
    RefreshInterrupt = 0, ///< RRM retention interrupts fire first
    MemoryResponse = 10,  ///< memory completions before new activity
    Default = 20,
    CpuTick = 30,         ///< cores advance after the memory system
    Sampler = 40,         ///< stat sampling observes the settled tick
};

/**
 * The kernel's callback type: stored inline in the event arena, so
 * captures up to 144 bytes (a Request plus a couple of words) never
 * touch the heap, and anything larger is a compile error.
 */
using EventCallback = InlineFunction<void(), 144>;

/**
 * Ticket for a scheduled event, used with EventQueue::cancel(). The
 * (slot, generation) pair stays valid forever: once the event runs or
 * is cancelled the slot's generation advances, so a stale handle can
 * never touch a recycled slot.
 */
struct EventHandle
{
    static constexpr std::uint32_t invalidSlot = ~std::uint32_t(0);

    std::uint32_t slot = invalidSlot;
    std::uint32_t gen = 0;

    /** True if this handle was ever issued by schedule(). */
    bool valid() const { return slot != invalidSlot; }
};

/**
 * Optional hot-path telemetry sinks for the event kernel.
 *
 * A struct of non-owning stats pointers rather than an obs type:
 * src/sim sits below src/obs in the layer order, so the kernel cannot
 * name the telemetry subsystem — obs::Telemetry owns and registers
 * the stats and hands this struct to EventQueue::setTelemetry()
 * (wired in System::setupObservability). All pointers must be
 * non-null when the struct is attached; with no struct attached the
 * per-event cost is a single pointer test.
 */
struct EventQueueTelemetry
{
    /** Events executed, binned by EventPriority class. */
    // rrm-lint: allow(stats-register-once) non-owning sink pointer;
    // owned and registered by obs::Telemetry
    stats::VectorStat *executedByPriority = nullptr;
    /** schedule() lead time (when - now()) in ticks. */
    // rrm-lint: allow(stats-register-once) non-owning sink pointer;
    // owned and registered by obs::Telemetry
    stats::HistogramStat *scheduleLatency = nullptr;
    /** Pending-event count observed at each schedule(). */
    // rrm-lint: allow(stats-register-once) non-owning sink pointer;
    // owned and registered by obs::Telemetry
    stats::HistogramStat *queueDepth = nullptr;

    /** Number of priority bins (one per EventPriority class). */
    static constexpr std::size_t kNumPriorityBins = 5;

    /** Bin index for a raw priority value; matches priorityBinNames(). */
    static std::size_t
    priorityBin(int prio)
    {
        const int bin = prio / 10;
        if (bin < 0)
            return 0;
        return bin > 4 ? 4 : static_cast<std::size_t>(bin);
    }

    /** Bin names aligned with priorityBin(), for VectorStat setup. */
    static std::vector<std::string>
    priorityBinNames()
    {
        return {"refreshInterrupt", "memoryResponse", "default",
                "cpuTick", "sampler"};
    }
};

/** Global discrete-event queue. */
class EventQueue : public Auditable
{
  public:
    using Callback = EventCallback;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** True if no pending events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Number of pending (non-cancelled) events. Exact: cancellation
     * decrements the count immediately and cancelled arena slots are
     * purged when their queue entry surfaces.
     */
    std::size_t size() const { return live_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick, must be >= now().
     * @return A handle usable with cancel().
     */
    EventHandle schedule(Tick when, EventCallback cb,
                         EventPriority prio = EventPriority::Default);

    /** Schedule a callback `delay` ticks in the future. */
    EventHandle
    scheduleAfter(Tick delay, EventCallback cb,
                  EventPriority prio = EventPriority::Default)
    {
        return schedule(now_ + delay, std::move(cb), prio);
    }

    /**
     * Cancel a pending event. Cancelling an already-executed,
     * already-cancelled, or default-constructed handle is a harmless
     * no-op (the generation check rejects stale handles exactly).
     */
    void cancel(EventHandle h);

    /**
     * Execute events until the queue empties, the next event is past
     * `until`, or `max_events` have run. Time advances to `until`
     * (if bounded) once the queue drains below it; stopping at the
     * event cap leaves time at the last executed event so the caller
     * can interleave work (e.g. audits) and continue.
     *
     * @param until      Absolute tick bound (inclusive); maxTick = no
     *                   bound.
     * @param max_events Stop after this many events (the audit-cadence
     *                   hook); default unlimited.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick until = maxTick,
                      std::uint64_t max_events = ~std::uint64_t(0));

    /** Execute exactly one event if available. @return true if run. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Sequence number the next schedule() call will take. */
    std::uint64_t nextSeq() const { return nextSeq_; }

    /**
     * Checkpoint restore: reset the clock, sequence counter, and
     * executed-event count to a saved quiescent point. Only legal on
     * an empty queue — a restored run re-arms its periodic events
     * *after* this call, so their sequence numbers land at
     * next_seq, next_seq+1, ... exactly as a continuing run's
     * periodic re-arms would relative to later schedule() calls (the
     * uniform-shift argument of DESIGN.md section 16).
     */
    void
    restoreClock(Tick now, std::uint64_t next_seq,
                 std::uint64_t executed)
    {
        RRM_ASSERT(empty(),
                   "restoreClock() on a queue with pending events");
        RRM_ASSERT(now >= now_ && next_seq >= nextSeq_,
                   "restoreClock() would move time or sequences "
                   "backwards");
        now_ = now;
        nextSeq_ = next_seq;
        executed_ = executed;
    }

    /**
     * Account one extra logical event execution at the given
     * priority. Used by DelayQueue batch delivery: one physical event
     * delivers k queued items, and the k-1 extra deliveries are
     * credited here so eventsExecuted stays identical to the
     * one-event-per-item schedule it replaces.
     */
    void
    creditCoalescedDelivery(EventPriority prio)
    {
        ++executed_;
        if (telemetry_ != nullptr) {
            telemetry_->executedByPriority->add(
                EventQueueTelemetry::priorityBin(
                    static_cast<int>(prio)));
        }
    }

    /**
     * Attach (or detach, with nullptr) hot-path telemetry sinks. The
     * struct must outlive the queue or be detached first; see
     * EventQueueTelemetry for the ownership story.
     */
    void setTelemetry(const EventQueueTelemetry *t) { telemetry_ = t; }

    // ---- Auditable ----
    std::string_view auditName() const override { return "eventQueue"; }

    /**
     * Invariants: simulated time never decreases across audits, every
     * pending event is scheduled at or after now(), the frontier and
     * overflow heaps satisfy the heap property, every wheel entry
     * hashes to its bucket and lies inside the wheel horizon, every
     * queue entry references exactly one allocated arena slot whose
     * record agrees with it, live/cancelled counts match the
     * structures, and the freelist plus the queued slots tile the
     * arena exactly.
     */
    void audit() const override;

  private:
    /** One pooled event record (arena slot). */
    struct Event
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        EventCallback cb;
        std::int32_t prio = 0;
        std::uint32_t gen = 0;
        std::uint32_t next = EventHandle::invalidSlot; ///< freelist
        bool cancelled = false;
    };

    /** Compact ordering key queued in the calendar structures. */
    struct QEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::int32_t prio;

        /** Min-heap order: earliest (when, prio, seq) first. */
        bool
        laterThan(const QEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    // Calendar geometry (DESIGN.md section 15): 16.4 ns buckets and a
    // ~33.6 us horizon cover every fixed memory/CPU latency in the
    // model; only periodic tasks (>= 1 ms) overflow.
    static constexpr unsigned kBucketShift = 14;
    static constexpr Tick kBucketWidth = Tick(1) << kBucketShift;
    static constexpr std::size_t kNumBuckets = 2048;
    static constexpr Tick kWheelSpan = kBucketWidth * kNumBuckets;

    static std::size_t
    bucketIndex(Tick when)
    {
        return static_cast<std::size_t>(when >> kBucketShift) &
               (kNumBuckets - 1);
    }

    static void heapPush(std::vector<QEntry> &heap, const QEntry &e);
    static QEntry heapPop(std::vector<QEntry> &heap);

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    /** Route a queue entry into frontier, wheel, or overflow. */
    void insertEntry(const QEntry &e);

    /**
     * Make the frontier heap's top the globally next live event,
     * migrating wheel buckets / overflow entries and purging
     * cancelled slots as needed. @return false if no live events.
     */
    bool ensureNext();

    /** Migrate one bucket (or jump to the overflow) into the frontier. */
    bool advanceFrontier();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;
    std::size_t cancelledPending_ = 0;
    const EventQueueTelemetry *telemetry_ = nullptr;

    std::vector<Event> pool_;
    std::uint32_t freeHead_ = EventHandle::invalidSlot;

    std::vector<QEntry> frontier_; ///< heap; all when < frontierEnd_
    std::vector<std::vector<QEntry>> buckets_ =
        std::vector<std::vector<QEntry>>(kNumBuckets);
    std::size_t wheelCount_ = 0;
    Tick frontierEnd_ = 0;
    std::vector<QEntry> overflow_; ///< heap; when beyond the horizon

    /** Audit bookkeeping: now() observed by the previous audit. */
    mutable Tick lastAuditedNow_ = 0;
};

/**
 * A self-rescheduling periodic task, e.g. refresh interrupts.
 * The task stays armed until stop(); the owner must keep both the task
 * and the queue alive while armed.
 */
class PeriodicTask
{
  public:
    /**
     * @param queue   Queue to run on.
     * @param period  Interval between invocations (> 0).
     * @param first   Absolute tick of the first invocation.
     */
    PeriodicTask(EventQueue &queue, Tick period, Tick first,
                 EventCallback cb,
                 EventPriority prio = EventPriority::Default);

    ~PeriodicTask() { stop(); }

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Cancel future invocations. */
    void stop();

    bool running() const { return running_; }
    Tick period() const { return period_; }

    /**
     * Absolute tick of the next invocation (checkpointing: saved at a
     * quiescent point and passed back as `first` on restore). Only
     * meaningful while running().
     */
    Tick nextFireAt() const { return nextFireAt_; }

  private:
    void arm(Tick when);

    EventQueue &queue_;
    Tick period_;
    EventCallback cb_;
    EventPriority prio_;
    EventHandle pending_;
    Tick nextFireAt_ = 0;
    bool running_ = false;
};

} // namespace rrm

#endif // RRM_SIM_EVENT_QUEUE_HH
