/**
 * @file
 * InlineFunction: the kernel's non-allocating callable.
 *
 * std::function heap-allocates any capture larger than its small
 * buffer (16 B on the mainstream ABIs), which put a malloc/free pair
 * on the hot path of every scheduled event that captured more than
 * two pointers. InlineFunction stores the callable inline in a
 * fixed-size buffer — always, with no heap fallback — and rejects
 * oversized captures at compile time, so the cost of an event is
 * visible in its type.
 *
 * The scheduling API (EventQueue, DelayQueue, PeriodicTask,
 * memctrl::Request) accepts only InlineFunction instantiations;
 * wrapping a std::function is a compile error by design — see the
 * static_asserts in the converting constructor. Cold-path hooks
 * (config hooks, completion hooks installed once per run) stay
 * std::function.
 */

#ifndef RRM_SIM_CALLBACK_HH
#define RRM_SIM_CALLBACK_HH

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace rrm
{

namespace detail
{

template <typename T>
struct IsStdFunction : std::false_type
{};

template <typename S>
struct IsStdFunction<std::function<S>> : std::true_type
{};

} // namespace detail

template <typename Signature, std::size_t Capacity>
class InlineFunction;

/**
 * A copyable, fixed-capacity, never-allocating std::function stand-in.
 *
 * @tparam Capacity Inline storage in bytes; captures larger than this
 *                  fail to compile (raise the callback type's capacity
 *                  at the API that owns it, or capture less).
 */
template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <
        typename F, typename D = std::decay_t<F>,
        typename = std::enable_if_t<
            !std::is_same_v<D, InlineFunction> &&
            std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)
        : invoke_(&invokeImpl<D>), manage_(&manageImpl<D>)
    {
        static_assert(
            !detail::IsStdFunction<D>::value,
            "std::function is banned on the scheduling hot path: it "
            "heap-allocates large captures. Pass the lambda directly "
            "so its capture is stored inline.");
        static_assert(sizeof(D) <= Capacity,
                      "capture too large for this callback's inline "
                      "storage; capture less or raise the Capacity of "
                      "the owning callback type");
        static_assert(alignof(D) <= alignof(std::max_align_t),
                      "over-aligned captures are not supported");
        static_assert(std::is_copy_constructible_v<D>,
                      "callbacks must be copy-constructible");
        static_assert(std::is_nothrow_move_constructible_v<D>,
                      "callbacks must be nothrow-movable (they move "
                      "through the event arena)");
        ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
    }

    InlineFunction(const InlineFunction &o)
        : invoke_(o.invoke_), manage_(o.manage_)
    {
        if (manage_)
            manage_(Op::Copy, buf_, const_cast<unsigned char *>(o.buf_));
    }

    InlineFunction(InlineFunction &&o) noexcept
        : invoke_(o.invoke_), manage_(o.manage_)
    {
        if (manage_)
            manage_(Op::Move, buf_, o.buf_);
        o.invoke_ = nullptr;
        o.manage_ = nullptr;
    }

    InlineFunction &
    operator=(const InlineFunction &o)
    {
        if (this != &o) {
            reset();
            invoke_ = o.invoke_;
            manage_ = o.manage_;
            if (manage_) {
                manage_(Op::Copy, buf_,
                        const_cast<unsigned char *>(o.buf_));
            }
        }
        return *this;
    }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            invoke_ = o.invoke_;
            manage_ = o.manage_;
            if (manage_)
                manage_(Op::Move, buf_, o.buf_);
            o.invoke_ = nullptr;
            o.manage_ = nullptr;
        }
        return *this;
    }

    ~InlineFunction() { reset(); }

    R
    operator()(Args... args) const
    {
        return invoke_(const_cast<unsigned char *>(buf_),
                       std::forward<Args>(args)...);
    }

    explicit operator bool() const { return invoke_ != nullptr; }

    /** Drop the stored callable (becomes empty). */
    void
    reset()
    {
        if (manage_)
            manage_(Op::Destroy, buf_, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    static constexpr std::size_t capacity() { return Capacity; }

  private:
    enum class Op
    {
        Copy,    ///< copy-construct dst from src
        Move,    ///< move-construct dst from src, destroy src
        Destroy, ///< destroy dst
    };

    template <typename D>
    static R
    invokeImpl(void *obj, Args... args)
    {
        return (*static_cast<D *>(obj))(std::forward<Args>(args)...);
    }

    template <typename D>
    static void
    manageImpl(Op op, void *dst, void *src)
    {
        switch (op) {
          case Op::Copy:
            ::new (dst) D(*static_cast<const D *>(src));
            break;
          case Op::Move:
            ::new (dst) D(std::move(*static_cast<D *>(src)));
            static_cast<D *>(src)->~D();
            break;
          case Op::Destroy:
            static_cast<D *>(dst)->~D();
            break;
        }
    }

    using Invoke = R (*)(void *, Args...);
    using Manage = void (*)(Op, void *, void *);

    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

} // namespace rrm

#endif // RRM_SIM_CALLBACK_HH
