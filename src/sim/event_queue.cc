/**
 * @file
 * EventQueue (arena + calendar queue) and PeriodicTask implementations.
 */

#include "event_queue.hh"

#include <utility>

namespace rrm
{

void
EventQueue::heapPush(std::vector<QEntry> &heap, const QEntry &e)
{
    heap.push_back(e);
    // Sift up.
    std::size_t i = heap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!heap[parent].laterThan(heap[i]))
            break;
        std::swap(heap[parent], heap[i]);
        i = parent;
    }
}

EventQueue::QEntry
EventQueue::heapPop(std::vector<QEntry> &heap)
{
    RRM_ASSERT(!heap.empty(), "pop from an empty event heap");
    const QEntry top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    // Sift down.
    std::size_t i = 0;
    const std::size_t n = heap.size();
    while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = 2 * i + 2;
        std::size_t smallest = i;
        if (l < n && heap[smallest].laterThan(heap[l]))
            smallest = l;
        if (r < n && heap[smallest].laterThan(heap[r]))
            smallest = r;
        if (smallest == i)
            break;
        std::swap(heap[i], heap[smallest]);
        i = smallest;
    }
    return top;
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != EventHandle::invalidSlot) {
        const std::uint32_t slot = freeHead_;
        freeHead_ = pool_[slot].next;
        pool_[slot].next = EventHandle::invalidSlot;
        return slot;
    }
    RRM_ASSERT(pool_.size() < EventHandle::invalidSlot,
               "event arena exhausted the 32-bit slot space");
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Event &ev = pool_[slot];
    ++ev.gen; // invalidate outstanding handles before slot reuse
    ev.cb.reset();
    ev.cancelled = false;
    ev.next = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::insertEntry(const QEntry &e)
{
    if (e.when < frontierEnd_) {
        heapPush(frontier_, e);
    } else if (e.when - frontierEnd_ < kWheelSpan) {
        buckets_[bucketIndex(e.when)].push_back(e);
        ++wheelCount_;
    } else {
        heapPush(overflow_, e);
    }
}

bool
EventQueue::advanceFrontier()
{
    if (wheelCount_ == 0) {
        if (overflow_.empty())
            return false;
        const Tick top = overflow_.front().when;
        if (top > maxTick - kWheelSpan - kBucketWidth) {
            // Degenerate far-future events near the end of tick
            // space: bucket arithmetic would wrap, so serve the
            // remainder straight from the exact frontier heap.
            frontierEnd_ = maxTick;
            while (!overflow_.empty())
                heapPush(frontier_, heapPop(overflow_));
            return true;
        }
        // The wheel is empty: jump its window forward so the next
        // occupied segment is the overflow top's.
        frontierEnd_ = top & ~(kBucketWidth - 1);
    }
    // Migrate overflow entries that now fall inside the horizon.
    while (!overflow_.empty() &&
           overflow_.front().when - frontierEnd_ < kWheelSpan) {
        const QEntry e = heapPop(overflow_);
        buckets_[bucketIndex(e.when)].push_back(e);
        ++wheelCount_;
    }
    // Open the segment [frontierEnd_, frontierEnd_ + width): its
    // bucket holds exactly the wheel entries in that range.
    std::vector<QEntry> &bucket = buckets_[bucketIndex(frontierEnd_)];
    for (const QEntry &e : bucket)
        heapPush(frontier_, e);
    wheelCount_ -= bucket.size();
    bucket.clear();
    frontierEnd_ += kBucketWidth;
    return true;
}

bool
EventQueue::ensureNext()
{
    for (;;) {
        while (frontier_.empty()) {
            if (!advanceFrontier())
                return false;
        }
        const std::uint32_t slot = frontier_.front().slot;
        if (!pool_[slot].cancelled)
            return true;
        // Purge the cancelled entry: the arena slot is recycled the
        // moment its queue entry surfaces, keeping size() exact.
        heapPop(frontier_);
        RRM_ASSERT(cancelledPending_ > 0,
                   "cancelled-entry bookkeeping underflow");
        --cancelledPending_;
        freeSlot(slot);
    }
}

EventHandle
EventQueue::schedule(Tick when, EventCallback cb, EventPriority prio)
{
    RRM_ASSERT(when >= now_, "scheduling into the past: when=", when,
               " now=", now_);
    RRM_ASSERT(static_cast<bool>(cb), "scheduling a null callback");
    const std::uint32_t slot = allocSlot();
    Event &ev = pool_[slot];
    ev.when = when;
    ev.seq = nextSeq_++;
    ev.prio = static_cast<std::int32_t>(prio);
    ev.cb = std::move(cb);
    insertEntry(QEntry{when, ev.seq, slot, ev.prio});
    ++live_;
    if (telemetry_ != nullptr) {
        telemetry_->scheduleLatency->add(
            static_cast<std::uint64_t>(when - now_));
        telemetry_->queueDepth->add(size());
    }
    return EventHandle{slot, ev.gen};
}

void
EventQueue::cancel(EventHandle h)
{
    if (h.slot >= pool_.size())
        return;
    Event &ev = pool_[h.slot];
    if (ev.gen != h.gen || ev.cancelled)
        return; // already executed, recycled, or cancelled
    ev.cancelled = true;
    ev.cb.reset(); // release captured resources eagerly
    ++cancelledPending_;
    RRM_ASSERT(live_ > 0, "cancel with no live events");
    --live_;
}

std::uint64_t
EventQueue::run(Tick until, std::uint64_t max_events)
{
    std::uint64_t count = 0;
    bool capped = false;
    while (ensureNext()) {
        if (frontier_.front().when > until)
            break;
        if (count >= max_events) {
            capped = true;
            break;
        }
        const QEntry e = heapPop(frontier_);
        RRM_ASSERT(e.when >= now_, "event queue yielded a past event");
        EventCallback cb = std::move(pool_[e.slot].cb);
        freeSlot(e.slot);
        --live_;
        now_ = e.when;
        ++executed_;
        ++count;
        if (telemetry_ != nullptr)
            telemetry_->executedByPriority->add(
                EventQueueTelemetry::priorityBin(e.prio));
        cb();
    }
    if (!capped && until != maxTick && until > now_)
        now_ = until;
    return count;
}

bool
EventQueue::step()
{
    if (!ensureNext())
        return false;
    const QEntry e = heapPop(frontier_);
    EventCallback cb = std::move(pool_[e.slot].cb);
    freeSlot(e.slot);
    --live_;
    now_ = e.when;
    ++executed_;
    if (telemetry_ != nullptr)
        telemetry_->executedByPriority->add(
            EventQueueTelemetry::priorityBin(e.prio));
    cb();
    return true;
}

void
EventQueue::audit() const
{
    RRM_AUDIT(now_ >= lastAuditedNow_,
              "simulated time moved backwards: now=", now_,
              " previously audited=", lastAuditedNow_);
    lastAuditedNow_ = now_;

    std::vector<bool> queued(pool_.size(), false);
    std::size_t entries = 0;
    std::size_t cancelled_seen = 0;

    const auto checkEntry = [&](const QEntry &e, const char *where) {
        ++entries;
        RRM_AUDIT(e.slot < pool_.size(), where, " entry references ",
                  "slot ", e.slot, " outside the arena");
        if (e.slot >= pool_.size())
            return;
        RRM_AUDIT(!queued[e.slot], "arena slot ", e.slot,
                  " is referenced by more than one queue entry");
        queued[e.slot] = true;
        const Event &ev = pool_[e.slot];
        RRM_AUDIT(ev.seq == e.seq && ev.when == e.when,
                  where, " entry disagrees with its arena record ",
                  "(slot ", e.slot, ")");
        if (ev.cancelled) {
            ++cancelled_seen;
        } else {
            RRM_AUDIT(e.when >= now_, "pending event in slot ", e.slot,
                      " scheduled at ", e.when, " before now=", now_);
            RRM_AUDIT(static_cast<bool>(ev.cb), "pending event in slot ",
                      e.slot, " has a null callback");
        }
        RRM_AUDIT(ev.seq < nextSeq_, where, " entry sequence ", e.seq,
                  " was never issued (nextSeq=", nextSeq_, ")");
    };

    const auto checkHeap = [&](const std::vector<QEntry> &heap,
                               const char *where) {
        for (std::size_t i = 0; i < heap.size(); ++i) {
            checkEntry(heap[i], where);
            if (i > 0) {
                RRM_AUDIT(!heap[(i - 1) / 2].laterThan(heap[i]),
                          where, " heap property violated at index ",
                          i);
            }
        }
    };

    checkHeap(frontier_, "frontier");
    for (const QEntry &e : frontier_) {
        RRM_AUDIT(e.when < frontierEnd_ || frontierEnd_ == maxTick,
                  "frontier entry at ", e.when,
                  " beyond the frontier boundary ", frontierEnd_);
    }

    std::size_t wheel_entries = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        for (const QEntry &e : buckets_[b]) {
            checkEntry(e, "wheel");
            ++wheel_entries;
            RRM_AUDIT(bucketIndex(e.when) == b, "wheel entry at ",
                      e.when, " hashed into the wrong bucket ", b);
            RRM_AUDIT(e.when >= frontierEnd_ &&
                          e.when - frontierEnd_ < kWheelSpan,
                      "wheel entry at ", e.when,
                      " outside the wheel window starting at ",
                      frontierEnd_);
        }
    }
    RRM_AUDIT(wheel_entries == wheelCount_, "wheel holds ",
              wheel_entries, " entries but wheelCount_ says ",
              wheelCount_);

    checkHeap(overflow_, "overflow");
    for (const QEntry &e : overflow_) {
        RRM_AUDIT(e.when >= frontierEnd_ &&
                      e.when - frontierEnd_ >= kWheelSpan,
                  "overflow entry at ", e.when,
                  " inside the wheel horizon starting at ",
                  frontierEnd_);
    }

    RRM_AUDIT(entries == live_ + cancelledPending_,
              "queue holds ", entries, " entries but live=", live_,
              " + cancelled=", cancelledPending_, " disagree");
    RRM_AUDIT(cancelled_seen == cancelledPending_,
              "found ", cancelled_seen, " cancelled entries but ",
              "cancelledPending_ says ", cancelledPending_);

    // The freelist and the queued slots must tile the arena exactly.
    std::size_t free_count = 0;
    for (std::uint32_t s = freeHead_;
         s != EventHandle::invalidSlot && free_count <= pool_.size();
         s = pool_[s].next) {
        RRM_AUDIT(s < pool_.size(), "freelist references slot ", s,
                  " outside the arena");
        if (s >= pool_.size())
            break;
        RRM_AUDIT(!queued[s], "arena slot ", s,
                  " is both queued and on the freelist");
        ++free_count;
    }
    RRM_AUDIT(free_count + entries == pool_.size(), "arena has ",
              pool_.size(), " slots but ", free_count, " free + ",
              entries, " queued");
}

PeriodicTask::PeriodicTask(EventQueue &queue, Tick period, Tick first,
                           EventCallback cb, EventPriority prio)
    : queue_(queue), period_(period), cb_(std::move(cb)), prio_(prio)
{
    RRM_ASSERT(period_ > 0, "periodic task needs a positive period");
    RRM_ASSERT(static_cast<bool>(cb_), "periodic task needs a callback");
    running_ = true;
    arm(first);
}

void
PeriodicTask::arm(Tick when)
{
    nextFireAt_ = when;
    pending_ = queue_.schedule(
        when,
        [this] {
            // Re-arm before invoking so the callback can stop() us.
            arm(queue_.now() + period_);
            cb_();
        },
        prio_);
}

void
PeriodicTask::stop()
{
    if (running_) {
        queue_.cancel(pending_);
        running_ = false;
    }
}

} // namespace rrm
