/**
 * @file
 * EventQueue and PeriodicTask implementations.
 */

#include "event_queue.hh"

#include <utility>

namespace rrm
{

void
EventQueue::heapPush(Entry entry)
{
    heap_.push_back(std::move(entry));
    // Sift up.
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!heap_[parent].laterThan(heap_[i]))
            break;
        std::swap(heap_[parent], heap_[i]);
        i = parent;
    }
}

EventQueue::Entry
EventQueue::heapPop()
{
    RRM_ASSERT(!heap_.empty(), "pop from empty event heap");
    Entry top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    // Sift down.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = 2 * i + 2;
        std::size_t smallest = i;
        if (l < n && heap_[smallest].laterThan(heap_[l]))
            smallest = l;
        if (r < n && heap_[smallest].laterThan(heap_[r]))
            smallest = r;
        if (smallest == i)
            break;
        std::swap(heap_[i], heap_[smallest]);
        i = smallest;
    }
    return top;
}

bool
EventQueue::skipCancelled()
{
    while (!heap_.empty()) {
        const auto it = cancelled_.find(heapTop().id);
        if (it == cancelled_.end())
            return true;
        cancelled_.erase(it);
        heapPop();
    }
    return false;
}

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    RRM_ASSERT(when >= now_, "scheduling into the past: when=", when,
               " now=", now_);
    RRM_ASSERT(cb, "scheduling a null callback");
    const EventId id = nextId_++;
    heapPush(Entry{when, static_cast<int>(prio), id, std::move(cb)});
    if (telemetry_ != nullptr) {
        telemetry_->scheduleLatency->add(
            static_cast<std::uint64_t>(when - now_));
        telemetry_->queueDepth->add(size());
    }
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id < nextId_)
        cancelled_.insert(id);
}

std::uint64_t
EventQueue::run(Tick until, std::uint64_t max_events)
{
    std::uint64_t count = 0;
    bool capped = false;
    while (skipCancelled()) {
        if (heapTop().when > until)
            break;
        if (count >= max_events) {
            capped = true;
            break;
        }
        Entry entry = heapPop();
        RRM_ASSERT(entry.when >= now_,
                   "event heap yielded a past event");
        now_ = entry.when;
        ++executed_;
        ++count;
        if (telemetry_ != nullptr)
            telemetry_->executedByPriority->add(
                EventQueueTelemetry::priorityBin(entry.prio));
        entry.cb();
    }
    if (!capped && until != maxTick && until > now_)
        now_ = until;
    return count;
}

bool
EventQueue::step()
{
    if (!skipCancelled())
        return false;
    Entry entry = heapPop();
    now_ = entry.when;
    ++executed_;
    if (telemetry_ != nullptr)
        telemetry_->executedByPriority->add(
            EventQueueTelemetry::priorityBin(entry.prio));
    entry.cb();
    return true;
}

void
EventQueue::audit() const
{
    RRM_AUDIT(now_ >= lastAuditedNow_,
              "simulated time moved backwards: now=", now_,
              " previously audited=", lastAuditedNow_);
    lastAuditedNow_ = now_;

    const std::size_t n = heap_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Entry &e = heap_[i];
        if (cancelled_.count(e.id) == 0) {
            RRM_AUDIT(e.when >= now_, "pending event ", e.id,
                      " scheduled at ", e.when, " before now=", now_);
            RRM_AUDIT(static_cast<bool>(e.cb),
                      "pending event ", e.id, " has a null callback");
        }
        RRM_AUDIT(e.id < nextId_, "heap entry id ", e.id,
                  " was never issued (nextId=", nextId_, ")");
        if (i > 0) {
            const Entry &parent = heap_[(i - 1) / 2];
            RRM_AUDIT(!parent.laterThan(e),
                      "heap property violated between entries ",
                      parent.id, " and ", e.id);
        }
    }
    // rrm-lint: allow(det-unordered-iter) audit-only per-element check,
    // order independent; cancelled_ is hot (every cancel/dispatch)
    for (const EventId id : cancelled_) {
        RRM_AUDIT(id < nextId_, "cancelled id ", id,
                  " was never issued (nextId=", nextId_, ")");
    }
}

PeriodicTask::PeriodicTask(EventQueue &queue, Tick period, Tick first,
                           EventQueue::Callback cb, EventPriority prio)
    : queue_(queue), period_(period), cb_(std::move(cb)), prio_(prio)
{
    RRM_ASSERT(period_ > 0, "periodic task needs a positive period");
    RRM_ASSERT(cb_, "periodic task needs a callback");
    running_ = true;
    arm(first);
}

void
PeriodicTask::arm(Tick when)
{
    pending_ = queue_.schedule(
        when,
        [this] {
            // Re-arm before invoking so the callback can stop() us.
            arm(queue_.now() + period_);
            cb_();
        },
        prio_);
}

void
PeriodicTask::stop()
{
    if (running_) {
        queue_.cancel(pending_);
        running_ = false;
    }
}

} // namespace rrm
