/**
 * @file
 * DelayQueue: a fixed-latency FIFO hop that bypasses the central
 * event queue (the HybridSim delay-queue idiom).
 *
 * Many hops in the model add a *constant* latency: the bus transfer
 * into the write path, the 100 ns read-retry backoff, a policy's
 * fixed access latency. Scheduling each item as its own event pays a
 * heap insertion per item even though arrival order already equals
 * delivery order (now() is monotonic and the delay is fixed). A
 * DelayQueue instead appends items to a plain FIFO and keeps exactly
 * one armed event — for the head item's due tick — in the central
 * queue; when it fires, every item due at that tick is delivered in
 * push order and the event re-arms for the next due tick.
 *
 * Event accounting: each delivered item is credited as one executed
 * event (EventQueue::creditCoalescedDelivery), so eventsExecuted is
 * identical to the one-event-per-item schedule this replaces. The
 * delivery *order* is identical too, except when another event is
 * scheduled at the same (tick, priority) between two pushes — such an
 * event would interleave between the items under per-item scheduling
 * but runs after the batch here. Callers that need byte-exact replay
 * of the per-item schedule keep the central queue (see
 * sys::SystemConfig::useDelayQueues).
 */

#ifndef RRM_SIM_DELAY_QUEUE_HH
#define RRM_SIM_DELAY_QUEUE_HH

#include <deque>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace rrm
{

/** Fixed-delay FIFO delivery bypassing the central queue. */
class DelayQueue
{
  public:
    /**
     * @param queue Central queue used for the single armed event.
     * @param delay Fixed latency added to every item (> 0).
     * @param prio  Priority the deliveries run at.
     */
    DelayQueue(EventQueue &queue, Tick delay,
               EventPriority prio = EventPriority::Default)
        : queue_(queue), delay_(delay), prio_(prio)
    {
        RRM_ASSERT(delay_ > 0, "delay queue needs a positive delay");
    }

    DelayQueue(const DelayQueue &) = delete;
    DelayQueue &operator=(const DelayQueue &) = delete;

    /** Deliver `cb` at now() + delay(), FIFO among pushed items. */
    void
    push(EventCallback cb)
    {
        RRM_ASSERT(static_cast<bool>(cb), "pushing a null callback");
        const Tick due = queue_.now() + delay_;
        RRM_ASSERT(items_.empty() || items_.back().due <= due,
                   "delay queue due times must be monotonic");
        items_.push_back(Item{due, std::move(cb)});
        if (!armed_)
            arm(due);
    }

    Tick delay() const { return delay_; }
    std::size_t pending() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    /** Invariants (exercised by tests; cheap enough to call ad hoc). */
    void
    audit() const
    {
        RRM_AUDIT(items_.empty() || armed_,
                  "delay queue holds items without an armed event");
        Tick prev = 0;
        for (const Item &it : items_) {
            RRM_AUDIT(it.due >= prev,
                      "delay queue due times not monotonic");
            RRM_AUDIT(it.due >= queue_.now(),
                      "delay queue item already due at ", it.due,
                      " (now=", queue_.now(), ")");
            prev = it.due;
        }
    }

  private:
    struct Item
    {
        Tick due;
        EventCallback cb;
    };

    void
    arm(Tick due)
    {
        armed_ = true;
        queue_.schedule(due, [this] { deliverReady(); }, prio_);
    }

    void
    deliverReady()
    {
        // The armed event itself accounts for the first delivery;
        // every further item in the batch is credited explicitly.
        bool first = true;
        while (!items_.empty() && items_.front().due <= queue_.now()) {
            EventCallback cb = std::move(items_.front().cb);
            items_.pop_front();
            if (!first)
                queue_.creditCoalescedDelivery(prio_);
            first = false;
            cb(); // may push; new items are due strictly later
        }
        if (items_.empty())
            armed_ = false;
        else
            queue_.schedule(items_.front().due,
                            [this] { deliverReady(); }, prio_);
    }

    EventQueue &queue_;
    Tick delay_;
    EventPriority prio_;
    std::deque<Item> items_;
    bool armed_ = false;
};

} // namespace rrm

#endif // RRM_SIM_DELAY_QUEUE_HH
