#include "ckpt/ckpt.hh"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace rrm::ckpt
{

namespace
{

// File framing constants. The 8-byte magic doubles as an endianness
// and truncation sentinel; the end magic guards against a file cut
// exactly at a section boundary.
constexpr std::array<std::uint8_t, 8> fileMagic = {'R', 'R', 'M', 'C',
                                                   'K', 'P', 'T', 0};
constexpr std::uint32_t endMagic = sectionId('T', 'P', 'K', 'C');

// header bytes covered by the header CRC: magic + version +
// sectionCount + fingerprint + epochIndex + tick
constexpr std::size_t headerCrcSpan = 8 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t headerSize = headerCrcSpan + 4;

// per-section frame: id + payload length (u64) + payload CRC
constexpr std::size_t sectionFrameSize = 4 + 8 + 4;

// trailer: whole-file CRC + end magic
constexpr std::size_t trailerSize = 4 + 4;

std::uint32_t
crcTableEntry(std::uint32_t i)
{
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    return c;
}

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i)
            t[i] = crcTableEntry(i);
        return t;
    }();
    return table;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           static_cast<std::uint64_t>(getU32(p + 4)) << 32;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto &table = crcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
sectionName(std::uint32_t id)
{
    std::string name;
    for (int shift = 0; shift < 32; shift += 8) {
        const char c = static_cast<char>((id >> shift) & 0xFF);
        name += (c >= 0x20 && c < 0x7F) ? c : '?';
    }
    return name;
}

// ----------------------------------------------------------- chunks

void
ChunkWriter::u16(std::uint16_t v)
{
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
ChunkWriter::u32(std::uint32_t v)
{
    putU32(buf_, v);
}

void
ChunkWriter::u64(std::uint64_t v)
{
    putU64(buf_, v);
}

void
ChunkWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
ChunkWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

void
ChunkWriter::bytes(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + size);
}

void
ChunkReader::need(std::size_t n) const
{
    if (size_ - pos_ < n)
        throw CkptError("checkpoint section '" + section_ +
                        "': short read at offset " +
                        std::to_string(pos_) + " (need " +
                        std::to_string(n) + " bytes, " +
                        std::to_string(size_ - pos_) + " left)");
}

std::uint8_t
ChunkReader::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint16_t
ChunkReader::u16()
{
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | data_[pos_ + 1] << 8);
    pos_ += 2;
    return v;
}

std::uint32_t
ChunkReader::u32()
{
    need(4);
    const std::uint32_t v = getU32(data_ + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
ChunkReader::u64()
{
    need(8);
    const std::uint64_t v = getU64(data_ + pos_);
    pos_ += 8;
    return v;
}

double
ChunkReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
ChunkReader::str()
{
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

void
ChunkReader::bytes(void *out, std::size_t size)
{
    need(size);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
}

void
ChunkReader::expectDone() const
{
    if (pos_ != size_)
        throw CkptError("checkpoint section '" + section_ + "': " +
                        std::to_string(size_ - pos_) +
                        " trailing bytes after the last field");
}

// ----------------------------------------------------------- writer

void
CkptWriter::section(std::uint32_t id, const ChunkWriter &payload)
{
    for (const auto &[existing, data] : sections_) {
        (void)data;
        RRM_ASSERT(existing != id, "duplicate checkpoint section ",
                   sectionName(id));
    }
    sections_.emplace_back(id, payload.data());
}

std::vector<std::uint8_t>
CkptWriter::serialize() const
{
    std::size_t total = headerSize + trailerSize;
    for (const auto &[id, payload] : sections_) {
        (void)id;
        total += sectionFrameSize + payload.size();
    }

    std::vector<std::uint8_t> out;
    out.reserve(total);
    for (const std::uint8_t byte : fileMagic)
        out.push_back(byte);
    putU32(out, formatVersion);
    putU32(out, static_cast<std::uint32_t>(sections_.size()));
    putU64(out, header_.configFingerprint);
    putU64(out, header_.epochIndex);
    putU64(out, header_.tick);
    putU32(out, crc32(out.data(), headerCrcSpan));

    for (const auto &[id, payload] : sections_) {
        putU32(out, id);
        putU64(out, payload.size());
        putU32(out, crc32(payload.data(), payload.size()));
        const std::size_t at = out.size();
        out.resize(at + payload.size());
        if (!payload.empty())
            std::memcpy(out.data() + at, payload.data(),
                        payload.size());
    }

    putU32(out, crc32(out.data(), out.size()));
    putU32(out, endMagic);
    RRM_ASSERT(out.size() == total, "checkpoint size accounting drift");
    return out;
}

void
CkptWriter::writeFile(const std::string &path) const
{
    const std::vector<std::uint8_t> data = serialize();
    AtomicFile file(path, /*binary=*/true);
    file.stream().write(reinterpret_cast<const char *>(data.data()),
                        static_cast<std::streamsize>(data.size()));
    file.commit();
}

// ----------------------------------------------------------- reader

CkptReader::CkptReader(const std::string &path) : name_(path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CkptError("checkpoint '" + path + "': cannot open");
    std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        throw CkptError("checkpoint '" + path + "': read error");
    parse(data);
}

CkptReader::CkptReader(std::vector<std::uint8_t> data, std::string name)
    : name_(std::move(name))
{
    parse(data);
}

void
CkptReader::parse(const std::vector<std::uint8_t> &data)
{
    if (data.size() < headerSize + trailerSize)
        throw CkptError("checkpoint '" + name_ + "': truncated (" +
                        std::to_string(data.size()) +
                        " bytes, need at least " +
                        std::to_string(headerSize + trailerSize) + ")");

    if (!std::equal(fileMagic.begin(), fileMagic.end(), data.begin()))
        throw CkptError("checkpoint '" + name_ +
                        "': bad magic (not a .rckpt file)");

    const std::uint32_t version = getU32(data.data() + 8);
    if (version != formatVersion)
        throw CkptError("checkpoint '" + name_ +
                        "': format version mismatch (file has " +
                        std::to_string(version) + ", this build reads " +
                        std::to_string(formatVersion) + ")");

    const std::uint32_t headerCrc = getU32(data.data() + headerCrcSpan);
    const std::uint32_t headerCrcActual =
        crc32(data.data(), headerCrcSpan);
    if (headerCrc != headerCrcActual)
        throw CkptError("checkpoint '" + name_ +
                        "': header CRC mismatch (expected " +
                        std::to_string(headerCrc) + ", computed " +
                        std::to_string(headerCrcActual) + ")");

    // Whole-file CRC + end magic.
    const std::size_t trailerAt = data.size() - trailerSize;
    if (getU32(data.data() + trailerAt + 4) != endMagic)
        throw CkptError("checkpoint '" + name_ +
                        "': missing end marker (file truncated?)");
    const std::uint32_t fileCrc = getU32(data.data() + trailerAt);
    const std::uint32_t fileCrcActual = crc32(data.data(), trailerAt);
    if (fileCrc != fileCrcActual)
        throw CkptError("checkpoint '" + name_ +
                        "': file CRC mismatch (expected " +
                        std::to_string(fileCrc) + ", computed " +
                        std::to_string(fileCrcActual) + ")");

    const std::uint32_t sectionCount = getU32(data.data() + 12);
    header_.version = version;
    header_.configFingerprint = getU64(data.data() + 16);
    header_.epochIndex = getU64(data.data() + 24);
    header_.tick = getU64(data.data() + 32);

    std::size_t pos = headerSize;
    for (std::uint32_t i = 0; i < sectionCount; ++i) {
        if (trailerAt - pos < sectionFrameSize)
            throw CkptError("checkpoint '" + name_ + "': section " +
                            std::to_string(i) +
                            " frame extends past the trailer");
        const std::uint32_t id = getU32(data.data() + pos);
        const std::uint64_t len = getU64(data.data() + pos + 4);
        const std::uint32_t crc = getU32(data.data() + pos + 12);
        pos += sectionFrameSize;
        if (trailerAt - pos < len)
            throw CkptError(
                "checkpoint '" + name_ + "': section '" +
                sectionName(id) + "' payload (" + std::to_string(len) +
                " bytes) extends past the trailer (" +
                std::to_string(trailerAt - pos) + " available)");
        const std::uint32_t actual = crc32(data.data() + pos, len);
        if (crc != actual)
            throw CkptError("checkpoint '" + name_ + "': section '" +
                            sectionName(id) +
                            "' CRC mismatch (expected " +
                            std::to_string(crc) + ", computed " +
                            std::to_string(actual) + ")");
        if (sections_.count(id))
            throw CkptError("checkpoint '" + name_ +
                            "': duplicate section '" + sectionName(id) +
                            "'");
        sections_.emplace(
            id, std::vector<std::uint8_t>(data.begin() + pos,
                                          data.begin() + pos + len));
        order_.push_back(id);
        pos += len;
    }
    if (pos != trailerAt)
        throw CkptError("checkpoint '" + name_ + "': " +
                        std::to_string(trailerAt - pos) +
                        " unclaimed bytes between the last section and "
                        "the trailer");
}

std::vector<std::uint32_t>
CkptReader::sectionIds() const
{
    return order_;
}

std::size_t
CkptReader::sectionSize(std::uint32_t id) const
{
    return sectionData(id).size();
}

ChunkReader
CkptReader::section(std::uint32_t id) const
{
    const auto &data = sectionData(id);
    return ChunkReader(data.data(), data.size(), sectionName(id));
}

const std::vector<std::uint8_t> &
CkptReader::sectionData(std::uint32_t id) const
{
    const auto it = sections_.find(id);
    if (it == sections_.end())
        throw CkptError("checkpoint '" + name_ + "': missing section '" +
                        sectionName(id) + "'");
    return it->second;
}

std::string
CkptReader::validateFile(const std::string &path)
{
    try {
        CkptReader reader(path);
    } catch (const CkptError &e) {
        return e.what();
    }
    return "";
}

} // namespace rrm::ckpt
