/**
 * @file
 * The .rckpt checkpoint container: a versioned, checksummed,
 * little-endian section file holding full simulator state at one
 * quiescent decay-epoch boundary (DESIGN.md section 16).
 *
 * Layout:
 *
 *     header   magic "RRMCKPT\0", format version, section count,
 *              config fingerprint, epoch index, quiesce tick,
 *              CRC32 of the preceding header bytes
 *     sections N x { fourcc id, payload length, payload CRC32,
 *                    payload bytes }
 *     trailer  CRC32 of everything before it, end magic
 *
 * Everything is explicit little-endian regardless of host order. A
 * file is only ever published complete: CkptWriter serializes into
 * memory and publishes through AtomicFile (write-temp-then-rename),
 * so a half-written checkpoint can never carry the final name.
 *
 * The event queue is deliberately NOT a section. Checkpoints are
 * taken only at quiescent points where the queue holds nothing but
 * re-armable periodic events (sampler, RRM refresh/decay, fault
 * stall/governor, retention sweep); restore re-schedules those from
 * the saved next-fire ticks. See DESIGN.md section 16 for the
 * quiescent-point contract.
 *
 * Error model: structural problems (bad magic, CRC mismatch,
 * truncation, version or fingerprint mismatch, short section reads)
 * throw CkptError with a message naming the file and the expected vs
 * actual values, so callers can fall back to an older checkpoint or
 * a cold start instead of crashing.
 */

#ifndef RRM_CKPT_CKPT_HH
#define RRM_CKPT_CKPT_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rrm::ckpt
{

/** Recoverable checkpoint load/validation failure. */
class CkptError : public std::runtime_error
{
  public:
    explicit CkptError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320), seedable for chaining. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** Current .rckpt format version. */
constexpr std::uint32_t formatVersion = 1;

/** Section id: four printable characters packed little-endian. */
constexpr std::uint32_t
sectionId(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/** Printable form of a section id ("QUEU", "RRM0", ...). */
std::string sectionName(std::uint32_t id);

/**
 * Append-only little-endian byte sink one section payload is built
 * in. Scalar encoders are explicit about width; f64 round-trips
 * exactly via its IEEE-754 bit pattern.
 */
class ChunkWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void b(bool v) { u8(v ? 1 : 0); }

    /** Length-prefixed UTF-8 string. */
    void str(const std::string &s);

    /** Raw bytes (caller encodes the length). */
    void bytes(const void *data, std::size_t size);

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Cursor over one section payload. Every read is bounds-checked and
 * throws CkptError naming the section on overrun, so a corrupted
 * length field cannot walk out of the payload.
 */
class ChunkReader
{
  public:
    ChunkReader(const std::uint8_t *data, std::size_t size,
                std::string section)
        : data_(data), size_(size), section_(std::move(section))
    {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool b() { return u8() != 0; }
    std::string str();
    void bytes(void *out, std::size_t size);

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

    /** Throw CkptError unless the payload was consumed exactly. */
    void expectDone() const;

  private:
    void need(std::size_t n) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string section_;
};

/** Header fields of a checkpoint file. */
struct CkptHeader
{
    std::uint32_t version = formatVersion;

    /** Hash of the run's behaviour-determining configuration. */
    std::uint64_t configFingerprint = 0;

    /** Decay-epoch index the checkpoint was taken at (1-based). */
    std::uint64_t epochIndex = 0;

    /** Simulated tick of the quiescent point. */
    std::uint64_t tick = 0;
};

/**
 * Builds one .rckpt file: add sections in order, then publish
 * atomically. Section ids must be unique within a file.
 */
class CkptWriter
{
  public:
    explicit CkptWriter(CkptHeader header) : header_(header) {}

    /** Append one section; the writer's buffer is copied. */
    void section(std::uint32_t id, const ChunkWriter &payload);

    /** Serialize and publish to `path` via AtomicFile. */
    void writeFile(const std::string &path) const;

    /** Serialize to memory (tests, tools). */
    std::vector<std::uint8_t> serialize() const;

  private:
    CkptHeader header_;
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
        sections_;
};

/**
 * Loads and fully validates one .rckpt file up front: magic, version,
 * header CRC, section-table bounds, every section CRC, and the
 * whole-file CRC. After construction every section is known intact.
 */
class CkptReader
{
  public:
    /** Load from a file; throws CkptError on any validation failure. */
    explicit CkptReader(const std::string &path);

    /** Load from memory (`name` labels errors). */
    CkptReader(std::vector<std::uint8_t> data, std::string name);

    const CkptHeader &header() const { return header_; }
    const std::string &name() const { return name_; }

    /** Section ids in file order. */
    std::vector<std::uint32_t> sectionIds() const;

    bool hasSection(std::uint32_t id) const
    {
        return sections_.count(id) != 0;
    }

    /** Payload size of a section; throws CkptError if absent. */
    std::size_t sectionSize(std::uint32_t id) const;

    /** Cursor over a section; throws CkptError if absent. */
    ChunkReader section(std::uint32_t id) const;

    /** Raw payload bytes of a section (tools/rrm-ckpt diff). */
    const std::vector<std::uint8_t> &sectionData(std::uint32_t id) const;

    /**
     * Validate a file without keeping it: the CkptError message on
     * failure, or an empty string when the file is intact.
     */
    static std::string validateFile(const std::string &path);

  private:
    void parse(const std::vector<std::uint8_t> &data);

    std::string name_;
    CkptHeader header_;
    std::map<std::uint32_t, std::vector<std::uint8_t>> sections_;
    std::vector<std::uint32_t> order_;
};

} // namespace rrm::ckpt

#endif // RRM_CKPT_CKPT_HH
