/**
 * @file
 * Cache array implementation.
 */

#include "cache.hh"

#include "ckpt/ckpt.hh"

namespace rrm::cache
{

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    RRM_ASSERT(isPowerOfTwo(config_.lineBytes), "line size must be 2^n");
    RRM_ASSERT(config_.assoc >= 1, "associativity must be >= 1");
    RRM_ASSERT(config_.sizeBytes %
                       (std::uint64_t(config_.lineBytes) * config_.assoc) ==
                   0,
               "cache '", config_.name,
               "' size must be a whole number of sets");
    numSets_ =
        config_.sizeBytes / (std::uint64_t(config_.lineBytes) * config_.assoc);
    RRM_ASSERT(isPowerOfTwo(numSets_), "cache '", config_.name,
               "' set count must be a power of two");
    lineShift_ = floorLog2(config_.lineBytes);
    lines_.assign(numSets_ * config_.assoc, Line{});
    policy_ = makeReplacementPolicy(config_.replacement);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::access(Addr addr)
{
    Line *line = findLine(addr);
    if (line) {
        if (config_.replacement == ReplacementKind::LRU)
            line->stamp = ++replClock_;
        // FIFO and Random leave the stamp untouched.
        if (statHits_)
            ++*statHits_;
        return true;
    }
    if (statMisses_)
        ++*statMisses_;
    return false;
}

Victim
Cache::allocate(Addr addr, int owner)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.assoc];

    // One pass both picks the first free way and enforces the
    // not-already-present contract (no separate contains() walk).
    Line *slot = nullptr;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid) {
            if (!slot)
                slot = &base[w];
            continue;
        }
        RRM_ASSERT(base[w].tag != tag,
                   "allocate() of a present line in '", config_.name,
                   "'");
    }

    Victim victim;
    if (!slot) {
        // All ways valid: pick the victim. LRU and FIFO both evict
        // the minimum stamp, scanned inline; Random keeps its RNG in
        // the policy object.
        unsigned w;
        if (config_.replacement == ReplacementKind::Random) {
            w = policy_->victim(nullptr, config_.assoc);
        } else {
            w = 0;
            for (unsigned v = 1; v < config_.assoc; ++v)
                if (base[v].stamp < base[w].stamp)
                    w = v;
        }
        slot = &base[w];
        victim.valid = true;
        victim.addr = slot->tag << lineShift_;
        victim.dirty = slot->dirty;
        victim.owner = slot->owner;
        if (statEvictions_)
            ++*statEvictions_;
        if (victim.dirty && statDirtyEvictions_)
            ++*statDirtyEvictions_;
    }

    slot->tag = tag;
    slot->valid = true;
    slot->dirty = false;
    slot->owner = owner;
    slot->stamp = config_.replacement == ReplacementKind::Random
                      ? 0
                      : ++replClock_;
    return victim;
}

void
Cache::setDirty(Addr addr)
{
    Line *line = findLine(addr);
    RRM_ASSERT(line, "setDirty() on absent line in '", config_.name, "'");
    line->dirty = true;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *line = findLine(addr);
    RRM_ASSERT(line, "isDirty() on absent line in '", config_.name, "'");
    return line->dirty;
}

int
Cache::owner(Addr addr) const
{
    const Line *line = findLine(addr);
    RRM_ASSERT(line, "owner() on absent line in '", config_.name, "'");
    return line->owner;
}

bool
Cache::invalidate(Addr addr)
{
    Line *line = findLine(addr);
    if (!line)
        return false;
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return was_dirty;
}

std::uint64_t
Cache::numValidLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_)
        if (line.valid)
            ++n;
    return n;
}

void
Cache::audit() const
{
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        const Line *base = &lines_[set * config_.assoc];
        for (unsigned w = 0; w < config_.assoc; ++w) {
            const Line &line = base[w];
            if (!line.valid) {
                RRM_AUDIT(!line.dirty, "cache '", config_.name,
                          "': invalid line is dirty (set ", set,
                          " way ", w, ")");
                continue;
            }
            const Addr addr = line.tag << lineShift_;
            RRM_AUDIT(setIndex(addr) == set, "cache '", config_.name,
                      "': tag in set ", set, " indexes to set ",
                      setIndex(addr));
            for (unsigned v = w + 1; v < config_.assoc; ++v) {
                if (!base[v].valid)
                    continue;
                RRM_AUDIT(base[v].tag != line.tag, "cache '",
                          config_.name, "': duplicate tag in set ", set,
                          " (ways ", w, " and ", v, ")");
                if (config_.replacement != ReplacementKind::Random) {
                    RRM_AUDIT(base[v].stamp != line.stamp, "cache '",
                              config_.name,
                              "': duplicate replacement stamp in set ",
                              set, " (ways ", w, " and ", v, ")");
                }
            }
        }
    }
}

void
Cache::regStats(stats::StatGroup &group)
{
    auto &g = group.addChild(config_.name);
    statHits_ = &g.addScalar("hits", "lookups that hit");
    statMisses_ = &g.addScalar("misses", "lookups that missed");
    statEvictions_ = &g.addScalar("evictions", "lines displaced");
    statDirtyEvictions_ =
        &g.addScalar("dirtyEvictions", "dirty lines displaced");
}

void
Cache::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u64(replClock_);
    w.u64(accessCounter_);
    w.u32(static_cast<std::uint32_t>(lines_.size()));
    for (const Line &line : lines_) {
        w.u64(line.tag);
        w.u64(line.stamp);
        w.u32(static_cast<std::uint32_t>(line.owner));
        w.b(line.valid);
        w.b(line.dirty);
    }
    policy_->saveCkpt(w);
}

void
Cache::restoreCkpt(ckpt::ChunkReader &r)
{
    replClock_ = r.u64();
    accessCounter_ = r.u64();
    const std::uint32_t n = r.u32();
    if (n != lines_.size())
        throw ckpt::CkptError(
            "cache '" + config_.name + "' has " +
            std::to_string(lines_.size()) +
            " lines but the checkpoint holds " + std::to_string(n) +
            " (geometry mismatch)");
    for (Line &line : lines_) {
        line.tag = r.u64();
        line.stamp = r.u64();
        line.owner = static_cast<int>(r.u32());
        line.valid = r.b();
        line.dirty = r.b();
    }
    policy_->restoreCkpt(r);
}

} // namespace rrm::cache
