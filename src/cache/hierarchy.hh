/**
 * @file
 * Three-level inclusive write-back cache hierarchy.
 *
 * Per-core L1D and L2 back a shared LLC (L3). Inclusion (L1 ⊆ L2 ⊆
 * LLC) is maintained with back-invalidation, which gives the clean
 * event structure the RRM needs:
 *
 *  - an **LLC write** happens exactly when a dirty L2 victim is
 *    written back into its (present, by inclusion) LLC line; the
 *    hierarchy reports it as an LLC Write Registration carrying the
 *    LLC line's *previous* dirty bit (the paper's streaming filter);
 *  - a **memory write** happens exactly when an LLC victim leaves the
 *    hierarchy dirty (merging any dirtier L1/L2 copies).
 *
 * Instruction fetch is not modelled: the SPEC-like workloads of the
 * paper have negligible I-side LLC traffic. MSHR counts live in the
 * configs; the core model enforces them (it owns request concurrency).
 */

#ifndef RRM_CACHE_HIERARCHY_HH
#define RRM_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"

namespace rrm::cache
{

/** Events produced by one hierarchy operation. */
struct HierarchyEvents
{
    /** Lookup latency accrued on the hit/miss-detection path. */
    Tick latency = 0;

    /** Level that hit: 1 = L1, 2 = L2, 3 = LLC, 0 = miss / fill. */
    unsigned hitLevel = 0;

    /** The access missed the LLC and needs a memory read. */
    bool llcMiss = false;

    /** A dirty LLC victim must be written to memory. */
    bool memWrite = false;
    Addr memWriteAddr = 0;

    /** An LLC write occurred (L2 dirty victim written into LLC). */
    bool registration = false;
    Addr registrationAddr = 0;
    bool registrationWasDirty = false;
};

/** Configuration of the full hierarchy. */
struct HierarchyConfig
{
    unsigned numCores = 4;
    CacheConfig l1;
    CacheConfig l2;
    CacheConfig llc;
};

/** The paper's hierarchy (Table IV), at 2 GHz (500 ps cycles). */
HierarchyConfig defaultHierarchyConfig();

/** Three-level inclusive hierarchy. */
class CacheHierarchy : public Auditable
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    const HierarchyConfig &config() const { return config_; }

    /**
     * Perform a load/store lookup for `core`.
     *
     * On an LLC hit (or better) the line is filled into the upper
     * levels and a store dirties L1. On an LLC miss the caller must
     * fetch the line from memory and then call fill().
     */
    HierarchyEvents access(unsigned core, Addr addr, bool is_write);

    /**
     * Complete an LLC miss: allocate the line through all levels and
     * apply the (merged) demand access. May displace a dirty LLC
     * victim (memWrite) and/or cause an LLC write registration from
     * the L2 fill victim.
     *
     * @param is_write True if any merged request was a store.
     */
    HierarchyEvents fill(unsigned core, Addr addr, bool is_write);

    /** LLC MSHR budget (outstanding memory reads). */
    unsigned llcMshrs() const { return config_.llc.mshrs; }

    /** Per-core outstanding-miss budget (L1 MSHRs). */
    unsigned coreMshrs() const { return config_.l1.mshrs; }

    const Cache &llc() const { return *llc_; }
    const Cache &l1(unsigned core) const { return *l1s_.at(core); }
    const Cache &l2(unsigned core) const { return *l2s_.at(core); }

    /** Register per-cache statistics. */
    void regStats(stats::StatGroup &group);

    /** @{ Checkpoint every level, core-major then the shared LLC. */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    /** Verify the inclusion invariant (O(cache size); tests only). */
    bool checkInclusion() const;

    // ---- Auditable ----
    std::string_view auditName() const override { return "hierarchy"; }

    /**
     * Invariants: each level's own array is consistent (see
     * Cache::audit), inclusion holds (L1 ⊆ L2 ⊆ LLC), dirty upper
     * copies have their backing line present below, and every LLC
     * line's recorded owner is a real core (or untracked).
     */
    void audit() const override;

  private:
    void fillIntoL2(unsigned core, Addr addr, HierarchyEvents &ev);
    void fillIntoL1(unsigned core, Addr addr, HierarchyEvents &ev);

    HierarchyConfig config_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<std::unique_ptr<Cache>> l2s_;
    std::unique_ptr<Cache> llc_;
};

} // namespace rrm::cache

#endif // RRM_CACHE_HIERARCHY_HH
