/**
 * @file
 * Replacement policies for set-associative structures.
 *
 * The same policies drive the caches and the RRM's tag array (which
 * the paper manages "just like a low-level cache" with LRU).
 */

#ifndef RRM_CACHE_REPLACEMENT_HH
#define RRM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>

namespace rrm::ckpt
{
class ChunkWriter;
class ChunkReader;
} // namespace rrm::ckpt

namespace rrm::cache
{

/** Supported replacement policies. */
enum class ReplacementKind : std::uint8_t
{
    LRU = 0,  ///< least-recently-used (paper default)
    FIFO,     ///< insertion order
    Random,   ///< pseudo-random victim
};

/**
 * Replacement policy over per-way "stamps".
 *
 * The owning structure stores one uint64 stamp per way; the policy
 * decides what to write on insertion/touch and which way to evict.
 * This keeps policy state inline with the tag array (no per-policy
 * allocations on the hot path).
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Stamp for a newly inserted way. */
    virtual std::uint64_t onInsert() = 0;

    /** Stamp for a way that just hit (default: keep old stamp). */
    virtual std::uint64_t onTouch(std::uint64_t old_stamp) = 0;

    /**
     * Pick the victim among `num_ways` stamps.
     * @param stamps   Stamps of the candidate ways (all valid).
     * @param num_ways Number of candidates (>= 1).
     * @return Index of the chosen victim in [0, num_ways).
     */
    virtual unsigned victim(const std::uint64_t *stamps,
                            unsigned num_ways) = 0;

    /**
     * @{ Checkpoint policy-private state. The stamps themselves live
     * in the owning structure; only the Random policy's RNG stream
     * position needs saving (LRU/FIFO stamps come from the owner's
     * inline clock).
     */
    virtual void saveCkpt(ckpt::ChunkWriter &w) const { (void)w; }
    virtual void restoreCkpt(ckpt::ChunkReader &r) { (void)r; }
    /** @} */
};

/** Instantiate a policy of the given kind. */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(
    ReplacementKind kind, std::uint64_t seed = 0);

} // namespace rrm::cache

#endif // RRM_CACHE_REPLACEMENT_HH
