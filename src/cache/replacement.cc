/**
 * @file
 * Replacement policy implementations.
 */

#include "replacement.hh"

#include "ckpt/ckpt.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace rrm::cache
{

namespace
{

/** LRU: stamps are a monotonically increasing use counter. */
class LruPolicy : public ReplacementPolicy
{
  public:
    std::uint64_t onInsert() override { return ++clock_; }
    std::uint64_t onTouch(std::uint64_t) override { return ++clock_; }

    unsigned
    victim(const std::uint64_t *stamps, unsigned num_ways) override
    {
        unsigned best = 0;
        for (unsigned w = 1; w < num_ways; ++w)
            if (stamps[w] < stamps[best])
                best = w;
        return best;
    }

  private:
    std::uint64_t clock_ = 0;
};

/** FIFO: stamp only advances on insertion. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    std::uint64_t onInsert() override { return ++clock_; }
    std::uint64_t onTouch(std::uint64_t old_stamp) override
    {
        return old_stamp;
    }

    unsigned
    victim(const std::uint64_t *stamps, unsigned num_ways) override
    {
        unsigned best = 0;
        for (unsigned w = 1; w < num_ways; ++w)
            if (stamps[w] < stamps[best])
                best = w;
        return best;
    }

  private:
    std::uint64_t clock_ = 0;
};

/** Random: stamps unused; victim drawn uniformly. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

    std::uint64_t onInsert() override { return 0; }
    std::uint64_t onTouch(std::uint64_t old_stamp) override
    {
        return old_stamp;
    }

    unsigned
    victim(const std::uint64_t *, unsigned num_ways) override
    {
        return static_cast<unsigned>(rng_.uniform(num_ways));
    }

    void
    saveCkpt(ckpt::ChunkWriter &w) const override
    {
        for (const std::uint64_t word : rng_.state())
            w.u64(word);
    }

    void
    restoreCkpt(ckpt::ChunkReader &r) override
    {
        std::array<std::uint64_t, 4> state;
        for (std::uint64_t &word : state)
            word = r.u64();
        rng_.setState(state);
    }

  private:
    Random rng_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplacementKind kind, std::uint64_t seed)
{
    switch (kind) {
      case ReplacementKind::LRU:
        return std::make_unique<LruPolicy>();
      case ReplacementKind::FIFO:
        return std::make_unique<FifoPolicy>();
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(seed);
    }
    panic("invalid replacement kind");
}

} // namespace rrm::cache
