/**
 * @file
 * CacheHierarchy implementation.
 */

#include "hierarchy.hh"

namespace rrm::cache
{

HierarchyConfig
defaultHierarchyConfig()
{
    // Table IV, 2 GHz core clock: L1 2 cycles, L2 12, LLC 35.
    HierarchyConfig cfg;
    cfg.numCores = 4;

    cfg.l1.name = "l1d";
    cfg.l1.sizeBytes = 32_KiB;
    cfg.l1.assoc = 4;
    cfg.l1.hitLatency = 1_ns; // 2 cycles @ 2 GHz
    cfg.l1.mshrs = 8;

    cfg.l2.name = "l2";
    cfg.l2.sizeBytes = 256_KiB;
    cfg.l2.assoc = 8;
    cfg.l2.hitLatency = 6_ns; // 12 cycles
    cfg.l2.mshrs = 12;

    cfg.llc.name = "llc";
    cfg.llc.sizeBytes = 6_MiB;
    cfg.llc.assoc = 24;
    cfg.llc.hitLatency = 17500_ps; // 35 cycles
    cfg.llc.mshrs = 32;

    return cfg;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config)
{
    RRM_ASSERT(config_.numCores >= 1, "need at least one core");
    RRM_ASSERT(config_.l1.lineBytes == config_.l2.lineBytes &&
                   config_.l2.lineBytes == config_.llc.lineBytes,
               "all levels must share one line size");
    for (unsigned c = 0; c < config_.numCores; ++c) {
        CacheConfig l1 = config_.l1;
        CacheConfig l2 = config_.l2;
        l1.name = config_.l1.name + std::to_string(c);
        l2.name = config_.l2.name + std::to_string(c);
        l1s_.push_back(std::make_unique<Cache>(l1));
        l2s_.push_back(std::make_unique<Cache>(l2));
    }
    llc_ = std::make_unique<Cache>(config_.llc);
}

HierarchyEvents
CacheHierarchy::access(unsigned core, Addr addr, bool is_write)
{
    RRM_ASSERT(core < config_.numCores, "core index out of range");
    addr = llc_->lineAddr(addr);

    HierarchyEvents ev;
    Cache &l1 = *l1s_[core];
    Cache &l2 = *l2s_[core];

    ev.latency += config_.l1.hitLatency;
    if (l1.access(addr)) {
        ev.hitLevel = 1;
        if (is_write)
            l1.setDirty(addr);
        return ev;
    }

    ev.latency += config_.l2.hitLatency;
    if (l2.access(addr)) {
        ev.hitLevel = 2;
        fillIntoL1(core, addr, ev);
        if (is_write)
            l1.setDirty(addr);
        return ev;
    }

    ev.latency += config_.llc.hitLatency;
    if (llc_->access(addr)) {
        ev.hitLevel = 3;
        fillIntoL2(core, addr, ev);
        fillIntoL1(core, addr, ev);
        if (is_write)
            l1.setDirty(addr);
        return ev;
    }

    ev.llcMiss = true;
    return ev;
}

HierarchyEvents
CacheHierarchy::fill(unsigned core, Addr addr, bool is_write)
{
    RRM_ASSERT(core < config_.numCores, "core index out of range");
    addr = llc_->lineAddr(addr);

    HierarchyEvents ev;
    RRM_ASSERT(!llc_->contains(addr),
               "fill() for a line already in the LLC");

    const Victim victim = llc_->allocate(addr, static_cast<int>(core));
    if (victim.valid) {
        // Back-invalidate upper-level copies to preserve inclusion; a
        // dirtier upper copy upgrades the outgoing line. Any core may
        // hold a copy (shared LLC hits fill other cores' L1/L2), so
        // sweep them all.
        bool dirty = victim.dirty;
        for (unsigned c = 0; c < config_.numCores; ++c) {
            dirty |= l2s_[c]->invalidate(victim.addr);
            dirty |= l1s_[c]->invalidate(victim.addr);
        }
        if (dirty) {
            ev.memWrite = true;
            ev.memWriteAddr = victim.addr;
        }
    }

    fillIntoL2(core, addr, ev);
    fillIntoL1(core, addr, ev);
    if (is_write)
        l1s_[core]->setDirty(addr);
    return ev;
}

void
CacheHierarchy::fillIntoL2(unsigned core, Addr addr, HierarchyEvents &ev)
{
    Cache &l1 = *l1s_[core];
    Cache &l2 = *l2s_[core];

    const Victim victim = l2.allocate(addr);
    if (!victim.valid)
        return;

    // The L1 copy (if any) must leave too; it may be dirtier.
    bool dirty = victim.dirty;
    dirty |= l1.invalidate(victim.addr);

    if (dirty) {
        // Write the victim back into its LLC line: this is the LLC
        // write the RRM registers, with the line's previous dirty bit.
        RRM_ASSERT(llc_->contains(victim.addr),
                   "inclusion broken: L2 victim absent from LLC");
        const bool was_dirty = llc_->isDirty(victim.addr);
        llc_->access(victim.addr); // promote on write
        llc_->setDirty(victim.addr);
        RRM_ASSERT(!ev.registration,
                   "one operation produced two LLC writes");
        ev.registration = true;
        ev.registrationAddr = victim.addr;
        ev.registrationWasDirty = was_dirty;
    }
}

void
CacheHierarchy::fillIntoL1(unsigned core, Addr addr, HierarchyEvents &ev)
{
    (void)ev;
    Cache &l1 = *l1s_[core];
    Cache &l2 = *l2s_[core];

    const Victim victim = l1.allocate(addr);
    if (victim.valid && victim.dirty) {
        // L1 ⊆ L2: the victim's line is present in L2.
        RRM_ASSERT(l2.contains(victim.addr),
                   "inclusion broken: L1 victim absent from L2");
        l2.access(victim.addr);
        l2.setDirty(victim.addr);
    }
}

void
CacheHierarchy::regStats(stats::StatGroup &group)
{
    for (unsigned c = 0; c < config_.numCores; ++c) {
        l1s_[c]->regStats(group);
        l2s_[c]->regStats(group);
    }
    llc_->regStats(group);
}

void
CacheHierarchy::saveCkpt(ckpt::ChunkWriter &w) const
{
    for (unsigned c = 0; c < config_.numCores; ++c) {
        l1s_[c]->saveCkpt(w);
        l2s_[c]->saveCkpt(w);
    }
    llc_->saveCkpt(w);
}

void
CacheHierarchy::restoreCkpt(ckpt::ChunkReader &r)
{
    for (unsigned c = 0; c < config_.numCores; ++c) {
        l1s_[c]->restoreCkpt(r);
        l2s_[c]->restoreCkpt(r);
    }
    llc_->restoreCkpt(r);
}

void
CacheHierarchy::audit() const
{
    llc_->audit();
    for (unsigned c = 0; c < config_.numCores; ++c) {
        l1s_[c]->audit();
        l2s_[c]->audit();

        l1s_[c]->forEachValidLine([&](Addr a) {
            RRM_AUDIT(l2s_[c]->contains(a), "inclusion: L1 line 0x",
                      std::hex, a, std::dec, " of core ", c,
                      " absent from L2");
        });
        l2s_[c]->forEachValidLine([&](Addr a) {
            RRM_AUDIT(llc_->contains(a), "inclusion: L2 line 0x",
                      std::hex, a, std::dec, " of core ", c,
                      " absent from the LLC");
        });
    }
    llc_->forEachValidLine([&](Addr a) {
        const int owner = llc_->owner(a);
        RRM_AUDIT(owner >= -1 &&
                      owner < static_cast<int>(config_.numCores),
                  "LLC line 0x", std::hex, a, std::dec,
                  " has impossible owner ", owner);
    });
}

bool
CacheHierarchy::checkInclusion() const
{
    bool ok = true;
    for (unsigned c = 0; c < config_.numCores; ++c) {
        l1s_[c]->forEachValidLine([&](Addr a) {
            if (!l2s_[c]->contains(a))
                ok = false;
        });
        l2s_[c]->forEachValidLine([&](Addr a) {
            if (!llc_->contains(a))
                ok = false;
        });
    }
    return ok;
}

} // namespace rrm::cache
