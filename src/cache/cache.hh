/**
 * @file
 * A single set-associative write-back cache array.
 *
 * Cache is a building block: it owns tags, valid/dirty bits, and a
 * replacement policy, and exposes the primitive operations the
 * three-level CacheHierarchy composes (lookup, allocate-with-victim,
 * dirty marking, invalidation). It deliberately stores no data bytes —
 * the simulator tracks state, not contents.
 */

#ifndef RRM_CACHE_CACHE_HH
#define RRM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/auditable.hh"
#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/units.hh"
#include "stats/stats.hh"

namespace rrm::cache
{

/** Static configuration of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    Tick hitLatency = 1_ns;
    unsigned mshrs = 8;
    ReplacementKind replacement = ReplacementKind::LRU;
};

/** Outcome of allocating a line: the displaced victim, if any. */
struct Victim
{
    bool valid = false;
    Addr addr = 0;
    bool dirty = false;
    int owner = -1;
};

/** One set-associative cache level. */
class Cache : public Auditable
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }

    std::uint64_t numSets() const { return numSets_; }

    /** Line-aligned base address of `addr`. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(config_.lineBytes - 1);
    }

    /** True if the line holding `addr` is present. */
    bool contains(Addr addr) const;

    /**
     * Look up and, on hit, promote the line in the replacement order.
     * @return true on hit.
     */
    bool access(Addr addr);

    /**
     * Allocate a line for `addr` (must not be present), evicting the
     * replacement victim if the set is full.
     *
     * @param owner Owner core recorded on the line (used by the shared
     *              LLC for back-invalidation; -1 if untracked).
     * @return The displaced victim (valid == false if a free way was
     *         used).
     */
    Victim allocate(Addr addr, int owner = -1);

    /** Mark the (present) line dirty. */
    void setDirty(Addr addr);

    /** @return dirty flag of the (present) line. */
    bool isDirty(Addr addr) const;

    /** Owner recorded on the (present) line. */
    int owner(Addr addr) const;

    /**
     * Invalidate the line if present.
     * @return true if the line was present and dirty.
     */
    bool invalidate(Addr addr);

    /** Number of valid lines (for tests / occupancy checks). */
    std::uint64_t numValidLines() const;

    /** Invoke fn(lineAddr) for every valid line (tests / invariants). */
    template <typename Fn>
    void
    forEachValidLine(Fn &&fn) const
    {
        for (const auto &line : lines_)
            if (line.valid)
                fn(line.tag << lineShift_);
    }

    /** Register hit/miss/writeback statistics into a group. */
    void regStats(stats::StatGroup &group);

    /**
     * @{ Checkpoint the full array state: every line's tag / stamp /
     * owner / valid / dirty plus the replacement clock and the
     * policy's private state. Counters registered via regStats are
     * covered by the stats section, not here.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    // ---- Auditable ----
    std::string_view auditName() const override { return config_.name; }

    /**
     * Invariants: no duplicate valid tags within a set, every valid
     * tag indexes back to the set holding it, dirty state only on
     * valid lines, and (under LRU/FIFO) distinct replacement stamps
     * among the valid ways of a set.
     */
    void audit() const override;

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t stamp = 0;
        int owner = -1;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    CacheConfig config_;
    std::uint64_t numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_; ///< numSets_ * assoc, set-major
    std::unique_ptr<ReplacementPolicy> policy_;
    std::uint64_t accessCounter_ = 0;

    /**
     * LRU/FIFO stamp clock, kept inline so the per-access touch and
     * the victim scan skip the virtual policy dispatch. Produces the
     * same stamp sequence the policy objects would; policy_ is only
     * consulted for Random victims (it owns the RNG state).
     */
    std::uint64_t replClock_ = 0;

    stats::Scalar *statHits_ = nullptr;
    stats::Scalar *statMisses_ = nullptr;
    stats::Scalar *statEvictions_ = nullptr;
    stats::Scalar *statDirtyEvictions_ = nullptr;
};

} // namespace rrm::cache

#endif // RRM_CACHE_CACHE_HH
