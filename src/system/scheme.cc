/**
 * @file
 * Canonical scheme naming and the name -> scheme round-trip.
 */

#include "scheme.hh"

#include <sstream>

#include "common/logging.hh"

namespace rrm::sys
{

std::string
Scheme::name() const
{
    if (kind == SchemeKind::Rrm)
        return "RRM";
    return "Static-" +
           std::to_string(pcm::setIterations(staticMode)) + "-SETs";
}

bool
operator==(const Scheme &a, const Scheme &b)
{
    if (a.kind != b.kind)
        return false;
    return a.kind == SchemeKind::Rrm || a.staticMode == b.staticMode;
}

Scheme
parseScheme(const std::string &name)
{
    for (const Scheme &s : allPaperSchemes()) {
        if (s.name() == name)
            return s;
    }
    std::ostringstream valid;
    for (const Scheme &s : allPaperSchemes())
        valid << (valid.tellp() > 0 ? ", " : "") << s.name();
    fatal("unknown scheme '", name, "' (valid: ", valid.str(), ")");
}

std::vector<Scheme>
allPaperSchemes()
{
    std::vector<Scheme> v;
    for (auto it = pcm::allWriteModes.rbegin();
         it != pcm::allWriteModes.rend(); ++it) {
        v.push_back(Scheme::staticScheme(*it));
    }
    v.push_back(Scheme::rrmScheme());
    return v;
}

std::vector<Scheme>
staticSchemes()
{
    auto v = allPaperSchemes();
    v.pop_back();
    return v;
}

} // namespace rrm::sys
