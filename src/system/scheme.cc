/**
 * @file
 * Canonical scheme naming, the name -> scheme round-trip, and the
 * scheme -> write-policy factory.
 */

#include "scheme.hh"

#include <cctype>
#include <sstream>

#include "common/logging.hh"
#include "policy/adaptive_rrm_policy.hh"
#include "policy/static_policy.hh"
#include "policy/tenant_qos_policy.hh"
#include "rrm/rrm_config.hh"

namespace rrm::sys
{

namespace
{

/** Case-insensitive ASCII string equality. */
bool
equalsIgnoreCase(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

} // namespace

std::string
Scheme::name() const
{
    switch (kind) {
      case SchemeKind::Rrm:
        return "RRM";
      case SchemeKind::AdaptiveRrm:
        return "Adaptive-RRM";
      case SchemeKind::RrmQos:
        return "RRM-QoS";
      case SchemeKind::Static:
        break;
    }
    return "Static-" +
           std::to_string(pcm::setIterations(staticMode)) + "-SETs";
}

std::unique_ptr<policy::WritePolicy>
Scheme::makePolicy(const monitor::RrmConfig &rrm,
                   const policy::AdaptiveRrmConfig &adaptive,
                   const policy::TenantQosConfig &qos,
                   const policy::TenantLayout &layout,
                   EventQueue &queue) const
{
    switch (kind) {
      case SchemeKind::Static:
        return std::make_unique<policy::StaticPolicy>(staticMode);
      case SchemeKind::Rrm:
        return std::make_unique<policy::RrmPolicy>(rrm, queue);
      case SchemeKind::AdaptiveRrm:
        return std::make_unique<policy::AdaptiveRrmPolicy>(rrm, adaptive,
                                                           queue);
      case SchemeKind::RrmQos:
        return std::make_unique<policy::TenantQosPolicy>(
            std::make_unique<policy::RrmPolicy>(rrm, queue), qos, layout,
            queue);
    }
    fatal("scheme has corrupt kind ", static_cast<int>(kind));
}

void
Scheme::collectConfigErrors(const monitor::RrmConfig &rrm,
                            const policy::AdaptiveRrmConfig &adaptive,
                            const policy::TenantQosConfig &qos,
                            double time_scale,
                            std::vector<std::string> &errors) const
{
    if (usesMonitor()) {
        monitor::RrmConfig effective = rrm;
        effective.timeScale = time_scale >= 1.0 ? time_scale : 1.0;
        effective.collectErrors(errors);
        if (kind == SchemeKind::AdaptiveRrm)
            adaptive.collectErrors(errors);
        if (kind == SchemeKind::RrmQos)
            qos.collectErrors(errors);
    } else if (rrm.isCustomized()) {
        errors.push_back("RRM configured but the scheme is " + name() +
                         " (RRM settings would be silently ignored)");
    }
    if (kind != SchemeKind::RrmQos && qos.isCustomized()) {
        errors.push_back("QoS configured but the scheme is " + name() +
                         " (QoS settings would be silently ignored)");
    }
}

bool
operator==(const Scheme &a, const Scheme &b)
{
    if (a.kind != b.kind)
        return false;
    return a.kind != SchemeKind::Static || a.staticMode == b.staticMode;
}

Scheme
parseScheme(const std::string &name)
{
    for (const Scheme &s : allSchemes()) {
        if (equalsIgnoreCase(s.name(), name))
            return s;
    }
    std::ostringstream valid;
    for (const Scheme &s : allSchemes())
        valid << (valid.tellp() > 0 ? ", " : "") << s.name();
    fatal("unknown scheme '", name, "' (valid: ", valid.str(), ")");
}

std::vector<Scheme>
allPaperSchemes()
{
    std::vector<Scheme> v;
    for (auto it = pcm::allWriteModes.rbegin();
         it != pcm::allWriteModes.rend(); ++it) {
        v.push_back(Scheme::staticScheme(*it));
    }
    v.push_back(Scheme::rrmScheme());
    return v;
}

std::vector<Scheme>
allSchemes()
{
    auto v = allPaperSchemes();
    v.push_back(Scheme::adaptiveRrmScheme());
    v.push_back(Scheme::rrmQosScheme());
    return v;
}

std::vector<Scheme>
staticSchemes()
{
    auto v = allPaperSchemes();
    v.pop_back();
    return v;
}

} // namespace rrm::sys
