/**
 * @file
 * The evaluated write-management schemes (paper Table VI).
 *
 * Scheme names are a first-class, canonical API: name() produces the
 * label every table, report, and per-run output file uses
 * ("Static-7-SETs" ... "Static-3-SETs", "RRM"), and parseScheme()
 * inverts it, so callers never maintain their own label tables.
 */

#ifndef RRM_SYSTEM_SCHEME_HH
#define RRM_SYSTEM_SCHEME_HH

#include <string>
#include <vector>

#include "pcm/write_mode.hh"

namespace rrm::sys
{

/** Scheme family. */
enum class SchemeKind : std::uint8_t
{
    Static = 0, ///< Static-N-SETs: one global write mode
    Rrm,        ///< Region Retention Monitor hybrid
};

/** One evaluated scheme. */
struct Scheme
{
    SchemeKind kind = SchemeKind::Static;

    /** Write mode of a Static scheme (ignored for RRM). */
    pcm::WriteMode staticMode = pcm::WriteMode::Sets7;

    /** "Static-7-SETs" ... "Static-3-SETs". */
    static Scheme
    staticScheme(pcm::WriteMode mode)
    {
        Scheme s;
        s.kind = SchemeKind::Static;
        s.staticMode = mode;
        return s;
    }

    /** The RRM hybrid scheme. */
    static Scheme
    rrmScheme()
    {
        Scheme s;
        s.kind = SchemeKind::Rrm;
        return s;
    }

    /**
     * Write mode whose retention sets the global self-refresh
     * interval: the static mode, or the RRM's slow mode (7-SETs).
     */
    pcm::WriteMode
    globalRefreshMode() const
    {
        return kind == SchemeKind::Static ? staticMode
                                          : pcm::WriteMode::Sets7;
    }

    /** Canonical name; parseScheme() inverts it exactly. */
    std::string name() const;
};

/** @{ Value equality (the RRM scheme ignores staticMode). */
bool operator==(const Scheme &a, const Scheme &b);
inline bool
operator!=(const Scheme &a, const Scheme &b)
{
    return !(a == b);
}
/** @} */

/**
 * Parse a canonical scheme name ("RRM", "Static-5-SETs") back into
 * the scheme it names: parseScheme(s.name()) == s for every paper
 * scheme. fatal() on any other string, listing the valid names.
 */
Scheme parseScheme(const std::string &name);

/** All six schemes of Table VI, Static-7 first, RRM last. */
std::vector<Scheme> allPaperSchemes();

/** The five static schemes, Static-7 first. */
std::vector<Scheme> staticSchemes();

} // namespace rrm::sys

#endif // RRM_SYSTEM_SCHEME_HH
