/**
 * @file
 * The evaluated write-management schemes (paper Table VI, plus the
 * adaptive extension).
 *
 * Scheme names are a first-class, canonical API: name() produces the
 * label every table, report, and per-run output file uses
 * ("Static-7-SETs" ... "Static-3-SETs", "RRM", "Adaptive-RRM"), and
 * parseScheme() inverts it (case-insensitively), so callers never
 * maintain their own label tables.
 *
 * A Scheme is also the *factory* for the write policy that realises
 * it: makePolicy() is the only place a SchemeKind is mapped to
 * behaviour — the rest of the simulator talks to the
 * policy::WritePolicy interface and never branches on the kind.
 */

#ifndef RRM_SYSTEM_SCHEME_HH
#define RRM_SYSTEM_SCHEME_HH

#include <memory>
#include <string>
#include <vector>

#include "pcm/write_mode.hh"

namespace rrm
{
class EventQueue;

namespace monitor
{
struct RrmConfig;
}

namespace policy
{
class WritePolicy;
struct AdaptiveRrmConfig;
struct TenantQosConfig;
struct TenantLayout;
} // namespace policy
} // namespace rrm

namespace rrm::sys
{

/** Scheme family. */
enum class SchemeKind : std::uint8_t
{
    Static = 0,  ///< Static-N-SETs: one global write mode
    Rrm,         ///< Region Retention Monitor hybrid
    AdaptiveRrm, ///< RRM with feedback-driven hot_threshold
    RrmQos,      ///< RRM behind a tenant-quota QoS decorator
};

/** One evaluated scheme. */
struct Scheme
{
    SchemeKind kind = SchemeKind::Static;

    /** Write mode of a Static scheme (ignored otherwise). */
    pcm::WriteMode staticMode = pcm::WriteMode::Sets7;

    /** "Static-7-SETs" ... "Static-3-SETs". */
    static Scheme
    staticScheme(pcm::WriteMode mode)
    {
        Scheme s;
        s.kind = SchemeKind::Static;
        s.staticMode = mode;
        return s;
    }

    /** The RRM hybrid scheme. */
    static Scheme
    rrmScheme()
    {
        Scheme s;
        s.kind = SchemeKind::Rrm;
        return s;
    }

    /** The adaptive RRM scheme. */
    static Scheme
    adaptiveRrmScheme()
    {
        Scheme s;
        s.kind = SchemeKind::AdaptiveRrm;
        return s;
    }

    /** The tenant-aware QoS scheme (RRM + per-tenant quotas). */
    static Scheme
    rrmQosScheme()
    {
        Scheme s;
        s.kind = SchemeKind::RrmQos;
        return s;
    }

    /** True for the schemes whose policy owns a RegionMonitor. */
    bool usesMonitor() const { return kind != SchemeKind::Static; }

    /**
     * Write mode whose retention sets the global self-refresh
     * interval: the static mode, or the RRM's slow mode (7-SETs).
     */
    pcm::WriteMode
    globalRefreshMode() const
    {
        return kind == SchemeKind::Static ? staticMode
                                          : pcm::WriteMode::Sets7;
    }

    /** Canonical name; parseScheme() inverts it exactly. */
    std::string name() const;

    /**
     * Build the write policy realising this scheme — the single
     * SchemeKind -> behaviour mapping in the codebase.
     *
     * @param rrm      RRM configuration (monitor-backed schemes).
     * @param adaptive Feedback-law knobs (Adaptive-RRM only).
     * @param qos      Tenant-quota knobs (RRM-QoS only).
     * @param layout   Tenant/address layout (RRM-QoS only).
     * @param queue    Event queue for the policy's periodic tasks.
     */
    std::unique_ptr<policy::WritePolicy>
    makePolicy(const monitor::RrmConfig &rrm,
               const policy::AdaptiveRrmConfig &adaptive,
               const policy::TenantQosConfig &qos,
               const policy::TenantLayout &layout,
               EventQueue &queue) const;

    /**
     * Append one message per scheme-dependent configuration problem:
     * monitor-backed schemes validate `rrm` (and, for Adaptive-RRM,
     * `adaptive`); static schemes reject a customised RRM config that
     * would be silently ignored.
     */
    void collectConfigErrors(const monitor::RrmConfig &rrm,
                             const policy::AdaptiveRrmConfig &adaptive,
                             const policy::TenantQosConfig &qos,
                             double time_scale,
                             std::vector<std::string> &errors) const;
};

/** @{ Value equality (monitor schemes ignore staticMode). */
bool operator==(const Scheme &a, const Scheme &b);
inline bool
operator!=(const Scheme &a, const Scheme &b)
{
    return !(a == b);
}
/** @} */

/**
 * Parse a scheme name ("RRM", "Static-5-SETs", "Adaptive-RRM") back
 * into the scheme it names, ignoring case: parseScheme(s.name()) == s
 * for every scheme. fatal() on any other string, listing every valid
 * name.
 */
Scheme parseScheme(const std::string &name);

/** All six schemes of Table VI, Static-7 first, RRM last. */
std::vector<Scheme> allPaperSchemes();

/** Every scheme: Table VI order, then Adaptive-RRM, then RRM-QoS. */
std::vector<Scheme> allSchemes();

/** The five static schemes, Static-7 first. */
std::vector<Scheme> staticSchemes();

} // namespace rrm::sys

#endif // RRM_SYSTEM_SCHEME_HH
