/**
 * @file
 * The evaluated write-management schemes (paper Table VI).
 */

#ifndef RRM_SYSTEM_SCHEME_HH
#define RRM_SYSTEM_SCHEME_HH

#include <string>
#include <vector>

#include "pcm/write_mode.hh"

namespace rrm::sys
{

/** Scheme family. */
enum class SchemeKind : std::uint8_t
{
    Static = 0, ///< Static-N-SETs: one global write mode
    Rrm,        ///< Region Retention Monitor hybrid
};

/** One evaluated scheme. */
struct Scheme
{
    SchemeKind kind = SchemeKind::Static;

    /** Write mode of a Static scheme (ignored for RRM). */
    pcm::WriteMode staticMode = pcm::WriteMode::Sets7;

    /** "Static-7-SETs" ... "Static-3-SETs". */
    static Scheme
    staticScheme(pcm::WriteMode mode)
    {
        Scheme s;
        s.kind = SchemeKind::Static;
        s.staticMode = mode;
        return s;
    }

    /** The RRM hybrid scheme. */
    static Scheme
    rrmScheme()
    {
        Scheme s;
        s.kind = SchemeKind::Rrm;
        return s;
    }

    /**
     * Write mode whose retention sets the global self-refresh
     * interval: the static mode, or the RRM's slow mode (7-SETs).
     */
    pcm::WriteMode
    globalRefreshMode() const
    {
        return kind == SchemeKind::Static ? staticMode
                                          : pcm::WriteMode::Sets7;
    }

    std::string
    name() const
    {
        if (kind == SchemeKind::Rrm)
            return "RRM";
        return "Static-" +
               std::to_string(pcm::setIterations(staticMode)) + "-SETs";
    }
};

/** All six schemes of Table VI, Static-7 first, RRM last. */
inline std::vector<Scheme>
allSchemes()
{
    std::vector<Scheme> v;
    for (auto it = pcm::allWriteModes.rbegin();
         it != pcm::allWriteModes.rend(); ++it) {
        v.push_back(Scheme::staticScheme(*it));
    }
    v.push_back(Scheme::rrmScheme());
    return v;
}

/** The five static schemes, Static-7 first. */
inline std::vector<Scheme>
staticSchemes()
{
    auto v = allSchemes();
    v.pop_back();
    return v;
}

} // namespace rrm::sys

#endif // RRM_SYSTEM_SCHEME_HH
