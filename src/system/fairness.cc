/**
 * @file
 * Multi-tenant fairness metric computation.
 */

#include "fairness.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rrm::sys
{

FairnessReport
computeFairness(const std::vector<double> &mixed_ipc,
                const std::vector<unsigned> &tenant_of,
                const std::vector<double> &solo_ipc)
{
    RRM_ASSERT(solo_ipc.size() == mixed_ipc.size(),
               "fairness: solo IPC vector size ", solo_ipc.size(),
               " != core count ", mixed_ipc.size());
    RRM_ASSERT(tenant_of.empty() || tenant_of.size() == mixed_ipc.size(),
               "fairness: tenant map size ", tenant_of.size(),
               " != core count ", mixed_ipc.size());

    unsigned num_tenants = 1;
    for (const unsigned t : tenant_of)
        num_tenants = std::max(num_tenants, t + 1);

    FairnessReport report;
    report.tenants.resize(num_tenants);
    std::vector<unsigned> rated(num_tenants, 0);

    for (std::size_t c = 0; c < mixed_ipc.size(); ++c) {
        const unsigned t = tenant_of.empty() ? 0u : tenant_of[c];
        FairnessReport::Tenant &tr = report.tenants[t];
        tr.tenant = t;
        tr.cores.push_back(static_cast<unsigned>(c));
        tr.ipc += mixed_ipc[c];
        if (solo_ipc[c] <= 0.0 || mixed_ipc[c] <= 0.0)
            continue;
        tr.slowdown += solo_ipc[c] / mixed_ipc[c];
        tr.weightedSpeedup += mixed_ipc[c] / solo_ipc[c];
        ++rated[t];
    }

    double min_slowdown = 0.0;
    double max_slowdown = 0.0;
    for (unsigned t = 0; t < num_tenants; ++t) {
        FairnessReport::Tenant &tr = report.tenants[t];
        tr.tenant = t;
        if (rated[t] > 0)
            tr.slowdown /= rated[t];
        report.weightedSpeedup += tr.weightedSpeedup;
        if (tr.slowdown <= 0.0)
            continue;
        if (min_slowdown == 0.0 || tr.slowdown < min_slowdown)
            min_slowdown = tr.slowdown;
        max_slowdown = std::max(max_slowdown, tr.slowdown);
    }
    if (min_slowdown > 0.0)
        report.unfairness = max_slowdown / min_slowdown;
    return report;
}

} // namespace rrm::sys
