/**
 * @file
 * RegionWriteProfiler implementation.
 */

#include "region_profiler.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"
#include "common/logging.hh"
#include "common/math_util.hh"

namespace rrm::sys
{

RegionWriteProfiler::RegionWriteProfiler(
    std::uint64_t region_bytes, std::uint64_t total_regions,
    std::vector<std::uint64_t> interval_boundaries)
    : regionBytes_(region_bytes),
      totalRegions_(total_regions),
      boundaries_(interval_boundaries),
      intervalHist_(std::move(interval_boundaries))
{
    RRM_ASSERT(isPowerOfTwo(regionBytes_),
               "profiler region size must be a power of two");
}

void
RegionWriteProfiler::recordWrite(Addr addr, Tick now)
{
    const std::uint64_t region = addr / regionBytes_;
    RegionInfo &info = regions_[region];
    if (info.count > 0)
        intervalHist_.add(now - info.lastWrite);
    else
        info.firstWrite = now;
    info.lastWrite = now;
    ++info.count;
    ++totalWrites_;
}

std::uint64_t
RegionWriteProfiler::writtenOnceRegions() const
{
    std::uint64_t n = 0;
    for (const auto &[region, info] : regions_)
        if (info.count == 1)
            ++n;
    return n;
}

double
RegionWriteProfiler::hotRegionFraction(double share) const
{
    RRM_ASSERT(share > 0.0 && share <= 1.0, "share out of (0, 1]");
    if (totalWrites_ == 0 || totalRegions_ == 0)
        return 0.0;
    std::vector<std::uint64_t> counts;
    counts.reserve(regions_.size());
    for (const auto &[region, info] : regions_)
        counts.push_back(info.count);
    std::sort(counts.begin(), counts.end(), std::greater<>());
    const auto target = static_cast<std::uint64_t>(
        share * static_cast<double>(totalWrites_));
    std::uint64_t acc = 0;
    std::uint64_t used = 0;
    for (std::uint64_t c : counts) {
        acc += c;
        ++used;
        if (acc >= target)
            break;
    }
    return static_cast<double>(used) /
           static_cast<double>(totalRegions_);
}

std::vector<RegionWriteProfiler::RegionBucket>
RegionWriteProfiler::regionsByMeanInterval() const
{
    // One bucket per interval-histogram bucket; regions written once
    // cannot have an interval and are reported separately by
    // writtenOnceRegions().
    std::vector<RegionBucket> buckets(boundaries_.size() + 1);
    for (const auto &[region, info] : regions_) {
        if (info.count < 2)
            continue;
        const Tick span = info.lastWrite - info.firstWrite;
        const std::uint64_t mean_interval = span / (info.count - 1);
        const auto it = std::upper_bound(boundaries_.begin(),
                                         boundaries_.end(),
                                         mean_interval);
        const auto idx =
            static_cast<std::size_t>(it - boundaries_.begin());
        buckets[idx].regions += 1;
        buckets[idx].writes += info.count;
    }
    return buckets;
}

void
RegionWriteProfiler::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u64(intervalHist_.numBuckets());
    for (std::size_t i = 0; i < intervalHist_.numBuckets(); ++i)
        w.u64(intervalHist_.count(i));
    w.u64(intervalHist_.total());
    w.u64(regions_.size());
    for (const auto &[region, info] : regions_) {
        w.u64(region);
        w.u64(info.firstWrite);
        w.u64(info.lastWrite);
        w.u64(info.count);
    }
    w.u64(totalWrites_);
}

void
RegionWriteProfiler::restoreCkpt(ckpt::ChunkReader &r)
{
    const std::uint64_t buckets = r.u64();
    if (buckets != intervalHist_.numBuckets())
        throw ckpt::CkptError(
            "profiler checkpoint has " + std::to_string(buckets) +
            " interval buckets, this run has " +
            std::to_string(intervalHist_.numBuckets()));
    std::vector<std::uint64_t> counts(buckets);
    for (std::uint64_t i = 0; i < buckets; ++i)
        counts[i] = r.u64();
    intervalHist_.restoreCounts(counts, r.u64());
    regions_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t region = r.u64();
        if (region >= totalRegions_)
            throw ckpt::CkptError(
                "profiler checkpoint region " + std::to_string(region) +
                " outside the studied memory (" +
                std::to_string(totalRegions_) + " regions)");
        RegionInfo &info = regions_[region];
        info.firstWrite = r.u64();
        info.lastWrite = r.u64();
        info.count = r.u64();
    }
    totalWrites_ = r.u64();
}

void
RegionWriteProfiler::reset()
{
    intervalHist_.reset();
    regions_.clear();
    totalWrites_ = 0;
}

} // namespace rrm::sys
