/**
 * @file
 * Per-window measurement accumulators, split out of the System so
 * the event-path code and the results collection share one small
 * struct instead of a scatter of System members.
 */

#ifndef RRM_SYSTEM_MEASUREMENT_HH
#define RRM_SYSTEM_MEASUREMENT_HH

#include <cstdint>
#include <vector>

namespace rrm::sys
{

/**
 * Per-tenant slice of the window accumulators: the operation counts
 * attributable to one tenant's cores/address slices. Energies stay
 * global — the power model is array-wide.
 */
struct TenantCounters
{
    std::uint64_t memReads = 0;
    std::uint64_t fastWrites = 0;
    std::uint64_t slowWrites = 0;
    std::uint64_t fastRefreshes = 0;
    std::uint64_t slowRefreshes = 0;

    std::uint64_t demandWrites() const { return fastWrites + slowWrites; }

    std::uint64_t refreshWrites() const
    {
        return fastRefreshes + slowRefreshes;
    }
};

/**
 * Everything the measurement window accumulates outside the stats
 * tree: energies (Joules), the raw operation counts the lifetime
 * and power models consume, and — on multi-tenant workloads — the
 * per-tenant split of those counts. reset() starts a fresh window
 * (called once, after warmup) and keeps the tenant layout.
 */
struct Measurement
{
    double readEnergy = 0.0;
    double demandWriteEnergy = 0.0;
    double refreshEnergy = 0.0;

    std::uint64_t memReads = 0;
    std::uint64_t fastWrites = 0;
    std::uint64_t slowWrites = 0;
    std::uint64_t fastRefreshes = 0;
    std::uint64_t slowRefreshes = 0;

    /**
     * One entry per tenant on multi-tenant workloads; empty on
     * single-tenant runs, where the global fields above are the only
     * accumulators touched (keeping the hot path and every output
     * byte-identical to the pre-tenant simulator).
     */
    std::vector<TenantCounters> tenants;

    std::uint64_t demandWrites() const { return fastWrites + slowWrites; }

    std::uint64_t refreshWrites() const
    {
        return fastRefreshes + slowRefreshes;
    }

    void
    reset()
    {
        const std::size_t num_tenants = tenants.size();
        *this = Measurement{};
        tenants.assign(num_tenants, TenantCounters{});
    }
};

} // namespace rrm::sys

#endif // RRM_SYSTEM_MEASUREMENT_HH
