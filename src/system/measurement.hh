/**
 * @file
 * Per-window measurement accumulators, split out of the System so
 * the event-path code and the results collection share one small
 * struct instead of a scatter of System members.
 */

#ifndef RRM_SYSTEM_MEASUREMENT_HH
#define RRM_SYSTEM_MEASUREMENT_HH

#include <cstdint>

namespace rrm::sys
{

/**
 * Everything the measurement window accumulates outside the stats
 * tree: energies (Joules) and the raw operation counts the lifetime
 * and power models consume. reset() starts a fresh window (called
 * once, after warmup).
 */
struct Measurement
{
    double readEnergy = 0.0;
    double demandWriteEnergy = 0.0;
    double refreshEnergy = 0.0;

    std::uint64_t memReads = 0;
    std::uint64_t fastWrites = 0;
    std::uint64_t slowWrites = 0;
    std::uint64_t fastRefreshes = 0;
    std::uint64_t slowRefreshes = 0;

    std::uint64_t demandWrites() const { return fastWrites + slowWrites; }

    std::uint64_t refreshWrites() const
    {
        return fastRefreshes + slowRefreshes;
    }

    void reset() { *this = Measurement{}; }
};

} // namespace rrm::sys

#endif // RRM_SYSTEM_MEASUREMENT_HH
