/**
 * @file
 * System checkpoint orchestration (DESIGN.md section 16).
 *
 * The simulator never serializes its event queue. Instead a
 * checkpoint is taken only at a *quiescent point*: cores paused, the
 * queue stepped until every transient obligation (outstanding fills,
 * in-flight channel requests, staged writebacks, pending fault
 * rewrites, read-retry backoffs) has drained, so the only events left
 * are the re-armable periodic tasks (RRM refresh/decay, fault stall
 * and governor, sampler) plus the cores' swallowed advance events.
 * Restore re-creates those from config at their saved next-fire
 * ticks; the event-queue section carries just the clock, the next
 * sequence number, and the executed-event count (the uniform-shift
 * argument on EventQueue::restoreClock).
 *
 * Quiescing perturbs event sequence numbers (a paused core's advance
 * event is swallowed and re-created), so byte-identity holds between
 * two checkpoint-ENABLED runs — the interrupted-and-resumed run and
 * the undisturbed reference — which quiesce at the same absolute
 * epoch boundaries. Default-off runs never quiesce and keep the
 * historical goldens.
 */

#include "system.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace rrm::sys
{

namespace
{

// Section ids, in file order.
constexpr std::uint32_t secQueue = ckpt::sectionId('Q', 'U', 'E', 'U');
constexpr std::uint32_t secSystem = ckpt::sectionId('S', 'Y', 'S', '0');
constexpr std::uint32_t secCores = ckpt::sectionId('C', 'O', 'R', 'E');
constexpr std::uint32_t secCaches = ckpt::sectionId('C', 'A', 'C', 'H');
constexpr std::uint32_t secController =
    ckpt::sectionId('C', 'T', 'R', 'L');
constexpr std::uint32_t secPolicy = ckpt::sectionId('P', 'O', 'L', 'I');
constexpr std::uint32_t secWear = ckpt::sectionId('W', 'E', 'A', 'R');
constexpr std::uint32_t secFault = ckpt::sectionId('F', 'L', 'T', '0');
constexpr std::uint32_t secStats = ckpt::sectionId('S', 'T', 'A', 'T');
constexpr std::uint32_t secSampler = ckpt::sectionId('S', 'M', 'P', 'L');
constexpr std::uint32_t secTelemetry =
    ckpt::sectionId('T', 'E', 'L', 'E');
constexpr std::uint32_t secProfiler =
    ckpt::sectionId('P', 'R', 'O', 'F');

/**
 * Deterministic cap on the quiesce drain. The drain normally needs a
 * few thousand steps (in-flight requests complete within microseconds
 * of simulated time); the cap only exists so a pathological feedback
 * loop skips its checkpoint instead of spinning forever, and it must
 * be a constant so the reference and resumed runs skip identically.
 */
constexpr std::uint64_t drainStepCap = 4'000'000;

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

bool
System::ckptEnabled() const
{
    return config_.checkpointEveryEpochs > 0 &&
           !config_.checkpointDir.empty();
}

std::uint64_t
System::configFingerprint() const
{
    // The run-record config JSON already covers everything that can
    // change results; append the few behaviour-determining knobs it
    // deliberately omits (they alter event scheduling, not results,
    // which is exactly what a checkpoint must agree on).
    std::ostringstream os;
    {
        obs::JsonWriter json(os);
        writeConfigJson(json);
    }
    os << "|delayq=" << (config_.useDelayQueues ? 1 : 0)
       << "|ckptEvery=" << config_.checkpointEveryEpochs
       << "|epochTicks=" << ckptEpochTicks_
       << "|sampler=" << (sampler_ ? sampler_->interval() : 0)
       << "|regionProf=" << (profiler_ ? 1 : 0);
    const std::string s = os.str();

    std::uint64_t h = 1469598103934665603ull; // FNV-1a 64
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

bool
System::ckptQuiescent() const
{
    for (const auto &core : cores_) {
        if (!core->quiescent())
            return false;
    }
    if (outstandingFills_ != 0 || pendingWritebackEvents_ != 0)
        return false;
    if (!writePath_->quiescent())
        return false;
    if (!controller_->quiescent())
        return false;
    if (faultMgr_ && faultMgr_->pendingRewriteEvents() != 0)
        return false;
    if (readRetryDelay_ && !readRetryDelay_->empty())
        return false;
    return true;
}

bool
System::drainToQuiescence()
{
    std::uint64_t steps = 0;
    while (!ckptQuiescent()) {
        if (steps >= drainStepCap || !queue_.step())
            return false;
        ++steps;
    }
    return true;
}

void
System::saveCkptSections(ckpt::CkptWriter &file) const
{
    RRM_ASSERT(ckptQuiescent(),
               "checkpoint outside a quiescent point");

    {
        ckpt::ChunkWriter w;
        w.u64(queue_.now());
        w.u64(queue_.nextSeq());
        w.u64(queue_.eventsExecuted());
        file.section(secQueue, w);
    }
    {
        ckpt::ChunkWriter w;
        w.u64(refreshSeq_);
        w.b(measuring_);
        w.u64(measureStart_);
        w.f64(meas_.readEnergy);
        w.f64(meas_.demandWriteEnergy);
        w.f64(meas_.refreshEnergy);
        w.u64(meas_.memReads);
        w.u64(meas_.fastWrites);
        w.u64(meas_.slowWrites);
        w.u64(meas_.fastRefreshes);
        w.u64(meas_.slowRefreshes);
        w.u32(static_cast<std::uint32_t>(meas_.tenants.size()));
        for (const TenantCounters &tc : meas_.tenants) {
            w.u64(tc.memReads);
            w.u64(tc.fastWrites);
            w.u64(tc.slowWrites);
            w.u64(tc.fastRefreshes);
            w.u64(tc.slowRefreshes);
        }
        for (const std::uint64_t n : tenantRefreshOutstanding_)
            w.u64(n);
        file.section(secSystem, w);
    }
    {
        ckpt::ChunkWriter w;
        w.u32(static_cast<std::uint32_t>(cores_.size()));
        for (const auto &core : cores_)
            core->saveCkpt(w);
        file.section(secCores, w);
    }
    {
        ckpt::ChunkWriter w;
        hierarchy_->saveCkpt(w);
        file.section(secCaches, w);
    }
    {
        ckpt::ChunkWriter w;
        controller_->saveCkpt(w);
        file.section(secController, w);
    }
    {
        ckpt::ChunkWriter w;
        policy_->saveCkpt(w);
        file.section(secPolicy, w);
    }
    {
        ckpt::ChunkWriter w;
        wear_.saveCkpt(w);
        file.section(secWear, w);
    }
    if (faultMgr_) {
        ckpt::ChunkWriter w;
        faultMgr_->saveCkpt(w);
        file.section(secFault, w);
    }
    {
        ckpt::ChunkWriter w;
        statRoot_.saveCkpt(w);
        file.section(secStats, w);
    }
    if (sampler_) {
        ckpt::ChunkWriter w;
        sampler_->saveCkpt(w);
        file.section(secSampler, w);
    }
    if (telemetry_) {
        ckpt::ChunkWriter w;
        telemetry_->saveCkpt(w);
        file.section(secTelemetry, w);
    }
    if (profiler_) {
        ckpt::ChunkWriter w;
        profiler_->saveCkpt(w);
        file.section(secProfiler, w);
    }
}

std::string
System::ckptCompatError(const ckpt::CkptReader &reader) const
{
    const ckpt::CkptHeader &h = reader.header();
    if (h.configFingerprint != configFingerprint()) {
        return "config fingerprint mismatch (file " +
               hex64(h.configFingerprint) + ", this run " +
               hex64(configFingerprint()) + ")";
    }

    std::vector<std::uint32_t> required = {
        secQueue, secSystem,     secCores, secCaches,
        secController, secPolicy, secWear,  secStats};
    if (faultMgr_)
        required.push_back(secFault);
    if (sampler_)
        required.push_back(secSampler);
    if (profiler_)
        required.push_back(secProfiler);
    for (const std::uint32_t id : required) {
        if (!reader.hasSection(id)) {
            return "missing required section " + ckpt::sectionName(id);
        }
    }
    return "";
}

void
System::restoreCkptSections(const ckpt::CkptReader &reader)
{
    // Everything that can make this file unusable is checked before
    // the first mutation, so a caller iterating over candidate files
    // can still fall back to an older one after a throw from here.
    // (Payload CRCs were already verified by the CkptReader.)
    const std::string why = ckptCompatError(reader);
    if (!why.empty())
        throw ckpt::CkptError(reader.name() + ": " + why);

    // Clock first: restoreClock requires the empty pre-start queue,
    // and every re-armed task below schedules against the restored
    // now/sequence counter.
    {
        auto r = reader.section(secQueue);
        const Tick now = r.u64();
        const std::uint64_t next_seq = r.u64();
        const std::uint64_t executed = r.u64();
        r.expectDone();
        queue_.restoreClock(now, next_seq, executed);
    }
    {
        auto r = reader.section(secCores);
        const std::uint32_t n = r.u32();
        if (n != cores_.size()) {
            throw ckpt::CkptError(
                reader.name() + ": core count mismatch (file has " +
                std::to_string(n) + ", this system has " +
                std::to_string(cores_.size()) + ")");
        }
        for (auto &core : cores_)
            core->restoreCkpt(r); // leaves the core paused
        r.expectDone();
    }
    {
        auto r = reader.section(secCaches);
        hierarchy_->restoreCkpt(r);
        r.expectDone();
    }
    {
        auto r = reader.section(secController);
        controller_->restoreCkpt(r);
        r.expectDone();
    }
    {
        auto r = reader.section(secPolicy);
        policy_->restoreCkpt(r); // re-arms monitor refresh/decay
        r.expectDone();
    }
    if (faultMgr_) {
        auto r = reader.section(secFault);
        faultMgr_->restoreCkpt(r); // re-arms stall/governor/sweep
        r.expectDone();
    }
    {
        auto r = reader.section(secStats);
        statRoot_.restoreCkpt(r);
        r.expectDone();
    }
    if (sampler_) {
        auto r = reader.section(secSampler);
        sampler_->restoreCkpt(r); // re-arms the sample task
        r.expectDone();
    }
    {
        auto r = reader.section(secWear);
        wear_.restoreCkpt(r);
        r.expectDone();
    }
    // Telemetry does not influence event scheduling, so a file
    // without the section (saved with telemetry off) is still usable;
    // its counters simply restart from the resume point.
    if (telemetry_ && reader.hasSection(secTelemetry)) {
        auto r = reader.section(secTelemetry);
        telemetry_->restoreCkpt(r);
        r.expectDone();
    }
    if (profiler_) {
        auto r = reader.section(secProfiler);
        profiler_->restoreCkpt(r);
        r.expectDone();
    }
    {
        auto r = reader.section(secSystem);
        refreshSeq_ = r.u64();
        measuring_ = r.b();
        measureStart_ = r.u64();
        meas_.readEnergy = r.f64();
        meas_.demandWriteEnergy = r.f64();
        meas_.refreshEnergy = r.f64();
        meas_.memReads = r.u64();
        meas_.fastWrites = r.u64();
        meas_.slowWrites = r.u64();
        meas_.fastRefreshes = r.u64();
        meas_.slowRefreshes = r.u64();
        const std::uint32_t num_tenants = r.u32();
        if (num_tenants != meas_.tenants.size()) {
            throw ckpt::CkptError(
                "checkpoint has " + std::to_string(num_tenants) +
                " tenants but this config has " +
                std::to_string(meas_.tenants.size()));
        }
        for (TenantCounters &tc : meas_.tenants) {
            tc.memReads = r.u64();
            tc.fastWrites = r.u64();
            tc.slowWrites = r.u64();
            tc.fastRefreshes = r.u64();
            tc.slowRefreshes = r.u64();
        }
        for (std::uint64_t &n : tenantRefreshOutstanding_)
            n = r.u64();
        r.expectDone();
    }
}

void
System::publishCheckpoint(std::uint64_t epoch_index,
                          const std::string &path) const
{
    ckpt::CkptHeader header;
    header.configFingerprint = configFingerprint();
    header.epochIndex = epoch_index;
    header.tick = queue_.now();
    ckpt::CkptWriter file(header);
    saveCkptSections(file);
    file.writeFile(path);
}

std::string
System::checkpointPath(std::uint64_t epoch_index) const
{
    // Zero-padded epoch: plain lexical order is publication order.
    char name[32];
    std::snprintf(name, sizeof name, "ckpt-%08llu.rckpt",
                  static_cast<unsigned long long>(epoch_index));
    return config_.checkpointDir + "/" + name;
}

void
System::quiesceCheckpoint(std::uint64_t epoch_index)
{
    for (auto &core : cores_)
        core->pause();
    if (!drainToQuiescence()) {
        // Deterministic: the reference run skips this epoch too.
        warn_once("ckpt.draincap",
                  "event-queue drain hit its step cap at tick ",
                  queue_.now(), "; skipping the epoch-", epoch_index,
                  " checkpoint");
    } else if (epoch_index % config_.checkpointEveryEpochs == 0) {
        try {
            publishCheckpoint(epoch_index, checkpointPath(epoch_index));
        } catch (const FatalError &e) {
            // An unwritable checkpoint must not kill a healthy run.
            warn("failed to publish the epoch-", epoch_index,
                 " checkpoint: ", e.what(), "; continuing without it");
        }
    }
    for (auto &core : cores_)
        core->unpause();
}

bool
System::checkpointNow(const std::string &path)
{
    for (auto &core : cores_)
        core->pause();
    const bool ok = drainToQuiescence();
    if (ok)
        publishCheckpoint(nextEpochIndex_ - 1, path);
    for (auto &core : cores_)
        core->unpause();
    return ok;
}

void
System::emergencyCheckpoint()
{
    if (!ckptEnabled())
        return;
    // The run is unwinding through SimTimeoutError / Interrupted;
    // cores stay paused afterwards — nothing runs again.
    for (auto &core : cores_)
        core->pause();
    if (!drainToQuiescence()) {
        warn("could not quiesce for a final checkpoint; none written");
        return;
    }
    const std::uint64_t epoch = nextEpochIndex_ - 1;
    char name[40];
    std::snprintf(name, sizeof name, "ckpt-%08llu-final.rckpt",
                  static_cast<unsigned long long>(epoch));
    try {
        publishCheckpoint(epoch, config_.checkpointDir + "/" + name);
    } catch (const FatalError &e) {
        warn("failed to write the final checkpoint: ", e.what());
    }
}

void
System::runCkptSlice(Tick until)
{
    if (!ckptEnabled() || ckptEpochTicks_ == 0) {
        runSlice(until);
        return;
    }
    for (;;) {
        // A drain can overshoot one or more boundaries (it must run
        // in-flight requests to completion); both the reference and
        // the resumed run overshoot identically, and a resume
        // re-derives the next boundary from the restored clock here.
        while (nextEpochIndex_ * ckptEpochTicks_ <= queue_.now())
            ++nextEpochIndex_;
        const Tick boundary = nextEpochIndex_ * ckptEpochTicks_;
        if (boundary >= until) {
            if (queue_.now() < until)
                runSlice(until);
            return;
        }
        runSlice(boundary);
        quiesceCheckpoint(nextEpochIndex_);
        ++nextEpochIndex_;
    }
}

bool
System::tryResume()
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    try {
        for (const auto &entry :
             fs::directory_iterator(config_.checkpointDir)) {
            if (entry.path().extension() == ".rckpt")
                files.push_back(entry.path().string());
        }
    } catch (const fs::filesystem_error &e) {
        warn("cannot scan checkpoint directory ", config_.checkpointDir,
             ": ", e.what(), "; starting cold");
        return false;
    }
    if (files.empty())
        return false;
    std::sort(files.begin(), files.end());

    // Validate every candidate up front (the CkptReader constructor
    // checks all CRCs), then restore the newest usable one. Corrupt,
    // truncated, version-mismatched or incompatible files are warned
    // about once and skipped — fallback instead of failure.
    struct Candidate
    {
        std::unique_ptr<ckpt::CkptReader> reader;
        std::string path;
    };
    std::vector<Candidate> usable;
    for (const std::string &path : files) {
        try {
            auto reader = std::make_unique<ckpt::CkptReader>(path);
            const std::string why = ckptCompatError(*reader);
            if (!why.empty())
                throw ckpt::CkptError(why);
            usable.push_back({std::move(reader), path});
        } catch (const ckpt::CkptError &e) {
            warn_once("ckpt.reject." + path, "ignoring checkpoint ",
                      path, ": ", e.what());
        }
    }
    if (usable.empty()) {
        warn("no usable checkpoint in ", config_.checkpointDir,
             "; starting cold");
        return false;
    }

    std::sort(usable.begin(), usable.end(),
              [](const Candidate &a, const Candidate &b) {
                  const ckpt::CkptHeader &ha = a.reader->header();
                  const ckpt::CkptHeader &hb = b.reader->header();
                  if (ha.tick != hb.tick)
                      return ha.tick > hb.tick;
                  if (ha.epochIndex != hb.epochIndex)
                      return ha.epochIndex > hb.epochIndex;
                  // Same tick and epoch: prefer the periodic file
                  // over its "-final" sibling ('.' sorts after '-'),
                  // keeping the byte-identity guarantee.
                  return a.path > b.path;
              });

    // Errors past this point left the system partially restored and
    // must propagate: the data was CRC-intact and compatible, so a
    // section-level mismatch is a bug, not recoverable corruption.
    const Candidate &best = usable.front();
    restoreCkptSections(*best.reader);
    resumedFromEpoch_ = best.reader->header().epochIndex;
    return true;
}

} // namespace rrm::sys
