/**
 * @file
 * WritePath implementation.
 */

#include "write_path.hh"

#include "common/logging.hh"

namespace rrm::sys
{

WritePath::WritePath(memctrl::Controller &controller, EventQueue &queue,
                     unsigned writeback_cap, Tick retry_interval)
    : controller_(controller), queue_(queue),
      writebackCap_(writeback_cap), retryInterval_(retry_interval),
      writebacks_([this](const PendingWrite &w) {
          return controller_.enqueueWrite(w.addr, w.mode);
      }),
      refreshOverflow_([this](const PendingWrite &w) {
          return controller_.enqueueRefresh(w.addr, w.mode);
      })
{}

void
WritePath::regStats(stats::StatGroup &sys_group)
{
    statWritebackBlocked_ = &sys_group.addScalar(
        "writebackBlocked", "times the writeback buffer filled");
    statRefreshOverflows_ = &sys_group.addScalar(
        "refreshOverflows", "RRM refreshes that found a full queue");
}

void
WritePath::queueWriteback(Addr addr, pcm::WriteMode mode)
{
    writebacks_.push(PendingWrite{addr, mode});
    if (telemetry_ != nullptr)
        telemetry_->writebackOccupancy->add(writebacks_.size());
    if (writebacks_.size() >= writebackCap_ && statWritebackBlocked_)
        ++*statWritebackBlocked_;
    writebacks_.drain();
}

void
WritePath::submitRefresh(Addr addr, pcm::WriteMode mode)
{
    if (controller_.enqueueRefresh(addr, mode))
        return;
    refreshOverflow_.push(PendingWrite{addr, mode});
    if (telemetry_ != nullptr)
        telemetry_->refreshOverflowOccupancy->add(
            refreshOverflow_.size());
    if (statRefreshOverflows_)
        ++*statRefreshOverflows_;
    if (refreshDropped_)
        refreshDropped_(addr);
    warn_once("sys.refreshOverflow",
              "refresh queue full; refresh deferred to the "
              "overflow queue (block ", addr, ")");
    scheduleRefreshRetry();
}

void
WritePath::drainRefreshOverflow()
{
    // A re-entrant call (the drain's sink completed synchronously)
    // leaves the retry arming to the outer drain, as ever.
    if (refreshOverflow_.draining())
        return;
    refreshOverflow_.drain();
    // The refresh obligation must not wait on the next completion
    // alone: keep a next-cycle re-attempt armed while any remains.
    scheduleRefreshRetry();
}

void
WritePath::scheduleRefreshRetry()
{
    if (refreshRetryPending_ || refreshOverflow_.empty())
        return;
    refreshRetryPending_ = true;
    queue_.scheduleAfter(retryInterval_, [this] {
        refreshRetryPending_ = false;
        drainRefreshOverflow();
    });
}

void
WritePath::audit() const
{
    RRM_AUDIT(!writebacks_.draining() && !refreshOverflow_.draining(),
              "drain guard left set outside a drain loop");
    RRM_AUDIT(refreshOverflow_.empty() || refreshRetryPending_,
              "deferred refreshes without an armed retry");
}

} // namespace rrm::sys
