/**
 * @file
 * SimResults JSON export.
 */

#include "results.hh"

#include <sstream>

namespace rrm::sys
{

void
SimResults::toJson(obs::JsonWriter &json) const
{
    json.beginObject();
    json.field("workload", workload);
    json.field("scheme", scheme);
    json.field("windowSeconds", windowSeconds);
    json.field("timeScale", timeScale);

    json.key("instructions");
    json.beginArray();
    for (const auto n : instructions)
        json.value(n);
    json.endArray();
    json.field("totalInstructions", totalInstructions);
    json.key("ipcPerCore");
    json.beginArray();
    for (const auto v : ipcPerCore)
        json.value(v);
    json.endArray();
    json.field("aggregateIpc", aggregateIpc);

    json.field("llcMisses", llcMisses);
    json.field("mpki", mpki);

    json.field("memReads", memReads);
    json.field("demandWrites", demandWrites);
    json.field("fastWrites", fastWrites);
    json.field("slowWrites", slowWrites);
    json.field("fastWriteFraction", fastWriteFraction());
    json.field("rrmFastRefreshes", rrmFastRefreshes);
    json.field("rrmSlowRefreshes", rrmSlowRefreshes);

    json.field("demandWriteRate", demandWriteRate);
    json.field("rrmRefreshRate", rrmRefreshRate);
    json.field("globalRefreshRate", globalRefreshRate);
    json.field("totalWearRate", totalWearRate());
    json.field("lifetimeYears", lifetimeYears);

    json.field("readPower", readPower);
    json.field("demandWritePower", demandWritePower);
    json.field("rrmRefreshPower", rrmRefreshPower);
    json.field("globalRefreshPower", globalRefreshPower);
    json.field("totalPower", totalPower());

    if (!tenants.empty()) {
        json.key("tenants");
        json.beginArray();
        for (const TenantResults &t : tenants) {
            json.beginObject();
            json.field("tenant", t.tenant);
            json.key("cores");
            json.beginArray();
            for (const unsigned c : t.cores)
                json.value(c);
            json.endArray();
            json.field("instructions", t.instructions);
            json.field("ipc", t.ipc);
            json.field("memReads", t.memReads);
            json.field("fastWrites", t.fastWrites);
            json.field("slowWrites", t.slowWrites);
            json.field("fastRefreshes", t.fastRefreshes);
            json.field("slowRefreshes", t.slowRefreshes);
            json.endObject();
        }
        json.endArray();
    }

    if (fault.enabled) {
        json.key("fault");
        json.beginObject();
        json.field("retentionStamps", fault.retentionStamps);
        json.field("retentionViolations", fault.retentionViolations);
        json.field("transientWriteFaults", fault.transientWriteFaults);
        json.field("writeRetries", fault.writeRetries);
        json.field("writesUnrecovered", fault.writesUnrecovered);
        json.field("stuckAtFaults", fault.stuckAtFaults);
        json.field("stuckAtRepaired", fault.stuckAtRepaired);
        json.field("linesRetired", fault.linesRetired);
        json.field("spareExhausted", fault.spareExhausted);
        json.field("refreshDropped", fault.refreshDropped);
        json.field("refreshStalls", fault.refreshStalls);
        json.field("fallbackEntries", fault.fallbackEntries);
        json.field("fallbackExits", fault.fallbackExits);
        json.field("startGapMoves", fault.startGapMoves);
        json.endObject();
    }

    json.key("rrm");
    json.beginObject();
    json.field("registrations", rrmRegistrations);
    json.field("cleanFiltered", rrmCleanFiltered);
    json.field("registrationHits", rrmRegistrationHits);
    json.field("allocations", rrmAllocations);
    json.field("evictions", rrmEvictions);
    json.field("promotions", rrmPromotions);
    json.field("demotions", rrmDemotions);
    json.field("evictionFlushes", rrmEvictionFlushes);
    json.field("hotEntriesAtEnd", rrmHotEntriesAtEnd);
    json.endObject();

    json.endObject();
}

std::string
SimResults::toJsonString() const
{
    std::ostringstream os;
    obs::JsonWriter json(os, /*pretty=*/true);
    toJson(json);
    os << '\n';
    return os.str();
}

} // namespace rrm::sys
