/**
 * @file
 * Region-granularity write-behaviour profiler (paper Table III).
 *
 * Records, for every memory (demand) write, the interval since the
 * previous write to the same aligned region, plus per-region write
 * counts — the data behind the paper's observation that ~2% of 4 KB
 * regions absorb ~97% of writes. Interval bucket boundaries are
 * supplied by the caller so the Table III rows can be reproduced at
 * any time scale.
 */

#ifndef RRM_SYSTEM_REGION_PROFILER_HH
#define RRM_SYSTEM_REGION_PROFILER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/histogram.hh"
#include "common/units.hh"

namespace rrm::ckpt
{
class ChunkWriter;
class ChunkReader;
} // namespace rrm::ckpt

namespace rrm::sys
{

/** Collects Table III-style region write statistics. */
class RegionWriteProfiler
{
  public:
    /**
     * @param region_bytes       Region granularity (4 KB).
     * @param total_regions      Regions in the studied memory.
     * @param interval_boundaries Histogram boundaries (ticks).
     */
    RegionWriteProfiler(std::uint64_t region_bytes,
                        std::uint64_t total_regions,
                        std::vector<std::uint64_t> interval_boundaries);

    /** Record a memory write to `addr` at time `now`. */
    void recordWrite(Addr addr, Tick now);

    /** Write-count-weighted interval histogram (Table III rows). */
    const BoundedHistogram &intervalHistogram() const
    {
        return intervalHist_;
    }

    /** Number of regions receiving at least one write. */
    std::uint64_t writtenRegions() const { return regions_.size(); }

    /** Regions written exactly once. */
    std::uint64_t writtenOnceRegions() const;

    /** Regions never written. */
    std::uint64_t
    neverWrittenRegions() const
    {
        return totalRegions_ - writtenRegions();
    }

    std::uint64_t totalRegions() const { return totalRegions_; }
    std::uint64_t totalWrites() const { return totalWrites_; }

    /**
     * Smallest fraction of (written) regions that receives at least
     * `share` of all writes — the hot-region concentration metric
     * behind Section III-C ("~2% of memory gets 97% of writes").
     */
    double hotRegionFraction(double share) const;

    /**
     * Per-region interval histogram: classifies each *region* by its
     * average write interval and reports (regions, writes) per bucket,
     * exactly like Table III. Bucket i covers the same boundaries as
     * the interval histogram.
     */
    struct RegionBucket
    {
        std::uint64_t regions = 0;
        std::uint64_t writes = 0;
    };
    std::vector<RegionBucket> regionsByMeanInterval() const;

    void reset();

    /**
     * @{ Checkpoint the interval histogram counts, the per-region
     * write records, and the total. Bucket boundaries and region
     * geometry are construction state and must match on restore.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

  private:
    struct RegionInfo
    {
        Tick firstWrite = 0;
        Tick lastWrite = 0;
        std::uint64_t count = 0;
    };

    std::uint64_t regionBytes_;
    std::uint64_t totalRegions_;
    std::vector<std::uint64_t> boundaries_;
    BoundedHistogram intervalHist_;
    /** Ordered so every reduction that reaches exported Table III
     *  rows iterates in region-index order (rrm-lint determinism). */
    std::map<std::uint64_t, RegionInfo> regions_;
    std::uint64_t totalWrites_ = 0;
};

} // namespace rrm::sys

#endif // RRM_SYSTEM_REGION_PROFILER_HH
