/**
 * @file
 * Full-system assembly: cores + caches + the scheme's write policy +
 * PCM memory controller, plus the measurement machinery that turns
 * one run into a SimResults record.
 *
 * The System is deliberately thin: per-write decisions live behind
 * policy::WritePolicy (built by Scheme::makePolicy), staging-queue
 * mechanics live in WritePath, and window accumulators live in
 * Measurement. The System wires them together and runs the event
 * loop.
 */

#ifndef RRM_SYSTEM_SYSTEM_HH
#define RRM_SYSTEM_SYSTEM_HH

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cpu/core_model.hh"
#include "fault/fault_manager.hh"
#include "memctrl/controller.hh"
#include "obs/obs_config.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/telemetry.hh"
#include "pcm/energy_model.hh"
#include "pcm/lifetime_model.hh"
#include "pcm/wear_tracker.hh"
#include "policy/adaptive_config.hh"
#include "policy/tenant_qos_policy.hh"
#include "policy/write_policy.hh"
#include "sim/delay_queue.hh"
#include "system/measurement.hh"
#include "system/region_profiler.hh"
#include "system/results.hh"
#include "system/scheme.hh"
#include "system/write_path.hh"
#include "trace/workload.hh"

namespace rrm::ckpt
{
class CkptWriter;
class CkptReader;
} // namespace rrm::ckpt

namespace rrm::sys
{

/**
 * Thrown by System::run when the run exceeds its wall-clock timeout
 * (SystemConfig::wallTimeoutSeconds). The run::Runner catches it and
 * records the run as timed out instead of failing the whole plan.
 */
class SimTimeoutError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Thrown by System::run when a graceful stop was requested
 * (common/interrupt.hh — a SIGINT/SIGTERM handler or the embedding
 * application). Before it propagates, run() writes a final
 * best-effort checkpoint when checkpointing is configured.
 */
class SimInterruptedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** How RRM refresh requests interact with the timing model. */
enum class RefreshTimingMode : std::uint8_t
{
    /**
     * Rate-corrected (default): with retention intervals compressed
     * `timeScale x`, only one of every `timeScale` refreshes enters
     * the timing queues, restoring the real-time refresh bandwidth;
     * all of them count for wear/energy. See DESIGN.md section 3.
     */
    RateCorrected = 0,

    /** Every refresh enters the timing queues (native-scale runs). */
    Detailed,

    /** Refreshes are counted but never enter the timing queues. */
    CountOnly,
};

/** Everything needed to build and run one simulation. */
struct SystemConfig
{
    trace::Workload workload;
    Scheme scheme = Scheme::staticScheme(pcm::WriteMode::Sets7);

    cpu::CoreParams core;
    cache::HierarchyConfig hierarchy = cache::defaultHierarchyConfig();
    memctrl::MemoryParams memory;
    monitor::RrmConfig rrm; ///< used only when scheme.usesMonitor()

    /** Feedback-law knobs; used only by the Adaptive-RRM scheme. */
    policy::AdaptiveRrmConfig adaptive;

    /** Tenant-quota knobs; used only by the RRM-QoS scheme. */
    policy::TenantQosConfig qos;

    /**
     * Retention-interval compression (DESIGN.md section 3). 50 with
     * the default 100 ms window represents the paper's 5 s run while
     * keeping the scaled retention interval (40 ms) well above the
     * LLC residency timescale (~3 ms) that gates the RRM's
     * dirty-write filter.
     */
    double timeScale = 50.0;

    /** Simulated window, in (scaled) seconds. */
    double windowSeconds = 0.100;

    /** Leading fraction of the window excluded from measurement. */
    double warmupFraction = 0.2;

    RefreshTimingMode refreshTiming = RefreshTimingMode::RateCorrected;

    /** LLC writeback buffer entries (dirty victims awaiting a queue). */
    unsigned writebackBufferCap = 16;

    pcm::LifetimeParams lifetime;
    pcm::EnergyParams energy;

    /** Enable the Table III region write profiler. */
    bool profileRegionWrites = false;

    /**
     * Fault-injection and graceful-degradation knobs. Disabled by
     * default; the System then contains no FaultManager and all
     * outputs are byte-identical to a build without the fault layer.
     */
    fault::FaultConfig fault;

    /**
     * Wall-clock budget for run() in seconds; exceeded budgets raise
     * SimTimeoutError between event batches. 0 disables the check.
     */
    double wallTimeoutSeconds = 0.0;

    /**
     * Crash-safe checkpointing (DESIGN.md section 16). When > 0 the
     * run quiesces at EVERY policy epoch boundary (the policy's
     * preferred sample interval; the RRM decay tick) and publishes a
     * .rckpt file into checkpointDir at every checkpointEveryEpochs-th
     * epoch. 0 (the default) disables the whole mechanism and leaves
     * event scheduling untouched — existing goldens are unaffected.
     *
     * Byte-identity contract: a checkpoint-enabled run killed and
     * resumed from any published checkpoint produces the same final
     * run record as the same checkpoint-enabled run left undisturbed,
     * because both quiesce at the same epoch ticks.
     */
    std::uint64_t checkpointEveryEpochs = 0;

    /** Directory .rckpt files are published into (must exist). */
    std::string checkpointDir;

    /**
     * Restore the newest valid checkpoint in checkpointDir before
     * running; corrupt or incompatible files fall back to the next
     * older one, and an empty directory falls back to a cold start.
     * Requires checkpointEveryEpochs > 0 (the resumed run must keep
     * the interrupted run's quiesce cadence).
     */
    bool resumeFromCheckpoint = false;

    /**
     * Observability outputs (tracing, sampling, run record, wall-clock
     * self-profiling). All off by default; see obs/obs_config.hh.
     */
    obs::ObsOptions obs;

    /**
     * Deep-audit cadence: after every `auditEveryEvents` executed
     * events, run the audit() of every Auditable component (event
     * queue, cache hierarchy, memory controller, RRM, write path,
     * wear tracker). 0 disables periodic audits. Violations follow
     * the global check::FailurePolicy and are exported via the
     * "checks" and "sys.audit*" stats.
     */
    std::uint64_t auditEveryEvents = 0;

    /**
     * Optional user-supplied per-core profiles. When non-empty (must
     * then have one entry per core), these override the workload's
     * Table VII benchmark profiles; the pointed-to profiles must
     * outlive the System. This is the seam for evaluating custom
     * application mixes (see examples/custom_workload.cpp).
     */
    std::vector<const trace::BenchmarkProfile *> customProfiles;

    std::uint64_t seed = 1;

    /**
     * How cores obtain their instruction streams. All three modes
     * produce byte-identical streams for a given (profile, seed);
     * they differ only in where the records come from (see
     * trace/source.hh). None of these fields enter the run-record
     * config JSON: they cannot change results.
     */
    trace::TraceMode traceMode = trace::TraceMode::Generate;

    /**
     * Shared materialized-stream cache; required when traceMode is
     * Materialized, ignored otherwise. Not owned; must outlive the
     * System. Sharing one cache across the runs of a plan is the
     * point — each distinct (profile, seed) stream is generated once.
     */
    trace::TraceCache *traceCache = nullptr;

    /** Replay-prefix length per stream in Materialized mode. */
    std::uint64_t traceCacheCapRecords =
        trace::MaterializedTrace::defaultCapRecords;

    /**
     * Route the fixed-latency read-retry backoff through a DelayQueue
     * (sim/delay_queue.hh) instead of per-item central-queue events.
     * Event *counts* are identical either way (coalesced deliveries
     * are credited); delivery *order* can differ when an unrelated
     * same-tick event lands between two retries, so this is off by
     * default and the golden records pin the central-queue schedule.
     * Not emitted in the run-record config JSON.
     */
    bool useDelayQueues = false;

    /**
     * Directory of .rtp packs; required when traceMode is Pack.
     * Core c replays "<profile>-c<c>.rtp" (tools/trace-pack writes
     * this layout) after validating the pack's seed and profile.
     */
    std::string tracePackDir;

    /**
     * Check every configuration constraint and return one message per
     * violation (empty = valid). Unlike failing fast deep inside
     * construction, this aggregates *all* problems — a bad sweep
     * config is diagnosed in one pass. Called by finalize() (and thus
     * the System constructor) and by run::RunPlan::validate().
     */
    std::vector<std::string> validate() const;

    /**
     * Fill derived fields (rrm.timeScale) and validate; throws one
     * FatalError carrying every validation failure.
     */
    void finalize();
};

/** One fully wired simulated machine. */
class System : public cpu::CorePort
{
  public:
    explicit System(SystemConfig config);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run warmup + measurement; return the collected results. */
    SimResults run();

    /**
     * Quiesce (pause cores, drain the event queue of everything but
     * re-armable periodic events) and publish one checkpoint to
     * `path`, then resume. Used by tests; run() drives the periodic
     * epoch-boundary checkpoints itself.
     *
     * @return false when the drain failed to reach quiescence within
     *         its deterministic step cap (no file is written).
     */
    bool checkpointNow(const std::string &path);

    /**
     * Epoch index of the checkpoint this run resumed from (0 = cold
     * start). Valid after run() begins.
     */
    std::uint64_t resumedFromEpoch() const { return resumedFromEpoch_; }

    /**
     * Deep-audit every component now (also runs periodically when
     * SystemConfig::auditEveryEvents > 0).
     * @return Violations recorded by this round (always 0 under
     *         FailurePolicy::Throw/Abort — the first one escapes).
     */
    std::uint64_t runAudits();

    /** The Table III profiler (nullptr unless enabled). */
    const RegionWriteProfiler *regionProfiler() const
    {
        return profiler_.get();
    }

    /** The scheme's write policy (always present). */
    const policy::WritePolicy &writePolicy() const { return *policy_; }

    /** The policy's RRM (nullptr for monitor-less policies). */
    const monitor::RegionMonitor *rrm() const
    {
        return policy_->monitor();
    }

    /** The staging queues between LLC/policy and the controller. */
    const WritePath &writePath() const { return *writePath_; }

    /** The fault layer (nullptr unless config.fault.enabled()). */
    const fault::FaultManager *faultManager() const
    {
        return faultMgr_.get();
    }

    const SystemConfig &config() const { return config_; }
    const stats::StatGroup &statRoot() const { return statRoot_; }
    EventQueue &eventQueue() { return queue_; }

    /** @{ Observability objects (null unless enabled in config.obs). */
    obs::TraceSink *traceSink() { return traceSink_.get(); }
    const obs::Sampler *sampler() const { return sampler_.get(); }
    const obs::Profiler *selfProfiler() const
    {
        return selfProfiler_.get();
    }
    const obs::Telemetry *telemetry() const { return telemetry_.get(); }
    /** @} */

    /**
     * Write the full machine-readable record of a finished run:
     * schema version, build metadata, configuration, derived results,
     * the entire stats tree, and (when profiling) the wall-clock
     * profile. Called automatically for config.obs.runRecordFile.
     */
    void writeRunRecord(std::ostream &os, const SimResults &r) const;

    // ---- CorePort ----
    bool requestFill(unsigned core, Addr line, bool is_write,
                     Tick when) override;
    void handleAccessEvents(unsigned core,
                            const cache::HierarchyEvents &ev,
                            Tick when) override;

  private:
    void buildCores();
    void setupObservability();
    void writeObsOutputs(const SimResults &r);
    void writeConfigJson(obs::JsonWriter &json) const;
    void runSlice(Tick until);
    void tryEnqueueRead(unsigned core, Addr line);
    void onReadComplete(unsigned core, Addr line);
    void issueMemoryWrite(Addr addr, Tick when);
    void onPolicyRefresh(const monitor::RefreshRequest &req);
    void retryFaultedWrite(Addr addr, pcm::WriteMode mode);
    bool refreshPathSaturated() const;
    double refreshPressure() const;

    /** @{ Per-tenant accounting; null on single-tenant workloads. */
    TenantCounters *tenantCountersForAddr(Addr addr);
    TenantCounters *tenantCountersForCore(unsigned core);
    /** @} */
    void wakeCores();
    void resetMeasurement();
    SimResults collectResults(Tick measure_start, Tick measure_end);

    /** @{ Checkpoint orchestration (system_ckpt.cc). */
    /** True when checkpointing is configured on this run. */
    bool ckptEnabled() const;

    /** Hash of the behaviour-determining configuration. */
    std::uint64_t configFingerprint() const;

    /** All transient event-queue obligations drained? */
    bool ckptQuiescent() const;

    /**
     * Step the event queue (cores paused) until ckptQuiescent() or a
     * deterministic step cap; false when the cap was hit.
     */
    bool drainToQuiescence();

    /** Serialize every section into `file` (requires quiescence). */
    void saveCkptSections(ckpt::CkptWriter &file) const;

    /** Restore every section; throws ckpt::CkptError on mismatch. */
    void restoreCkptSections(const ckpt::CkptReader &reader);

    /** Serialize + atomically publish one file (requires quiescence). */
    void publishCheckpoint(std::uint64_t epoch_index,
                           const std::string &path) const;

    /** Non-empty = why `reader` cannot restore into this System. */
    std::string ckptCompatError(const ckpt::CkptReader &reader) const;

    /** Pause + drain + (maybe) publish the epoch file + unpause. */
    void quiesceCheckpoint(std::uint64_t epoch_index);

    /** Best-effort final checkpoint on timeout / interrupt. */
    void emergencyCheckpoint();

    /** runSlice with epoch-boundary quiesces interleaved. */
    void runCkptSlice(Tick until);

    /** Published path of the epoch-`index` checkpoint file. */
    std::string checkpointPath(std::uint64_t epoch_index) const;

    /** Restore the newest valid checkpoint; false = cold start. */
    bool tryResume();
    /** @} */

    SystemConfig config_;
    EventQueue queue_;

    /** Read-retry backoff hop (only when config_.useDelayQueues). */
    std::unique_ptr<DelayQueue> readRetryDelay_;
    stats::StatGroup statRoot_;

    std::unique_ptr<cache::CacheHierarchy> hierarchy_;
    std::unique_ptr<memctrl::Controller> controller_;
    std::unique_ptr<WritePath> writePath_;
    std::unique_ptr<policy::WritePolicy> policy_;
    std::unique_ptr<fault::FaultManager> faultMgr_;
    std::vector<std::unique_ptr<cpu::CoreModel>> cores_;

    pcm::WearTracker wear_;
    pcm::EnergyModel energy_;
    std::unique_ptr<RegionWriteProfiler> profiler_;

    // Observability (see config_.obs; all optional).
    std::unique_ptr<obs::TraceSink> traceSink_;
    std::unique_ptr<obs::Sampler> sampler_;
    std::unique_ptr<obs::Profiler> selfProfiler_;
    std::unique_ptr<obs::Telemetry> telemetry_;

    // Global fill (LLC MSHR) accounting.
    unsigned outstandingFills_ = 0;

    // Writebacks accounted but still riding a scheduled event toward
    // WritePath::queueWriteback (quiescence must wait them out: the
    // event's capture is state no checkpoint section covers).
    unsigned pendingWritebackEvents_ = 0;

    // Wall-clock deadline for run(), in obs::monotonicSeconds()
    // terms (wallTimeoutSeconds > 0).
    double runDeadline_ = 0.0;

    // Rate-correction rotation counter.
    std::uint64_t refreshSeq_ = 0;
    std::uint64_t timeScaleInt_ = 1;

    // Measurement accumulators (reset after warmup).
    Measurement meas_;

    // Tenant layout of the workload (tenantOf empty = one tenant).
    policy::TenantLayout tenantLayout_;

    // Per-tenant outstanding timing-visible refreshes; sized only on
    // multi-tenant workloads (empty = no tenant accounting at all).
    std::vector<std::uint64_t> tenantRefreshOutstanding_;

    // Checkpoint orchestration (config_.checkpointEveryEpochs > 0).
    Tick ckptEpochTicks_ = 0;        ///< quiesce cadence (0 = off)
    std::uint64_t nextEpochIndex_ = 1;
    bool measuring_ = false;         ///< past the warmup reset
    Tick measureStart_ = 0;          ///< queue tick of the reset
    std::uint64_t resumedFromEpoch_ = 0; ///< 0 = cold start

    stats::Scalar *statFillRefusals_ = nullptr;
    stats::Scalar *statAuditRounds_ = nullptr;
    stats::Scalar *statAuditViolations_ = nullptr;
};

} // namespace rrm::sys

#endif // RRM_SYSTEM_SYSTEM_HH
