/**
 * @file
 * System implementation.
 */

#include "system.hh"

#include <fstream>

#include "common/atomic_file.hh"

#include "common/auditable.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "obs/perfetto.hh"
#include "obs/run_record.hh"
#include "obs/stat_writers.hh"
#include "stats/check_stats.hh"

namespace rrm::sys
{

std::vector<std::string>
SystemConfig::validate() const
{
    std::vector<std::string> errors;
    if (workload.name.empty())
        errors.push_back("system config has no workload");
    if (workload.perCore.empty()) {
        errors.push_back("workload selects zero cores");
    } else if (hierarchy.numCores != workload.numCores()) {
        errors.push_back("hierarchy has " +
                         std::to_string(hierarchy.numCores) +
                         " cores but the workload names " +
                         std::to_string(workload.numCores()));
    }
    trace::collectTenantErrors(workload, errors);
    if (timeScale < 1.0)
        errors.push_back("time scale must be >= 1");
    if (windowSeconds <= 0.0)
        errors.push_back("window must be positive");
    if (warmupFraction < 0.0 || warmupFraction >= 1.0)
        errors.push_back("warmup fraction must be in [0, 1)");

    scheme.collectConfigErrors(rrm, adaptive, qos, timeScale, errors);

    fault.collectErrors(errors, memory.refreshQueueCap);
    if (wallTimeoutSeconds < 0.0)
        errors.push_back("wall-clock timeout must be >= 0");
    if (checkpointEveryEpochs > 0 && checkpointDir.empty())
        errors.push_back(
            "checkpointEveryEpochs > 0 requires a checkpointDir");
    if (resumeFromCheckpoint && checkpointEveryEpochs == 0) {
        errors.push_back(
            "resumeFromCheckpoint requires checkpointEveryEpochs > 0 "
            "(the resumed run must keep the quiesce cadence)");
    }
    if (traceMode == trace::TraceMode::Materialized && !traceCache)
        errors.push_back(
            "traceMode Materialized requires a traceCache");
    if (traceMode == trace::TraceMode::Pack && tracePackDir.empty())
        errors.push_back("traceMode Pack requires tracePackDir");

    if (!customProfiles.empty() &&
        customProfiles.size() != hierarchy.numCores) {
        errors.push_back("customProfiles supplies " +
                         std::to_string(customProfiles.size()) +
                         " profiles but hierarchy.numCores is " +
                         std::to_string(hierarchy.numCores));
    } else if (!workload.perCore.empty() &&
               hierarchy.numCores == workload.numCores() &&
               hierarchy.numCores > 0) {
        const std::uint64_t slice =
            memory.memoryBytes / hierarchy.numCores;
        for (unsigned c = 0; c < hierarchy.numCores; ++c) {
            const auto &profile =
                customProfiles.empty()
                    ? trace::benchmarkProfile(workload.perCore[c])
                    : *customProfiles[c];
            if (profile.footprintBytes() > slice) {
                errors.push_back("benchmark " +
                                 std::string(profile.name) +
                                 " footprint exceeds the " +
                                 std::to_string(slice) +
                                 "-byte per-core slice");
            }
        }
    }
    return errors;
}

void
SystemConfig::finalize()
{
    const std::vector<std::string> errors = validate();
    if (!errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += (joined.empty() ? "" : "; ") + e;
        fatal("invalid system config (", errors.size(),
              " problem(s)): ", joined);
    }
    rrm.timeScale = timeScale;
}

System::System(SystemConfig config)
    : config_(std::move(config)),
      statRoot_("system"),
      wear_(config_.memory.memoryBytes, 4_KiB,
            config_.memory.blockBytes),
      energy_(config_.energy)
{
    config_.finalize();
    timeScaleInt_ = static_cast<std::uint64_t>(config_.timeScale);
    if (timeScaleInt_ < 1)
        timeScaleInt_ = 1;

    if (config_.useDelayQueues)
        readRetryDelay_ = std::make_unique<DelayQueue>(queue_, 100_ns);

    hierarchy_ =
        std::make_unique<cache::CacheHierarchy>(config_.hierarchy);
    controller_ =
        std::make_unique<memctrl::Controller>(config_.memory, queue_);
    writePath_ = std::make_unique<WritePath>(
        *controller_, queue_, config_.writebackBufferCap,
        config_.memory.busCycle);

    controller_->setWriteIssuedHook([this] {
        writePath_->drainWritebacks();
        wakeCores();
    });
    controller_->setCompletionHook(
        [this](const memctrl::Request &req, Tick when) {
            if (req.kind == memctrl::ReqKind::RrmRefresh) {
                if (faultMgr_) {
                    faultMgr_->onRefreshCompleted(req.addr, req.mode,
                                                  when);
                }
                if (!tenantRefreshOutstanding_.empty()) {
                    auto &n = tenantRefreshOutstanding_
                        [tenantLayout_.tenantOfAddr(req.addr)];
                    if (n > 0)
                        --n;
                }
                writePath_->drainRefreshOverflow();
            } else if (req.kind == memctrl::ReqKind::Write &&
                       faultMgr_) {
                faultMgr_->onWriteCompleted(req.addr, req.mode, when);
            }
        });

    tenantLayout_.tenantOf = config_.workload.tenantOf;
    tenantLayout_.coreSliceBytes =
        config_.memory.memoryBytes / config_.hierarchy.numCores;
    if (config_.workload.multiTenant()) {
        meas_.tenants.assign(config_.workload.numTenants(),
                             TenantCounters{});
        tenantRefreshOutstanding_.assign(config_.workload.numTenants(),
                                         0);
    }

    policy_ = config_.scheme.makePolicy(config_.rrm, config_.adaptive,
                                        config_.qos, tenantLayout_,
                                        queue_);
    policy_->setRefreshCallback(
        [this](const monitor::RefreshRequest &req) {
            onPolicyRefresh(req);
        });
    policy_->setPressureProbe([this] { return refreshPressure(); });

    if (config_.fault.enabled()) {
        faultMgr_ = std::make_unique<fault::FaultManager>(
            config_.fault, config_.memory, config_.timeScale,
            config_.seed, queue_, *controller_, wear_, policy_.get());
        faultMgr_->setRewriteCallback(
            [this](Addr addr, pcm::WriteMode mode) {
                retryFaultedWrite(addr, mode);
            });
        writePath_->setRefreshDroppedCallback(
            [this](Addr addr) { faultMgr_->onRefreshDropped(addr); });
        if (policy_->supportsPressureFallback()) {
            policy_->setQueueSaturationProbe(
                [this] { return refreshPathSaturated(); });
        }
    }

    if (config_.profileRegionWrites) {
        // Table III interval buckets, compressed by the time scale:
        // the paper's 1e6..1e9 ns and 1 s / 2 s rows.
        const double s = config_.timeScale;
        std::vector<std::uint64_t> bounds;
        for (double b : {1e6, 1e7, 1e8, 1e9, 2e9}) {
            bounds.push_back(
                static_cast<std::uint64_t>(b * tickPerNs / s));
        }
        profiler_ = std::make_unique<RegionWriteProfiler>(
            4_KiB, config_.memory.memoryBytes / 4_KiB,
            std::move(bounds));
    }

    hierarchy_->regStats(statRoot_);
    controller_->regStats(statRoot_);
    policy_->regStats(statRoot_);
    if (faultMgr_)
        faultMgr_->regStats(statRoot_);

    auto &g = statRoot_.addChild("sys");
    statFillRefusals_ =
        &g.addScalar("fillRefusals", "fills refused by backpressure");
    writePath_->regStats(g);
    statAuditRounds_ =
        &g.addScalar("auditRounds", "deep-audit rounds executed");
    statAuditViolations_ = &g.addScalar(
        "auditViolations", "invariant violations found by audits");
    stats::registerCheckViolationStats(statRoot_);

    if (!meas_.tenants.empty()) {
        // Per-tenant window counters: formulas over the Measurement
        // accumulators, so the hot path increments exactly one place.
        stats::StatGroup &tg = statRoot_.addChild("tenant");
        for (unsigned t = 0;
             t < static_cast<unsigned>(meas_.tenants.size()); ++t) {
            stats::StatGroup &gt = tg.addChild(std::to_string(t));
            gt.addFormula("memReads", "memory reads by the tenant",
                          [this, t] {
                              return static_cast<double>(
                                  meas_.tenants[t].memReads);
                          });
            gt.addFormula("fastWrites",
                          "fast-mode demand writes by the tenant",
                          [this, t] {
                              return static_cast<double>(
                                  meas_.tenants[t].fastWrites);
                          });
            gt.addFormula("slowWrites",
                          "slow-mode demand writes by the tenant",
                          [this, t] {
                              return static_cast<double>(
                                  meas_.tenants[t].slowWrites);
                          });
            gt.addFormula("fastRefreshes",
                          "fast-mode refreshes in the tenant's slices",
                          [this, t] {
                              return static_cast<double>(
                                  meas_.tenants[t].fastRefreshes);
                          });
            gt.addFormula("slowRefreshes",
                          "slow-mode refreshes in the tenant's slices",
                          [this, t] {
                              return static_cast<double>(
                                  meas_.tenants[t].slowRefreshes);
                          });
            gt.addFormula("refreshOutstanding",
                          "timing-visible refreshes in flight",
                          [this, t] {
                              return static_cast<double>(
                                  tenantRefreshOutstanding_[t]);
                          });
        }
    }

    buildCores();
    setupObservability();

    if (config_.checkpointEveryEpochs > 0) {
        // Epoch = the policy's preferred sample interval (the RRM
        // decay tick), so every quiescent point sits just after a
        // settled decay epoch; monitor-less policies fall back to the
        // paper's native 0.125 s tick compressed by the time scale.
        ckptEpochTicks_ = policy_->preferredSampleInterval();
        if (ckptEpochTicks_ == 0)
            ckptEpochTicks_ = secondsToTicks(0.125 / config_.timeScale);
    }
}

System::~System() = default;

void
System::setupObservability()
{
    const obs::ObsOptions &o = config_.obs;

    if (!o.traceFile.empty() || !o.perfettoFile.empty()) {
        traceSink_ = std::make_unique<obs::TraceSink>(
            o.traceRingCapacity, o.traceCategories);
        std::unique_ptr<obs::TraceWriter> writer;
        if (!o.traceFile.empty())
            writer = obs::openTraceFile(o.traceFile, o.traceText);
        if (!o.perfettoFile.empty()) {
            auto perfetto = obs::openPerfettoFile(o.perfettoFile);
            writer = writer
                         ? std::make_unique<obs::TeeTraceWriter>(
                               std::move(writer), std::move(perfetto))
                         : std::move(perfetto);
        }
        traceSink_->setWriter(std::move(writer));
        controller_->setTraceSink(traceSink_.get());
        policy_->setTraceSink(traceSink_.get());
        if (faultMgr_)
            faultMgr_->setTraceSink(traceSink_.get());
    }

    if (o.telemetryEnabled()) {
        telemetry_ = std::make_unique<obs::Telemetry>();
        queue_.setTelemetry(telemetry_->queueHooks());
        writePath_->setTelemetry(telemetry_->writePathHooks());
    }

    if (o.profiling) {
        selfProfiler_ = std::make_unique<obs::Profiler>();
        policy_->setProfiler(selfProfiler_.get());
    }

    const bool want_sampling = o.sampleIntervalSeconds != 0.0 ||
                               !o.sampleCsvFile.empty() ||
                               !o.sampleJsonlFile.empty();
    if (!want_sampling)
        return;

    // Negative (and the 0-but-file-requested case) selects the
    // policy's preferred cadence (the RRM decay tick, so every sample
    // row observes exactly one settled decay epoch); policies without
    // one fall back to the paper's native 0.125 s tick compressed by
    // the time scale.
    Tick interval;
    if (o.sampleIntervalSeconds > 0.0) {
        interval = secondsToTicks(o.sampleIntervalSeconds);
    } else {
        interval = policy_->preferredSampleInterval();
        if (interval == 0)
            interval = secondsToTicks(0.125 / config_.timeScale);
    }
    sampler_ = std::make_unique<obs::Sampler>(queue_, interval);
    sampler_->setTraceSink(traceSink_.get());

    sampler_->addColumn("hotEntries", [this] {
        const auto *mon = policy_->monitor();
        return mon ? static_cast<double>(mon->hotEntryCount()) : 0.0;
    });
    sampler_->addColumn("validEntries", [this] {
        const auto *mon = policy_->monitor();
        return mon ? static_cast<double>(mon->validEntryCount()) : 0.0;
    });
    sampler_->addColumn("shortRetentionBlocks", [this] {
        const auto *mon = policy_->monitor();
        return mon
                   ? static_cast<double>(mon->shortRetentionBlockCount())
                   : 0.0;
    });
    sampler_->addStat(statRoot_, "rrm.fastWrites");
    sampler_->addStat(statRoot_, "rrm.slowWrites");
    sampler_->addStat(statRoot_, "rrm.fastRefreshes");
    sampler_->addStat(statRoot_, "rrm.slowRefreshes");
    sampler_->addColumn("readQueue", [this] {
        return static_cast<double>(controller_->totalReadQueue());
    });
    sampler_->addColumn("writeQueue", [this] {
        return static_cast<double>(controller_->totalWriteQueue());
    });
    sampler_->addColumn("refreshQueue", [this] {
        return static_cast<double>(controller_->totalRefreshQueue());
    });
    sampler_->addColumn("writebackBuffer", [this] {
        return static_cast<double>(writePath_->writebackDepth());
    });
    if (faultMgr_) {
        sampler_->addColumn("retentionTracked", [this] {
            return static_cast<double>(
                faultMgr_->retention().trackedCount());
        });
        sampler_->addColumn("fallbackActive", [this] {
            return faultMgr_->fallbackActive() ? 1.0 : 0.0;
        });
    }

    if (traceSink_) {
        // Piggy-back progress counters onto the sampling cadence: one
        // instruction counter per core and — on multi-tenant runs —
        // one outstanding-refresh counter per tenant. The Perfetto
        // writer renders both as 'C' counter tracks.
        sampler_->setSampleHook([this] {
            for (unsigned c = 0;
                 c < static_cast<unsigned>(cores_.size()); ++c) {
                RRM_TRACE(traceSink_.get(), queue_.now(),
                          obs::TraceCategory::Queue, "coreProgress",
                          RRM_TF("core", c),
                          RRM_TF("instructions",
                                 cores_[c]->instructionsRetired()));
            }
            for (unsigned t = 0;
                 t < static_cast<unsigned>(
                         tenantRefreshOutstanding_.size());
                 ++t) {
                RRM_TRACE(traceSink_.get(), queue_.now(),
                          obs::TraceCategory::Queue, "tenantRefreshQ",
                          RRM_TF("tenant", t),
                          RRM_TF("refreshQ",
                                 tenantRefreshOutstanding_[t]));
            }
        });
    }
}

void
System::buildCores()
{
    const std::uint64_t slice =
        config_.memory.memoryBytes / config_.hierarchy.numCores;
    Random seeder(config_.seed);
    for (unsigned c = 0; c < config_.hierarchy.numCores; ++c) {
        const auto &profile =
            config_.customProfiles.empty()
                ? trace::benchmarkProfile(config_.workload.perCore[c])
                : *config_.customProfiles[c];
        const std::uint64_t core_seed = seeder.next();
        auto source = [&]() -> trace::TraceSource {
            switch (config_.traceMode) {
              case trace::TraceMode::Materialized:
                return trace::TraceSource::materialized(
                    config_.traceCache->get(
                        profile, core_seed,
                        config_.traceCacheCapRecords));
              case trace::TraceMode::Pack:
                return trace::TraceSource::pack(
                    std::make_shared<trace::TracePackReader>(
                        config_.tracePackDir + "/" +
                        std::string(profile.name) + "-c" +
                        std::to_string(c) + ".rtp"),
                    profile, core_seed);
              case trace::TraceMode::Generate:
                break;
            }
            return trace::TraceSource::generate(profile, core_seed);
        }();
        auto core = std::make_unique<cpu::CoreModel>(
            c, config_.core, std::move(source), *hierarchy_, *this,
            queue_, static_cast<Addr>(c) * slice);
        core->regStats(statRoot_);
        cores_.push_back(std::move(core));
    }
}

bool
System::requestFill(unsigned core, Addr line, bool is_write, Tick when)
{
    (void)is_write;
    if (outstandingFills_ >= hierarchy_->llcMshrs() ||
        writePath_->writebackFull()) {
        if (statFillRefusals_)
            ++*statFillRefusals_;
        return false;
    }
    ++outstandingFills_;
    if (when <= queue_.now()) {
        tryEnqueueRead(core, line);
    } else {
        queue_.schedule(when,
                        [this, core, line] { tryEnqueueRead(core, line); });
    }
    return true;
}

void
System::tryEnqueueRead(unsigned core, Addr line)
{
    RRM_ASSERT(line < config_.memory.memoryBytes, "bad read line");
    // The controller sees the translated (StartGap/retirement)
    // address; the fill callback keeps the logical line.
    const Addr phys = faultMgr_ ? faultMgr_->translate(line) : line;
    const bool ok = controller_->enqueueRead(
        phys, [this, core, line](Tick) { onReadComplete(core, line); });
    if (!ok) {
        // Per-channel read queue momentarily full; retry shortly.
        // The delay-queue path delivers the identical schedule in
        // FIFO batches with one armed event instead of one heap
        // insertion per retry.
        if (readRetryDelay_) {
            readRetryDelay_->push(
                [this, core, line] { tryEnqueueRead(core, line); });
        } else {
            queue_.scheduleAfter(100_ns, [this, core, line] {
                tryEnqueueRead(core, line);
            });
        }
    }
}

TenantCounters *
System::tenantCountersForAddr(Addr addr)
{
    if (meas_.tenants.empty())
        return nullptr;
    return &meas_.tenants[tenantLayout_.tenantOfAddr(addr)];
}

TenantCounters *
System::tenantCountersForCore(unsigned core)
{
    if (meas_.tenants.empty())
        return nullptr;
    return &meas_.tenants[config_.workload.tenantOfCore(core)];
}

void
System::onReadComplete(unsigned core, Addr line)
{
    ++meas_.memReads;
    if (TenantCounters *tc = tenantCountersForCore(core))
        ++tc->memReads;
    meas_.readEnergy += energy_.blockReadEnergy();
    cores_[core]->onFillComplete(line);
    RRM_ASSERT(outstandingFills_ > 0, "fill accounting underflow");
    --outstandingFills_;
    wakeCores();
}

void
System::handleAccessEvents(unsigned core,
                           const cache::HierarchyEvents &ev, Tick when)
{
    (void)core;
    if (ev.registration) {
        policy_->registerLlcWrite(ev.registrationAddr,
                                  ev.registrationWasDirty);
    }
    if (ev.memWrite)
        issueMemoryWrite(ev.memWriteAddr, when);
}

void
System::issueMemoryWrite(Addr addr, Tick when)
{
    RRM_ASSERT(addr < config_.memory.memoryBytes, "bad write addr");
    const pcm::WriteMode mode = policy_->writeModeFor(addr);
    when += policy_->accessLatency();

    Addr phys = addr;
    if (faultMgr_) {
        phys = faultMgr_->translate(addr);
        faultMgr_->onDemandWriteIssued(phys);
    }
    wear_.recordBlockWrite(phys, pcm::WearCause::DemandWrite);
    meas_.demandWriteEnergy += energy_.blockWriteEnergy(mode);
    TenantCounters *tc = tenantCountersForAddr(addr);
    if (policy_->isFastMode(mode)) {
        ++meas_.fastWrites;
        if (tc)
            ++tc->fastWrites;
    } else {
        ++meas_.slowWrites;
        if (tc)
            ++tc->slowWrites;
    }
    if (profiler_)
        profiler_->recordWrite(addr, when);

    if (when <= queue_.now()) {
        writePath_->queueWriteback(phys, mode);
    } else {
        ++pendingWritebackEvents_;
        queue_.schedule(when, [this, phys, mode] {
            --pendingWritebackEvents_;
            writePath_->queueWriteback(phys, mode);
        });
    }
}

void
System::retryFaultedWrite(Addr addr, pcm::WriteMode mode)
{
    // Rewrite of a transiently-failed write: same physical block and
    // mode; wear, energy and write counters accrue like any write.
    wear_.recordBlockWrite(addr, pcm::WearCause::DemandWrite);
    meas_.demandWriteEnergy += energy_.blockWriteEnergy(mode);
    TenantCounters *tc = tenantCountersForAddr(addr);
    if (policy_->isFastMode(mode)) {
        ++meas_.fastWrites;
        if (tc)
            ++tc->fastWrites;
    } else {
        ++meas_.slowWrites;
        if (tc)
            ++tc->slowWrites;
    }
    writePath_->queueWriteback(addr, mode);
}

void
System::onPolicyRefresh(const monitor::RefreshRequest &req)
{
    RRM_ASSERT(req.blockAddr < config_.memory.memoryBytes,
               "bad refresh addr");
    const Addr phys =
        faultMgr_ ? faultMgr_->translate(req.blockAddr) : req.blockAddr;
    wear_.recordBlockWrite(phys, pcm::WearCause::RrmRefresh);
    meas_.refreshEnergy += energy_.blockRefreshEnergy(req.mode);
    TenantCounters *tc = tenantCountersForAddr(req.blockAddr);
    if (policy_->isFastMode(req.mode)) {
        ++meas_.fastRefreshes;
        if (tc)
            ++tc->fastRefreshes;
    } else {
        ++meas_.slowRefreshes;
        if (tc)
            ++tc->slowRefreshes;
    }

    bool timing_visible = false;
    switch (config_.refreshTiming) {
      case RefreshTimingMode::Detailed:
        timing_visible = true;
        break;
      case RefreshTimingMode::RateCorrected:
        timing_visible = (refreshSeq_++ % timeScaleInt_) == 0;
        break;
      case RefreshTimingMode::CountOnly:
        timing_visible = false;
        break;
    }
    if (!timing_visible) {
        // Invisible refreshes never queue, so their retention
        // obligation is satisfied the moment they are accounted.
        if (faultMgr_)
            faultMgr_->onRefreshAccounted(phys, req.mode, queue_.now());
        return;
    }

    if (telemetry_)
        telemetry_->recordRefreshPressure(refreshPressure());
    if (!tenantRefreshOutstanding_.empty()) {
        ++tenantRefreshOutstanding_[tenantLayout_.tenantOfAddr(phys)];
    }
    writePath_->submitRefresh(phys, req.mode);
}

bool
System::refreshPathSaturated() const
{
    if (writePath_->refreshOverflowPending())
        return true;
    for (unsigned c = 0; c < controller_->numChannels(); ++c) {
        if (controller_->channel(c).refreshQueueSize() >=
            config_.fault.fallbackHighWatermark) {
            return true;
        }
    }
    return false;
}

double
System::refreshPressure() const
{
    if (writePath_->refreshOverflowPending())
        return 1.0;
    std::size_t deepest = 0;
    for (unsigned c = 0; c < controller_->numChannels(); ++c) {
        deepest = std::max(deepest,
                           controller_->channel(c).refreshQueueSize());
    }
    return static_cast<double>(deepest) /
           static_cast<double>(config_.memory.refreshQueueCap);
}

void
System::wakeCores()
{
    if (outstandingFills_ >= hierarchy_->llcMshrs() ||
        writePath_->writebackFull()) {
        return;
    }
    for (auto &core : cores_)
        core->resume();
}

void
System::resetMeasurement()
{
    statRoot_.reset();
    wear_.reset();
    meas_.reset();
    for (auto &core : cores_)
        core->resetInstructionCount();
    if (profiler_)
        profiler_->reset();
}

std::uint64_t
System::runAudits()
{
    RRM_PROFILE(selfProfiler_.get(), "audit");
    if (statAuditRounds_)
        ++*statAuditRounds_;
    std::uint64_t violations = 0;
    violations += runAudit(queue_);
    violations += runAudit(*hierarchy_);
    violations += runAudit(*controller_);
    violations += runAudit(*writePath_);
    if (const auto *mon = policy_->monitor())
        violations += runAudit(*mon);
    if (faultMgr_)
        violations += runAudit(*faultMgr_);
    violations += runAudit(wear_);
    if (violations && statAuditViolations_)
        *statAuditViolations_ += static_cast<double>(violations);
    return violations;
}

void
System::runSlice(Tick until)
{
    // Always batched: the per-batch interrupt poll is what turns a
    // SIGINT/SIGTERM into a graceful drain instead of a lost run.
    const bool timed = config_.wallTimeoutSeconds > 0.0;
    const std::uint64_t batch = config_.auditEveryEvents != 0
                                    ? config_.auditEveryEvents
                                    : (std::uint64_t{1} << 20);
    for (;;) {
        if (timed && obs::monotonicSeconds() >= runDeadline_) {
            throw SimTimeoutError(
                "run exceeded its wall-clock timeout of " +
                std::to_string(config_.wallTimeoutSeconds) + " s");
        }
        if (interruptRequested()) {
            throw SimInterruptedError(
                "graceful stop requested (SIGINT/SIGTERM)");
        }
        if (queue_.run(until, batch) == 0)
            break;
        if (config_.auditEveryEvents != 0)
            runAudits();
    }
}

SimResults
System::run()
{
    obs::Profiler *prof = selfProfiler_.get();
    RRM_PROFILE(prof, "system.run");

    const Tick end = secondsToTicks(config_.windowSeconds);
    const Tick warmup_end =
        secondsToTicks(config_.windowSeconds * config_.warmupFraction);

    if (config_.wallTimeoutSeconds > 0.0) {
        runDeadline_ =
            obs::monotonicSeconds() + config_.wallTimeoutSeconds;
    }

    bool resumed = false;
    if (config_.resumeFromCheckpoint)
        resumed = tryResume();

    if (resumed) {
        // Periodic tasks were re-armed at their saved next-fire
        // ticks during restore; the cores came back paused. Unpause
        // in core-index order so the re-created advance events take
        // the same sequence numbers an undisturbed run's would.
        for (auto &core : cores_)
            core->unpause();
    } else {
        for (auto &core : cores_)
            core->start();
        policy_->start();
        if (faultMgr_)
            faultMgr_->start();
        if (sampler_)
            sampler_->start();
    }

    try {
        if (!measuring_) {
            {
                RRM_PROFILE(prof, "warmup");
                runCkptSlice(warmup_end);
            }
            resetMeasurement();
            measureStart_ = queue_.now();
            measuring_ = true;
        }
        {
            RRM_PROFILE(prof, "measure");
            runCkptSlice(end);
        }
    } catch (const SimTimeoutError &) {
        emergencyCheckpoint();
        throw;
    } catch (const SimInterruptedError &) {
        emergencyCheckpoint();
        throw;
    }

    SimResults results;
    {
        RRM_PROFILE(prof, "collect");
        results = collectResults(measureStart_, end);
    }
    writeObsOutputs(results);
    return results;
}

void
System::writeObsOutputs(const SimResults &r)
{
    const obs::ObsOptions &o = config_.obs;
    // Every output goes through AtomicFile (write-temp-and-rename), so
    // a run killed mid-write never leaves a truncated record behind —
    // the previous file (if any) survives intact instead.
    const auto write =
        [](const std::string &path, const auto &emit) {
            AtomicFile file(path);
            emit(file.stream());
            file.commit();
        };

    if (sampler_) {
        sampler_->stop();
        if (!o.sampleCsvFile.empty()) {
            write(o.sampleCsvFile,
                  [&](std::ostream &os) { sampler_->writeCsv(os); });
        }
        if (!o.sampleJsonlFile.empty()) {
            write(o.sampleJsonlFile,
                  [&](std::ostream &os) { sampler_->writeJsonl(os); });
        }
    }
    if (!o.runRecordFile.empty()) {
        write(o.runRecordFile,
              [&](std::ostream &os) { writeRunRecord(os, r); });
    }
    if (telemetry_) {
        if (!o.telemetryJsonFile.empty()) {
            write(o.telemetryJsonFile,
                  [&](std::ostream &os) { telemetry_->writeJson(os); });
        }
        if (!o.telemetryCsvFile.empty()) {
            write(o.telemetryCsvFile,
                  [&](std::ostream &os) { telemetry_->writeCsv(os); });
        }
    }
    if (traceSink_)
        traceSink_->finishWriter();
}

void
System::writeConfigJson(obs::JsonWriter &json) const
{
    json.beginObject();
    json.field("workload", config_.workload.name);
    json.key("perCore");
    json.beginArray();
    for (std::size_t c = 0; c < config_.workload.numCores(); ++c) {
        const auto &profile =
            config_.customProfiles.empty()
                ? trace::benchmarkProfile(config_.workload.perCore[c])
                : *config_.customProfiles[c];
        json.value(profile.name);
    }
    json.endArray();
    if (config_.workload.multiTenant()) {
        json.key("tenants");
        json.beginArray();
        for (std::size_t c = 0; c < config_.workload.numCores(); ++c)
            json.value(config_.workload.tenantOfCore(c));
        json.endArray();
    }
    json.field("scheme", config_.scheme.name());
    json.field("timeScale", config_.timeScale);
    json.field("windowSeconds", config_.windowSeconds);
    json.field("warmupFraction", config_.warmupFraction);
    json.field("seed", config_.seed);
    json.field("refreshTiming",
               static_cast<int>(config_.refreshTiming));
    json.field("memoryBytes", config_.memory.memoryBytes);
    json.field("auditEveryEvents", config_.auditEveryEvents);
    if (config_.wallTimeoutSeconds > 0.0)
        json.field("wallTimeoutSeconds", config_.wallTimeoutSeconds);
    if (config_.fault.enabled()) {
        json.key("fault");
        json.beginObject();
        json.field("retentionTracking", config_.fault.retentionTracking);
        json.field("retentionSlackSeconds",
                   config_.fault.retentionSlackSeconds);
        json.field("strict", config_.fault.strict);
        json.field("transientWriteFailureRate",
                   config_.fault.transientWriteFailureRate);
        json.field("maxWriteRetries", config_.fault.maxWriteRetries);
        json.field("stuckAtWearThreshold",
                   config_.fault.stuckAtWearThreshold);
        json.field("stuckAtRate", config_.fault.stuckAtRate);
        json.field("repairBudgetPerLine",
                   config_.fault.repairBudgetPerLine);
        json.field("spareBlocks", config_.fault.spareBlocks);
        json.field("refreshStallSeconds",
                   config_.fault.refreshStallSeconds);
        json.field("fallback", config_.fault.fallback);
        json.field("useStartGap", config_.fault.useStartGap);
        json.field("seed", config_.fault.seed);
        json.endObject();
    }
    policy_->writeConfigJson(json);
    json.endObject();
}

void
System::writeRunRecord(std::ostream &os, const SimResults &r) const
{
    obs::JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("schemaVersion", obs::runRecordSchemaVersion);
    json.key("metadata");
    obs::writeRunMetadata(json, obs::currentRunMetadata());
    json.key("config");
    writeConfigJson(json);
    json.key("results");
    r.toJson(json);
    json.key("stats");
    {
        obs::JsonStatWriter stats_writer(json);
        statRoot_.visit(stats_writer);
    }
    if (traceSink_) {
        json.key("trace");
        json.beginObject();
        json.field("recorded", traceSink_->recorded());
        json.field("dropped", traceSink_->dropped());
        json.endObject();
    }
    if (selfProfiler_) {
        json.key("profile");
        selfProfiler_->writeJson(json);
    }
    json.endObject();
    os << '\n';
}

SimResults
System::collectResults(Tick measure_start, Tick measure_end)
{
    SimResults r;
    r.workload = config_.workload.name;
    r.scheme = config_.scheme.name();
    r.timeScale = config_.timeScale;
    r.eventsExecuted = queue_.eventsExecuted();

    const Tick elapsed = measure_end - measure_start;
    const double window = ticksToSeconds(elapsed);
    r.windowSeconds = window;

    r.instructions.assign(cores_.size(), 0);
    r.ipcPerCore.assign(cores_.size(), 0.0);
    for (unsigned c = 0; c < cores_.size(); ++c) {
        r.instructions[c] = cores_[c]->instructionsRetired();
        r.totalInstructions += r.instructions[c];
        r.ipcPerCore[c] = cores_[c]->ipc(elapsed);
        r.aggregateIpc += r.ipcPerCore[c];
    }

    if (!meas_.tenants.empty()) {
        r.tenants.resize(meas_.tenants.size());
        for (unsigned t = 0;
             t < static_cast<unsigned>(r.tenants.size()); ++t) {
            SimResults::TenantResults &tr = r.tenants[t];
            const TenantCounters &tc = meas_.tenants[t];
            tr.tenant = t;
            tr.memReads = tc.memReads;
            tr.fastWrites = tc.fastWrites;
            tr.slowWrites = tc.slowWrites;
            tr.fastRefreshes = tc.fastRefreshes;
            tr.slowRefreshes = tc.slowRefreshes;
        }
        for (unsigned c = 0; c < cores_.size(); ++c) {
            SimResults::TenantResults &tr =
                r.tenants[config_.workload.tenantOfCore(c)];
            tr.cores.push_back(c);
            tr.instructions += r.instructions[c];
            tr.ipc += r.ipcPerCore[c];
        }
    }

    if (const auto *misses = dynamic_cast<const stats::Scalar *>(
            statRoot_.find("llc.misses"))) {
        r.llcMisses = static_cast<std::uint64_t>(misses->value());
    }
    if (r.totalInstructions > 0) {
        r.mpki = 1000.0 * static_cast<double>(r.llcMisses) /
                 static_cast<double>(r.totalInstructions);
    }

    r.memReads = meas_.memReads;
    r.fastWrites = meas_.fastWrites;
    r.slowWrites = meas_.slowWrites;
    r.demandWrites = meas_.demandWrites();
    r.rrmFastRefreshes = meas_.fastRefreshes;
    r.rrmSlowRefreshes = meas_.slowRefreshes;

    pcm::WearMeasurement wm;
    wm.demandWrites = r.demandWrites;
    wm.rrmRefreshWrites = meas_.refreshWrites();
    wm.windowSeconds = window;
    wm.timeScale = config_.timeScale;
    wm.globalRefreshMode = config_.scheme.globalRefreshMode();

    const pcm::LifetimeModel lifetime(
        config_.memory.memoryBytes / config_.memory.blockBytes,
        config_.lifetime);
    r.demandWriteRate = lifetime.demandWriteRate(wm);
    r.rrmRefreshRate = lifetime.rrmRefreshRate(wm);
    r.globalRefreshRate = lifetime.globalRefreshRate(wm);
    r.lifetimeYears = lifetime.lifetimeYears(wm);

    r.readPower = meas_.readEnergy / window;
    r.demandWritePower = meas_.demandWriteEnergy / window;
    r.rrmRefreshPower =
        meas_.refreshEnergy / (window * config_.timeScale);
    r.globalRefreshPower =
        r.globalRefreshRate *
        energy_.blockRefreshEnergy(*wm.globalRefreshMode);

    if (const auto *mon = policy_->monitor()) {
        auto scalar = [&](const char *name) -> std::uint64_t {
            const auto *s = dynamic_cast<const stats::Scalar *>(
                statRoot_.find(std::string("rrm.") + name));
            return s ? static_cast<std::uint64_t>(s->value()) : 0;
        };
        r.rrmRegistrations = scalar("registrations");
        r.rrmCleanFiltered = scalar("cleanFiltered");
        r.rrmRegistrationHits = scalar("registrationHits");
        r.rrmAllocations = scalar("allocations");
        r.rrmEvictions = scalar("evictions");
        r.rrmPromotions = scalar("promotions");
        r.rrmDemotions = scalar("demotions");
        r.rrmEvictionFlushes = scalar("evictionFlushes");
        r.rrmHotEntriesAtEnd = mon->hotEntryCount();
    }

    if (faultMgr_) {
        auto scalar = [&](const char *name) -> std::uint64_t {
            const auto *s = dynamic_cast<const stats::Scalar *>(
                statRoot_.find(std::string("fault.") + name));
            return s ? static_cast<std::uint64_t>(s->value()) : 0;
        };
        r.fault.enabled = true;
        r.fault.retentionStamps = scalar("retentionStamps");
        r.fault.retentionViolations = scalar("retentionViolations");
        r.fault.transientWriteFaults = scalar("transientWriteFaults");
        r.fault.writeRetries = scalar("writeRetries");
        r.fault.writesUnrecovered = scalar("writesUnrecovered");
        r.fault.stuckAtFaults = scalar("stuckAtFaults");
        r.fault.stuckAtRepaired = scalar("stuckAtRepaired");
        r.fault.linesRetired = scalar("linesRetired");
        r.fault.spareExhausted = scalar("spareExhausted");
        r.fault.refreshDropped = scalar("refreshDropped");
        r.fault.refreshStalls = scalar("refreshStalls");
        r.fault.fallbackEntries = scalar("fallbackEntries");
        r.fault.fallbackExits = scalar("fallbackExits");
        r.fault.startGapMoves = faultMgr_->startGapMoves();
    }

    return r;
}

} // namespace rrm::sys
