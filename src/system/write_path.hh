/**
 * @file
 * WritePath: the System's staging area between write producers (LLC
 * writebacks, policy refreshes) and the memory controller's bounded
 * queues. Owns the writeback buffer, the refresh overflow queue, and
 * the retry machinery that keeps both draining — machinery that used
 * to be spread across the System god object.
 */

#ifndef RRM_SYSTEM_WRITE_PATH_HH
#define RRM_SYSTEM_WRITE_PATH_HH

#include <deque>
#include <functional>

#include "common/auditable.hh"
#include "memctrl/controller.hh"
#include "obs/telemetry.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace rrm::sys
{

/**
 * Staging queues between the System and the controller.
 *
 * Two flows share one queue mechanism:
 *  - *Writebacks*: dirty LLC victims buffer here until a controller
 *    write queue accepts them; a full buffer backpressures the cores
 *    (the System checks writebackFull()).
 *  - *Refreshes*: policy refresh requests that find their controller
 *    refresh queue full are deferred to an overflow queue and
 *    re-attempted on every refresh completion and at least once per
 *    bus cycle, so the retention obligation is never dropped.
 */
class WritePath : public Auditable
{
  public:
    /** A write waiting for controller queue space. */
    struct PendingWrite
    {
        Addr addr;
        pcm::WriteMode mode;
    };

    /**
     * @param controller     Downstream controller queues.
     * @param queue          Event queue for the refresh retry timer.
     * @param writeback_cap  Writeback buffer capacity (backpressure
     *                       threshold; the buffer itself is unbounded
     *                       because in-flight writes may still land).
     * @param retry_interval Refresh overflow re-attempt period (one
     *                       bus cycle).
     */
    WritePath(memctrl::Controller &controller, EventQueue &queue,
              unsigned writeback_cap, Tick retry_interval);

    WritePath(const WritePath &) = delete;
    WritePath &operator=(const WritePath &) = delete;

    /** Register this component's stats into the System's group. */
    void regStats(stats::StatGroup &sys_group);

    /** Notified once per refresh deferred to the overflow queue. */
    void setRefreshDroppedCallback(std::function<void(Addr)> cb)
    {
        refreshDropped_ = std::move(cb);
    }

    /**
     * Attach hot-path occupancy telemetry (obs::Telemetry owns the
     * sinks). Null (the default) keeps the path cost at one pointer
     * test per enqueue.
     */
    void setTelemetry(const obs::WritePathTelemetry *t)
    {
        telemetry_ = t;
    }

    // ---- Writeback flow ----

    /** Buffer a writeback and drain as far as the controller allows. */
    void queueWriteback(Addr addr, pcm::WriteMode mode);

    /** Push buffered writebacks into freed controller write slots. */
    void drainWritebacks() { writebacks_.drain(); }

    /** True at (or beyond) capacity — the cores must stall. */
    bool writebackFull() const
    {
        return writebacks_.size() >= writebackCap_;
    }

    std::size_t writebackDepth() const { return writebacks_.size(); }

    // ---- Refresh flow ----

    /**
     * Hand a timing-visible refresh to the controller; on a full
     * refresh queue it is deferred (stat + dropped-callback + armed
     * retry) rather than lost.
     */
    void submitRefresh(Addr addr, pcm::WriteMode mode);

    /** Re-attempt deferred refreshes (refresh-completion hook). */
    void drainRefreshOverflow();

    /** True while any deferred refresh awaits queue space. */
    bool refreshOverflowPending() const
    {
        return !refreshOverflow_.empty();
    }

    /**
     * True when both staging queues are empty and no retry event is
     * in flight — the write path contributes nothing to the event
     * queue and a checkpoint drain may stop stepping on its account.
     * There is no WritePath checkpoint section: at a quiescent point
     * the only state is this emptiness (stats travel in the stats
     * section).
     */
    bool quiescent() const
    {
        return writebacks_.empty() && refreshOverflow_.empty() &&
               !refreshRetryPending_;
    }

    // ---- Auditable ----
    std::string_view auditName() const override { return "writePath"; }

    /**
     * Invariants:
     *  - no drain guard is left set outside a drain loop;
     *  - a non-empty overflow queue always has a retry armed (the
     *    retention obligation cannot silently stall).
     */
    void audit() const override;

  private:
    /**
     * A FIFO of pending writes with a re-entrancy-guarded drain: the
     * sink can synchronously complete a request, firing a controller
     * hook that calls straight back into drain(), so a guard keeps a
     * single drain loop live. One mechanism for both flows — the
     * writeback buffer and the refresh overflow queue previously
     * duplicated this loop verbatim.
     */
    class DrainQueue
    {
      public:
        /** @param sink Consumer; false = downstream full, stop. */
        using Sink = std::function<bool(const PendingWrite &)>;

        explicit DrainQueue(Sink sink) : sink_(std::move(sink)) {}

        void push(const PendingWrite &w) { queue_.push_back(w); }

        void
        drain()
        {
            if (draining_)
                return;
            draining_ = true;
            while (!queue_.empty()) {
                if (!sink_(queue_.front()))
                    break;
                queue_.pop_front();
            }
            draining_ = false;
        }

        bool empty() const { return queue_.empty(); }
        std::size_t size() const { return queue_.size(); }
        bool draining() const { return draining_; }

      private:
        Sink sink_;
        std::deque<PendingWrite> queue_;
        bool draining_ = false;
    };

    /** Keep a next-cycle re-attempt armed while overflow remains. */
    void scheduleRefreshRetry();

    memctrl::Controller &controller_;
    EventQueue &queue_;
    unsigned writebackCap_;
    Tick retryInterval_;

    DrainQueue writebacks_;
    DrainQueue refreshOverflow_;
    bool refreshRetryPending_ = false;

    std::function<void(Addr)> refreshDropped_;
    const obs::WritePathTelemetry *telemetry_ = nullptr;

    stats::Scalar *statWritebackBlocked_ = nullptr;
    stats::Scalar *statRefreshOverflows_ = nullptr;
};

} // namespace rrm::sys

#endif // RRM_SYSTEM_WRITE_PATH_HH
