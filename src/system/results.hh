/**
 * @file
 * Measurement results of one simulation run, with the scaled-time
 * extrapolation rules applied (DESIGN.md section 3): demand traffic is
 * a rate over the measured window; refresh traffic is a rate over
 * `timeScale x` that window; global refresh is analytic.
 */

#ifndef RRM_SYSTEM_RESULTS_HH
#define RRM_SYSTEM_RESULTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace rrm::sys
{

/** Results of one (workload, scheme) run. */
struct SimResults
{
    std::string workload;
    std::string scheme;

    /** Measured (post-warmup) window, in scaled seconds. */
    double windowSeconds = 0.0;

    /** Retention compression factor of the run. */
    double timeScale = 1.0;

    /**
     * Simulator events executed over the whole run (warmup included).
     * Host-side throughput accounting only — deliberately NOT part of
     * toJson() so run records stay byte-identical across machines.
     */
    std::uint64_t eventsExecuted = 0;

    // ---- Performance (one entry per core of the workload) ----
    std::vector<std::uint64_t> instructions;
    std::uint64_t totalInstructions = 0;
    std::vector<double> ipcPerCore;
    double aggregateIpc = 0.0; ///< sum of per-core IPC

    // ---- Cache behaviour ----
    std::uint64_t llcMisses = 0;
    double mpki = 0.0;

    // ---- Memory traffic (counts within the window) ----
    std::uint64_t memReads = 0;
    std::uint64_t demandWrites = 0;
    std::uint64_t fastWrites = 0; ///< demand writes in fast mode
    std::uint64_t slowWrites = 0; ///< demand writes in slow mode
    std::uint64_t rrmFastRefreshes = 0;
    std::uint64_t rrmSlowRefreshes = 0;

    // ---- Wear rates (block writes per real second, whole array) ----
    double demandWriteRate = 0.0;
    double rrmRefreshRate = 0.0;
    double globalRefreshRate = 0.0;

    /** Estimated array lifetime. */
    double lifetimeYears = 0.0;

    // ---- Power (J per real second) by cause ----
    double readPower = 0.0;
    double demandWritePower = 0.0;
    double rrmRefreshPower = 0.0;
    double globalRefreshPower = 0.0;

    double
    totalPower() const
    {
        return readPower + demandWritePower + rrmRefreshPower +
               globalRefreshPower;
    }

    /** Total wear rate (block writes per real second). */
    double
    totalWearRate() const
    {
        return demandWriteRate + rrmRefreshRate + globalRefreshRate;
    }

    // ---- Fault layer (populated only when fault injection is on) ----
    struct FaultResults
    {
        bool enabled = false;
        std::uint64_t retentionStamps = 0;
        std::uint64_t retentionViolations = 0;
        std::uint64_t transientWriteFaults = 0;
        std::uint64_t writeRetries = 0;
        std::uint64_t writesUnrecovered = 0;
        std::uint64_t stuckAtFaults = 0;
        std::uint64_t stuckAtRepaired = 0;
        std::uint64_t linesRetired = 0;
        std::uint64_t spareExhausted = 0;
        std::uint64_t refreshDropped = 0;
        std::uint64_t refreshStalls = 0;
        std::uint64_t fallbackEntries = 0;
        std::uint64_t fallbackExits = 0;
        std::uint64_t startGapMoves = 0;
    };
    FaultResults fault;

    // ---- Tenants (populated only on multi-tenant workloads) ----
    struct TenantResults
    {
        unsigned tenant = 0;
        std::vector<unsigned> cores; ///< core ids owned by the tenant
        std::uint64_t instructions = 0;
        double ipc = 0.0; ///< sum of the tenant's per-core IPC
        std::uint64_t memReads = 0;
        std::uint64_t fastWrites = 0;
        std::uint64_t slowWrites = 0;
        std::uint64_t fastRefreshes = 0;
        std::uint64_t slowRefreshes = 0;
    };

    /**
     * One entry per tenant on multi-tenant workloads; empty (and
     * absent from the JSON) on single-tenant runs so existing run
     * records stay byte-identical.
     */
    std::vector<TenantResults> tenants;

    // ---- RRM behaviour ----
    std::uint64_t rrmRegistrations = 0;
    std::uint64_t rrmCleanFiltered = 0;
    std::uint64_t rrmRegistrationHits = 0;
    std::uint64_t rrmAllocations = 0;
    std::uint64_t rrmEvictions = 0;
    std::uint64_t rrmPromotions = 0;
    std::uint64_t rrmDemotions = 0;
    std::uint64_t rrmEvictionFlushes = 0;
    std::uint64_t rrmHotEntriesAtEnd = 0;

    /** Fraction of demand writes issued in the fast mode. */
    double
    fastWriteFraction() const
    {
        const auto total = fastWrites + slowWrites;
        return total ? static_cast<double>(fastWrites) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /**
     * Emit this record as one JSON object at the writer's current
     * value slot (every field above plus the derived totals).
     */
    void toJson(obs::JsonWriter &json) const;

    /** Standalone pretty-printed JSON document of this record. */
    std::string toJsonString() const;
};

} // namespace rrm::sys

#endif // RRM_SYSTEM_RESULTS_HH
