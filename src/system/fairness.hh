/**
 * @file
 * Multi-tenant fairness metrics (DESIGN.md section 17).
 *
 * The raw inputs are per-core IPCs from a *mixed* run and from each
 * core's *solo* companion run (the same benchmark, scheme, and seed
 * on a 1-core system — RunPlan postRun hooks collect them). From
 * those the meter derives the standard multi-programmed metrics:
 *
 *   slowdown_c        = soloIpc_c / mixedIpc_c           (>= 1 ideal)
 *   weightedSpeedup   = sum_c mixedIpc_c / soloIpc_c
 *   tenant slowdown   = arithmetic mean of its cores' slowdowns
 *   unfairness        = max tenant slowdown / min tenant slowdown
 *
 * Cores whose solo (or mixed) IPC is zero are skipped in the ratios
 * rather than poisoning the aggregates with infinities.
 */

#ifndef RRM_SYSTEM_FAIRNESS_HH
#define RRM_SYSTEM_FAIRNESS_HH

#include <vector>

namespace rrm::sys
{

/** Fairness metrics of one mixed run, system-wide and per tenant. */
struct FairnessReport
{
    struct Tenant
    {
        unsigned tenant = 0;
        std::vector<unsigned> cores; ///< core ids owned by the tenant
        double ipc = 0.0;            ///< sum of the tenant's mixed IPCs
        double slowdown = 0.0;       ///< mean solo/mixed over its cores
        double weightedSpeedup = 0.0; ///< sum mixed/solo over its cores
    };

    std::vector<Tenant> tenants; ///< one entry per tenant, id order

    double weightedSpeedup = 0.0; ///< sum over all cores
    double unfairness = 0.0;      ///< max / min tenant slowdown
};

/**
 * Compute the fairness metrics of one mixed run.
 *
 * @param mixed_ipc Per-core IPC of the mixed run.
 * @param tenant_of Tenant id per core; empty = all cores tenant 0.
 * @param solo_ipc  Per-core IPC of each core's solo companion run
 *                  (same indexing as mixed_ipc).
 */
FairnessReport computeFairness(const std::vector<double> &mixed_ipc,
                               const std::vector<unsigned> &tenant_of,
                               const std::vector<double> &solo_ipc);

} // namespace rrm::sys

#endif // RRM_SYSTEM_FAIRNESS_HH
