/**
 * @file
 * Channel scheduler implementation.
 */

#include "channel.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"

namespace rrm::memctrl
{

namespace
{

/** Read access time at the bank (excluding bus transfer). */
Tick
readAccessTime(const MemoryParams &p, bool row_hit)
{
    return row_hit ? p.tCAS : p.tRCD + p.tCAS;
}

} // namespace

Channel::Channel(unsigned index, const MemoryParams &params,
                 EventQueue &queue)
    : index_(index), name_("channel" + std::to_string(index)),
      params_(params), queue_(queue), map_(params)
{
    banks_.resize(params_.banksPerChannel);
    activateHistory_.clear();
}

bool
Channel::enqueueRead(Request req)
{
    if (readQ_.size() >= params_.readQueueCap)
        return false;
    RRM_DCHECK(req.kind == ReqKind::Read, "read queue got a ",
               static_cast<int>(req.kind));
    req.enqueueTick = queue_.now();
    req.loc = map_.decode(req.addr);
    ++enqueued_[static_cast<std::size_t>(ReqKind::Read)];
    readQ_.push_back(std::move(req));
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Queue,
              "readEnq", RRM_TF("channel", index_),
              RRM_TF("readQ", readQ_.size()),
              RRM_TF("writeQ", writeQ_.size()),
              RRM_TF("refreshQ", refreshQ_.size()));
    if (scanMemoValid_ && scanMemoTick_ == queue_.now()) {
        // Every other queued request already failed to issue at this
        // tick under the current bank/bus state, so only the new
        // arrival needs a try. In write-drain mode the full scan
        // would not try reads at all, and the memoized retry is
        // already scheduled, so there is nothing to do.
        if (writeDrainMode_)
            return true;
        Tick earliest = scanMemoEarliest_;
        if (!tryIssueRead(readQ_.back(), earliest)) {
            scanMemoEarliest_ = earliest;
            if (earliest != maxTick)
                scheduleRetry(earliest);
            return true;
        }
        readQ_.pop_back();
        // The issue changed bank/bus state; rescan like the full
        // scheduler loop would after any issue.
        trySchedule();
        return true;
    }
    trySchedule();
    return true;
}

bool
Channel::enqueueWrite(Request req)
{
    if (writeQ_.size() >= params_.writeQueueCap)
        return false;
    RRM_DCHECK(req.kind == ReqKind::Write, "write queue got a ",
               static_cast<int>(req.kind));
    req.enqueueTick = queue_.now();
    req.loc = map_.decode(req.addr);
    ++enqueued_[static_cast<std::size_t>(ReqKind::Write)];
    writeQ_.push_back(std::move(req));
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Queue,
              "writeEnq", RRM_TF("channel", index_),
              RRM_TF("readQ", readQ_.size()),
              RRM_TF("writeQ", writeQ_.size()),
              RRM_TF("refreshQ", refreshQ_.size()));
    trySchedule();
    return true;
}

bool
Channel::enqueueRefresh(Request req)
{
    if (refreshQ_.size() >= params_.refreshQueueCap)
        return false;
    RRM_DCHECK(req.kind == ReqKind::RrmRefresh, "refresh queue got a ",
               static_cast<int>(req.kind));
    req.enqueueTick = queue_.now();
    req.loc = map_.decode(req.addr);
    ++enqueued_[static_cast<std::size_t>(ReqKind::RrmRefresh)];
    refreshQ_.push_back(std::move(req));
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Queue,
              "refreshEnq", RRM_TF("channel", index_),
              RRM_TF("readQ", readQ_.size()),
              RRM_TF("writeQ", writeQ_.size()),
              RRM_TF("refreshQ", refreshQ_.size()));
    trySchedule();
    return true;
}

Tick
Channel::bankReadyForRead(const Bank &bank, Tick t) const
{
    if (bank.busyUntil <= t)
        return t;
    if (bank.writing && params_.writePausing) {
        // Pause points: end of RESET, then end of each SET pulse.
        const Tick first = bank.writePulseStart + pcm::resetPulse;
        Tick boundary = first;
        if (t > boundary) {
            const Tick k =
                divCeil(t - first, pcm::setPulse);
            boundary = first + k * pcm::setPulse;
        }
        // No pause point after the final SET: just wait it out.
        if (boundary >= bank.busyUntil)
            return bank.busyUntil;
        return boundary;
    }
    return bank.busyUntil;
}

Tick
Channel::bankReadyForWrite(const Bank &bank, Tick t) const
{
    return std::max(bank.busyUntil, t);
}

Tick
Channel::fawReady(Tick t) const
{
    if (activateHistory_.size() < 4)
        return t;
    const Tick oldest = activateHistory_[activateIdx_];
    return std::max(t, oldest + params_.tFAW);
}

void
Channel::recordActivate(Tick t)
{
    if (activateHistory_.size() < 4) {
        activateHistory_.push_back(t);
        return;
    }
    activateHistory_[activateIdx_] = t;
    activateIdx_ = (activateIdx_ + 1) % 4;
}

bool
Channel::tryIssueRead(const Request &req, Tick &earliest)
{
    const Tick now = queue_.now();
    const Location &loc = req.loc;
    Bank &bank = banks_[loc.bank];
    if (bank.writing && bank.busyUntil <= now) {
        // The write is done but its completion event fires later this
        // tick; retry right after it.
        earliest = std::min(earliest, now);
        return false;
    }
    const bool row_hit = bank.hasOpenRow && bank.openRow == loc.rowId;
    const Tick access = readAccessTime(params_, row_hit);

    Tick start = bankReadyForRead(bank, now);
    if (!row_hit)
        start = fawReady(start);
    // The data burst needs the channel bus right after the access.
    if (busFreeAt_ > start + access)
        start = busFreeAt_ - access;

    if (start > now) {
        earliest = std::min(earliest, start);
        return false;
    }

    // Issue now.
    const bool pausing = bank.writing && bank.busyUntil > now;
    if (pausing) {
        // Push the interrupted write's remaining pulses back.
        bank.writePulseStart += access;
        bank.busyUntil += access;
        if (statWritePauses_)
            ++*statWritePauses_;
    } else {
        bank.busyUntil = now + access;
    }
    if (!row_hit) {
        recordActivate(now);
        bank.hasOpenRow = true;
        bank.openRow = loc.rowId;
    }
    busFreeAt_ = now + access + params_.burstTime();

    if (statReads_)
        ++*statReads_;
    if (row_hit && statRowHits_)
        ++*statRowHits_;

    const Tick finish = now + access + params_.burstTime();
    RRM_TRACE(traceSink_, now, obs::TraceCategory::Queue,
              "readService", RRM_TF("channel", index_),
              RRM_TF("bank", loc.bank), RRM_TF("dur", finish - now));
    if (statReadLatency_)
        statReadLatency_->add(finish - req.enqueueTick);
    ++inflightReads_;
    Request copy = req;
    queue_.schedule(
        finish,
        [this, copy = std::move(copy), finish] {
            complete(copy, finish);
            trySchedule();
        },
        EventPriority::MemoryResponse);
    return true;
}

bool
Channel::tryIssueWrite(const Request &req, Tick &earliest,
                       bool is_refresh)
{
    const Tick now = queue_.now();
    const Location &loc = req.loc;
    Bank &bank = banks_[loc.bank];
    if (bank.writing && bank.busyUntil <= now) {
        earliest = std::min(earliest, now);
        return false;
    }

    Tick start = bankReadyForWrite(bank, now);
    if (!is_refresh && busFreeAt_ > start)
        start = busFreeAt_; // incoming data burst needs the bus

    if (start > now) {
        earliest = std::min(earliest, start);
        return false;
    }

    const Tick wp = pcm::writeLatency(req.mode);
    Tick pulse_start;
    if (is_refresh) {
        // Internal read (array access) then rewrite; no bus transfer.
        pulse_start = now + params_.tRCD;
        recordActivate(now);
        if (statRefreshes_)
            ++*statRefreshes_;
    } else {
        // Write-through: data burst on the bus, then the pulse train.
        busFreeAt_ = now + params_.burstTime();
        pulse_start = now + params_.burstTime();
        if (statWrites_)
            ++*statWrites_;
    }

    bank.writing = true;
    bank.writePulseStart = pulse_start;
    bank.writeMode = req.mode;
    bank.busyUntil = pulse_start + wp;
    bank.inflightWrite = req;
    RRM_TRACE(traceSink_, now, obs::TraceCategory::Queue,
              is_refresh ? "refreshService" : "writeService",
              RRM_TF("channel", index_), RRM_TF("bank", loc.bank),
              RRM_TF("dur", bank.busyUntil - now));

    // Completion check; reschedules itself if pauses moved the end.
    scheduleWriteCheck(loc.bank, bank.busyUntil);
    return true;
}

void
Channel::scheduleWriteCheck(unsigned bank_idx, Tick when)
{
    queue_.schedule(
        when, [this, bank_idx] { writeCheck(bank_idx); },
        EventPriority::MemoryResponse);
}

void
Channel::writeCheck(unsigned bank_idx)
{
    scanMemoValid_ = false; // bank state mutates before the rescan
    Bank &bank = banks_[bank_idx];
    if (queue_.now() < bank.busyUntil) {
        // A pause pushed the pulse train back; check again at the
        // updated completion time.
        scheduleWriteCheck(bank_idx, bank.busyUntil);
        return;
    }
    bank.writing = false;
    complete(bank.inflightWrite, queue_.now());
    trySchedule();
}

void
Channel::holdRefreshes(Tick until)
{
    if (until <= refreshHoldUntil_)
        return;
    scanMemoValid_ = false;
    refreshHoldUntil_ = until;
    if (!refreshQ_.empty())
        scheduleRetry(until);
}

void
Channel::scheduleRetry(Tick when)
{
    if (retryPending_ && retryAt_ <= when)
        return;
    if (retryPending_)
        queue_.cancel(retryEvent_);
    retryPending_ = true;
    retryAt_ = when;
    retryEvent_ = queue_.schedule(when, [this] {
        retryPending_ = false;
        trySchedule();
    });
}

void
Channel::complete(const Request &req, Tick when)
{
    RRM_DCHECK(when >= req.enqueueTick,
               "request completed before it was enqueued");
    RRM_DCHECK(when >= lastCompletionTick_,
               "completion timestamps moved backwards: ", when, " < ",
               lastCompletionTick_);
    lastCompletionTick_ = when;
    ++retired_[static_cast<std::size_t>(req.kind)];
    if (req.kind == ReqKind::Read) {
        RRM_CHECK(inflightReads_ > 0, "read retired with none in flight");
        --inflightReads_;
    }
    if (completionHook_)
        completionHook_(req, when);
    if (req.onComplete)
        req.onComplete(when);
}

void
Channel::trySchedule()
{
    scanMemoValid_ = false;
    Tick earliest = maxTick;
    bool issued_any = true;
    while (issued_any) {
        issued_any = false;

        // Write-drain hysteresis.
        if (!writeDrainMode_ &&
            writeQ_.size() >= params_.writeHighWatermark) {
            writeDrainMode_ = true;
            if (statDrainEntries_)
                ++*statDrainEntries_;
        }
        if (writeDrainMode_ &&
            writeQ_.size() <= params_.writeLowWatermark) {
            writeDrainMode_ = false;
        }

        // 1. RRM refreshes: highest priority, FCFS with bank
        // skipping — unless an injected stall holds refresh issue.
        if (queue_.now() >= refreshHoldUntil_) {
            for (auto it = refreshQ_.begin(); it != refreshQ_.end();
                 ++it) {
                if (tryIssueWrite(*it, earliest, true)) {
                    refreshQ_.erase(it);
                    issued_any = true;
                    break;
                }
            }
        } else if (!refreshQ_.empty()) {
            earliest = std::min(earliest, refreshHoldUntil_);
        }
        if (issued_any)
            continue;

        // 2. Reads (FR-FCFS), unless draining writes.
        if (!writeDrainMode_ && !readQ_.empty()) {
            bool issued = false;
            // First serviceable row hit...
            for (auto it = readQ_.begin(); it != readQ_.end(); ++it) {
                const Location &loc = it->loc;
                const Bank &bank = banks_[loc.bank];
                if (bank.hasOpenRow && bank.openRow == loc.rowId &&
                    bank.busyUntil <= queue_.now()) {
                    if (tryIssueRead(*it, earliest)) {
                        readQ_.erase(it);
                        issued = true;
                    }
                    break;
                }
            }
            // ...otherwise the oldest serviceable read.
            if (!issued) {
                for (auto it = readQ_.begin(); it != readQ_.end();
                     ++it) {
                    if (tryIssueRead(*it, earliest)) {
                        readQ_.erase(it);
                        issued = true;
                        break;
                    }
                }
            }
            if (issued) {
                issued_any = true;
                continue;
            }
        }

        // 3. Writes: drain mode, or nothing else to do.
        if (!writeQ_.empty() && (writeDrainMode_ || readQ_.empty())) {
            for (auto it = writeQ_.begin(); it != writeQ_.end(); ++it) {
                if (tryIssueWrite(*it, earliest, false)) {
                    writeQ_.erase(it);
                    issued_any = true;
                    if (writeIssuedHook_)
                        writeIssuedHook_();
                    break;
                }
            }
        }
    }

    if ((!refreshQ_.empty() || !readQ_.empty() || !writeQ_.empty()) &&
        earliest != maxTick) {
        scheduleRetry(earliest);
    }

    // The final loop iteration was a complete scan that issued
    // nothing, so the memo is valid regardless of earlier issues.
    scanMemoValid_ = true;
    scanMemoTick_ = queue_.now();
    scanMemoEarliest_ = earliest;
}

void
Channel::regStats(stats::StatGroup &group)
{
    auto &g = group.addChild(name_);
    statReads_ = &g.addScalar("reads", "read requests issued");
    statRowHits_ = &g.addScalar("rowHits", "reads hitting the open row");
    statWrites_ = &g.addScalar("writes", "demand writes issued");
    statRefreshes_ =
        &g.addScalar("rrmRefreshes", "RRM refresh operations issued");
    statWritePauses_ =
        &g.addScalar("writePauses", "writes paused to service reads");
    statDrainEntries_ =
        &g.addScalar("drainEntries", "write-drain mode activations");
    statReadLatency_ = &g.addDistribution(
        "readLatency", "read latency from enqueue to data (ticks)",
        {50000, 100000, 200000, 400000, 800000, 1600000, 3200000});
}

void
Channel::audit() const
{
    const Tick now = queue_.now();

    RRM_AUDIT(readQ_.size() <= params_.readQueueCap, name_,
              ": read queue above its cap");
    RRM_AUDIT(writeQ_.size() <= params_.writeQueueCap, name_,
              ": write queue above its cap");
    RRM_AUDIT(refreshQ_.size() <= params_.refreshQueueCap, name_,
              ": refresh queue above its cap");

    const auto auditQueue = [&](const std::deque<Request> &q,
                                ReqKind kind, const char *qname) {
        for (const Request &req : q) {
            RRM_AUDIT(req.kind == kind, name_, ": ", qname,
                      " queue holds a request of kind ",
                      static_cast<int>(req.kind));
            RRM_AUDIT(req.enqueueTick <= now, name_, ": ", qname,
                      " request enqueued in the future (",
                      req.enqueueTick, " > ", now, ")");
        }
    };
    auditQueue(readQ_, ReqKind::Read, "read");
    auditQueue(writeQ_, ReqKind::Write, "write");
    auditQueue(refreshQ_, ReqKind::RrmRefresh, "refresh");

    std::uint64_t inflight_writes = 0;
    std::uint64_t inflight_refreshes = 0;
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        const Bank &bank = banks_[b];
        if (!bank.writing)
            continue;
        RRM_AUDIT(bank.writePulseStart <= bank.busyUntil, name_,
                  ": bank ", b, " pulse train ends before it starts");
        switch (bank.inflightWrite.kind) {
          case ReqKind::Write:
            ++inflight_writes;
            break;
          case ReqKind::RrmRefresh:
            ++inflight_refreshes;
            break;
          case ReqKind::Read:
            RRM_AUDIT(false, name_, ": bank ", b,
                      " is writing a read request");
            break;
        }
    }

    const auto conserved = [&](ReqKind kind, std::uint64_t queued,
                               std::uint64_t inflight) {
        const auto k = static_cast<std::size_t>(kind);
        RRM_AUDIT(enqueued_[k] == retired_[k] + queued + inflight, name_,
                  ": request conservation broken for kind ",
                  static_cast<int>(kind), ": enqueued ", enqueued_[k],
                  " != retired ", retired_[k], " + queued ", queued,
                  " + inflight ", inflight);
    };
    conserved(ReqKind::Read, readQ_.size(), inflightReads_);
    conserved(ReqKind::Write, writeQ_.size(), inflight_writes);
    conserved(ReqKind::RrmRefresh, refreshQ_.size(), inflight_refreshes);

    RRM_AUDIT(lastCompletionTick_ <= now, name_,
              ": a completion was delivered in the future");
    RRM_AUDIT(!retryPending_ || retryAt_ >= now, name_,
              ": pending retry scheduled in the past");
    RRM_AUDIT(!scanMemoValid_ || scanMemoTick_ <= now, name_,
              ": scan memo recorded in the future");
}

void
Channel::saveCkpt(ckpt::ChunkWriter &w) const
{
    RRM_ASSERT(readQ_.empty() && writeQ_.empty() && refreshQ_.empty(),
               name_, ": checkpoint at a non-quiescent point (queued "
                      "requests)");
    RRM_ASSERT(!retryPending_, name_,
               ": checkpoint with a scheduler retry pending");
    RRM_ASSERT(inflightReads_ == 0, name_,
               ": checkpoint with reads in flight");
    for (const std::size_t k : {std::size_t(0), std::size_t(1),
                                std::size_t(2)}) {
        w.u64(enqueued_[k]);
        w.u64(retired_[k]);
    }
    w.u64(lastCompletionTick_);
    w.u64(busFreeAt_);
    w.u32(static_cast<std::uint32_t>(activateHistory_.size()));
    for (const Tick t : activateHistory_)
        w.u64(t);
    w.u64(activateIdx_);
    w.b(writeDrainMode_);
    w.u64(refreshHoldUntil_);
    w.b(scanMemoValid_);
    w.u64(scanMemoTick_);
    w.u64(scanMemoEarliest_);
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &bank : banks_) {
        RRM_ASSERT(!bank.writing, name_,
                   ": checkpoint with a bank mid-write");
        w.u64(bank.busyUntil);
        w.u64(bank.openRow);
        w.b(bank.hasOpenRow);
    }
}

void
Channel::restoreCkpt(ckpt::ChunkReader &r)
{
    for (const std::size_t k : {std::size_t(0), std::size_t(1),
                                std::size_t(2)}) {
        enqueued_[k] = r.u64();
        retired_[k] = r.u64();
    }
    lastCompletionTick_ = r.u64();
    busFreeAt_ = r.u64();
    const std::uint32_t history = r.u32();
    if (history > 8)
        throw ckpt::CkptError(name_ + ": implausible activate-history "
                                      "length " +
                              std::to_string(history));
    activateHistory_.resize(history);
    for (Tick &t : activateHistory_)
        t = r.u64();
    activateIdx_ = r.u64();
    writeDrainMode_ = r.b();
    refreshHoldUntil_ = r.u64();
    scanMemoValid_ = r.b();
    scanMemoTick_ = r.u64();
    scanMemoEarliest_ = r.u64();
    const std::uint32_t n = r.u32();
    if (n != banks_.size())
        throw ckpt::CkptError(
            name_ + " has " + std::to_string(banks_.size()) +
            " banks but the checkpoint holds " + std::to_string(n) +
            " (geometry mismatch)");
    for (Bank &bank : banks_) {
        bank.busyUntil = r.u64();
        bank.openRow = r.u64();
        bank.hasOpenRow = r.b();
        bank.writing = false;
    }
}

bool
Channel::idle() const
{
    if (!readQ_.empty() || !writeQ_.empty() || !refreshQ_.empty())
        return false;
    for (const auto &bank : banks_)
        if (bank.busyUntil > queue_.now() || bank.writing)
            return false;
    return true;
}

bool
Channel::quiescent() const
{
    if (!readQ_.empty() || !writeQ_.empty() || !refreshQ_.empty())
        return false;
    if (retryPending_ || inflightReads_ != 0)
        return false;
    for (const auto &bank : banks_)
        if (bank.writing)
            return false;
    return true;
}

} // namespace rrm::memctrl
