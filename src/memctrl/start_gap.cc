/**
 * @file
 * Start-Gap implementation.
 */

#include "start_gap.hh"

#include "ckpt/ckpt.hh"

namespace rrm::memctrl
{

StartGapDomain::StartGapDomain(std::uint64_t num_lines,
                               std::uint64_t gap_write_period)
    : numLines_(num_lines), gapWritePeriod_(gap_write_period)
{
    RRM_ASSERT(numLines_ >= 2, "domain needs at least two lines");
    RRM_ASSERT(gapWritePeriod_ >= 1, "gap period must be positive");
    gap_ = numLines_; // spare slot initially at the top
}

std::uint64_t
StartGapDomain::physicalSlot(std::uint64_t line) const
{
    RRM_ASSERT(line < numLines_, "line outside domain");
    // N+1 slots; `start` rotates the namespace over N, and lines at
    // or above the gap shift up one slot to skip the hole (the
    // original MICRO'09 formulation).
    std::uint64_t slot = (start_ + line) % numLines_;
    if (slot >= gap_)
        ++slot;
    return slot;
}

bool
StartGapDomain::onWrite()
{
    if (++writesSinceMove_ < gapWritePeriod_)
        return false;
    writesSinceMove_ = 0;
    ++gapMoves_;
    if (gap_ == 0) {
        // Gap wrapped: the whole array shifted one slot.
        gap_ = numLines_;
        start_ = (start_ + 1) % numLines_;
    } else {
        --gap_;
    }
    return true;
}

void
StartGapDomain::audit() const
{
    RRM_AUDIT(start_ < numLines_, "start pointer ", start_,
              " outside domain of ", numLines_, " lines");
    RRM_AUDIT(gap_ <= numLines_, "gap pointer ", gap_,
              " outside the N+1 physical slots");
    RRM_AUDIT(writesSinceMove_ < gapWritePeriod_,
              "writesSinceMove ", writesSinceMove_,
              " reached the gap period ", gapWritePeriod_,
              " without rotating");

    // Full bijection sweep: every logical line must land on a
    // distinct physical slot, and the only free slot is the gap.
    std::vector<bool> occupied(numLines_ + 1, false);
    for (std::uint64_t line = 0; line < numLines_; ++line) {
        std::uint64_t slot = (start_ + line) % numLines_;
        if (slot >= gap_)
            ++slot;
        if (slot > numLines_) {
            RRM_AUDIT(false, "line ", line, " maps to slot ", slot,
                      " beyond the physical array");
            continue;
        }
        RRM_AUDIT(!occupied[slot], "remap is not injective: slot ",
                  slot, " reached twice (line ", line, ")");
        occupied[slot] = true;
    }
    if (gap_ <= numLines_) {
        RRM_AUDIT(!occupied[gap_],
                  "gap slot ", gap_, " is occupied by a logical line");
    }
}

void
StartGapDomain::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u64(start_);
    w.u64(gap_);
    w.u64(writesSinceMove_);
    w.u64(gapMoves_);
}

void
StartGapDomain::restoreCkpt(ckpt::ChunkReader &r)
{
    start_ = r.u64();
    gap_ = r.u64();
    writesSinceMove_ = r.u64();
    gapMoves_ = r.u64();
    if (start_ >= numLines_ || gap_ > numLines_ ||
        writesSinceMove_ >= gapWritePeriod_)
        throw ckpt::CkptError(
            "Start-Gap domain pointers out of range (start " +
            std::to_string(start_) + ", gap " + std::to_string(gap_) +
            ", writesSinceMove " + std::to_string(writesSinceMove_) +
            " over " + std::to_string(numLines_) + " lines)");
}

StartGapRemapper::StartGapRemapper(std::uint64_t memory_bytes,
                                   const StartGapParams &params)
    : params_(params), memoryBytes_(memory_bytes)
{
    RRM_ASSERT(isPowerOfTwo(params_.lineBytes),
               "Start-Gap line size must be a power of two");
    const std::uint64_t total_lines = memory_bytes / params_.lineBytes;
    RRM_ASSERT(total_lines % params_.linesPerDomain == 0,
               "memory must be a whole number of Start-Gap domains");
    const std::uint64_t n = total_lines / params_.linesPerDomain;
    domains_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        domains_.emplace_back(params_.linesPerDomain,
                              params_.gapWritePeriod);
    }
}

std::uint64_t
StartGapRemapper::domainOf(Addr addr) const
{
    RRM_ASSERT(addr < memoryBytes_, "address beyond memory");
    return (addr / params_.lineBytes) / params_.linesPerDomain;
}

Addr
StartGapRemapper::remap(Addr addr) const
{
    const std::uint64_t line = addr / params_.lineBytes;
    const std::uint64_t domain = line / params_.linesPerDomain;
    const std::uint64_t local = line % params_.linesPerDomain;
    const Addr offset = addr % params_.lineBytes;

    std::uint64_t slot = domains_[domain].physicalSlot(local);
    // Fold the spare slot back into the domain (see class comment).
    if (slot == params_.linesPerDomain)
        slot = params_.linesPerDomain - 1;
    const std::uint64_t base =
        domain * params_.linesPerDomain * params_.lineBytes;
    return base + slot * params_.lineBytes + offset;
}

bool
StartGapRemapper::onWrite(Addr addr)
{
    const std::uint64_t domain = domainOf(addr);
    const bool moved = domains_[domain].onWrite();
    if (moved) {
        RRM_TRACE(traceSink_, traceNow_ ? traceNow_() : 0,
                  obs::TraceCategory::StartGap, "gapMove",
                  RRM_TF("domain", domain),
                  RRM_TF("gap", domains_[domain].gap()),
                  RRM_TF("start", domains_[domain].start()));
    }
    return moved;
}

void
StartGapRemapper::audit() const
{
    RRM_AUDIT(domains_.size() * params_.linesPerDomain *
                      params_.lineBytes ==
                  memoryBytes_,
              "domains no longer tile the memory exactly");
    for (const auto &d : domains_)
        d.audit();
}

void
StartGapRemapper::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(domains_.size()));
    for (const auto &d : domains_)
        d.saveCkpt(w);
}

void
StartGapRemapper::restoreCkpt(ckpt::ChunkReader &r)
{
    const std::uint32_t n = r.u32();
    if (n != domains_.size())
        throw ckpt::CkptError(
            "Start-Gap remapper has " + std::to_string(domains_.size()) +
            " domains but the checkpoint holds " + std::to_string(n) +
            " (geometry mismatch)");
    for (auto &d : domains_)
        d.restoreCkpt(r);
}

std::uint64_t
StartGapRemapper::totalGapMoves() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d.gapMoves();
    return n;
}

} // namespace rrm::memctrl
