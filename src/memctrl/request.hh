/**
 * @file
 * Memory controller request types.
 */

#ifndef RRM_MEMCTRL_REQUEST_HH
#define RRM_MEMCTRL_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/units.hh"
#include "pcm/write_mode.hh"

namespace rrm::memctrl
{

/** Kind of a controller-level operation. */
enum class ReqKind : std::uint8_t
{
    Read = 0,
    Write,      ///< demand write (dirty LLC eviction) with a mode
    RrmRefresh, ///< selective refresh issued by the RRM
};

/** One request in a controller queue. */
struct Request
{
    ReqKind kind = ReqKind::Read;
    Addr addr = 0;
    pcm::WriteMode mode = pcm::WriteMode::Sets7; ///< writes/refreshes
    Tick enqueueTick = 0;

    /** Completion callback (reads and refresh bookkeeping). */
    std::function<void(Tick)> onComplete;
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_REQUEST_HH
