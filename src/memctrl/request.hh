/**
 * @file
 * Memory controller request types.
 */

#ifndef RRM_MEMCTRL_REQUEST_HH
#define RRM_MEMCTRL_REQUEST_HH

#include <cstdint>

#include "common/units.hh"
#include "memctrl/address_map.hh"
#include "pcm/write_mode.hh"
#include "sim/callback.hh"

namespace rrm::memctrl
{

/** Kind of a controller-level operation. */
enum class ReqKind : std::uint8_t
{
    Read = 0,
    Write,      ///< demand write (dirty LLC eviction) with a mode
    RrmRefresh, ///< selective refresh issued by the RRM
};

/**
 * Completion callback carried by a request. Inline (non-allocating):
 * the capture travels inside the Request through the controller
 * queues and into the completion event, so a heap-allocating type
 * here would put a malloc on every read. 40 bytes fits the system's
 * fill-completion capture with headroom.
 */
using RequestCallback = InlineFunction<void(Tick), 40>;

/** One request in a controller queue. */
struct Request
{
    ReqKind kind = ReqKind::Read;
    Addr addr = 0;
    pcm::WriteMode mode = pcm::WriteMode::Sets7; ///< writes/refreshes
    Tick enqueueTick = 0;

    /**
     * Decoded location of `addr`, filled by the channel at enqueue so
     * the FR-FCFS scan never re-decodes a queued request.
     */
    Location loc{};

    /** Completion callback (reads and refresh bookkeeping). */
    RequestCallback onComplete;
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_REQUEST_HH
