/**
 * @file
 * Controller implementation.
 */

#include "controller.hh"

namespace rrm::memctrl
{

Controller::Controller(const MemoryParams &params, EventQueue &queue)
    : params_(params), map_(params)
{
    for (unsigned c = 0; c < params_.numChannels; ++c)
        channels_.push_back(std::make_unique<Channel>(c, params_, queue));
}

unsigned
Controller::channelOf(Addr addr) const
{
    return map_.decode(addr).channel;
}

bool
Controller::enqueueRead(Addr addr, RequestCallback on_complete)
{
    Request req;
    req.kind = ReqKind::Read;
    req.addr = addr;
    req.onComplete = std::move(on_complete);
    return channels_[channelOf(addr)]->enqueueRead(std::move(req));
}

bool
Controller::enqueueWrite(Addr addr, pcm::WriteMode mode)
{
    Request req;
    req.kind = ReqKind::Write;
    req.addr = addr;
    req.mode = mode;
    return channels_[channelOf(addr)]->enqueueWrite(std::move(req));
}

bool
Controller::enqueueRefresh(Addr addr, pcm::WriteMode mode)
{
    Request req;
    req.kind = ReqKind::RrmRefresh;
    req.addr = addr;
    req.mode = mode;
    return channels_[channelOf(addr)]->enqueueRefresh(std::move(req));
}

bool
Controller::writeQueueFull(Addr addr) const
{
    return channels_[channelOf(addr)]->writeQueueFull();
}

void
Controller::setCompletionHook(CompletionHook hook)
{
    for (auto &ch : channels_)
        ch->setCompletionHook(hook);
}

void
Controller::setWriteIssuedHook(WriteIssuedHook hook)
{
    for (auto &ch : channels_)
        ch->setWriteIssuedHook(hook);
}

void
Controller::setTraceSink(obs::TraceSink *sink)
{
    for (auto &ch : channels_)
        ch->setTraceSink(sink);
}

std::size_t
Controller::totalReadQueue() const
{
    std::size_t n = 0;
    for (const auto &ch : channels_)
        n += ch->readQueueSize();
    return n;
}

std::size_t
Controller::totalWriteQueue() const
{
    std::size_t n = 0;
    for (const auto &ch : channels_)
        n += ch->writeQueueSize();
    return n;
}

std::size_t
Controller::totalRefreshQueue() const
{
    std::size_t n = 0;
    for (const auto &ch : channels_)
        n += ch->refreshQueueSize();
    return n;
}

bool
Controller::idle() const
{
    for (const auto &ch : channels_)
        if (!ch->idle())
            return false;
    return true;
}

void
Controller::regStats(stats::StatGroup &group)
{
    for (auto &ch : channels_)
        ch->regStats(group);
}

} // namespace rrm::memctrl
