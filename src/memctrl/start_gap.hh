/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO 2009).
 *
 * The paper assumes "an effective wear leveling scheme (such as
 * Start-Gap) ... which makes the whole memory achieve 95% of the
 * average cell lifetime"; the lifetime model uses that 95% figure
 * analytically. This module provides the actual mechanism for users
 * who want to simulate it: an algebraic line-level remap with one
 * spare line per rotation domain.
 *
 * State per domain: `start` and `gap` pointers over N+1 physical
 * slots holding N logical lines. Every `gapWritePeriod` writes, the
 * line just above the gap moves into the gap and the gap shifts down
 * by one; when the gap has swept all slots, `start` advances, so over
 * time every logical line visits every physical slot:
 *
 *   physical(L) = (start + L) mod (N + 1), skipping the gap slot:
 *   if physical(L) >= gap then physical(L) + 1.
 *
 * The mapping is computed in O(1) from (start, gap) — no table.
 */

#ifndef RRM_MEMCTRL_START_GAP_HH
#define RRM_MEMCTRL_START_GAP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/auditable.hh"
#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/units.hh"
#include "obs/trace.hh"

namespace rrm::ckpt
{
class ChunkWriter;
class ChunkReader;
} // namespace rrm::ckpt

namespace rrm::memctrl
{

/** Start-Gap configuration. */
struct StartGapParams
{
    /** Remapping granularity (one "line"). */
    std::uint64_t lineBytes = 256;

    /** Lines per rotation domain (a region sharing one gap). */
    std::uint64_t linesPerDomain = 16384; // 4 MB domains

    /**
     * Demand writes per domain between gap movements (the paper's
     * Start-Gap uses 100: <1% write overhead).
     */
    std::uint64_t gapWritePeriod = 100;
};

/** One Start-Gap rotation domain over N logical lines. */
class StartGapDomain
{
  public:
    explicit StartGapDomain(std::uint64_t num_lines,
                            std::uint64_t gap_write_period);

    /** Physical slot of logical line `line` (0..numLines, gap skipped). */
    std::uint64_t physicalSlot(std::uint64_t line) const;

    /**
     * Account one write to the domain; returns true when the write
     * triggered a gap movement (one extra line copy = one extra
     * write of wear, charged by the caller).
     */
    bool onWrite();

    std::uint64_t numLines() const { return numLines_; }
    std::uint64_t start() const { return start_; }
    std::uint64_t gap() const { return gap_; }

    /** Gap movements performed so far. */
    std::uint64_t gapMoves() const { return gapMoves_; }

    /** @{ Checkpoint the rotation pointers and write bookkeeping. */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    /**
     * Deep-check the domain: pointer ranges, rotation bookkeeping,
     * and the full logical→physical bijection (every logical line
     * lands on a distinct slot and the only unoccupied slot is the
     * gap). O(numLines).
     */
    void audit() const;

  private:
    friend struct StartGapTestAccess;

    std::uint64_t numLines_;
    std::uint64_t gapWritePeriod_;
    std::uint64_t start_ = 0;
    std::uint64_t gap_;
    std::uint64_t writesSinceMove_ = 0;
    std::uint64_t gapMoves_ = 0;
};

/**
 * Whole-memory Start-Gap remapper: the address space is split into
 * independent rotation domains; each domain owns one spare line. The
 * remap changes which physical line backs a logical line but never
 * crosses domain boundaries, so channel/bank interleave distributions
 * are preserved statistically.
 *
 * Note: the remapped space needs one spare line per domain; this model
 * follows the common simulator simplification of keeping the address
 * space size unchanged and folding the spare into the domain (the
 * last logical line of each domain aliases the spare slot), which
 * preserves wear-spreading behaviour exactly.
 */
class StartGapRemapper : public Auditable
{
  public:
    StartGapRemapper(std::uint64_t memory_bytes,
                     const StartGapParams &params = StartGapParams());

    /** Remap a physical address; same granularity in == out. */
    Addr remap(Addr addr) const;

    /**
     * Account a demand write to `addr`'s domain.
     * @return true if the domain rotated (one extra internal write).
     */
    bool onWrite(Addr addr);

    /**
     * Attach a trace sink for gap-movement events. The remapper has
     * no clock of its own, so the caller supplies a tick source
     * (empty `now` stamps events with tick 0). Null detaches.
     */
    void
    // rrm-lint: allow(perf-hot-std-function) tick source bound once
    // per run; consulted only on rare gap movements
    setTraceSink(obs::TraceSink *sink, std::function<Tick()> now = {})
    {
        traceSink_ = sink;
        traceNow_ = std::move(now);
    }

    std::uint64_t numDomains() const
    {
        return static_cast<std::uint64_t>(domains_.size());
    }

    /** Total gap movements across all domains. */
    std::uint64_t totalGapMoves() const;

    const StartGapParams &params() const { return params_; }

    const StartGapDomain &domain(std::uint64_t i) const
    {
        return domains_.at(i);
    }

    /** @{ Checkpoint every rotation domain, in domain-index order. */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    // ---- Auditable ----
    std::string_view auditName() const override { return "startGap"; }

    /**
     * Invariants: geometry covers the memory exactly, and every
     * domain's remap is a bijection (see StartGapDomain::audit).
     */
    void audit() const override;

  private:
    std::uint64_t domainOf(Addr addr) const;

    StartGapParams params_;
    std::uint64_t memoryBytes_;
    std::vector<StartGapDomain> domains_;
    obs::TraceSink *traceSink_ = nullptr;
    // rrm-lint: allow(perf-hot-std-function) tick source bound once
    // per run; consulted only on rare gap movements
    std::function<Tick()> traceNow_;
};

/**
 * Test-only backdoor used by the corruption-seeding audit tests to
 * damage StartGapDomain state and prove the audit catches it. Never
 * use outside tests.
 */
struct StartGapTestAccess
{
    static void
    setStart(StartGapDomain &d, std::uint64_t start)
    {
        d.start_ = start;
    }

    static void
    setGap(StartGapDomain &d, std::uint64_t gap)
    {
        d.gap_ = gap;
    }

    static void
    setWritesSinceMove(StartGapDomain &d, std::uint64_t w)
    {
        d.writesSinceMove_ = w;
    }
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_START_GAP_HH
