/**
 * @file
 * Physical address decomposition.
 *
 * Layout (low to high bits):
 *
 *   [ block offset | column-in-rowbuf | channel | bank | row ]
 *
 * Channel interleaving at row-buffer (1 KB) granularity keeps
 * sequential streams spread across channels while preserving
 * open-page locality inside each 1 KB row-buffer segment; a 4 KB OS
 * page stripes across all four channels. Each bank tracks the open
 * row-buffer segment by its global `rowId` (addr >> log2(rowBufferBytes)),
 * which uniquely identifies the segment within that bank.
 */

#ifndef RRM_MEMCTRL_ADDRESS_MAP_HH
#define RRM_MEMCTRL_ADDRESS_MAP_HH

#include "common/logging.hh"
#include "common/math_util.hh"
#include "memctrl/timing.hh"

namespace rrm::memctrl
{

/** Decoded location of a block address. */
struct Location
{
    unsigned channel;
    unsigned bank;
    std::uint64_t rowId; ///< open-page tag (1 KB segment id)
};

/** Address decoder for the configured geometry. */
class AddressMap
{
  public:
    explicit AddressMap(const MemoryParams &params)
        : params_(params)
    {
        RRM_ASSERT(isPowerOfTwo(params.numChannels),
                   "channel count must be a power of two");
        RRM_ASSERT(isPowerOfTwo(params.banksPerChannel),
                   "bank count must be a power of two");
        RRM_ASSERT(isPowerOfTwo(params.rowBufferBytes),
                   "row buffer size must be a power of two");
        colShift_ = floorLog2(params.rowBufferBytes);
        chanBits_ = floorLog2(params.numChannels);
        bankBits_ = floorLog2(params.banksPerChannel);
    }

    /** Decode a (block-aligned) address. */
    Location
    decode(Addr addr) const
    {
        RRM_ASSERT(addr < params_.memoryBytes, "address ", addr,
                   " beyond PCM capacity");
        Location loc;
        std::uint64_t v = addr >> colShift_;
        loc.rowId = v; // unique per 1 KB segment (includes chan/bank)
        loc.channel = static_cast<unsigned>(v & (params_.numChannels - 1));
        v >>= chanBits_;
        loc.bank =
            static_cast<unsigned>(v & (params_.banksPerChannel - 1));
        return loc;
    }

    const MemoryParams &params() const { return params_; }

  private:
    MemoryParams params_;
    unsigned colShift_;
    unsigned chanBits_;
    unsigned bankBits_;
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_ADDRESS_MAP_HH
