/**
 * @file
 * One PCM channel: banks, request queues, and the scheduler.
 *
 * Scheduling policy (paper Table V):
 *  - the RRM Refresh Queue has the highest priority (its requests have
 *    a hard retention deadline), then reads, then writes;
 *  - reads use FR-FCFS over the open 1 KB row-buffer segments;
 *  - writes are write-through (bypassing the row buffer) and issue
 *    only when the write queue is in drain mode (above the high
 *    watermark, until the low watermark) or no read is serviceable;
 *  - an in-flight write can be *paused* at the end of its current
 *    RESET/SET pulse to service reads to the same bank (Qureshi
 *    HPCA'10 write pausing), then resumes.
 */

#ifndef RRM_MEMCTRL_CHANNEL_HH
#define RRM_MEMCTRL_CHANNEL_HH

#include <deque>
#include <functional>
#include <vector>

#include "memctrl/address_map.hh"
#include "memctrl/request.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace rrm::memctrl
{

/** Per-completion hook: (request, completion tick). */
using CompletionHook = std::function<void(const Request &, Tick)>;

/** Notification that a write left the write queue (backpressure). */
using WriteIssuedHook = std::function<void()>;

/** One memory channel with its banks and queues. */
class Channel
{
  public:
    Channel(unsigned index, const MemoryParams &params,
            EventQueue &queue);

    /** @{ Enqueue; returns false if the respective queue is full. */
    bool enqueueRead(Request req);
    bool enqueueWrite(Request req);
    bool enqueueRefresh(Request req);
    /** @} */

    /** @{ Queue occupancies. */
    std::size_t readQueueSize() const { return readQ_.size(); }
    std::size_t writeQueueSize() const { return writeQ_.size(); }
    std::size_t refreshQueueSize() const { return refreshQ_.size(); }
    /** @} */

    bool writeQueueFull() const
    {
        return writeQ_.size() >= params_.writeQueueCap;
    }

    /** Completion hook for all requests on this channel. */
    void setCompletionHook(CompletionHook hook)
    {
        completionHook_ = std::move(hook);
    }

    /** Hook invoked whenever a write leaves the write queue. */
    void setWriteIssuedHook(WriteIssuedHook hook)
    {
        writeIssuedHook_ = std::move(hook);
    }

    /** Register statistics under the given group. */
    void regStats(stats::StatGroup &group);

    /** True if all queues are empty and all banks idle (tests). */
    bool idle() const;

  private:
    struct Bank
    {
        Tick busyUntil = 0;
        std::uint64_t openRow = ~std::uint64_t(0);
        bool hasOpenRow = false;

        /** In-flight pausable write, if any. */
        bool writing = false;
        Tick writePulseStart = 0; ///< start of the pulse train
        pcm::WriteMode writeMode = pcm::WriteMode::Sets7;
        Request inflightWrite;
    };

    /** Earliest tick >= `t` at which `bank` can accept a read. */
    Tick bankReadyForRead(const Bank &bank, Tick t) const;

    /** Earliest tick >= `t` at which `bank` can accept a write. */
    Tick bankReadyForWrite(const Bank &bank, Tick t) const;

    /** Earliest tick >= `t` satisfying the tFAW activate window. */
    Tick fawReady(Tick t) const;

    void recordActivate(Tick t);

    /** Try to issue as much as possible; arrange a retry if blocked. */
    void trySchedule();

    /**
     * Attempt to issue the given request now.
     * @param earliest[out] Updated with the request's earliest issue
     *        time when it cannot issue now.
     * @return true if issued.
     */
    bool tryIssueRead(const Request &req, Tick &earliest);
    bool tryIssueWrite(const Request &req, Tick &earliest,
                       bool is_refresh);

    void scheduleRetry(Tick when);
    void complete(const Request &req, Tick when);
    void scheduleWriteCheck(unsigned bank_idx, Tick when);
    void writeCheck(unsigned bank_idx);

    unsigned index_;
    MemoryParams params_;
    EventQueue &queue_;
    AddressMap map_;

    std::vector<Bank> banks_;
    std::deque<Request> readQ_;
    std::deque<Request> writeQ_;
    std::deque<Request> refreshQ_;

    Tick busFreeAt_ = 0;
    std::vector<Tick> activateHistory_; ///< ring of last 4 activates
    std::size_t activateIdx_ = 0;

    bool writeDrainMode_ = false;

    bool retryPending_ = false;
    Tick retryAt_ = 0;
    EventQueue::EventId retryEvent_ = 0;

    CompletionHook completionHook_;
    WriteIssuedHook writeIssuedHook_;

    stats::Scalar *statReads_ = nullptr;
    stats::Scalar *statRowHits_ = nullptr;
    stats::Scalar *statWrites_ = nullptr;
    stats::Scalar *statRefreshes_ = nullptr;
    stats::Scalar *statWritePauses_ = nullptr;
    stats::Scalar *statDrainEntries_ = nullptr;
    stats::DistributionStat *statReadLatency_ = nullptr;
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_CHANNEL_HH
