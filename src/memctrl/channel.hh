/**
 * @file
 * One PCM channel: banks, request queues, and the scheduler.
 *
 * Scheduling policy (paper Table V):
 *  - the RRM Refresh Queue has the highest priority (its requests have
 *    a hard retention deadline), then reads, then writes;
 *  - reads use FR-FCFS over the open 1 KB row-buffer segments;
 *  - writes are write-through (bypassing the row buffer) and issue
 *    only when the write queue is in drain mode (above the high
 *    watermark, until the low watermark) or no read is serviceable;
 *  - an in-flight write can be *paused* at the end of its current
 *    RESET/SET pulse to service reads to the same bank (Qureshi
 *    HPCA'10 write pausing), then resumes.
 */

#ifndef RRM_MEMCTRL_CHANNEL_HH
#define RRM_MEMCTRL_CHANNEL_HH

#include <array>
#include <deque>
#include <functional>
#include <vector>

#include "common/auditable.hh"
#include "memctrl/address_map.hh"
#include "memctrl/request.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace rrm::memctrl
{

/** Per-completion hook: (request, completion tick). */
// rrm-lint: allow(perf-hot-std-function) observer seam bound once at
// construction, not captured per scheduled event
using CompletionHook = std::function<void(const Request &, Tick)>;

/** Notification that a write left the write queue (backpressure). */
// rrm-lint: allow(perf-hot-std-function) observer seam bound once at
// construction, not captured per scheduled event
using WriteIssuedHook = std::function<void()>;

/** One memory channel with its banks and queues. */
class Channel : public Auditable
{
  public:
    Channel(unsigned index, const MemoryParams &params,
            EventQueue &queue);

    /** @{ Enqueue; returns false if the respective queue is full. */
    bool enqueueRead(Request req);
    bool enqueueWrite(Request req);
    bool enqueueRefresh(Request req);
    /** @} */

    /** @{ Queue occupancies. */
    std::size_t readQueueSize() const { return readQ_.size(); }
    std::size_t writeQueueSize() const { return writeQ_.size(); }
    std::size_t refreshQueueSize() const { return refreshQ_.size(); }
    /** @} */

    bool writeQueueFull() const
    {
        return writeQ_.size() >= params_.writeQueueCap;
    }

    /**
     * Fault injection: suspend refresh issue until `until` (demand
     * reads/writes are unaffected). Extends but never shortens an
     * active hold; refreshes still enqueue while held.
     */
    void holdRefreshes(Tick until);

    Tick refreshHoldUntil() const { return refreshHoldUntil_; }

    /** Completion hook for all requests on this channel. */
    void setCompletionHook(CompletionHook hook)
    {
        completionHook_ = std::move(hook);
    }

    /** Hook invoked whenever a write leaves the write queue. */
    void setWriteIssuedHook(WriteIssuedHook hook)
    {
        writeIssuedHook_ = std::move(hook);
    }

    /**
     * Attach a trace sink for queue-occupancy events (one per accepted
     * request). Null detaches; the channel never owns the sink.
     */
    void setTraceSink(obs::TraceSink *sink) { traceSink_ = sink; }

    /** Register statistics under the given group. */
    void regStats(stats::StatGroup &group);

    /** True if all queues are empty and all banks idle (tests). */
    bool idle() const;

    /**
     * True when the channel holds no event-queue obligations: queues
     * empty, no read in flight, no bank mid-write, no scheduler retry
     * armed. Unlike idle(), future bank busyUntil ticks are allowed —
     * they are passive timing state, not pending events. This is the
     * checkpoint-drain predicate; saveCkpt() asserts it.
     */
    bool quiescent() const;

    /** Requests accepted into the given queue over the lifetime. */
    std::uint64_t enqueuedCount(ReqKind kind) const
    {
        return enqueued_[static_cast<std::size_t>(kind)];
    }

    /** Requests fully retired (completion delivered). */
    std::uint64_t retiredCount(ReqKind kind) const
    {
        return retired_[static_cast<std::size_t>(kind)];
    }

    /**
     * @{ Checkpoint the channel at a quiescent point: all queues must
     * be empty, no bank mid-write, no read in flight, and no retry
     * pending (asserted). What remains is bank timing state, the
     * conservation counters, the tFAW activate ring, and the
     * scheduler's hysteresis/memo state.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    // ---- Auditable ----
    std::string_view auditName() const override { return name_; }

    /**
     * Invariants: request conservation (every accepted request is
     * retired, queued, or in flight at a bank — nothing lost or
     * duplicated), queue occupancies within their caps, queued
     * requests enqueued no later than now, coherent per-bank write
     * state, and a pending retry no earlier than now.
     */
    void audit() const override;

  private:
    struct Bank
    {
        Tick busyUntil = 0;
        std::uint64_t openRow = ~std::uint64_t(0);
        bool hasOpenRow = false;

        /** In-flight pausable write, if any. */
        bool writing = false;
        Tick writePulseStart = 0; ///< start of the pulse train
        pcm::WriteMode writeMode = pcm::WriteMode::Sets7;
        Request inflightWrite;
    };

    /** Earliest tick >= `t` at which `bank` can accept a read. */
    Tick bankReadyForRead(const Bank &bank, Tick t) const;

    /** Earliest tick >= `t` at which `bank` can accept a write. */
    Tick bankReadyForWrite(const Bank &bank, Tick t) const;

    /** Earliest tick >= `t` satisfying the tFAW activate window. */
    Tick fawReady(Tick t) const;

    void recordActivate(Tick t);

    /** Try to issue as much as possible; arrange a retry if blocked. */
    void trySchedule();

    /**
     * Attempt to issue the given request now.
     * @param earliest[out] Updated with the request's earliest issue
     *        time when it cannot issue now.
     * @return true if issued.
     */
    bool tryIssueRead(const Request &req, Tick &earliest);
    bool tryIssueWrite(const Request &req, Tick &earliest,
                       bool is_refresh);

    void scheduleRetry(Tick when);
    void complete(const Request &req, Tick when);
    void scheduleWriteCheck(unsigned bank_idx, Tick when);
    void writeCheck(unsigned bank_idx);

    unsigned index_;
    std::string name_;
    MemoryParams params_;
    EventQueue &queue_;
    AddressMap map_;

    std::vector<Bank> banks_;
    std::deque<Request> readQ_;
    std::deque<Request> writeQ_;
    std::deque<Request> refreshQ_;

    // Request-conservation accounting (audited), indexed by ReqKind.
    std::array<std::uint64_t, 3> enqueued_{};
    std::array<std::uint64_t, 3> retired_{};
    std::uint64_t inflightReads_ = 0;
    Tick lastCompletionTick_ = 0;

    Tick busFreeAt_ = 0;
    std::vector<Tick> activateHistory_; ///< ring of last 4 activates
    std::size_t activateIdx_ = 0;

    bool writeDrainMode_ = false;
    Tick refreshHoldUntil_ = 0;

    bool retryPending_ = false;
    Tick retryAt_ = 0;
    EventHandle retryEvent_;

    /**
     * Failed-scan memo. After a trySchedule() pass whose final
     * iteration issued nothing, every queued request is known to be
     * un-issuable at (scanMemoTick_, current bank/bus state), and
     * tryIssue* failure is side-effect-free. While the memo holds (same
     * tick, no bank/bus/hold mutation), enqueueRead() only has to try
     * the new arrival instead of re-walking the whole queue; the
     * accumulated earliest-retry tick carries over. Invalidated at
     * every full-scan entry, bank-state mutation, and refresh hold.
     */
    bool scanMemoValid_ = false;
    Tick scanMemoTick_ = 0;
    Tick scanMemoEarliest_ = maxTick;

    CompletionHook completionHook_;
    WriteIssuedHook writeIssuedHook_;
    obs::TraceSink *traceSink_ = nullptr;

    stats::Scalar *statReads_ = nullptr;
    stats::Scalar *statRowHits_ = nullptr;
    stats::Scalar *statWrites_ = nullptr;
    stats::Scalar *statRefreshes_ = nullptr;
    stats::Scalar *statWritePauses_ = nullptr;
    stats::Scalar *statDrainEntries_ = nullptr;
    stats::DistributionStat *statReadLatency_ = nullptr;
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_CHANNEL_HH
