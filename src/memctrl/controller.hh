/**
 * @file
 * The MLC PCM memory controller: address decoding plus one Channel per
 * physical channel, with the three priority queues of Table V.
 *
 * The controller is timing-only: wear and energy accounting live in
 * the system layer, driven by the per-request completion hook (this
 * keeps the rate-corrected refresh bookkeeping in one place — see
 * DESIGN.md section 3).
 */

#ifndef RRM_MEMCTRL_CONTROLLER_HH
#define RRM_MEMCTRL_CONTROLLER_HH

#include <memory>
#include <vector>

#include "common/auditable.hh"
#include "memctrl/channel.hh"

namespace rrm::memctrl
{

/** Multi-channel PCM memory controller. */
class Controller : public Auditable
{
  public:
    Controller(const MemoryParams &params, EventQueue &queue);

    const MemoryParams &params() const { return params_; }

    /**
     * Enqueue a read for `addr`; `on_complete` fires when the data
     * burst finishes. @return false if the read queue is full.
     */
    bool enqueueRead(Addr addr, RequestCallback on_complete);

    /**
     * Enqueue a demand write with the given write mode.
     * @return false if the write queue is full (backpressure).
     */
    bool enqueueWrite(Addr addr, pcm::WriteMode mode);

    /**
     * Enqueue an RRM selective refresh.
     * @return false if the refresh queue is full.
     */
    bool enqueueRefresh(Addr addr, pcm::WriteMode mode);

    /** True if the write queue owning `addr` is full. */
    bool writeQueueFull(Addr addr) const;

    /** Completion hook applied to every request on every channel. */
    void setCompletionHook(CompletionHook hook);

    /** Hook invoked when any channel issues a write (drain space). */
    void setWriteIssuedHook(WriteIssuedHook hook);

    /** Forward a trace sink to every channel (null detaches). */
    void setTraceSink(obs::TraceSink *sink);

    /** Aggregate queue occupancies (tests / reporting). */
    std::size_t totalReadQueue() const;
    std::size_t totalWriteQueue() const;
    std::size_t totalRefreshQueue() const;

    /** True if every channel is drained and idle. */
    bool idle() const;

    /** True if every channel is quiescent (see Channel::quiescent). */
    bool
    quiescent() const
    {
        for (const auto &ch : channels_)
            if (!ch->quiescent())
                return false;
        return true;
    }

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    Channel &channel(unsigned i) { return *channels_.at(i); }
    const Channel &channel(unsigned i) const { return *channels_.at(i); }

    void regStats(stats::StatGroup &group);

    /** @{ Checkpoint every channel, in channel-index order. */
    void
    saveCkpt(ckpt::ChunkWriter &w) const
    {
        for (const auto &ch : channels_)
            ch->saveCkpt(w);
    }

    void
    restoreCkpt(ckpt::ChunkReader &r)
    {
        for (auto &ch : channels_)
            ch->restoreCkpt(r);
    }
    /** @} */

    // ---- Auditable ----
    std::string_view auditName() const override { return "memctrl"; }

    /** Deep-check every channel (see Channel::audit). */
    void
    audit() const override
    {
        for (const auto &ch : channels_)
            ch->audit();
    }

  private:
    unsigned channelOf(Addr addr) const;

    MemoryParams params_;
    AddressMap map_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_CONTROLLER_HH
