/**
 * @file
 * MLC PCM memory timing and geometry parameters (paper Table V).
 */

#ifndef RRM_MEMCTRL_TIMING_HH
#define RRM_MEMCTRL_TIMING_HH

#include <cstdint>

#include "common/units.hh"
#include "pcm/write_mode.hh"

namespace rrm::memctrl
{

/** Geometry + timing of the PCM main memory (Table V defaults). */
struct MemoryParams
{
    std::uint64_t memoryBytes = 8_GiB;
    unsigned numChannels = 4;
    unsigned banksPerChannel = 16;
    unsigned blockBytes = 64;

    /** Memory bus: 64-bit at 400 MHz -> 2.5 ns per beat. */
    Tick busCycle = 2500_ps;
    unsigned busWidthBytes = 8;

    /** Row-buffer granularity for open-page read hits. */
    std::uint64_t rowBufferBytes = 1_KiB;

    Tick tRCD = 120_ns; ///< activate (array read) latency
    Tick tCAS = 2500_ps; ///< column access, 1 mem cycle
    Tick tFAW = 50_ns;  ///< four-activate window per channel

    /** Queue capacities per channel (Table V). */
    unsigned readQueueCap = 32;
    unsigned writeQueueCap = 64;
    unsigned refreshQueueCap = 64;

    /**
     * Write-drain watermarks: when the write queue reaches
     * `writeHighWatermark` the channel prioritizes writes over reads
     * until it falls to `writeLowWatermark` (standard write-drain
     * scheduling; writes otherwise only issue when no read is ready).
     */
    unsigned writeHighWatermark = 48;
    unsigned writeLowWatermark = 16;

    /** Allow pausing in-flight writes at SET boundaries for reads. */
    bool writePausing = true;

    /** Data transfer time of one block on the channel bus. */
    Tick
    burstTime() const
    {
        const Cycles busBeats = blockBytes / busWidthBytes;
        return cyclesToTicks(busBeats, busCycle);
    }
};

} // namespace rrm::memctrl

#endif // RRM_MEMCTRL_TIMING_HH
