/**
 * @file
 * Trace-driven out-of-order-approximating core model.
 *
 * The core consumes a synthetic instruction trace (trace::TraceSource,
 * which generates inline or replays a materialized/packed stream)
 * and models the properties memory-system studies need (DESIGN.md
 * section 3, substitution 2):
 *
 *  - a `width`-wide pipeline dispatches/retires non-memory
 *    instructions at width per cycle;
 *  - cache hits charge small, level-dependent penalties (an OoO core
 *    hides most of L1/L2 latency);
 *  - LLC-miss loads occupy the ROB; the core stalls when the oldest
 *    outstanding load is `robSize` instructions behind the dispatch
 *    point (memory-level parallelism is bounded by the ROB and by the
 *    L1 MSHRs);
 *  - stores retire immediately (store buffer), but their fills occupy
 *    MSHRs, and a refused fill (controller backpressure — e.g. the
 *    write queue is full) stalls the core.
 *
 * Execution is batched: the core advances its local clock through
 * private L1/L2 hits synchronously and synchronizes with the event
 * queue whenever it touches shared state or exceeds a run-ahead
 * quantum, keeping event counts proportional to LLC traffic.
 */

#ifndef RRM_CPU_CORE_MODEL_HH
#define RRM_CPU_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"
#include "trace/source.hh"

namespace rrm::cpu
{

/** Core timing parameters (paper Table IV: 2 GHz, 8-issue OoO). */
struct CoreParams
{
    Tick cycle = 500_ps;   ///< 2 GHz
    unsigned width = 8;    ///< dispatch/retire width
    unsigned robSize = 192;
    unsigned maxOutstandingMisses = 8; ///< L1 MSHRs

    /** Max run-ahead before resynchronizing with the event queue. */
    Tick quantum = 200_ns;

    /** Extra cycles charged to an L2 / LLC load hit (partial hiding). */
    Cycles l2HitPenalty = 3;
    Cycles llcHitPenalty = 12;
};

/**
 * Interface the core uses to reach the memory system; implemented by
 * the System, which owns the controller, the RRM, and global limits
 * (LLC MSHRs, writeback buffer).
 */
class CorePort
{
  public:
    virtual ~CorePort() = default;

    /**
     * Request a memory fill for `line` issued at tick `when`.
     *
     * @return true if accepted (completion arrives via
     *         CoreModel::onFillComplete); false if resources are
     *         exhausted — the system will call CoreModel::resume()
     *         once space frees up.
     */
    virtual bool requestFill(unsigned core, Addr line, bool is_write,
                             Tick when) = 0;

    /**
     * Route side events of a cache access that did not reach memory
     * (LLC write registrations from the hit path).
     */
    virtual void handleAccessEvents(unsigned core,
                                    const cache::HierarchyEvents &ev,
                                    Tick when) = 0;
};

/** One simulated core. */
class CoreModel
{
  public:
    /**
     * @param addr_base Physical base of this core's address slice;
     *                  generator addresses are offset by it.
     */
    CoreModel(unsigned id, const CoreParams &params,
              trace::TraceSource source,
              cache::CacheHierarchy &hierarchy, CorePort &port,
              EventQueue &queue, Addr addr_base);

    /** Begin execution (schedules the first advance). */
    void start();

    /**
     * Notification that the fill for `line` completed (the system has
     * already filled the hierarchy). Clears ROB/MSHR occupancy and
     * resumes execution if this was the blocking resource.
     */
    void onFillComplete(Addr line);

    /** Retry after a refused requestFill (resources freed). */
    void resume();

    /**
     * Checkpoint pause: stop consuming trace records. While paused,
     * any advance — a queued event firing or a schedule request from
     * a fill completion / resume — is deferred: the core notes the
     * tick it wanted to run at and does nothing, so the event queue
     * drains to just the re-armable periodic events.
     */
    void pause();

    /**
     * Leave the paused state, re-scheduling the deferred advance (if
     * any) at the tick it originally wanted, clamped to now. The
     * system unpauses cores in core-index order so the re-created
     * events take deterministic sequence numbers.
     */
    void unpause();

    /**
     * True when the core holds no in-flight fills and no queued
     * advance event — the paused core contributes nothing to the
     * event queue and can be checkpointed.
     */
    bool
    quiescent() const
    {
        return outstandingCount_ == 0 && !advanceScheduled_;
    }

    /**
     * @{ Checkpoint the local clock, retired-instruction count, stall
     * and pending-miss state, the deferred-advance note, and the
     * trace cursor. Only legal while paused and quiescent (asserted);
     * the restored core starts paused and is unpaused by the system.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    unsigned id() const { return id_; }
    std::uint64_t instructionsRetired() const { return instrCount_; }

    /** IPC over an elapsed window. */
    double
    ipc(Tick elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return static_cast<double>(instrCount_) *
               static_cast<double>(params_.cycle) /
               static_cast<double>(elapsed);
    }

    /** Zero the instruction counter (end of warmup). */
    void resetInstructionCount() { instrCount_ = 0; }

    /** True if the core is blocked on memory right now (tests). */
    bool stalled() const { return stall_ != Stall::None; }

    void regStats(stats::StatGroup &group);

  private:
    enum class Stall : std::uint8_t
    {
        None = 0,
        Rob,      ///< oldest load too far behind dispatch
        Mshr,     ///< per-core outstanding-miss limit
        Resource, ///< port refused (global backpressure)
    };

    /**
     * One MSHR. The miss table is a fixed array of
     * maxOutstandingMisses entries scanned linearly — occupancy is
     * bounded and tiny (8 by default), so the scan beats hashing, and
     * freed entries keep their loadInstrs capacity.
     */
    struct OutstandingFill
    {
        Addr line = 0;
        bool valid = false;
        bool isWrite = false;
        /** Dispatch indices of loads waiting on this line. */
        std::vector<std::uint64_t> loadInstrs;
    };

    void scheduleAdvance(Tick when);
    void advance();

    /** Process the pending record's memory stage; false on stall. */
    bool processPendingMiss();

    /** MSHR holding `line`, or nullptr. */
    OutstandingFill *findOutstanding(Addr line);

    /** Oldest outstanding load's dispatch index (or max if none). */
    std::uint64_t oldestOutstandingLoad() const;

    bool robFull() const;

    unsigned id_;
    CoreParams params_;
    trace::TraceSource source_;
    cache::CacheHierarchy &hierarchy_;
    CorePort &port_;
    EventQueue &queue_;
    Addr addrBase_;

    Tick localTime_ = 0;
    std::uint64_t instrCount_ = 0;
    Stall stall_ = Stall::None;
    bool advanceScheduled_ = false;

    /** Checkpoint pause state (see pause()/unpause()). */
    bool paused_ = false;
    bool wantsAdvance_ = false;
    Tick wantsAdvanceAt_ = 0;

    /** Pending LLC-missing record (access already performed). */
    bool hasPending_ = false;
    Addr pendingLine_ = 0;
    bool pendingIsWrite_ = false;
    std::uint64_t pendingInstr_ = 0;

    std::vector<OutstandingFill> outstanding_; ///< fixed MSHR array
    unsigned outstandingCount_ = 0;

    stats::Scalar *statInstructions_ = nullptr;
    stats::Scalar *statMemOps_ = nullptr;
    stats::Scalar *statLoads_ = nullptr;
    stats::Scalar *statStores_ = nullptr;
    stats::Scalar *statRobStalls_ = nullptr;
    stats::Scalar *statMshrStalls_ = nullptr;
    stats::Scalar *statResourceStalls_ = nullptr;
};

} // namespace rrm::cpu

#endif // RRM_CPU_CORE_MODEL_HH
