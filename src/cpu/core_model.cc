/**
 * @file
 * CoreModel implementation.
 */

#include "core_model.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"

namespace rrm::cpu
{

CoreModel::CoreModel(unsigned id, const CoreParams &params,
                     trace::TraceSource source,
                     cache::CacheHierarchy &hierarchy, CorePort &port,
                     EventQueue &queue, Addr addr_base)
    : id_(id),
      params_(params),
      source_(std::move(source)),
      hierarchy_(hierarchy),
      port_(port),
      queue_(queue),
      addrBase_(addr_base)
{
    RRM_ASSERT(params_.width >= 1, "core width must be positive");
    RRM_ASSERT(params_.robSize >= 1, "ROB must be non-empty");
    RRM_ASSERT(params_.maxOutstandingMisses >= 1,
               "need at least one MSHR");
    outstanding_.resize(params_.maxOutstandingMisses);
}

void
CoreModel::start()
{
    scheduleAdvance(queue_.now());
}

void
CoreModel::scheduleAdvance(Tick when)
{
    if (paused_) {
        // First deferral wins, like advanceScheduled_ would.
        if (!wantsAdvance_ && !advanceScheduled_) {
            wantsAdvance_ = true;
            wantsAdvanceAt_ = when;
        }
        return;
    }
    if (advanceScheduled_)
        return;
    advanceScheduled_ = true;
    queue_.schedule(
        when, [this] { advance(); }, EventPriority::CpuTick);
}

void
CoreModel::pause()
{
    paused_ = true;
}

void
CoreModel::unpause()
{
    RRM_ASSERT(paused_, "unpause() on a running core");
    paused_ = false;
    if (wantsAdvance_) {
        wantsAdvance_ = false;
        scheduleAdvance(std::max(wantsAdvanceAt_, queue_.now()));
    }
}

CoreModel::OutstandingFill *
CoreModel::findOutstanding(Addr line)
{
    for (auto &fill : outstanding_)
        if (fill.valid && fill.line == line)
            return &fill;
    return nullptr;
}

std::uint64_t
CoreModel::oldestOutstandingLoad() const
{
    std::uint64_t oldest = ~std::uint64_t(0);
    for (const auto &fill : outstanding_) {
        if (fill.valid && !fill.loadInstrs.empty() &&
            fill.loadInstrs.front() < oldest)
            oldest = fill.loadInstrs.front();
    }
    return oldest;
}

bool
CoreModel::robFull() const
{
    const std::uint64_t oldest = oldestOutstandingLoad();
    if (oldest == ~std::uint64_t(0))
        return false;
    return instrCount_ - oldest >= params_.robSize;
}

bool
CoreModel::processPendingMiss()
{
    RRM_ASSERT(hasPending_, "no pending miss to process");

    if (OutstandingFill *hit = findOutstanding(pendingLine_)) {
        // MSHR merge: piggyback on the in-flight fill.
        hit->isWrite |= pendingIsWrite_;
        if (!pendingIsWrite_)
            hit->loadInstrs.push_back(pendingInstr_);
        hasPending_ = false;
        return true;
    }

    if (outstandingCount_ >= params_.maxOutstandingMisses) {
        stall_ = Stall::Mshr;
        if (statMshrStalls_)
            ++*statMshrStalls_;
        return false;
    }

    if (!port_.requestFill(id_, pendingLine_, pendingIsWrite_,
                           localTime_)) {
        stall_ = Stall::Resource;
        if (statResourceStalls_)
            ++*statResourceStalls_;
        return false;
    }

    OutstandingFill *fill = nullptr;
    for (auto &slot : outstanding_) {
        if (!slot.valid) {
            fill = &slot;
            break;
        }
    }
    RRM_ASSERT(fill, "MSHR count below limit but no free entry");
    fill->line = pendingLine_;
    fill->valid = true;
    fill->isWrite = pendingIsWrite_;
    if (!pendingIsWrite_)
        fill->loadInstrs.push_back(pendingInstr_);
    ++outstandingCount_;
    hasPending_ = false;
    return true;
}

void
CoreModel::advance()
{
    advanceScheduled_ = false;
    if (paused_) {
        // Swallow the event; the unpause re-schedules it at this tick.
        if (!wantsAdvance_) {
            wantsAdvance_ = true;
            wantsAdvanceAt_ = queue_.now();
        }
        return;
    }
    if (localTime_ < queue_.now())
        localTime_ = queue_.now();
    const Tick quantum_start = localTime_;

    while (true) {
        if (stall_ != Stall::None)
            return;

        if (hasPending_ && !processPendingMiss())
            return;

        if (robFull()) {
            stall_ = Stall::Rob;
            if (statRobStalls_)
                ++*statRobStalls_;
            return;
        }

        if (localTime_ - quantum_start > params_.quantum) {
            scheduleAdvance(localTime_);
            return;
        }

        const trace::TraceRecord rec = source_.next();
        instrCount_ += rec.gapInstructions;
        localTime_ +=
            (Tick(rec.gapInstructions) * params_.cycle) / params_.width;
        ++instrCount_;

        const bool is_write = rec.type == trace::AccessType::Write;
        if (statMemOps_)
            ++*statMemOps_;
        if (is_write) {
            if (statStores_)
                ++*statStores_;
        } else if (statLoads_) {
            ++*statLoads_;
        }

        const cache::HierarchyEvents ev =
            hierarchy_.access(id_, addrBase_ + rec.addr, is_write);

        if (!ev.llcMiss) {
            // Loads pay a partial (OoO-hidden) hit penalty; stores
            // complete through the store buffer.
            if (!is_write) {
                if (ev.hitLevel == 2) {
                    localTime_ += cyclesToTicks(params_.l2HitPenalty,
                                                params_.cycle);
                } else if (ev.hitLevel == 3) {
                    localTime_ += cyclesToTicks(params_.llcHitPenalty,
                                                params_.cycle);
                }
            }
            if (ev.registration || ev.memWrite)
                port_.handleAccessEvents(id_, ev, localTime_);
            continue;
        }

        hasPending_ = true;
        pendingLine_ = hierarchy_.llc().lineAddr(addrBase_ + rec.addr);
        pendingIsWrite_ = is_write;
        pendingInstr_ = instrCount_;
    }
}

void
CoreModel::onFillComplete(Addr line)
{
    OutstandingFill *fill = findOutstanding(line);
    RRM_ASSERT(fill, "fill completion for an unknown line");

    // Fill the hierarchy now that the data arrived; route any dirty
    // LLC victim / registration to the system.
    const cache::HierarchyEvents ev =
        hierarchy_.fill(id_, line, fill->isWrite);
    port_.handleAccessEvents(id_, ev, queue_.now());

    fill->valid = false;
    fill->loadInstrs.clear(); // keeps capacity for reuse
    --outstandingCount_;

    switch (stall_) {
      case Stall::Rob:
        if (!robFull()) {
            stall_ = Stall::None;
            if (localTime_ < queue_.now())
                localTime_ = queue_.now();
            scheduleAdvance(queue_.now());
        }
        break;
      case Stall::Mshr:
        stall_ = Stall::None;
        if (localTime_ < queue_.now())
            localTime_ = queue_.now();
        scheduleAdvance(queue_.now());
        break;
      case Stall::Resource:
      case Stall::None:
        break;
    }
}

void
CoreModel::resume()
{
    if (stall_ != Stall::Resource)
        return;
    stall_ = Stall::None;
    if (localTime_ < queue_.now())
        localTime_ = queue_.now();
    scheduleAdvance(queue_.now());
}

void
CoreModel::saveCkpt(ckpt::ChunkWriter &w) const
{
    RRM_ASSERT(paused_ && quiescent(),
               "core checkpoint outside a paused quiescent point");
    w.u64(localTime_);
    w.u64(instrCount_);
    w.u8(static_cast<std::uint8_t>(stall_));
    w.b(hasPending_);
    w.u64(pendingLine_);
    w.b(pendingIsWrite_);
    w.u64(pendingInstr_);
    w.b(wantsAdvance_);
    w.u64(wantsAdvanceAt_);
    w.u64(source_.consumed());
}

void
CoreModel::restoreCkpt(ckpt::ChunkReader &r)
{
    RRM_ASSERT(outstandingCount_ == 0 && !advanceScheduled_,
               "restoreCkpt() on a started core");
    paused_ = true;
    localTime_ = r.u64();
    instrCount_ = r.u64();
    const std::uint8_t stall = r.u8();
    if (stall > static_cast<std::uint8_t>(Stall::Resource))
        throw ckpt::CkptError("core " + std::to_string(id_) +
                              ": invalid stall state " +
                              std::to_string(stall));
    stall_ = static_cast<Stall>(stall);
    hasPending_ = r.b();
    pendingLine_ = r.u64();
    pendingIsWrite_ = r.b();
    pendingInstr_ = r.u64();
    wantsAdvance_ = r.b();
    wantsAdvanceAt_ = r.u64();
    source_.seek(r.u64());
}

void
CoreModel::regStats(stats::StatGroup &group)
{
    auto &g = group.addChild("core" + std::to_string(id_));
    statInstructions_ = &g.addScalar("instructions", "(unused; see ipc)");
    statMemOps_ = &g.addScalar("memOps", "memory instructions executed");
    statLoads_ = &g.addScalar("loads", "load instructions");
    statStores_ = &g.addScalar("stores", "store instructions");
    statRobStalls_ = &g.addScalar("robStalls", "stalls on a full ROB");
    statMshrStalls_ = &g.addScalar("mshrStalls", "stalls on full MSHRs");
    statResourceStalls_ = &g.addScalar(
        "resourceStalls", "stalls on memory-system backpressure");
}

} // namespace rrm::cpu
