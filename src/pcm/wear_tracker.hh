/**
 * @file
 * Per-region wear accounting for the PCM array.
 *
 * Every RESET dominates PCM cell wear (Kim & Ahn), and every write —
 * demand write, RRM selective refresh, or global refresh — performs one
 * RESET per cell, so wear is counted in block-write units, categorized
 * by cause. Demand and RRM-refresh writes are tracked per 4 KB region
 * (2M counters for an 8 GB array) to allow wear-distribution analysis;
 * global refresh touches every block uniformly and is tracked as an
 * analytic aggregate (the paper assumes a built-in self-refresh
 * circuit and does not simulate it event by event).
 */

#ifndef RRM_PCM_WEAR_TRACKER_HH
#define RRM_PCM_WEAR_TRACKER_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/auditable.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/units.hh"

namespace rrm::ckpt
{
class ChunkWriter;
class ChunkReader;
} // namespace rrm::ckpt

namespace rrm::pcm
{

/** Cause of a block write, for wear attribution. */
enum class WearCause : std::uint8_t
{
    DemandWrite = 0, ///< LLC dirty eviction reaching memory
    RrmRefresh,      ///< selective refresh issued by the RRM
    GlobalRefresh,   ///< chip self-refresh of the whole array
};

constexpr std::size_t numWearCauses = 3;

/** Human-readable cause name. */
std::string_view wearCauseName(WearCause cause);

/** Tracks block-write wear across the PCM array. */
class WearTracker : public Auditable
{
  public:
    /**
     * @param memory_bytes Total PCM capacity.
     * @param region_bytes Tracking granularity (power of two).
     * @param block_bytes  Memory block size (power of two).
     */
    WearTracker(std::uint64_t memory_bytes, std::uint64_t region_bytes,
                std::uint64_t block_bytes);

    /** Record one block write at `addr` for the given cause. */
    void recordBlockWrite(Addr addr, WearCause cause);

    /**
     * Record `count` uniform global-refresh block writes (aggregate
     * only; not attributed to regions).
     */
    void recordGlobalRefresh(std::uint64_t count);

    /** Total block writes recorded for a cause. */
    std::uint64_t total(WearCause cause) const;

    /** Total block writes across all causes. */
    std::uint64_t grandTotal() const;

    std::uint64_t numRegions() const { return regionWear_.size(); }
    std::uint64_t numBlocks() const { return numBlocks_; }
    std::uint64_t regionBytes() const { return regionBytes_; }
    std::uint64_t blockBytes() const { return blockBytes_; }

    /** Per-region wear (demand + RRM refresh) for region index r. */
    std::uint64_t regionWear(std::uint64_t r) const;

    /** Number of regions with at least one tracked write. */
    std::uint64_t touchedRegions() const;

    /** Maximum tracked per-region wear. */
    std::uint64_t maxRegionWear() const;

    /**
     * Summary of the tracked per-region wear distribution (only
     * regions with nonzero wear contribute).
     */
    SampleStats regionWearStats() const;

    /** Region index of an address. */
    std::uint64_t
    regionIndex(Addr addr) const
    {
        const std::uint64_t r = addr >> regionShift_;
        RRM_ASSERT(r < regionWear_.size(), "address ", addr,
                   " outside PCM array");
        return r;
    }

    /** Reset all counters. */
    void reset();

    /** @{ Checkpoint per-cause totals and per-region counters. */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    // ---- Auditable ----
    std::string_view auditName() const override { return "wear"; }

    /**
     * Invariants: per-cause totals never decrease between audits
     * (short of reset()), and the per-region counters sum to the
     * demand + RRM-refresh totals (global refresh is aggregate-only
     * and never attributed to regions).
     */
    void audit() const override;

  private:
    std::uint64_t memoryBytes_;
    std::uint64_t regionBytes_;
    std::uint64_t blockBytes_;
    std::uint64_t numBlocks_;
    unsigned regionShift_;

    std::array<std::uint64_t, numWearCauses> totals_{};
    std::vector<std::uint32_t> regionWear_;

    /** Audit bookkeeping: totals observed by the previous audit. */
    mutable std::array<std::uint64_t, numWearCauses> auditedTotals_{};
};

} // namespace rrm::pcm

#endif // RRM_PCM_WEAR_TRACKER_HH
