/**
 * @file
 * Canonical Table I constants.
 */

#include "write_mode.hh"

namespace rrm::pcm
{

namespace
{

/**
 * Paper Table I. Latencies satisfy latency == resetPulse +
 * setIterations * setPulse (asserted in tests); retention and
 * normalized energy are the calibrated outputs of the Li et al. model
 * re-evaluated for the 20 nm chip parameters.
 */
constexpr std::array<WriteModeParams, numWriteModes> table1 = {{
    {3, 42.0, 0.840, 2.01, 550_ns},    // Sets3
    {4, 37.0, 0.869, 24.05, 700_ns},   // Sets4
    {5, 35.0, 0.972, 104.4, 850_ns},   // Sets5
    {6, 32.0, 0.975, 991.4, 1000_ns},  // Sets6
    {7, 30.0, 1.000, 3054.9, 1150_ns}, // Sets7
}};

constexpr std::array<std::string_view, numWriteModes> names = {
    "3-SETs", "4-SETs", "5-SETs", "6-SETs", "7-SETs",
};

} // namespace

const WriteModeParams &
writeModeParams(WriteMode mode)
{
    const auto idx = static_cast<std::size_t>(mode);
    RRM_ASSERT(idx < numWriteModes, "invalid write mode");
    return table1[idx];
}

std::string_view
writeModeName(WriteMode mode)
{
    const auto idx = static_cast<std::size_t>(mode);
    RRM_ASSERT(idx < numWriteModes, "invalid write mode");
    return names[idx];
}

} // namespace rrm::pcm
