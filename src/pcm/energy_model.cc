/**
 * @file
 * EnergyModel implementation.
 */

#include "energy_model.hh"

namespace rrm::pcm
{

EnergyModel::EnergyModel(const EnergyParams &params)
    : params_(params)
{
    RRM_ASSERT(params_.writeVoltage > 0.0, "voltage must be positive");
    RRM_ASSERT(params_.bitsPerCell >= 1, "need at least one bit per cell");
    RRM_ASSERT(params_.blockBytes >= 1, "block size must be positive");
    sevenSetBlockEnergy_ =
        cellWriteEnergyCharge(WriteMode::Sets7) * cellsPerBlock();
}

unsigned
EnergyModel::cellsPerBlock() const
{
    return params_.blockBytes * 8u / params_.bitsPerCell;
}

double
EnergyModel::cellWriteEnergyCharge(WriteMode mode) const
{
    const WriteModeParams &p = writeModeParams(mode);
    // Charge (A*s): RESET pulse + N SET pulses at the mode's current.
    const double reset_charge =
        resetCurrentUa * 1e-6 * ticksToSeconds(resetPulse);
    const double set_charge = p.setCurrentUa * 1e-6 *
                              ticksToSeconds(setPulse) *
                              static_cast<double>(p.setIterations);
    return params_.writeVoltage * (reset_charge + set_charge);
}

double
EnergyModel::blockWriteEnergy(WriteMode mode) const
{
    return sevenSetBlockEnergy_ * normalizedWriteEnergy(mode);
}

double
EnergyModel::normalizedWriteEnergy(WriteMode mode) const
{
    return writeModeParams(mode).normalizedEnergy;
}

double
EnergyModel::blockRefreshEnergy(WriteMode mode) const
{
    return blockReadEnergy() + blockWriteEnergy(mode);
}

} // namespace rrm::pcm
