/**
 * @file
 * Analytic resistance-drift / retention model for MLC PCM.
 *
 * Chalcogenide structural relaxation makes a PCM cell's resistance
 * drift upward over time following the standard power law
 *
 *     log10 R(t) = log10 R0 + alpha * log10(t / t0),   t0 = 1 s.
 *
 * A 2-bit MLC cell subdivides the resistance range into four levels
 * separated by `levelSeparation` decades. An N-SET program-and-verify
 * write leaves the cell within an initial band of
 * `bandWidth(N) = bandWidth0 - bandWidthStep * N` decades above the
 * level target; the remaining `guardband(N) = levelSeparation -
 * bandWidth(N)` decades absorb drift. Retention is the time for the
 * worst-case cell (top of band, fastest drift) to cross the guardband:
 *
 *     retention(N) = t0 * 10^(guardband(N) / alpha).
 *
 * Default parameters are fitted to the paper's Table I (which itself
 * comes from the multi-factor Li et al. model); the fit is within a
 * factor of ~1.5 of every Table I retention value and exactly
 * reproduces the monotone latency/retention trade-off. Simulation
 * timing uses the calibrated Table I constants; this model exists to
 * regenerate and sanity-check them, and to let users explore other
 * technology points.
 */

#ifndef RRM_PCM_DRIFT_MODEL_HH
#define RRM_PCM_DRIFT_MODEL_HH

#include "common/random.hh"
#include "pcm/write_mode.hh"

namespace rrm::pcm
{

/** Technology parameters of the drift model. */
struct DriftParams
{
    /** Drift exponent (typical amorphous GST: ~0.1). */
    double alpha = 0.1;

    /** Std-dev of per-cell alpha under process variation. */
    double alphaSigma = 0.01;

    /** Log10-resistance separation between adjacent MLC levels. */
    double levelSeparation = 0.5;

    /** Programming band width (decades) at zero SET iterations. */
    double bandWidth0 = 0.6954;

    /** Band narrowing (decades) per additional SET iteration. */
    double bandWidthStep = 0.0798;

    /** Drift normalization time t0 in seconds. */
    double t0Seconds = 1.0;
};

/** Closed-form drift/retention calculations. */
class DriftModel
{
  public:
    explicit DriftModel(const DriftParams &params = DriftParams());

    const DriftParams &params() const { return params_; }

    /** Programming band width (decades) after n SET iterations. */
    double bandWidth(unsigned set_iterations) const;

    /** Guardband (decades) left by an n-SET write. */
    double guardband(unsigned set_iterations) const;

    /**
     * Drifted log10 resistance offset after `seconds`, for a cell with
     * the given drift exponent.
     */
    double driftDecades(double seconds, double alpha) const;

    /**
     * Worst-case retention of an n-SET write, in seconds, with the
     * nominal drift exponent.
     */
    double retentionSeconds(unsigned set_iterations) const;

    /** Retention of a WriteMode (convenience overload). */
    double
    retentionSeconds(WriteMode mode) const
    {
        return retentionSeconds(setIterations(mode));
    }

    /**
     * Sample a per-cell retention under process variation: the cell's
     * alpha is drawn from N(alpha, alphaSigma) truncated at a small
     * positive floor (fast-drifting tail shortens retention).
     */
    double sampleRetentionSeconds(unsigned set_iterations,
                                  Random &rng) const;

    /**
     * Time (seconds) until a drift of `decades` accumulates at the
     * nominal alpha.
     */
    double timeToDriftSeconds(double decades) const;

  private:
    DriftParams params_;
};

} // namespace rrm::pcm

#endif // RRM_PCM_DRIFT_MODEL_HH
