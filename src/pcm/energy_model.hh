/**
 * @file
 * PCM array energy model.
 *
 * Two views of write energy are provided:
 *
 *  - a first-principles charge model, E = V * sum(I_pulse * t_pulse)
 *    over the RESET pulse and the mode's SET iterations, per cell; and
 *  - the paper's calibrated *normalized* energy column of Table I
 *    (relative to a 7-SETs write), which the evaluation (Figure 10)
 *    uses as ground truth.
 *
 * The two disagree by up to ~20% for the short modes because Table I's
 * normalization bakes in per-iteration current shaping that the paper
 * does not fully specify; both are exposed, Table I wins for
 * reproduction, and the discrepancy is documented here and in
 * EXPERIMENTS.md.
 */

#ifndef RRM_PCM_ENERGY_MODEL_HH
#define RRM_PCM_ENERGY_MODEL_HH

#include "pcm/write_mode.hh"

namespace rrm::pcm
{

/** Energy model parameters. */
struct EnergyParams
{
    /** Write supply voltage (20 nm chip demonstration: 1.8 V). */
    double writeVoltage = 1.8;

    /** MLC bits per cell. */
    unsigned bitsPerCell = 2;

    /** Memory block (cache line) size written per block write. */
    unsigned blockBytes = 64;

    /** Energy of reading one block, in joules (mode independent). */
    double readEnergyPerBlock = 5.0e-9;
};

/** Per-write / per-read energy calculations. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams());

    const EnergyParams &params() const { return params_; }

    /** Cells per memory block (block bits / bits per cell). */
    unsigned cellsPerBlock() const;

    /** Charge-model energy of one cell write, in joules. */
    double cellWriteEnergyCharge(WriteMode mode) const;

    /**
     * Energy of writing one 64 B block, in joules, scaled so that a
     * 7-SETs block write matches the charge model and other modes
     * follow Table I's normalized-energy column.
     */
    double blockWriteEnergy(WriteMode mode) const;

    /** Table I normalized energy (7-SETs == 1.0). */
    double normalizedWriteEnergy(WriteMode mode) const;

    /** Energy of reading one block, in joules. */
    double blockReadEnergy() const { return params_.readEnergyPerBlock; }

    /**
     * Energy of refreshing one block with the given write mode: a
     * block read (to recover the data before drift corrupts it)
     * followed by a block write.
     */
    double blockRefreshEnergy(WriteMode mode) const;

  private:
    EnergyParams params_;
    double sevenSetBlockEnergy_;
};

} // namespace rrm::pcm

#endif // RRM_PCM_ENERGY_MODEL_HH
