/**
 * @file
 * DriftModel implementation.
 */

#include "drift_model.hh"

#include <algorithm>
#include <cmath>

namespace rrm::pcm
{

DriftModel::DriftModel(const DriftParams &params)
    : params_(params)
{
    RRM_ASSERT(params_.alpha > 0.0, "drift exponent must be positive");
    RRM_ASSERT(params_.levelSeparation > 0.0,
               "level separation must be positive");
    RRM_ASSERT(params_.t0Seconds > 0.0, "t0 must be positive");
    // The most precise supported write (7 SETs) must still fit inside
    // the level band, otherwise no guardband exists at all.
    RRM_ASSERT(bandWidth(7) > 0.0,
               "band width must stay positive up to 7 SET iterations");
    RRM_ASSERT(guardband(3) > 0.0,
               "even a 3-SET write must leave a positive guardband");
}

double
DriftModel::bandWidth(unsigned set_iterations) const
{
    return params_.bandWidth0 -
           params_.bandWidthStep * static_cast<double>(set_iterations);
}

double
DriftModel::guardband(unsigned set_iterations) const
{
    return params_.levelSeparation - bandWidth(set_iterations);
}

double
DriftModel::driftDecades(double seconds, double alpha) const
{
    if (seconds <= 0.0)
        return 0.0;
    return alpha * std::log10(seconds / params_.t0Seconds);
}

double
DriftModel::retentionSeconds(unsigned set_iterations) const
{
    return params_.t0Seconds *
           std::pow(10.0, guardband(set_iterations) / params_.alpha);
}

double
DriftModel::sampleRetentionSeconds(unsigned set_iterations,
                                   Random &rng) const
{
    // Box-Muller sample of the cell's drift exponent.
    const double u1 = std::max(rng.uniformDouble(), 0x1.0p-53);
    const double u2 = rng.uniformDouble();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double alpha =
        std::max(params_.alpha + z * params_.alphaSigma, 1e-3);
    return params_.t0Seconds *
           std::pow(10.0, guardband(set_iterations) / alpha);
}

double
DriftModel::timeToDriftSeconds(double decades) const
{
    RRM_ASSERT(decades >= 0.0, "negative drift target");
    return params_.t0Seconds * std::pow(10.0, decades / params_.alpha);
}

} // namespace rrm::pcm
