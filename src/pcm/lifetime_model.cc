/**
 * @file
 * LifetimeModel implementation.
 */

#include "lifetime_model.hh"

namespace rrm::pcm
{

LifetimeModel::LifetimeModel(std::uint64_t num_blocks,
                             const LifetimeParams &params)
    : numBlocks_(num_blocks), params_(params)
{
    RRM_ASSERT(numBlocks_ > 0, "lifetime model needs a non-empty array");
    RRM_ASSERT(params_.endurance > 0.0, "endurance must be positive");
    RRM_ASSERT(params_.levelingEfficiency > 0.0 &&
                   params_.levelingEfficiency <= 1.0,
               "leveling efficiency must be in (0, 1]");
}

double
LifetimeModel::demandWriteRate(const WearMeasurement &m) const
{
    RRM_ASSERT(m.windowSeconds > 0.0, "measurement window is empty");
    return static_cast<double>(m.demandWrites) / m.windowSeconds;
}

double
LifetimeModel::rrmRefreshRate(const WearMeasurement &m) const
{
    RRM_ASSERT(m.windowSeconds > 0.0, "measurement window is empty");
    RRM_ASSERT(m.timeScale >= 1.0, "time scale must be >= 1");
    // The scaled window compresses refresh intervals by timeScale, so
    // the same refresh activity is spread over timeScale x more real
    // time than the window suggests.
    return static_cast<double>(m.rrmRefreshWrites) /
           (m.windowSeconds * m.timeScale);
}

double
LifetimeModel::globalRefreshRate(const WearMeasurement &m) const
{
    if (!m.globalRefreshMode)
        return 0.0;
    // Every block is rewritten once per (un-scaled) retention interval.
    const double interval = retentionSeconds(*m.globalRefreshMode);
    return static_cast<double>(numBlocks_) / interval;
}

double
LifetimeModel::perBlockWriteRate(const WearMeasurement &m) const
{
    const double array_rate =
        demandWriteRate(m) + rrmRefreshRate(m) + globalRefreshRate(m);
    return array_rate / static_cast<double>(numBlocks_);
}

double
LifetimeModel::lifetimeSeconds(const WearMeasurement &m) const
{
    const double rate = perBlockWriteRate(m);
    RRM_ASSERT(rate > 0.0, "zero write rate gives unbounded lifetime");
    return params_.levelingEfficiency * params_.endurance / rate;
}

double
LifetimeModel::lifetimeYears(const WearMeasurement &m) const
{
    return lifetimeSeconds(m) / secondsPerYear;
}

} // namespace rrm::pcm
