/**
 * @file
 * PCM lifetime estimation.
 *
 * Follows the paper's methodology: cells endure `endurance` RESETs
 * (5e6); an effective wear-leveling scheme (Start-Gap-like) lets the
 * whole array realize `levelingEfficiency` (95%) of the lifetime
 * implied by the *average* per-block write rate. Lifetime is then
 *
 *   lifetime = efficiency * endurance / (per-block writes per second),
 *
 * where the write rate sums three causes:
 *  - demand writes, measured over the simulated window;
 *  - RRM selective refreshes, measured over the simulated window but
 *    spread over `timeScale x` more real time (see DESIGN.md section 3
 *    on time scaling: refresh rounds in the scaled run represent the
 *    same number of rounds across a `timeScale x` longer wall-clock
 *    interval);
 *  - global self-refresh, analytic: every block rewritten once per
 *    retention interval of the scheme's baseline write mode.
 */

#ifndef RRM_PCM_LIFETIME_MODEL_HH
#define RRM_PCM_LIFETIME_MODEL_HH

#include <cstdint>
#include <optional>

#include "pcm/write_mode.hh"

namespace rrm::pcm
{

/** Lifetime model configuration. */
struct LifetimeParams
{
    /** Cell endurance in RESET cycles. */
    double endurance = 5.0e6;

    /** Fraction of average-cell lifetime achieved by wear leveling. */
    double levelingEfficiency = 0.95;
};

/** Measured wear over a simulated window, ready for extrapolation. */
struct WearMeasurement
{
    /** Total demand block writes in the window. */
    std::uint64_t demandWrites = 0;

    /** Total RRM selective-refresh block writes in the window. */
    std::uint64_t rrmRefreshWrites = 0;

    /** Simulated window length in (scaled) seconds. */
    double windowSeconds = 0.0;

    /** Retention-interval compression factor of the run (>= 1). */
    double timeScale = 1.0;

    /**
     * Baseline write mode whose retention sets the global-refresh
     * interval; nullopt disables global refresh (for experiments that
     * want demand wear only).
     */
    std::optional<WriteMode> globalRefreshMode = WriteMode::Sets7;
};

/** Converts measured wear into per-second rates and lifetime. */
class LifetimeModel
{
  public:
    LifetimeModel(std::uint64_t num_blocks,
                  const LifetimeParams &params = LifetimeParams());

    const LifetimeParams &params() const { return params_; }
    std::uint64_t numBlocks() const { return numBlocks_; }

    /** Demand block writes per real second (whole array). */
    double demandWriteRate(const WearMeasurement &m) const;

    /** RRM refresh block writes per real second (whole array). */
    double rrmRefreshRate(const WearMeasurement &m) const;

    /** Global refresh block writes per real second (whole array). */
    double globalRefreshRate(const WearMeasurement &m) const;

    /** Average per-block writes per real second, all causes. */
    double perBlockWriteRate(const WearMeasurement &m) const;

    /** Estimated array lifetime in seconds. */
    double lifetimeSeconds(const WearMeasurement &m) const;

    /** Estimated array lifetime in years (365.25-day years). */
    double lifetimeYears(const WearMeasurement &m) const;

  private:
    std::uint64_t numBlocks_;
    LifetimeParams params_;
};

/** Seconds per (Julian) year. */
constexpr double secondsPerYear = 365.25 * 24.0 * 3600.0;

} // namespace rrm::pcm

#endif // RRM_PCM_LIFETIME_MODEL_HH
