/**
 * @file
 * MLC PCM write modes and their calibrated parameters (paper Table I).
 *
 * An MLC PCM write is one 100 ns RESET followed by N 150 ns SET
 * iterations. More SET iterations program a narrower resistance band,
 * leaving a larger guardband against resistance drift and therefore a
 * longer retention time — at the cost of write latency. The canonical
 * per-mode constants below are the paper's Table I, re-derived from the
 * 20 nm PCM chip demonstration; the analytic model behind them lives in
 * drift_model.hh.
 */

#ifndef RRM_PCM_WRITE_MODE_HH
#define RRM_PCM_WRITE_MODE_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "common/logging.hh"
#include "common/units.hh"

namespace rrm::pcm
{

/** The five write modes evaluated by the paper (3 to 7 SET iterations). */
enum class WriteMode : std::uint8_t
{
    Sets3 = 0,
    Sets4,
    Sets5,
    Sets6,
    Sets7,
};

/** Number of distinct write modes. */
constexpr std::size_t numWriteModes = 5;

/** All modes, shortest-latency first. */
constexpr std::array<WriteMode, numWriteModes> allWriteModes = {
    WriteMode::Sets3, WriteMode::Sets4, WriteMode::Sets5,
    WriteMode::Sets6, WriteMode::Sets7,
};

/** Per-mode electrical / timing / retention parameters. */
struct WriteModeParams
{
    unsigned setIterations;   ///< number of SET pulses
    double setCurrentUa;      ///< per-SET current in microamps
    double normalizedEnergy;  ///< write energy relative to 7-SETs
    double retentionSeconds;  ///< worst-case data retention
    Tick latency;             ///< total write pulse time (tWP)
};

/** RESET pulse length (mode independent). */
constexpr Tick resetPulse = 100_ns;

/** Single SET iteration pulse length. */
constexpr Tick setPulse = 150_ns;

/** RESET current in microamps (mode independent). */
constexpr double resetCurrentUa = 50.0;

/** Number of SET iterations of a mode (3..7). */
constexpr unsigned
setIterations(WriteMode mode)
{
    return 3u + static_cast<unsigned>(mode);
}

/** Mode with the given number of SET iterations. @pre 3 <= n <= 7. */
inline WriteMode
modeForSetIterations(unsigned n)
{
    RRM_ASSERT(n >= 3 && n <= 7, "no write mode with ", n,
               " SET iterations");
    return static_cast<WriteMode>(n - 3);
}

/** Calibrated Table I parameters for a mode. */
const WriteModeParams &writeModeParams(WriteMode mode);

/** Total write pulse latency: RESET + N x SET. */
inline Tick
writeLatency(WriteMode mode)
{
    return writeModeParams(mode).latency;
}

/** Worst-case retention, in un-scaled (paper) seconds. */
inline double
retentionSeconds(WriteMode mode)
{
    return writeModeParams(mode).retentionSeconds;
}

/** Human-readable mode name, e.g. "3-SETs". */
std::string_view writeModeName(WriteMode mode);

} // namespace rrm::pcm

#endif // RRM_PCM_WRITE_MODE_HH
