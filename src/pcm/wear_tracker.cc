/**
 * @file
 * WearTracker implementation.
 */

#include "wear_tracker.hh"

#include <algorithm>
#include <numeric>

#include "ckpt/ckpt.hh"

namespace rrm::pcm
{

std::string_view
wearCauseName(WearCause cause)
{
    switch (cause) {
      case WearCause::DemandWrite:
        return "demand_write";
      case WearCause::RrmRefresh:
        return "rrm_refresh";
      case WearCause::GlobalRefresh:
        return "global_refresh";
    }
    panic("invalid wear cause");
}

WearTracker::WearTracker(std::uint64_t memory_bytes,
                         std::uint64_t region_bytes,
                         std::uint64_t block_bytes)
    : memoryBytes_(memory_bytes),
      regionBytes_(region_bytes),
      blockBytes_(block_bytes)
{
    RRM_ASSERT(isPowerOfTwo(regionBytes_), "region size must be 2^n");
    RRM_ASSERT(isPowerOfTwo(blockBytes_), "block size must be 2^n");
    RRM_ASSERT(memoryBytes_ % regionBytes_ == 0,
               "memory size must be a whole number of regions");
    RRM_ASSERT(regionBytes_ >= blockBytes_,
               "region must be at least one block");
    numBlocks_ = memoryBytes_ / blockBytes_;
    regionShift_ = floorLog2(regionBytes_);
    regionWear_.assign(memoryBytes_ / regionBytes_, 0);
}

void
WearTracker::recordBlockWrite(Addr addr, WearCause cause)
{
    RRM_ASSERT(cause != WearCause::GlobalRefresh,
               "global refresh is aggregate-only; use "
               "recordGlobalRefresh()");
    totals_[static_cast<std::size_t>(cause)] += 1;
    std::uint32_t &w = regionWear_[regionIndex(addr)];
    if (w != ~std::uint32_t(0))
        ++w;
}

void
WearTracker::recordGlobalRefresh(std::uint64_t count)
{
    totals_[static_cast<std::size_t>(WearCause::GlobalRefresh)] += count;
}

std::uint64_t
WearTracker::total(WearCause cause) const
{
    return totals_[static_cast<std::size_t>(cause)];
}

std::uint64_t
WearTracker::grandTotal() const
{
    return std::accumulate(totals_.begin(), totals_.end(),
                           std::uint64_t(0));
}

std::uint64_t
WearTracker::regionWear(std::uint64_t r) const
{
    RRM_ASSERT(r < regionWear_.size(), "region index out of range");
    return regionWear_[r];
}

std::uint64_t
WearTracker::touchedRegions() const
{
    return static_cast<std::uint64_t>(
        std::count_if(regionWear_.begin(), regionWear_.end(),
                      [](std::uint32_t w) { return w != 0; }));
}

std::uint64_t
WearTracker::maxRegionWear() const
{
    if (regionWear_.empty())
        return 0;
    return *std::max_element(regionWear_.begin(), regionWear_.end());
}

SampleStats
WearTracker::regionWearStats() const
{
    SampleStats stats;
    for (std::uint32_t w : regionWear_)
        if (w != 0)
            stats.add(static_cast<double>(w));
    return stats;
}

void
WearTracker::reset()
{
    totals_.fill(0);
    std::fill(regionWear_.begin(), regionWear_.end(), 0);
    auditedTotals_.fill(0);
}

void
WearTracker::saveCkpt(ckpt::ChunkWriter &w) const
{
    for (const std::uint64_t t : totals_)
        w.u64(t);
    w.u32(static_cast<std::uint32_t>(regionWear_.size()));
    for (const std::uint32_t r : regionWear_)
        w.u32(r);
}

void
WearTracker::restoreCkpt(ckpt::ChunkReader &r)
{
    for (std::uint64_t &t : totals_)
        t = r.u64();
    const std::uint32_t n = r.u32();
    if (n != regionWear_.size())
        throw ckpt::CkptError(
            "wear tracker has " + std::to_string(regionWear_.size()) +
            " regions but the checkpoint holds " + std::to_string(n) +
            " (geometry mismatch)");
    for (std::uint32_t &rw : regionWear_)
        rw = r.u32();
    // Audit bookkeeping restarts from the restored totals; the
    // non-decrease invariant holds trivially across the resume.
    auditedTotals_ = totals_;
}

void
WearTracker::audit() const
{
    for (std::size_t c = 0; c < numWearCauses; ++c) {
        RRM_AUDIT(totals_[c] >= auditedTotals_[c], "wear total for ",
                  wearCauseName(static_cast<WearCause>(c)),
                  " decreased: ", totals_[c], " < ", auditedTotals_[c]);
        auditedTotals_[c] = totals_[c];
    }

    std::uint64_t region_sum = 0;
    bool saturated = false;
    for (const std::uint32_t w : regionWear_) {
        region_sum += w;
        saturated |= (w == ~std::uint32_t(0));
    }
    const std::uint64_t tracked =
        total(WearCause::DemandWrite) + total(WearCause::RrmRefresh);
    // Region counters saturate at 2^32-1, so only a lower bound holds
    // once any region has pegged.
    if (saturated) {
        RRM_AUDIT(region_sum <= tracked,
                  "region wear sum ", region_sum,
                  " exceeds tracked total ", tracked);
    } else {
        RRM_AUDIT(region_sum == tracked, "region wear sum ", region_sum,
                  " != demand+refresh total ", tracked);
    }
}

} // namespace rrm::pcm
