/**
 * @file
 * The Region Retention Monitor (the paper's contribution, Section IV).
 *
 * The RRM sits between the LLC and the memory controller. It is a
 * set-associative structure whose entries each track one aligned
 * Retention Region:
 *
 *   | valid | addr tag | hot | dirty_write_counter |
 *   | short_retention_vector (1 bit / 64 B block)  | decay_counter |
 *
 * Operations (Figure 6):
 *  - **LLC Write Registration**: on every LLC write, the LLC reports
 *    the address and whether the written LLC entry was already dirty.
 *    Writes to clean entries are ignored (streaming filter). The
 *    region's entry is looked up / allocated (LRU victim), its
 *    dirty_write_counter incremented while below hot_threshold; at
 *    hot_threshold the entry turns *hot*; while hot, the written
 *    block's short_retention_vector bit is set.
 *  - **Memory Write Mode Decision**: a memory write goes out as a
 *    fast (3-SETs) write iff its entry hits and the block's vector
 *    bit is set; otherwise as the slow default (7-SETs).
 *  - **Selective Fast Refresh**: every shortRetentionInterval, every
 *    vector bit of every hot entry produces a fast refresh request.
 *  - **Decay**: every 1/16 interval, each entry's 4-bit decay_counter
 *    increments; on wrap, a still-saturated entry stays hot with its
 *    counter halved, anything else is demoted: slow refreshes are
 *    issued for its vector bits and the vector clears.
 *
 * Paper-ambiguity resolution (DESIGN.md section 6): evicting an entry
 * with live vector bits also issues slow refreshes — otherwise the
 * fast-written blocks would silently lose their refresh obligation.
 */

#ifndef RRM_RRM_REGION_MONITOR_HH
#define RRM_RRM_REGION_MONITOR_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/auditable.hh"
#include "common/bitvector.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "rrm/rrm_config.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace rrm::monitor
{

/** A refresh request emitted by the RRM. */
struct RefreshRequest
{
    Addr blockAddr;
    pcm::WriteMode mode;
    bool fromDecay; ///< true for demotion/eviction slow refreshes
};

/** The Region Retention Monitor. */
class RegionMonitor : public Auditable
{
  public:
    using RefreshCallback = std::function<void(const RefreshRequest &)>;

    /**
     * @param config Validated configuration.
     * @param queue  Event queue for the periodic interrupts.
     */
    RegionMonitor(const RrmConfig &config, EventQueue &queue);

    ~RegionMonitor();

    RegionMonitor(const RegionMonitor &) = delete;
    RegionMonitor &operator=(const RegionMonitor &) = delete;

    const RrmConfig &config() const { return config_; }

    /** Sink for selective-refresh / demotion refresh requests. */
    void setRefreshCallback(RefreshCallback cb)
    {
        refreshCallback_ = std::move(cb);
    }

    /**
     * Attach a trace sink for entry-lifecycle (register / allocate /
     * promote / demote / evict) and refresh-emission events. Null
     * detaches; the monitor never owns the sink.
     */
    void setTraceSink(obs::TraceSink *sink) { traceSink_ = sink; }

    /**
     * Attach a wall-clock profiler; refresh rounds and decay ticks
     * then report as "rrm.refreshRound" / "rrm.decayTick" scopes.
     */
    void setProfiler(obs::Profiler *profiler) { profiler_ = profiler; }

    /**
     * Arm the periodic short-retention and decay interrupts. The
     * first short-retention interrupt fires one full interval from
     * now; decay ticks start after one decay interval.
     */
    void start();

    /** Cancel the periodic interrupts. */
    void stop();

    /** LLC Write Registration (paper Section IV-D). */
    void registerLlcWrite(Addr addr, bool was_dirty);

    /** Memory Write Mode Decision (paper Section IV-E). */
    pcm::WriteMode writeModeFor(Addr block_addr) const;

    /**
     * Refresh-pressure fallback (fault layer degradation policy).
     * While active, every write-mode decision returns the slow mode
     * and registrations stop accruing vector bits; entering demotes
     * all hot entries so their existing fast blocks get a final slow
     * rewrite instead of relying on a congested refresh path.
     */
    void setPressureFallback(bool active);

    bool pressureFallback() const { return pressureFallback_; }

    /** Demote every hot entry (slow-refreshing its vector bits). */
    void demoteAllHot();

    /** The current promotion threshold (runtime-adjustable). */
    unsigned hotThreshold() const { return config_.hotThreshold; }

    /**
     * Re-point the promotion threshold at runtime (the adaptive
     * write policy's actuator). Entry state is reconciled so every
     * audited invariant holds under the new threshold:
     *  - dirty_write_counters are clamped to the new threshold;
     *  - raising the bar demotes hot entries whose counter no longer
     *    reaches half the threshold (their fast-written blocks get a
     *    final slow rewrite, like any demotion);
     *  - lowering it promotes entries whose counter already meets it.
     * Never called by the legacy RRM scheme, whose behaviour is
     * byte-frozen by the policy golden tests.
     */
    void setHotThreshold(unsigned threshold);

    /**
     * Hook invoked after every decay tick (the adaptive policy's
     * feedback cadence). Null clears.
     */
    void setDecayEpochHook(std::function<void()> hook)
    {
        decayEpochHook_ = std::move(hook);
    }

    /** @{ Registration flow counters (post-filter lookups and hits);
     * plain counters so policies can read deltas without stats. */
    std::uint64_t registrationLookups() const
    {
        return registrationLookups_;
    }
    std::uint64_t registrationHits() const { return registrationHits_; }
    /** Lookups that landed in an already-hot entry (region reuse). */
    std::uint64_t registrationHotHits() const
    {
        return registrationHotHits_;
    }
    /** @} */

    /**
     * Probe consulted on each demotion: true when the refresh path is
     * saturated, making the demotion's slow refreshes likely to queue
     * behind a full refresh queue. Demotions under pressure are
     * counted and traced so fallback policies are observable. Set
     * before regStats so the stat is registered.
     */
    void setQueueSaturationProbe(std::function<bool()> probe)
    {
        saturationProbe_ = std::move(probe);
    }

    /** Lookup latency to charge on the write path. */
    Tick accessLatency() const { return config_.accessLatency; }

    /** @{ Introspection (tests / analysis). */
    bool isTracked(Addr addr) const;
    bool isHot(Addr addr) const;
    std::optional<unsigned> dirtyWriteCounter(Addr addr) const;
    bool shortRetentionBit(Addr block_addr) const;
    std::uint64_t hotEntryCount() const;
    std::uint64_t validEntryCount() const;
    std::uint64_t shortRetentionBlockCount() const;
    /** @} */

    /** Force one selective-refresh round (tests). */
    void runSelectiveRefresh() { onShortRetentionInterrupt(); }

    /** Force one decay tick (tests). */
    void runDecayTick() { onDecayTick(); }

    void regStats(stats::StatGroup &group);

    /**
     * @{ Checkpoint the entry table, LRU clock, registration
     * counters, pressure-fallback flag, the runtime hot threshold,
     * and — when the periodic interrupts are armed — their next-fire
     * ticks. restoreCkpt re-arms the interrupts at the saved ticks
     * (refresh first, then decay, matching start()'s arm order); the
     * monitor must not have been start()ed before restoring.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

    // ---- Auditable ----
    std::string_view auditName() const override { return "rrm"; }

    /**
     * Invariants (paper Section IV state machine):
     *  - dirty_write_counter never exceeds hot_threshold;
     *  - a hot entry's counter is at least hot_threshold/2 (set to
     *    the threshold at promotion, halved at most once per decay
     *    wrap while still hot);
     *  - only hot entries carry short_retention_vector bits, and
     *    every vector has exactly blocksPerRegion() bits;
     *  - shortRetentionBlockCount() equals the recomputed popcount
     *    over all vectors;
     *  - each entry lives in the set its region id indexes, region
     *    ids are unique within a set, and LRU stamps of valid
     *    entries are unique and bounded by the LRU clock;
     *  - decay_counter stays below decayTicksPerInterval.
     */
    void audit() const override;

  private:
    friend struct RegionMonitorTestAccess;

    struct Entry
    {
        Addr regionId = 0;
        std::uint64_t lruStamp = 0;
        BitVector shortRetentionVector;
        unsigned dirtyWriteCounter = 0;
        unsigned decayCounter = 0;
        bool valid = false;
        bool hot = false;
    };

    std::uint64_t regionIdOf(Addr addr) const;
    std::uint64_t setOf(std::uint64_t region_id) const;
    Entry *find(std::uint64_t region_id);
    const Entry *find(std::uint64_t region_id) const;

    /** Allocate an entry for region_id, evicting LRU if needed. */
    Entry &allocate(std::uint64_t region_id);

    /** Demote: slow-refresh vector bits, clear vector, hot = 0. */
    void demote(Entry &entry, bool from_eviction);

    void emitRefresh(Addr block_addr, pcm::WriteMode mode,
                     bool from_decay);

    void onShortRetentionInterrupt();
    void onDecayTick();

    RrmConfig config_;
    EventQueue &queue_;
    std::vector<Entry> entries_; ///< numSets * assoc, set-major
    std::uint64_t lruClock_ = 0;

    RefreshCallback refreshCallback_;
    std::function<void()> decayEpochHook_;
    std::uint64_t registrationLookups_ = 0;
    std::uint64_t registrationHits_ = 0;
    std::uint64_t registrationHotHits_ = 0;
    std::function<bool()> saturationProbe_;
    bool pressureFallback_ = false;
    obs::TraceSink *traceSink_ = nullptr;
    obs::Profiler *profiler_ = nullptr;
    std::unique_ptr<PeriodicTask> refreshTask_;
    std::unique_ptr<PeriodicTask> decayTask_;

    stats::Scalar *statRegistrations_ = nullptr;
    stats::Scalar *statCleanFiltered_ = nullptr;
    stats::Scalar *statRegHits_ = nullptr;
    stats::Scalar *statAllocations_ = nullptr;
    stats::Scalar *statEvictions_ = nullptr;
    stats::Scalar *statEvictionFlushes_ = nullptr;
    stats::Scalar *statPromotions_ = nullptr;
    stats::Scalar *statDemotions_ = nullptr;
    stats::Scalar *statDemotionsUnderPressure_ = nullptr;
    stats::Scalar *statFastDecisions_ = nullptr;
    stats::Scalar *statSlowDecisions_ = nullptr;
    stats::Scalar *statFastRefreshes_ = nullptr;
    stats::Scalar *statSlowRefreshes_ = nullptr;
    stats::Scalar *statRefreshRounds_ = nullptr;
};

/**
 * Test-only backdoor used by the corruption-seeding audit tests to
 * damage RegionMonitor entry state and prove the audit catches it.
 * All mutators address the entry tracking `addr`'s region and panic
 * if none exists. Never use outside tests.
 */
struct RegionMonitorTestAccess
{
    static void corruptDirtyWriteCounter(RegionMonitor &rrm, Addr addr,
                                         unsigned value);
    static void corruptHotFlag(RegionMonitor &rrm, Addr addr, bool hot);
    static void corruptDecayCounter(RegionMonitor &rrm, Addr addr,
                                    unsigned value);
    static void corruptVectorBit(RegionMonitor &rrm, Addr block_addr);
    static void corruptLruStamp(RegionMonitor &rrm, Addr addr,
                                std::uint64_t stamp);
    static void corruptRegionId(RegionMonitor &rrm, Addr addr,
                                std::uint64_t region_id);

  private:
    static RegionMonitor::Entry &entryFor(RegionMonitor &rrm, Addr addr);
};

} // namespace rrm::monitor

#endif // RRM_RRM_REGION_MONITOR_HH
