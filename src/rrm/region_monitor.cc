/**
 * @file
 * RegionMonitor implementation.
 */

#include "region_monitor.hh"

#include "ckpt/ckpt.hh"

namespace rrm::monitor
{

RegionMonitor::RegionMonitor(const RrmConfig &config, EventQueue &queue)
    : config_(config), queue_(queue)
{
    config_.check();
    entries_.resize(std::size_t(config_.numSets) * config_.assoc);
    for (auto &e : entries_)
        e.shortRetentionVector = BitVector(config_.blocksPerRegion());
}

RegionMonitor::~RegionMonitor()
{
    stop();
}

void
RegionMonitor::start()
{
    RRM_ASSERT(!refreshTask_ && !decayTask_, "RRM already started");
    const Tick interval = config_.shortRetentionInterval();
    const Tick decay = config_.decayTickInterval();
    refreshTask_ = std::make_unique<PeriodicTask>(
        queue_, interval, queue_.now() + interval,
        [this] { onShortRetentionInterrupt(); },
        EventPriority::RefreshInterrupt);
    decayTask_ = std::make_unique<PeriodicTask>(
        queue_, decay, queue_.now() + decay,
        [this] { onDecayTick(); }, EventPriority::RefreshInterrupt);
}

void
RegionMonitor::stop()
{
    refreshTask_.reset();
    decayTask_.reset();
}

std::uint64_t
RegionMonitor::regionIdOf(Addr addr) const
{
    return addr / config_.regionBytes;
}

std::uint64_t
RegionMonitor::setOf(std::uint64_t region_id) const
{
    return region_id % config_.numSets;
}

RegionMonitor::Entry *
RegionMonitor::find(std::uint64_t region_id)
{
    Entry *base = &entries_[setOf(region_id) * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w)
        if (base[w].valid && base[w].regionId == region_id)
            return &base[w];
    return nullptr;
}

const RegionMonitor::Entry *
RegionMonitor::find(std::uint64_t region_id) const
{
    return const_cast<RegionMonitor *>(this)->find(region_id);
}

RegionMonitor::Entry &
RegionMonitor::allocate(std::uint64_t region_id)
{
    Entry *base = &entries_[setOf(region_id) * config_.assoc];
    Entry *slot = nullptr;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
    }
    if (!slot) {
        // Evict the LRU entry of the set.
        slot = base;
        for (unsigned w = 1; w < config_.assoc; ++w)
            if (base[w].lruStamp < slot->lruStamp)
                slot = &base[w];
        if (statEvictions_)
            ++*statEvictions_;
        RRM_TRACE(traceSink_, queue_.now(),
                  obs::TraceCategory::RrmLifecycle, "evict",
                  RRM_TF("region", slot->regionId),
                  RRM_TF("hot", slot->hot),
                  RRM_TF("vectorBits",
                         slot->shortRetentionVector.popcount()));
        if (slot->shortRetentionVector.any()) {
            // Fast-written blocks lose their tracker: hand them back
            // to long retention before dropping the entry.
            if (statEvictionFlushes_)
                ++*statEvictionFlushes_;
            demote(*slot, true);
        }
    }

    slot->regionId = region_id;
    slot->valid = true;
    slot->hot = false;
    slot->dirtyWriteCounter = 0;
    slot->decayCounter = 0;
    slot->shortRetentionVector.reset();
    slot->lruStamp = ++lruClock_;
    if (statAllocations_)
        ++*statAllocations_;
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::RrmLifecycle,
              "alloc", RRM_TF("region", region_id));
    return *slot;
}

void
RegionMonitor::registerLlcWrite(Addr addr, bool was_dirty)
{
    if (statRegistrations_)
        ++*statRegistrations_;
    // Streaming filter: only writes to already-dirty LLC entries count
    // (paper Section IV-D).
    if (config_.dirtyWriteFilter && !was_dirty) {
        if (statCleanFiltered_)
            ++*statCleanFiltered_;
        return;
    }

    const std::uint64_t region_id = regionIdOf(addr);
    ++registrationLookups_;
    Entry *entry = find(region_id);
    if (entry) {
        ++registrationHits_;
        if (entry->hot)
            ++registrationHotHits_;
        if (statRegHits_)
            ++*statRegHits_;
    } else {
        entry = &allocate(region_id);
    }
    entry->lruStamp = ++lruClock_;

    if (entry->dirtyWriteCounter < config_.hotThreshold) {
        ++entry->dirtyWriteCounter;
        if (entry->dirtyWriteCounter == config_.hotThreshold &&
            !entry->hot) {
            entry->hot = true;
            if (statPromotions_)
                ++*statPromotions_;
            RRM_TRACE(traceSink_, queue_.now(),
                      obs::TraceCategory::RrmLifecycle, "promote",
                      RRM_TF("region", region_id),
                      RRM_TF("counter", entry->dirtyWriteCounter));
        }
    }

    // Under refresh-pressure fallback no new short-retention
    // obligations are created: blocks keep going out as slow writes.
    if (entry->hot && !pressureFallback_) {
        const std::uint64_t block =
            (addr % config_.regionBytes) / config_.blockBytes;
        entry->shortRetentionVector.set(block);
    }
}

pcm::WriteMode
RegionMonitor::writeModeFor(Addr block_addr) const
{
    if (pressureFallback_) {
        if (statSlowDecisions_)
            ++*statSlowDecisions_;
        return config_.slowMode;
    }
    const Entry *entry = find(regionIdOf(block_addr));
    if (entry) {
        const std::uint64_t block =
            (block_addr % config_.regionBytes) / config_.blockBytes;
        if (entry->shortRetentionVector.test(block)) {
            if (statFastDecisions_)
                ++*statFastDecisions_;
            return config_.fastMode;
        }
    }
    if (statSlowDecisions_)
        ++*statSlowDecisions_;
    return config_.slowMode;
}

void
RegionMonitor::emitRefresh(Addr block_addr, pcm::WriteMode mode,
                           bool from_decay)
{
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Refresh,
              "refresh", RRM_TF("block", block_addr),
              RRM_TF("sets", pcm::setIterations(mode)),
              RRM_TF("fromDecay", from_decay));
    if (refreshCallback_)
        refreshCallback_(RefreshRequest{block_addr, mode, from_decay});
}

void
RegionMonitor::demote(Entry &entry, bool from_eviction)
{
    // A demotion's slow refreshes are retention-critical: when the
    // refresh path is already saturated they queue behind a full
    // refresh queue, so surface the hazard for fallback policies.
    if (saturationProbe_ && entry.shortRetentionVector.any() &&
        saturationProbe_()) {
        if (statDemotionsUnderPressure_)
            ++*statDemotionsUnderPressure_;
        RRM_TRACE(traceSink_, queue_.now(),
                  obs::TraceCategory::Refresh, "demoteUnderPressure",
                  RRM_TF("region", entry.regionId),
                  RRM_TF("vectorBits",
                         entry.shortRetentionVector.popcount()),
                  RRM_TF("fromEviction", from_eviction));
    }
    const Addr region_base = entry.regionId * config_.regionBytes;
    entry.shortRetentionVector.forEachSet([&](std::size_t block) {
        emitRefresh(region_base + block * config_.blockBytes,
                    config_.slowMode, true);
        if (statSlowRefreshes_)
            ++*statSlowRefreshes_;
    });
    entry.shortRetentionVector.reset();
    entry.hot = false;
    if (!from_eviction) {
        if (statDemotions_)
            ++*statDemotions_;
        RRM_TRACE(traceSink_, queue_.now(),
                  obs::TraceCategory::RrmLifecycle, "demote",
                  RRM_TF("region", entry.regionId),
                  RRM_TF("counter", entry.dirtyWriteCounter));
    }
}

void
RegionMonitor::onShortRetentionInterrupt()
{
    RRM_PROFILE(profiler_, "rrm.refreshRound");
    if (statRefreshRounds_)
        ++*statRefreshRounds_;
    RRM_TRACE(traceSink_, queue_.now(), obs::TraceCategory::Refresh,
              "refreshRound", RRM_TF("hotEntries", hotEntryCount()),
              RRM_TF("vectorBits", shortRetentionBlockCount()));
    for (auto &entry : entries_) {
        if (!entry.valid || !entry.hot)
            continue;
        const Addr region_base = entry.regionId * config_.regionBytes;
        entry.shortRetentionVector.forEachSet([&](std::size_t block) {
            emitRefresh(region_base + block * config_.blockBytes,
                        config_.fastMode, false);
            if (statFastRefreshes_)
                ++*statFastRefreshes_;
        });
    }
}

void
RegionMonitor::onDecayTick()
{
    RRM_PROFILE(profiler_, "rrm.decayTick");
    for (auto &entry : entries_) {
        if (!entry.valid)
            continue;
        entry.decayCounter =
            (entry.decayCounter + 1) % config_.decayTicksPerInterval;
        if (entry.decayCounter != 0)
            continue;
        // Wrap: re-evaluate hotness over the elapsed interval.
        if (entry.hot) {
            if (entry.dirtyWriteCounter >= config_.hotThreshold) {
                // Still hot: halve the counter for the next interval.
                entry.dirtyWriteCounter /= 2;
            } else {
                demote(entry, false);
            }
        }
    }
    if (decayEpochHook_)
        decayEpochHook_();
}

void
RegionMonitor::setHotThreshold(unsigned threshold)
{
    RRM_ASSERT(threshold > 0, "hot_threshold must be positive");
    if (threshold == config_.hotThreshold)
        return;
    RRM_TRACE(traceSink_, queue_.now(),
              obs::TraceCategory::RrmLifecycle, "hotThreshold",
              RRM_TF("from", config_.hotThreshold),
              RRM_TF("to", threshold));
    config_.hotThreshold = threshold;
    for (auto &e : entries_) {
        if (!e.valid)
            continue;
        if (e.dirtyWriteCounter > threshold)
            e.dirtyWriteCounter = threshold;
        if (e.hot && e.dirtyWriteCounter < threshold / 2) {
            // The bar rose past this entry: its fast-written blocks
            // get a final slow rewrite, like any demotion.
            demote(e, false);
        } else if (!e.hot && e.dirtyWriteCounter >= threshold) {
            e.hot = true;
            if (statPromotions_)
                ++*statPromotions_;
            RRM_TRACE(traceSink_, queue_.now(),
                      obs::TraceCategory::RrmLifecycle, "promote",
                      RRM_TF("region", e.regionId),
                      RRM_TF("counter", e.dirtyWriteCounter));
        }
    }
}

void
RegionMonitor::setPressureFallback(bool active)
{
    if (active == pressureFallback_)
        return;
    pressureFallback_ = active;
    RRM_TRACE(traceSink_, queue_.now(),
              obs::TraceCategory::RrmLifecycle, "pressureFallback",
              RRM_TF("active", active),
              RRM_TF("hotEntries", hotEntryCount()));
    if (active)
        demoteAllHot();
}

void
RegionMonitor::demoteAllHot()
{
    for (auto &entry : entries_) {
        if (!entry.valid || !entry.hot)
            continue;
        demote(entry, false);
        // Halve the counter (as a decay wrap would) so the region can
        // earn promotion again instead of wedging at the threshold.
        entry.dirtyWriteCounter /= 2;
    }
}

bool
RegionMonitor::isTracked(Addr addr) const
{
    return find(regionIdOf(addr)) != nullptr;
}

bool
RegionMonitor::isHot(Addr addr) const
{
    const Entry *e = find(regionIdOf(addr));
    return e && e->hot;
}

std::optional<unsigned>
RegionMonitor::dirtyWriteCounter(Addr addr) const
{
    const Entry *e = find(regionIdOf(addr));
    if (!e)
        return std::nullopt;
    return e->dirtyWriteCounter;
}

bool
RegionMonitor::shortRetentionBit(Addr block_addr) const
{
    const Entry *e = find(regionIdOf(block_addr));
    if (!e)
        return false;
    const std::uint64_t block =
        (block_addr % config_.regionBytes) / config_.blockBytes;
    return e->shortRetentionVector.test(block);
}

std::uint64_t
RegionMonitor::hotEntryCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        if (e.valid && e.hot)
            ++n;
    return n;
}

std::uint64_t
RegionMonitor::validEntryCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

std::uint64_t
RegionMonitor::shortRetentionBlockCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        if (e.valid)
            n += e.shortRetentionVector.popcount();
    return n;
}

void
RegionMonitor::audit() const
{
    std::uint64_t vector_bits = 0;
    for (std::uint64_t set = 0; set < config_.numSets; ++set) {
        const Entry *base = &entries_[set * config_.assoc];
        for (unsigned w = 0; w < config_.assoc; ++w) {
            const Entry &e = base[w];
            RRM_AUDIT(e.shortRetentionVector.size() ==
                          config_.blocksPerRegion(),
                      "entry (set ", set, " way ", w,
                      ") vector width ", e.shortRetentionVector.size(),
                      " != blocks per region ",
                      config_.blocksPerRegion());
            if (!e.valid) {
                RRM_AUDIT(!e.hot, "invalid entry (set ", set, " way ",
                          w, ") is marked hot");
                RRM_AUDIT(e.shortRetentionVector.none(),
                          "invalid entry (set ", set, " way ", w,
                          ") still holds vector bits");
                continue;
            }

            RRM_AUDIT(setOf(e.regionId) == set, "entry for region ",
                      e.regionId, " stored in set ", set,
                      " but indexes to set ", setOf(e.regionId));
            RRM_AUDIT(e.dirtyWriteCounter <= config_.hotThreshold,
                      "region ", e.regionId, " dirty_write_counter ",
                      e.dirtyWriteCounter, " above hot_threshold ",
                      config_.hotThreshold);
            if (e.hot) {
                RRM_AUDIT(e.dirtyWriteCounter >=
                              config_.hotThreshold / 2,
                          "hot region ", e.regionId, " counter ",
                          e.dirtyWriteCounter,
                          " below half the promotion threshold — hot "
                          "without ever reaching hot_threshold?");
            } else {
                RRM_AUDIT(e.shortRetentionVector.none(), "region ",
                          e.regionId,
                          " holds vector bits while not hot");
            }
            RRM_AUDIT(e.decayCounter < config_.decayTicksPerInterval,
                      "region ", e.regionId, " decay_counter ",
                      e.decayCounter, " outside its ",
                      config_.decayTicksPerInterval, "-tick window");
            RRM_AUDIT(e.lruStamp <= lruClock_, "region ", e.regionId,
                      " LRU stamp ", e.lruStamp,
                      " ahead of the LRU clock ", lruClock_);
            vector_bits += e.shortRetentionVector.popcount();

            for (unsigned v = w + 1; v < config_.assoc; ++v) {
                if (!base[v].valid)
                    continue;
                RRM_AUDIT(base[v].regionId != e.regionId,
                          "region ", e.regionId,
                          " tracked twice in set ", set);
                RRM_AUDIT(base[v].lruStamp != e.lruStamp,
                          "duplicate LRU stamp ", e.lruStamp,
                          " in set ", set, " (ways ", w, " and ", v,
                          ")");
            }
        }
    }
    RRM_AUDIT(shortRetentionBlockCount() == vector_bits,
              "shortRetentionBlockCount() ", shortRetentionBlockCount(),
              " != recomputed vector popcount ", vector_bits);
}

void
RegionMonitor::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u32(config_.hotThreshold);
    w.b(pressureFallback_);
    w.u64(lruClock_);
    w.u64(registrationLookups_);
    w.u64(registrationHits_);
    w.u64(registrationHotHits_);
    w.b(refreshTask_ != nullptr);
    if (refreshTask_) {
        w.u64(refreshTask_->nextFireAt());
        w.u64(decayTask_->nextFireAt());
    }
    w.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.u64(e.regionId);
        w.u64(e.lruStamp);
        w.u32(e.dirtyWriteCounter);
        w.u32(e.decayCounter);
        w.b(e.valid);
        w.b(e.hot);
        for (const std::uint64_t word : e.shortRetentionVector.words())
            w.u64(word);
    }
}

void
RegionMonitor::restoreCkpt(ckpt::ChunkReader &r)
{
    RRM_ASSERT(!refreshTask_ && !decayTask_,
               "restoreCkpt() on a started RegionMonitor");
    // Direct assignment: setHotThreshold() would emit reconciliation
    // refreshes, but the saved entry table is already consistent with
    // the saved threshold.
    config_.hotThreshold = r.u32();
    pressureFallback_ = r.b();
    lruClock_ = r.u64();
    registrationLookups_ = r.u64();
    registrationHits_ = r.u64();
    registrationHotHits_ = r.u64();
    const bool armed = r.b();
    Tick refresh_next = 0;
    Tick decay_next = 0;
    if (armed) {
        refresh_next = r.u64();
        decay_next = r.u64();
    }
    const std::uint32_t n = r.u32();
    if (n != entries_.size())
        throw ckpt::CkptError(
            "RRM has " + std::to_string(entries_.size()) +
            " entries but the checkpoint holds " + std::to_string(n) +
            " (geometry mismatch)");
    const std::size_t vector_words =
        (config_.blocksPerRegion() + 63) / 64;
    std::vector<std::uint64_t> words(vector_words);
    for (Entry &e : entries_) {
        e.regionId = r.u64();
        e.lruStamp = r.u64();
        e.dirtyWriteCounter = r.u32();
        e.decayCounter = r.u32();
        e.valid = r.b();
        e.hot = r.b();
        for (std::uint64_t &word : words)
            word = r.u64();
        e.shortRetentionVector.setWords(words);
    }
    if (armed) {
        // Re-arm in ascending last-arm order (next fire minus period):
        // both tasks run at RefreshInterrupt priority, so when their
        // fire ticks coincide the one whose pending event is OLDER
        // (lower sequence number) fires first. Re-creating the events
        // in last-arm order reproduces the interrupted run's relative
        // sequence numbers (DESIGN.md section 16). Ties (both re-armed
        // at one coincident tick, or neither has fired yet) preserve
        // start()'s refresh-before-decay order, which is exactly the
        // order a coincident fire re-establishes.
        const Tick interval = config_.shortRetentionInterval();
        const Tick decay = config_.decayTickInterval();
        const auto arm_refresh = [&] {
            refreshTask_ = std::make_unique<PeriodicTask>(
                queue_, interval, refresh_next,
                [this] { onShortRetentionInterrupt(); },
                EventPriority::RefreshInterrupt);
        };
        const auto arm_decay = [&] {
            decayTask_ = std::make_unique<PeriodicTask>(
                queue_, decay, decay_next, [this] { onDecayTick(); },
                EventPriority::RefreshInterrupt);
        };
        if (decay_next - decay < refresh_next - interval) {
            arm_decay();
            arm_refresh();
        } else {
            arm_refresh();
            arm_decay();
        }
    }
}

RegionMonitor::Entry &
RegionMonitorTestAccess::entryFor(RegionMonitor &rrm, Addr addr)
{
    RegionMonitor::Entry *e = rrm.find(rrm.regionIdOf(addr));
    RRM_ASSERT(e, "no RRM entry tracks address ", addr);
    return *e;
}

void
RegionMonitorTestAccess::corruptDirtyWriteCounter(RegionMonitor &rrm,
                                                  Addr addr,
                                                  unsigned value)
{
    entryFor(rrm, addr).dirtyWriteCounter = value;
}

void
RegionMonitorTestAccess::corruptHotFlag(RegionMonitor &rrm, Addr addr,
                                        bool hot)
{
    entryFor(rrm, addr).hot = hot;
}

void
RegionMonitorTestAccess::corruptDecayCounter(RegionMonitor &rrm,
                                             Addr addr, unsigned value)
{
    entryFor(rrm, addr).decayCounter = value;
}

void
RegionMonitorTestAccess::corruptVectorBit(RegionMonitor &rrm,
                                          Addr block_addr)
{
    RegionMonitor::Entry &e = entryFor(rrm, block_addr);
    const std::uint64_t block =
        (block_addr % rrm.config_.regionBytes) / rrm.config_.blockBytes;
    e.shortRetentionVector.set(block);
}

void
RegionMonitorTestAccess::corruptLruStamp(RegionMonitor &rrm, Addr addr,
                                         std::uint64_t stamp)
{
    entryFor(rrm, addr).lruStamp = stamp;
}

void
RegionMonitorTestAccess::corruptRegionId(RegionMonitor &rrm, Addr addr,
                                         std::uint64_t region_id)
{
    entryFor(rrm, addr).regionId = region_id;
}

void
RegionMonitor::regStats(stats::StatGroup &group)
{
    auto &g = group.addChild("rrm");
    statRegistrations_ =
        &g.addScalar("registrations", "LLC write registrations seen");
    statCleanFiltered_ = &g.addScalar(
        "cleanFiltered", "registrations dropped by the dirty filter");
    statRegHits_ =
        &g.addScalar("registrationHits", "registrations hitting an entry");
    statAllocations_ = &g.addScalar("allocations", "entries allocated");
    statEvictions_ = &g.addScalar("evictions", "LRU entries evicted");
    statEvictionFlushes_ = &g.addScalar(
        "evictionFlushes", "evictions that flushed live vector bits");
    statPromotions_ = &g.addScalar("promotions", "entries turned hot");
    statDemotions_ = &g.addScalar("demotions", "hot entries decayed");
    if (saturationProbe_) {
        statDemotionsUnderPressure_ = &g.addScalar(
            "demotionsUnderPressure",
            "demotions issued while the refresh path was saturated");
    }
    statFastDecisions_ =
        &g.addScalar("fastWrites", "memory writes sent as fast mode");
    statSlowDecisions_ =
        &g.addScalar("slowWrites", "memory writes sent as slow mode");
    statFastRefreshes_ =
        &g.addScalar("fastRefreshes", "selective fast refreshes issued");
    statSlowRefreshes_ = &g.addScalar(
        "slowRefreshes", "demotion/eviction slow refreshes issued");
    statRefreshRounds_ =
        &g.addScalar("refreshRounds", "short retention interrupts");
}

} // namespace rrm::monitor
