/**
 * @file
 * Region Retention Monitor configuration (paper Section IV, Table IV).
 */

#ifndef RRM_RRM_RRM_CONFIG_HH
#define RRM_RRM_RRM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/units.hh"
#include "pcm/write_mode.hh"

namespace rrm::monitor
{

/** Static configuration of the RRM structure. */
struct RrmConfig
{
    /** Retention Region size covered by one entry (default 4 KB). */
    std::uint64_t regionBytes = 4_KiB;

    /** Memory block size (one short_retention_vector bit each). */
    std::uint64_t blockBytes = 64;

    /** Set count (256 sets x 24 ways = 24 MB = 4x LLC coverage). */
    unsigned numSets = 256;

    /** Associativity. */
    unsigned assoc = 24;

    /** Dirty writes needed to mark a region hot. */
    unsigned hotThreshold = 16;

    /**
     * Register only LLC writes to previously-dirty LLC entries (the
     * paper's streaming filter, Section IV-D). Disabling it lets
     * streaming regions accumulate registrations and turn hot — the
     * failure mode the paper designed the filter against; exposed for
     * the ablation bench.
     */
    bool dirtyWriteFilter = true;

    /** RRM lookup latency (4 cycles @ 2 GHz). */
    Tick accessLatency = 2_ns;

    /** Fast (short retention) and slow (long retention) write modes. */
    pcm::WriteMode fastMode = pcm::WriteMode::Sets3;
    pcm::WriteMode slowMode = pcm::WriteMode::Sets7;

    /**
     * Safety margin before the fast mode's retention expires: the
     * paper refreshes every 2 s against a 2.01 s retention.
     */
    double guardSeconds = 0.01;

    /**
     * Retention-interval compression factor of the run (DESIGN.md
     * section 3); 1.0 reproduces the paper's native timing.
     */
    double timeScale = 1.0;

    /** Decay ticks per short-retention interval (4-bit counter). */
    unsigned decayTicksPerInterval = 16;

    /**
     * Stretch factor applied to the decay window in scaled runs.
     *
     * At native scale the dirty_write_counter accumulates over one
     * 2 s short-retention interval; compressing intervals by
     * `timeScale` shrinks that accumulation window while cache
     * residency dynamics (which gate the dirty-write filter) do not
     * scale, making hot_threshold effectively timeScale x stricter.
     * Stretching the decay window by ~timeScale/16 restores the
     * paper's dirty-writes-per-window regime (see DESIGN.md
     * section 3). 0 selects that automatic value; 1 reproduces the
     * paper's native 0.125 s ticks.
     */
    double decayStretch = 0.0;

    /** Effective decay stretch (resolves the 0 = auto default). */
    double
    effectiveDecayStretch() const
    {
        if (decayStretch > 0.0)
            return decayStretch;
        return timeScale > 16.0 ? timeScale / 16.0 : 1.0;
    }

    /** Blocks (vector bits) per Retention Region. */
    std::uint64_t
    blocksPerRegion() const
    {
        return regionBytes / blockBytes;
    }

    /** Memory covered by the whole structure. */
    std::uint64_t
    coverageBytes() const
    {
        return regionBytes * numSets * assoc;
    }

    /** Interval between short-retention (fast refresh) interrupts. */
    Tick
    shortRetentionInterval() const
    {
        const double seconds =
            (pcm::retentionSeconds(fastMode) - guardSeconds) / timeScale;
        RRM_ASSERT(seconds > 0.0, "guard exceeds fast-mode retention");
        return secondsToTicks(seconds);
    }

    /** Interval between decay-counter ticks. */
    Tick
    decayTickInterval() const
    {
        return static_cast<Tick>(
            static_cast<double>(shortRetentionInterval()) *
            effectiveDecayStretch() / decayTicksPerInterval);
    }

    /** Tag bits per entry (full address minus in-region bits). */
    unsigned
    tagBits() const
    {
        return 64u - floorLog2(regionBytes);
    }

    /** dirty_write_counter width (paper: 6 bits at threshold 16). */
    unsigned
    counterBits() const
    {
        const unsigned needed = bitsFor(hotThreshold);
        return needed < 6 ? 6 : needed;
    }

    /** Total SRAM bits of the structure (Table VIII overhead math). */
    std::uint64_t
    storageBits() const
    {
        const std::uint64_t per_entry = 1 /* valid */ + tagBits() +
                                        1 /* hot */ + counterBits() +
                                        blocksPerRegion() /* vector */ +
                                        4 /* decay */;
        return per_entry * numSets * assoc;
    }

    /** Total storage in bytes. */
    std::uint64_t
    storageBytes() const
    {
        return divCeil(storageBits(), 8);
    }

    /**
     * Append a description of every violated invariant to `errors`
     * (SystemConfig::validate() aggregates them into one message).
     */
    void
    collectErrors(std::vector<std::string> &errors) const
    {
        if (!isPowerOfTwo(regionBytes) || !isPowerOfTwo(blockBytes))
            errors.push_back("RRM region/block sizes must be powers of two");
        if (regionBytes < blockBytes)
            errors.push_back("RRM region smaller than a block");
        if (numSets == 0 || assoc == 0)
            errors.push_back("RRM geometry must be non-empty");
        if (hotThreshold == 0)
            errors.push_back("hot_threshold must be positive");
        if (timeScale < 1.0)
            errors.push_back("time scale must be >= 1");
        if (pcm::retentionSeconds(fastMode) >=
            pcm::retentionSeconds(slowMode)) {
            errors.push_back(
                "fast mode must have shorter retention than slow");
        }
    }

    /** Validate invariants; fatal() on bad user configuration. */
    void
    check() const
    {
        std::vector<std::string> errors;
        collectErrors(errors);
        if (!errors.empty())
            fatal(errors.front());
    }

    /**
     * True if any structural field differs from the defaults — i.e.
     * the user configured the RRM (timeScale is set by the system and
     * does not count). Used to flag RRM settings on a Static scheme.
     */
    bool
    isCustomized() const
    {
        const RrmConfig def;
        return regionBytes != def.regionBytes ||
               blockBytes != def.blockBytes || numSets != def.numSets ||
               assoc != def.assoc || hotThreshold != def.hotThreshold ||
               dirtyWriteFilter != def.dirtyWriteFilter ||
               accessLatency != def.accessLatency ||
               fastMode != def.fastMode || slowMode != def.slowMode ||
               guardSeconds != def.guardSeconds ||
               decayTicksPerInterval != def.decayTicksPerInterval ||
               decayStretch != def.decayStretch;
    }
};

} // namespace rrm::monitor

#endif // RRM_RRM_RRM_CONFIG_HH
