/**
 * @file
 * The pluggable write-policy layer.
 *
 * A WritePolicy owns every per-write decision the simulator makes:
 * which WriteMode a demand write goes out in (and the lookup latency
 * that decision costs), which refreshes are emitted and in which
 * mode, how regions transition between hot and cold, and how the
 * policy degrades under refresh-queue pressure. The System is pure
 * assembly + event loop: it routes LLC write registrations, write-
 * mode queries, and degradation signals through this interface and
 * never branches on the scheme again.
 *
 * The paper's evaluation is two points in this policy space —
 * Static-N-SETs (StaticPolicy) and the Region Retention Monitor
 * hybrid (RrmPolicy) — and AdaptiveRrmPolicy adds a feedback-driven
 * third. Adding the next policy is one new file implementing this
 * interface plus one case in the Scheme factory (scheme.cc).
 *
 * Contract notes (see DESIGN.md section 12):
 *  - writeModeFor() must be side-effect free: the System may charge
 *    accessLatency() and account energy before the write queues.
 *  - Refreshes are *requests*: the policy emits them through the
 *    refresh callback and the System's WritePath owns queueing,
 *    overflow, and retry.
 *  - All hooks (probes, sinks, callbacks) may be left unset; a
 *    policy must behave sensibly with any subset wired.
 */

#ifndef RRM_POLICY_WRITE_POLICY_HH
#define RRM_POLICY_WRITE_POLICY_HH

#include <functional>
#include <string_view>

#include "common/units.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "pcm/write_mode.hh"
#include "rrm/region_monitor.hh"
#include "stats/stats.hh"

namespace rrm::policy
{

/** Per-write decision making, pluggable per scheme. */
class WritePolicy
{
  public:
    /** Refresh-request sink (WritePath side of the System). */
    using RefreshCallback = monitor::RegionMonitor::RefreshCallback;

    /** True when the refresh path is saturated (demotion hazard). */
    using SaturationProbe = std::function<bool()>;

    /**
     * Refresh-path pressure in [0, 1]: deepest refresh-queue
     * occupancy fraction, 1.0 when refreshes already overflowed.
     */
    using PressureProbe = std::function<double()>;

    WritePolicy() = default;
    virtual ~WritePolicy();

    WritePolicy(const WritePolicy &) = delete;
    WritePolicy &operator=(const WritePolicy &) = delete;

    /** Short lowercase family name ("static", "rrm", ...). */
    virtual std::string_view kindName() const = 0;

    /** @{ Lifecycle: arm / cancel any periodic policy interrupts. */
    virtual void start() {}
    virtual void stop() {}
    /** @} */

    // ---- Demand-write decisions ----

    /** WriteMode for the demand write of `block_addr` (pure). */
    virtual pcm::WriteMode writeModeFor(Addr block_addr) const = 0;

    /** Decision-structure lookup latency charged on the write path. */
    virtual Tick accessLatency() const { return 0; }

    /**
     * Classify a mode for the fast/slow measurement split. Static
     * policies count everything slow (matching the paper's tables:
     * "fast writes" are a hybrid-scheme concept).
     */
    virtual bool
    isFastMode(pcm::WriteMode mode) const
    {
        (void)mode;
        return false;
    }

    // ---- Hot/cold state transitions ----

    /** LLC write registration (hotness bookkeeping input). */
    virtual void
    registerLlcWrite(Addr addr, bool was_dirty)
    {
        (void)addr;
        (void)was_dirty;
    }

    // ---- Refresh emission ----

    /** Sink for the policy's selective/demotion refresh requests. */
    virtual void setRefreshCallback(RefreshCallback cb) { (void)cb; }

    // ---- Degradation / pressure hooks ----

    /** True when the policy can shed refresh load on demand. */
    virtual bool supportsPressureFallback() const { return false; }

    /** Fault-layer governor: force the degraded (slow-write) state. */
    virtual void setPressureFallback(bool active) { (void)active; }

    virtual bool pressureFallback() const { return false; }

    /** Saturation probe consulted on retention-critical demotions. */
    virtual void setQueueSaturationProbe(SaturationProbe probe)
    {
        (void)probe;
    }

    /** Continuous refresh-pressure signal (adaptive feedback). */
    virtual void setPressureProbe(PressureProbe probe) { (void)probe; }

    // ---- Wiring (stats, tracing, profiling, audits) ----

    virtual void regStats(stats::StatGroup &root) { (void)root; }
    virtual void setTraceSink(obs::TraceSink *sink) { (void)sink; }
    virtual void setProfiler(obs::Profiler *profiler) { (void)profiler; }

    // ---- Observability ----

    /**
     * Preferred stats-sampling cadence (one settled policy epoch);
     * 0 lets the System pick its scheme-independent default.
     */
    virtual Tick preferredSampleInterval() const { return 0; }

    /**
     * Emit the policy's configuration into the run record's config
     * object (key + value at the writer's current slot; may emit
     * nothing). RrmPolicy writes the "rrm" block here byte-for-byte
     * as the pre-policy System did.
     */
    virtual void writeConfigJson(obs::JsonWriter &json) const
    {
        (void)json;
    }

    // ---- Checkpointing ----

    /**
     * @{ Serialize / restore runtime decision state: hot/cold tables,
     * adaptation counters, and the armed next-fire ticks of any
     * periodic policy interrupts. The default is stateless — policies
     * whose decisions are a pure function of config (StaticPolicy)
     * need nothing. restoreCkpt() is only legal before start(); it
     * re-arms restored interrupts at their saved next-fire ticks.
     */
    virtual void saveCkpt(ckpt::ChunkWriter &w) const { (void)w; }
    virtual void restoreCkpt(ckpt::ChunkReader &r) { (void)r; }
    /** @} */

    // ---- Introspection ----

    /**
     * The policy's RegionMonitor, if it has one (sampling columns,
     * results export, deep audits); null for monitor-less policies.
     */
    virtual const monitor::RegionMonitor *monitor() const
    {
        return nullptr;
    }
};

} // namespace rrm::policy

#endif // RRM_POLICY_WRITE_POLICY_HH
