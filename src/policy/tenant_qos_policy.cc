/**
 * @file
 * Tenant-aware QoS write-policy decorator implementation.
 */

#include "tenant_qos_policy.hh"

#include "ckpt/ckpt.hh"
#include "common/logging.hh"

namespace rrm::policy
{

namespace
{

/** Boost allotment of one whole epoch, before the tenant split. */
std::uint64_t
baseEpochBudget(const monitor::RegionMonitor *mon)
{
    // One structure's worth of promotions per decay tick: enough for
    // a well-behaved tenant to keep its share of entries hot, tight
    // enough that a storm cannot churn the whole table each epoch.
    if (mon == nullptr)
        return 4096;
    const monitor::RrmConfig &cfg = mon->config();
    const std::uint64_t capacity = std::uint64_t(cfg.numSets) * cfg.assoc;
    const std::uint64_t per_tick =
        capacity * cfg.hotThreshold / cfg.decayTicksPerInterval;
    return per_tick > 0 ? per_tick : 1;
}

} // namespace

TenantQosPolicy::TenantQosPolicy(std::unique_ptr<WritePolicy> inner,
                                 const TenantQosConfig &config,
                                 const TenantLayout &layout,
                                 EventQueue &queue)
    : inner_(std::move(inner)), config_(config), layout_(layout),
      queue_(queue)
{
    RRM_ASSERT(inner_ != nullptr,
               "TenantQosPolicy needs an inner policy");
    epochTicks_ = inner_->preferredSampleInterval();

    const unsigned num = layout_.numTenants();
    const std::vector<unsigned> cores = layout_.coresPerTenant();
    unsigned total_cores = 0;
    for (const unsigned n : cores)
        total_cores += n;
    if (total_cores == 0)
        total_cores = 1;

    const double base = static_cast<double>(baseEpochBudget(
                            inner_->monitor())) *
                        config_.budgetFactor;
    quota_.resize(num);
    for (unsigned t = 0; t < num; ++t) {
        const double share =
            base * static_cast<double>(cores[t]) / total_cores;
        quota_[t] = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(share));
    }
    attempted_.assign(num, 0);
    boosted_.assign(num, 0);
    boostedTotal_.assign(num, 0);
    throttledTotal_.assign(num, 0);
    noisyEpochsTotal_.assign(num, 0);
    noisy_.assign(num, 0);
    statThrottled_.assign(num, nullptr);
    statNoisyEpochs_.assign(num, nullptr);
    statBoosted_.assign(num, nullptr);
}

TenantQosPolicy::~TenantQosPolicy() = default;

void
TenantQosPolicy::armEpochTask(Tick first)
{
    epochTask_ = std::make_unique<PeriodicTask>(
        queue_, epochTicks_, first, [this] { onEpoch(); },
        EventPriority::RefreshInterrupt);
}

void
TenantQosPolicy::start()
{
    inner_->start();
    if (epochTicks_ > 0 && !epochTask_)
        armEpochTask(queue_.now() + epochTicks_);
}

void
TenantQosPolicy::stop()
{
    epochTask_.reset();
    inner_->stop();
}

pcm::WriteMode
TenantQosPolicy::writeModeFor(Addr block_addr) const
{
    const unsigned t = layout_.tenantOfAddr(block_addr);
    if (config_.demoteNoisy && noisy_[t]) {
        const monitor::RegionMonitor *mon = inner_->monitor();
        return mon ? mon->config().slowMode : pcm::WriteMode::Sets7;
    }
    return inner_->writeModeFor(block_addr);
}

void
TenantQosPolicy::registerLlcWrite(Addr addr, bool was_dirty)
{
    const unsigned t = layout_.tenantOfAddr(addr);
    ++attempted_[t];
    if (config_.demoteNoisy && noisy_[t]) {
        ++throttledTotal_[t];
        if (statThrottled_[t])
            ++*statThrottled_[t];
        return;
    }
    if (boosted_[t] < quota_[t]) {
        // Inside the tenant's guaranteed allotment: bypass the
        // streaming filter so neighbour-induced LLC evictions cannot
        // starve this tenant's regions of promotions.
        ++boosted_[t];
        ++boostedTotal_[t];
        if (statBoosted_[t])
            ++*statBoosted_[t];
        inner_->registerLlcWrite(addr, /*was_dirty=*/true);
        return;
    }
    inner_->registerLlcWrite(addr, was_dirty);
}

void
TenantQosPolicy::onEpoch()
{
    const unsigned num = layout_.numTenants();
    for (unsigned t = 0; t < num; ++t) {
        const double limit =
            static_cast<double>(quota_[t]) * config_.noisyFactor;
        const bool loud = static_cast<double>(attempted_[t]) > limit;
        noisy_[t] = loud ? 1 : 0;
        if (loud) {
            ++noisyEpochsTotal_[t];
            if (statNoisyEpochs_[t])
                ++*statNoisyEpochs_[t];
        }
        attempted_[t] = 0;
        boosted_[t] = 0;
    }
}

void
TenantQosPolicy::regStats(stats::StatGroup &root)
{
    inner_->regStats(root);
    stats::StatGroup &policy = root.addChild("policy");
    stats::StatGroup &tenant = policy.addChild("tenant");
    const unsigned num = layout_.numTenants();
    for (unsigned t = 0; t < num; ++t) {
        stats::StatGroup &g = tenant.addChild(std::to_string(t));
        statBoosted_[t] = &g.addScalar(
            "boostedRegs",
            "registrations boosted past the streaming filter under "
            "the tenant's allotment");
        statThrottled_[t] = &g.addScalar(
            "throttledRegs",
            "registrations dropped while the tenant was noisy "
            "(demoteNoisy)");
        statNoisyEpochs_[t] = &g.addScalar(
            "noisyEpochs", "epochs this tenant was marked noisy");
    }
}

void
TenantQosPolicy::writeConfigJson(obs::JsonWriter &json) const
{
    inner_->writeConfigJson(json);
    json.key("qos");
    json.beginObject();
    json.field("budgetFactor", config_.budgetFactor);
    json.field("noisyFactor", config_.noisyFactor);
    json.field("demoteNoisy", config_.demoteNoisy);
    json.field("epochTicks", epochTicks_);
    json.key("tenantQuotas");
    json.beginArray();
    for (const std::uint64_t q : quota_)
        json.value(q);
    json.endArray();
    json.endObject();
}

void
TenantQosPolicy::saveCkpt(ckpt::ChunkWriter &w) const
{
    const unsigned num = layout_.numTenants();
    w.u32(num);
    for (unsigned t = 0; t < num; ++t) {
        w.u64(attempted_[t]);
        w.u64(boosted_[t]);
        w.u64(boostedTotal_[t]);
        w.u64(throttledTotal_[t]);
        w.u64(noisyEpochsTotal_[t]);
        w.b(noisy_[t] != 0);
    }
    const bool armed = epochTask_ && epochTask_->running();
    w.b(armed);
    w.u64(armed ? epochTask_->nextFireAt() : 0);
    inner_->saveCkpt(w);
}

void
TenantQosPolicy::restoreCkpt(ckpt::ChunkReader &r)
{
    RRM_ASSERT(epochTask_ == nullptr,
               "TenantQosPolicy: restore after start");
    const unsigned num = r.u32();
    RRM_ASSERT(num == layout_.numTenants(),
               "TenantQosPolicy: checkpoint tenant count mismatch");
    for (unsigned t = 0; t < num; ++t) {
        attempted_[t] = r.u64();
        boosted_[t] = r.u64();
        boostedTotal_[t] = r.u64();
        throttledTotal_[t] = r.u64();
        noisyEpochsTotal_[t] = r.u64();
        noisy_[t] = r.b() ? 1 : 0;
    }
    const bool armed = r.b();
    const Tick next_fire = r.u64();
    if (armed && epochTicks_ > 0)
        armEpochTask(next_fire);
    inner_->restoreCkpt(r);
}

} // namespace rrm::policy
