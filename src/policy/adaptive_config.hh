/**
 * @file
 * Configuration of the adaptive RRM write policy's feedback law.
 */

#ifndef RRM_POLICY_ADAPTIVE_CONFIG_HH
#define RRM_POLICY_ADAPTIVE_CONFIG_HH

#include <string>
#include <vector>

namespace rrm::policy
{

/**
 * Feedback-law knobs for AdaptiveRrmPolicy. Once per decay epoch the
 * policy reads two signals and re-points the RegionMonitor's
 * hot_threshold:
 *
 *  - *pressure*: refresh-path occupancy in [0, 1] (deepest refresh
 *    queue's fill fraction; 1.0 once refreshes have overflowed).
 *    pressure >= pressureHigh doubles the threshold — an emergency
 *    brake that sheds selective-refresh load when the refresh path
 *    saturates.
 *  - *reuse*: the fraction of the epoch's registrations that landed
 *    in an already-hot region. Very high hot reuse (>= reuseHigh)
 *    means the hot set is mature: most writes are already fast, and
 *    the marginal promotions mostly add refresh obligation without
 *    adding coverage, so the threshold doubles to trim them. Very low
 *    hot reuse (< reuseLow) marks a streaming phase whose promotions
 *    will not stay hot; it raises the decay floor to 2x the base
 *    threshold. In the mid band (reuse in [reuseLow, reuseDecay))
 *    with a drained refresh path the threshold halves back toward
 *    the floor.
 *
 * The threshold always stays within [base, base * maxThresholdMultiple].
 */
struct AdaptiveRrmConfig
{
    /** Pressure at or above which the threshold doubles. */
    double pressureHigh = 0.5;

    /** Pressure at or below which the threshold may decay (halve). */
    double pressureLow = 0.125;

    /** Hot-reuse fraction at or above which the threshold doubles. */
    double reuseHigh = 0.53;

    /**
     * Hot-reuse fraction below which decay is permitted. The gap up
     * to reuseHigh is hysteresis: a threshold raised because the hot
     * set matured is not unwound the moment hot reuse dips, which
     * would oscillate between two thresholds every other epoch.
     */
    double reuseDecay = 0.30;

    /** Hot-reuse fraction below which the epoch counts as streaming. */
    double reuseLow = 0.12;

    /** Threshold ceiling as a multiple of the configured base. */
    unsigned maxThresholdMultiple = 4;

    /** Append one message per violated constraint. */
    void
    collectErrors(std::vector<std::string> &errors) const
    {
        if (pressureHigh <= 0.0 || pressureHigh > 1.0)
            errors.push_back("adaptive pressureHigh must be in (0, 1]");
        if (pressureLow < 0.0 || pressureLow >= pressureHigh) {
            errors.push_back(
                "adaptive pressureLow must be in [0, pressureHigh)");
        }
        if (reuseHigh <= 0.0 || reuseHigh > 1.0)
            errors.push_back("adaptive reuseHigh must be in (0, 1]");
        if (reuseDecay < 0.0 || reuseDecay >= reuseHigh) {
            errors.push_back(
                "adaptive reuseDecay must be in [0, reuseHigh)");
        }
        if (reuseLow < 0.0 || reuseLow > reuseDecay) {
            errors.push_back(
                "adaptive reuseLow must be in [0, reuseDecay]");
        }
        if (maxThresholdMultiple < 2) {
            errors.push_back(
                "adaptive maxThresholdMultiple must be >= 2");
        }
    }
};

} // namespace rrm::policy

#endif // RRM_POLICY_ADAPTIVE_CONFIG_HH
