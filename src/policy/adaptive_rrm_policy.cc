/**
 * @file
 * AdaptiveRrmPolicy implementation.
 */

#include "adaptive_rrm_policy.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"

namespace rrm::policy
{

AdaptiveRrmPolicy::AdaptiveRrmPolicy(const monitor::RrmConfig &config,
                                     const AdaptiveRrmConfig &adaptive,
                                     EventQueue &queue)
    : RrmPolicy(config, queue),
      adaptive_(adaptive),
      baseThreshold_(config.hotThreshold)
{
    monitor_->setDecayEpochHook([this] { onDecayEpoch(); });
}

void
AdaptiveRrmPolicy::regStats(stats::StatGroup &root)
{
    RrmPolicy::regStats(root);
    auto &g = root.addChild("policy");
    statRaises_ = &g.addScalar(
        "thresholdRaises", "hot-threshold raises by the feedback law");
    statDecays_ = &g.addScalar(
        "thresholdDecays", "hot-threshold decays by the feedback law");
    g.addFormula("hotThreshold", "current adapted hot threshold",
                 [this] {
                     return static_cast<double>(
                         monitor_->hotThreshold());
                 });
}

void
AdaptiveRrmPolicy::writeConfigJson(obs::JsonWriter &json) const
{
    RrmPolicy::writeConfigJson(json);
    json.key("adaptive");
    json.beginObject();
    json.field("pressureHigh", adaptive_.pressureHigh);
    json.field("pressureLow", adaptive_.pressureLow);
    json.field("reuseHigh", adaptive_.reuseHigh);
    json.field("reuseDecay", adaptive_.reuseDecay);
    json.field("reuseLow", adaptive_.reuseLow);
    json.field("maxThresholdMultiple", adaptive_.maxThresholdMultiple);
    json.field("baseHotThreshold", baseThreshold_);
    json.endObject();
}

void
AdaptiveRrmPolicy::saveCkpt(ckpt::ChunkWriter &w) const
{
    RrmPolicy::saveCkpt(w);
    // baseThreshold_ is config-derived; the adapted threshold itself
    // travels inside the monitor's section.
    w.u64(lastLookups_);
    w.u64(lastHotHits_);
}

void
AdaptiveRrmPolicy::restoreCkpt(ckpt::ChunkReader &r)
{
    RrmPolicy::restoreCkpt(r);
    lastLookups_ = r.u64();
    lastHotHits_ = r.u64();
}

void
AdaptiveRrmPolicy::onDecayEpoch()
{
    const double pressure = pressureProbe_ ? pressureProbe_() : 0.0;

    const std::uint64_t lookups = monitor_->registrationLookups();
    const std::uint64_t hot_hits = monitor_->registrationHotHits();
    const std::uint64_t d_lookups = lookups - lastLookups_;
    const std::uint64_t d_hot = hot_hits - lastHotHits_;
    lastLookups_ = lookups;
    lastHotHits_ = hot_hits;
    // Hot reuse: share of this epoch's registrations that landed in
    // an already-hot region. An idle epoch carries no evidence.
    const double reuse = d_lookups != 0
                             ? static_cast<double>(d_hot) /
                                   static_cast<double>(d_lookups)
                             : 0.0;
    const bool active = d_lookups != 0;

    const unsigned cap = baseThreshold_ * adaptive_.maxThresholdMultiple;
    const unsigned floor = active && reuse < adaptive_.reuseLow
                               ? std::min(cap, baseThreshold_ * 2)
                               : baseThreshold_;

    const unsigned current = monitor_->hotThreshold();
    unsigned next = current;
    if (pressure >= adaptive_.pressureHigh ||
        (active && reuse >= adaptive_.reuseHigh)) {
        // Saturated refresh path, or a mature hot set whose marginal
        // promotions add obligation without adding coverage.
        next = std::min(cap, current * 2);
    } else if (pressure <= adaptive_.pressureLow &&
               (!active || reuse < adaptive_.reuseDecay) &&
               current > floor) {
        next = std::max(floor, current / 2);
    }
    next = std::max(next, floor);

    if (next == current)
        return;
    if (next > current) {
        if (statRaises_)
            ++*statRaises_;
    } else if (statDecays_) {
        ++*statDecays_;
    }
    monitor_->setHotThreshold(next);
}

} // namespace rrm::policy
