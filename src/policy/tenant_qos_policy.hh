/**
 * @file
 * Tenant-aware QoS decoration of a write policy (the RRM-QoS scheme).
 *
 * TenantQosPolicy wraps an inner WritePolicy (the RRM hybrid, via
 * Scheme::makePolicy) and partitions the monitor's hot-region
 * capacity between tenants: each tenant holds a guaranteed
 * per-decay-epoch allotment of *boosted* LLC-write registrations
 * proportional to its core share. A boosted registration bypasses
 * the streaming (dirty-write) filter, so each tenant's hottest
 * regions reach the promotion threshold even when neighbour-induced
 * LLC evictions destroy the dirty-line state the filter depends on —
 * the mechanism by which a co-runner silently steals a tenant's
 * fast-write capacity. Past its allotment a tenant's registrations
 * take the normal filtered path, so no tenant can claim more than
 * its share of the structure's promotion (and hence refresh)
 * bandwidth per epoch.
 *
 * A tenant attempting more than `noisyFactor x` its allotment in one
 * epoch is marked noisy for the next. With `demoteNoisy` (the
 * optional lifetime lever, off by default) a noisy tenant's
 * registrations are dropped entirely and its demand writes demote to
 * the slow mode, shedding its fast-write retention obligations; the
 * default leaves noisy tenants on the filtered path, because slow
 * writes occupy the shared banks longer (1150 ns vs 550 ns) and the
 * extra occupancy is exactly what a quiet neighbour suffers from.
 *
 * The decorator only uses the WritePolicy interface plus the
 * monitor's read-only config. With a single tenant the whole
 * allotment belongs to tenant 0.
 */

#ifndef RRM_POLICY_TENANT_QOS_POLICY_HH
#define RRM_POLICY_TENANT_QOS_POLICY_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "policy/write_policy.hh"
#include "sim/event_queue.hh"

namespace rrm::policy
{

/**
 * The address-space view of the tenant grouping: core c owns the
 * address slice [c * coreSliceBytes, (c+1) * coreSliceBytes), so the
 * tenant of a block address is the tenant of the core whose slice
 * contains it. Built by the System from the workload's tenantOf and
 * the per-core memory partitioning (System::buildCores).
 */
struct TenantLayout
{
    /** Tenant id per core; empty = one tenant owning everything. */
    std::vector<unsigned> tenantOf;

    /** Bytes of the per-core address slice (memoryBytes / numCores). */
    std::uint64_t coreSliceBytes = 0;

    /** Distinct tenants (>= 1 once tenantOf is non-empty). */
    unsigned
    numTenants() const
    {
        unsigned max_id = 0;
        for (const unsigned t : tenantOf)
            max_id = std::max(max_id, t);
        return tenantOf.empty() ? 1u : max_id + 1;
    }

    /** Tenant of block address `addr` (0 for the default layout). */
    unsigned
    tenantOfAddr(Addr addr) const
    {
        if (tenantOf.empty() || coreSliceBytes == 0)
            return 0;
        std::uint64_t core = addr / coreSliceBytes;
        if (core >= tenantOf.size())
            core = tenantOf.size() - 1;
        return tenantOf[static_cast<std::size_t>(core)];
    }

    /** Cores owned by each tenant (index = tenant id). */
    std::vector<unsigned>
    coresPerTenant() const
    {
        std::vector<unsigned> counts(numTenants(), 0);
        for (const unsigned t : tenantOf)
            ++counts[t];
        if (tenantOf.empty())
            counts[0] = 1;
        return counts;
    }
};

/** Knobs of the tenant QoS decoration. */
struct TenantQosConfig
{
    /**
     * Scale on the per-epoch boost allotment. The base budget is one
     * structure's worth of promotions per decay window spread over
     * its ticks (numSets x assoc x hotThreshold /
     * decayTicksPerInterval), split between tenants by core share.
     */
    double budgetFactor = 1.0;

    /**
     * A tenant attempting more than noisyFactor x its allotment of
     * registrations in one epoch is noisy for the next epoch.
     */
    double noisyFactor = 2.0;

    /**
     * Lifetime lever: drop a noisy tenant's registrations and demote
     * its demand writes to the slow mode. Off by default — slow
     * writes hold the shared banks longer, which is what the quiet
     * tenants are being protected from (see the file comment).
     */
    bool demoteNoisy = false;

    /** Append one message per violated invariant. */
    void
    collectErrors(std::vector<std::string> &errors) const
    {
        if (budgetFactor <= 0.0)
            errors.push_back("QoS budget factor must be positive");
        if (noisyFactor < 1.0)
            errors.push_back("QoS noisy factor must be >= 1");
    }

    /** True if any knob differs from the defaults. */
    bool
    isCustomized() const
    {
        const TenantQosConfig def;
        return budgetFactor != def.budgetFactor ||
               noisyFactor != def.noisyFactor ||
               demoteNoisy != def.demoteNoisy;
    }
};

/** Tenant-aware QoS decorator over an inner write policy. */
class TenantQosPolicy final : public WritePolicy
{
  public:
    TenantQosPolicy(std::unique_ptr<WritePolicy> inner,
                    const TenantQosConfig &config,
                    const TenantLayout &layout, EventQueue &queue);
    ~TenantQosPolicy() override;

    std::string_view kindName() const override { return "rrm-qos"; }

    void start() override;
    void stop() override;

    pcm::WriteMode writeModeFor(Addr block_addr) const override;
    Tick accessLatency() const override { return inner_->accessLatency(); }

    bool isFastMode(pcm::WriteMode mode) const override
    {
        return inner_->isFastMode(mode);
    }

    void registerLlcWrite(Addr addr, bool was_dirty) override;

    void setRefreshCallback(RefreshCallback cb) override
    {
        inner_->setRefreshCallback(std::move(cb));
    }

    bool supportsPressureFallback() const override
    {
        return inner_->supportsPressureFallback();
    }

    void setPressureFallback(bool active) override
    {
        inner_->setPressureFallback(active);
    }

    bool pressureFallback() const override
    {
        return inner_->pressureFallback();
    }

    void setQueueSaturationProbe(SaturationProbe probe) override
    {
        inner_->setQueueSaturationProbe(std::move(probe));
    }

    void setPressureProbe(PressureProbe probe) override
    {
        inner_->setPressureProbe(std::move(probe));
    }

    void regStats(stats::StatGroup &root) override;
    void setTraceSink(obs::TraceSink *sink) override
    {
        inner_->setTraceSink(sink);
    }

    void setProfiler(obs::Profiler *profiler) override
    {
        inner_->setProfiler(profiler);
    }

    Tick preferredSampleInterval() const override
    {
        return inner_->preferredSampleInterval();
    }

    void writeConfigJson(obs::JsonWriter &json) const override;

    /** @{ Own per-epoch state plus the inner policy's, in order. */
    void saveCkpt(ckpt::ChunkWriter &w) const override;
    void restoreCkpt(ckpt::ChunkReader &r) override;
    /** @} */

    const monitor::RegionMonitor *monitor() const override
    {
        return inner_->monitor();
    }

    /** @{ Introspection (tests, tables). */
    const TenantQosConfig &qosConfig() const { return config_; }
    const TenantLayout &layout() const { return layout_; }
    std::uint64_t tenantQuota(unsigned t) const { return quota_[t]; }
    bool tenantNoisy(unsigned t) const { return noisy_[t]; }
    std::uint64_t
    tenantThrottled(unsigned t) const
    {
        return throttledTotal_[t];
    }
    std::uint64_t
    tenantBoosted(unsigned t) const
    {
        return boostedTotal_[t];
    }
    /** @} */

    /** Force one epoch rollover outside the decay cadence (tests). */
    void rolloverNow() { onEpoch(); }

  private:
    void onEpoch();
    void armEpochTask(Tick first);

    std::unique_ptr<WritePolicy> inner_;
    TenantQosConfig config_;
    TenantLayout layout_;
    EventQueue &queue_;

    Tick epochTicks_ = 0;                ///< decay-tick cadence (0 = off)
    std::vector<std::uint64_t> quota_;   ///< per-tenant epoch allotment
    std::vector<std::uint64_t> attempted_; ///< registrations this epoch
    std::vector<std::uint64_t> boosted_; ///< filter bypasses this epoch
    std::vector<std::uint64_t> boostedTotal_;   ///< cumulative bypasses
    std::vector<std::uint64_t> throttledTotal_; ///< cumulative drops
    std::vector<std::uint64_t> noisyEpochsTotal_;
    // std::vector<bool> is avoided: per-element addresses are taken
    // by the tests and the ckpt path.
    std::vector<std::uint8_t> noisy_;    ///< flagged for this epoch

    std::unique_ptr<PeriodicTask> epochTask_;

    std::vector<stats::Scalar *> statThrottled_;
    std::vector<stats::Scalar *> statNoisyEpochs_;
    std::vector<stats::Scalar *> statBoosted_;
};

} // namespace rrm::policy

#endif // RRM_POLICY_TENANT_QOS_POLICY_HH
