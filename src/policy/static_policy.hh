/**
 * @file
 * The Static-N-SETs write policy: one global write mode, no
 * monitoring structure, no lookup latency, no refreshes beyond the
 * global self-refresh modelled analytically by the lifetime model.
 * This is the paper's baseline family (Table VI, Static-7 ... -3).
 */

#ifndef RRM_POLICY_STATIC_POLICY_HH
#define RRM_POLICY_STATIC_POLICY_HH

#include "policy/write_policy.hh"

namespace rrm::policy
{

/** Every write goes out in one fixed mode. */
class StaticPolicy final : public WritePolicy
{
  public:
    explicit StaticPolicy(pcm::WriteMode mode) : mode_(mode) {}

    std::string_view kindName() const override { return "static"; }

    pcm::WriteMode
    writeModeFor(Addr block_addr) const override
    {
        (void)block_addr;
        return mode_;
    }

    pcm::WriteMode mode() const { return mode_; }

  private:
    pcm::WriteMode mode_;
};

} // namespace rrm::policy

#endif // RRM_POLICY_STATIC_POLICY_HH
