/**
 * @file
 * The adaptive RRM write policy: the paper's RRM plus a per-decay-
 * epoch feedback loop on hot_threshold (see AdaptiveRrmConfig for
 * the law). The RegionMonitor itself is unchanged — adaptation uses
 * only its public runtime-threshold actuator and registration
 * counters, so the legacy RRM scheme stays byte-identical.
 */

#ifndef RRM_POLICY_ADAPTIVE_RRM_POLICY_HH
#define RRM_POLICY_ADAPTIVE_RRM_POLICY_HH

#include "policy/adaptive_config.hh"
#include "policy/rrm_policy.hh"

namespace rrm::policy
{

/** RRM with pressure/reuse-driven hot_threshold adaptation. */
class AdaptiveRrmPolicy final : public RrmPolicy
{
  public:
    AdaptiveRrmPolicy(const monitor::RrmConfig &config,
                      const AdaptiveRrmConfig &adaptive,
                      EventQueue &queue);

    std::string_view kindName() const override { return "adaptive-rrm"; }

    void setPressureProbe(PressureProbe probe) override
    {
        pressureProbe_ = std::move(probe);
    }

    void regStats(stats::StatGroup &root) override;
    void writeConfigJson(obs::JsonWriter &json) const override;

    /** @{ Monitor state plus the feedback law's epoch snapshots. */
    void saveCkpt(ckpt::ChunkWriter &w) const override;
    void restoreCkpt(ckpt::ChunkReader &r) override;
    /** @} */

    const AdaptiveRrmConfig &adaptiveConfig() const { return adaptive_; }

    /** The threshold the feedback law is currently holding. */
    unsigned currentHotThreshold() const
    {
        return monitor_->hotThreshold();
    }

    /** Force one adaptation step outside the decay cadence (tests). */
    void adaptNow() { onDecayEpoch(); }

  private:
    void onDecayEpoch();

    AdaptiveRrmConfig adaptive_;
    unsigned baseThreshold_;
    PressureProbe pressureProbe_;

    // Registration counter snapshots for per-epoch reuse deltas.
    std::uint64_t lastLookups_ = 0;
    std::uint64_t lastHotHits_ = 0;

    stats::Scalar *statRaises_ = nullptr;
    stats::Scalar *statDecays_ = nullptr;
};

} // namespace rrm::policy

#endif // RRM_POLICY_ADAPTIVE_RRM_POLICY_HH
