/**
 * @file
 * The RRM write policy: the paper's hybrid scheme, expressed as a
 * WritePolicy that owns a RegionMonitor and delegates every decision
 * to it. Behaviour is byte-frozen by tests/test_policy_golden —
 * this class adds no logic of its own, only the policy-interface
 * adaptation (and the "rrm" config block formerly emitted by the
 * System).
 */

#ifndef RRM_POLICY_RRM_POLICY_HH
#define RRM_POLICY_RRM_POLICY_HH

#include <memory>

#include "policy/write_policy.hh"

namespace rrm::policy
{

/** Region Retention Monitor hybrid (paper Section IV). */
class RrmPolicy : public WritePolicy
{
  public:
    /** @param config Validated RRM configuration (timeScale set). */
    RrmPolicy(const monitor::RrmConfig &config, EventQueue &queue);
    ~RrmPolicy() override;

    std::string_view kindName() const override { return "rrm"; }

    void start() override { monitor_->start(); }
    void stop() override { monitor_->stop(); }

    pcm::WriteMode
    writeModeFor(Addr block_addr) const override
    {
        return monitor_->writeModeFor(block_addr);
    }

    Tick accessLatency() const override
    {
        return monitor_->accessLatency();
    }

    bool
    isFastMode(pcm::WriteMode mode) const override
    {
        return mode == config_.fastMode;
    }

    void
    registerLlcWrite(Addr addr, bool was_dirty) override
    {
        monitor_->registerLlcWrite(addr, was_dirty);
    }

    void setRefreshCallback(RefreshCallback cb) override
    {
        monitor_->setRefreshCallback(std::move(cb));
    }

    bool supportsPressureFallback() const override { return true; }

    void setPressureFallback(bool active) override
    {
        monitor_->setPressureFallback(active);
    }

    bool pressureFallback() const override
    {
        return monitor_->pressureFallback();
    }

    void setQueueSaturationProbe(SaturationProbe probe) override
    {
        monitor_->setQueueSaturationProbe(std::move(probe));
    }

    void regStats(stats::StatGroup &root) override
    {
        monitor_->regStats(root);
    }

    void setTraceSink(obs::TraceSink *sink) override
    {
        monitor_->setTraceSink(sink);
    }

    void setProfiler(obs::Profiler *profiler) override
    {
        monitor_->setProfiler(profiler);
    }

    /** One settled decay epoch per sample row. */
    Tick preferredSampleInterval() const override
    {
        return config_.decayTickInterval();
    }

    void writeConfigJson(obs::JsonWriter &json) const override;

    /** @{ Runtime state lives in the monitor; delegate wholesale. */
    void saveCkpt(ckpt::ChunkWriter &w) const override
    {
        monitor_->saveCkpt(w);
    }

    void restoreCkpt(ckpt::ChunkReader &r) override
    {
        monitor_->restoreCkpt(r);
    }
    /** @} */

    const monitor::RegionMonitor *monitor() const override
    {
        return monitor_.get();
    }

  protected:
    /** As-configured copy: immune to runtime threshold adaptation. */
    monitor::RrmConfig config_;
    std::unique_ptr<monitor::RegionMonitor> monitor_;
};

} // namespace rrm::policy

#endif // RRM_POLICY_RRM_POLICY_HH
