/**
 * @file
 * RrmPolicy implementation.
 */

#include "rrm_policy.hh"

namespace rrm::policy
{

RrmPolicy::RrmPolicy(const monitor::RrmConfig &config, EventQueue &queue)
    : config_(config),
      monitor_(std::make_unique<monitor::RegionMonitor>(config, queue))
{}

RrmPolicy::~RrmPolicy() = default;

void
RrmPolicy::writeConfigJson(obs::JsonWriter &json) const
{
    json.key("rrm");
    json.beginObject();
    json.field("regionBytes", config_.regionBytes);
    json.field("blockBytes", config_.blockBytes);
    json.field("numSets", config_.numSets);
    json.field("assoc", config_.assoc);
    json.field("hotThreshold", config_.hotThreshold);
    json.field("dirtyWriteFilter", config_.dirtyWriteFilter);
    json.field("fastSets", pcm::setIterations(config_.fastMode));
    json.field("slowSets", pcm::setIterations(config_.slowMode));
    json.field("shortRetentionIntervalTicks",
               config_.shortRetentionInterval());
    json.field("decayTickIntervalTicks", config_.decayTickInterval());
    json.field("storageBytes", config_.storageBytes());
    json.endObject();
}

} // namespace rrm::policy
