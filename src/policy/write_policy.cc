/**
 * @file
 * WritePolicy out-of-line anchor.
 */

#include "write_policy.hh"

namespace rrm::policy
{

WritePolicy::~WritePolicy() = default;

} // namespace rrm::policy
