/**
 * @file
 * check_stats implementation.
 */

#include "check_stats.hh"

#include "common/check.hh"

namespace rrm::stats
{

void
registerCheckViolationStats(StatGroup &group)
{
    using check::ViolationKind;
    auto &g = group.addChild("checks");
    const auto formulaFor = [&](ViolationKind kind, const char *desc) {
        g.addFormula(std::string(check::violationKindName(kind)) +
                         "Violations",
                     desc, [kind] {
                         return static_cast<double>(
                             check::violationCount(kind));
                     });
    };
    formulaFor(ViolationKind::Check, "RRM_CHECK violations recorded");
    formulaFor(ViolationKind::DCheck, "RRM_DCHECK violations recorded");
    formulaFor(ViolationKind::Unreachable,
               "RRM_UNREACHABLE points reached");
    formulaFor(ViolationKind::Audit, "RRM_AUDIT violations recorded");
    g.addFormula("totalViolations", "all contract violations", [] {
        return static_cast<double>(check::totalViolations());
    });
}

} // namespace rrm::stats
