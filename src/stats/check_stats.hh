/**
 * @file
 * Export of check.hh violation counters through the stats package.
 *
 * Adds one Formula per violation kind plus a total under a "checks"
 * child group, so every stats dump carries the contract-violation
 * state of the run (all zeros on a healthy simulation).
 */

#ifndef RRM_STATS_CHECK_STATS_HH
#define RRM_STATS_CHECK_STATS_HH

#include "stats/stats.hh"

namespace rrm::stats
{

/** Register the global violation counters under `group`. */
void registerCheckViolationStats(StatGroup &group);

} // namespace rrm::stats

#endif // RRM_STATS_CHECK_STATS_HH
