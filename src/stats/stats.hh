/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Simulation objects own a StatGroup and register named statistics in
 * it. Groups nest, giving dotted hierarchical names
 * (e.g. "system.memctrl.channel0.readReqs"). Supported kinds:
 *
 *  - Scalar:       a counter / accumulator.
 *  - VectorStat:   a fixed set of named bins (per-bank counters, ...).
 *  - Formula:      a value computed from other stats at dump time.
 *  - DistributionStat: bucketed distribution over uint64 samples.
 *  - HistogramStat: log2-bucketed distribution with fixed bucket
 *    geometry (bucket 0 holds zero-valued samples; bucket i >= 1
 *    holds [2^(i-1), 2^i)), built for hot-path telemetry where the
 *    sample range is unknown up front.
 *
 * Output goes through the StatVisitor interface: a visitor walks the
 * tree in registration order and receives one typed callback per
 * stat, which is how the text, JSON and CSV writers all render the
 * same tree (see TextStatWriter here and obs/stat_writers.hh).
 * StatGroup::dump() remains as the canonical text report, implemented
 * on top of TextStatWriter.
 */

#ifndef RRM_STATS_STATS_HH
#define RRM_STATS_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/logging.hh"

namespace rrm::ckpt
{
class ChunkWriter;
class ChunkReader;
} // namespace rrm::ckpt

namespace rrm::stats
{

class Scalar;
class VectorStat;
class Formula;
class DistributionStat;
class HistogramStat;

/**
 * Typed walk over a statistics tree. Paths are full dotted names
 * including every enclosing group (e.g. "system.rrm.promotions").
 * Callbacks run in registration order, group-by-group (a group's own
 * stats first, then its children), which is deterministic for a given
 * construction sequence.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void visitScalar(const std::string &path,
                             const Scalar &stat) = 0;
    virtual void visitVector(const std::string &path,
                             const VectorStat &stat) = 0;
    virtual void visitFormula(const std::string &path,
                              const Formula &stat) = 0;
    virtual void visitDistribution(const std::string &path,
                                   const DistributionStat &stat) = 0;
    virtual void visitHistogram(const std::string &path,
                                const HistogramStat &stat) = 0;

    /** Group boundaries (path includes the group itself). */
    virtual void enterGroup(const std::string &path) { (void)path; }
    virtual void leaveGroup(const std::string &path) { (void)path; }
};

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Dispatch to the matching StatVisitor callback. */
    virtual void accept(StatVisitor &visitor,
                        const std::string &path) const = 0;

    /** Reset to initial value. */
    virtual void reset() = 0;

    /**
     * @{ Checkpoint the stat's accumulated value(s). The default is
     * stateless (Formula: derived values re-evaluate against restored
     * operands). Restore throws ckpt::CkptError on malformed payloads
     * so a corrupted checkpoint falls back instead of crashing.
     */
    virtual void saveCkpt(ckpt::ChunkWriter &w) const { (void)w; }
    virtual void restoreCkpt(ckpt::ChunkReader &r) { (void)r; }
    /** @} */

  private:
    std::string name_;
    std::string desc_;
};

/** A simple additive counter / accumulator. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &
    operator+=(double v)
    {
        value_ += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        value_ += 1.0;
        return *this;
    }

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void
    accept(StatVisitor &visitor, const std::string &path) const override
    {
        visitor.visitScalar(path, *this);
    }

    void reset() override { value_ = 0.0; }

    void saveCkpt(ckpt::ChunkWriter &w) const override;
    void restoreCkpt(ckpt::ChunkReader &r) override;

  private:
    double value_ = 0.0;
};

/** A fixed-size vector of named bins. */
class VectorStat : public StatBase
{
  public:
    VectorStat(std::string name, std::string desc,
               std::vector<std::string> bin_names)
        : StatBase(std::move(name), std::move(desc)),
          binNames_(std::move(bin_names)),
          values_(binNames_.size(), 0.0)
    {}

    void
    add(std::size_t bin, double v = 1.0)
    {
        RRM_ASSERT(bin < values_.size(), "stat vector bin out of range");
        values_[bin] += v;
    }

    double
    value(std::size_t bin) const
    {
        RRM_ASSERT(bin < values_.size(), "stat vector bin out of range");
        return values_[bin];
    }

    double total() const;
    std::size_t size() const { return values_.size(); }

    const std::string &
    binName(std::size_t bin) const
    {
        return binNames_.at(bin);
    }

    void
    accept(StatVisitor &visitor, const std::string &path) const override
    {
        visitor.visitVector(path, *this);
    }

    void reset() override;

    void saveCkpt(ckpt::ChunkWriter &w) const override;
    void restoreCkpt(ckpt::ChunkReader &r) override;

  private:
    std::vector<std::string> binNames_;
    std::vector<double> values_;
};

/**
 * A derived value evaluated lazily at dump time.
 *
 * Contract notes (relied on by the exporters, tested in
 * test_stats.cc):
 *  - reset() is deliberately a no-op: a formula holds no state of its
 *    own; resetting the operand stats it reads is what changes its
 *    value. After StatGroup::reset() a formula therefore re-evaluates
 *    against the freshly reset operands.
 *  - value() with a null function returns 0.0 rather than crashing,
 *    so a default-constructed / moved-from formula stays dumpable.
 */
class Formula : public StatBase
{
  public:
    using Fn = std::function<double()>;

    Formula(std::string name, std::string desc, Fn fn)
        : StatBase(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const { return fn_ ? fn_() : 0.0; }

    void
    accept(StatVisitor &visitor, const std::string &path) const override
    {
        visitor.visitFormula(path, *this);
    }

    void reset() override {}

  private:
    Fn fn_;
};

/** Bucketed distribution built on BoundedHistogram. */
class DistributionStat : public StatBase
{
  public:
    DistributionStat(std::string name, std::string desc,
                     std::vector<std::uint64_t> boundaries)
        : StatBase(std::move(name), std::move(desc)),
          hist_(std::move(boundaries))
    {}

    void add(std::uint64_t v, std::uint64_t weight = 1)
    {
        hist_.add(v, weight);
        samples_.add(static_cast<double>(v));
    }

    const BoundedHistogram &histogram() const { return hist_; }
    const SampleStats &samples() const { return samples_; }

    void
    accept(StatVisitor &visitor, const std::string &path) const override
    {
        visitor.visitDistribution(path, *this);
    }

    void reset() override
    {
        hist_.reset();
        samples_.reset();
    }

    void saveCkpt(ckpt::ChunkWriter &w) const override;
    void restoreCkpt(ckpt::ChunkReader &r) override;

  private:
    BoundedHistogram hist_;
    SampleStats samples_;
};

/**
 * Fixed-geometry log2 histogram over uint64 samples.
 *
 * Unlike DistributionStat (caller-supplied boundaries, dense bucket
 * emission), the bucket geometry is baked in — bucket 0 counts
 * zero-valued samples, bucket i >= 1 counts values in [2^(i-1), 2^i)
 * — so recording is a bit_width() plus an array increment and needs
 * no configuration. The writers emit only non-empty buckets (the
 * geometry is implied by the labels), keeping 65-bucket histograms
 * readable. Same samples in => same buckets out, on every platform:
 * the bucketing contract is part of the determinism surface
 * (DESIGN.md §14).
 */
class HistogramStat : public StatBase
{
  public:
    /** Bucket 0 plus one bucket per uint64 bit. */
    static constexpr std::size_t kNumBuckets = 65;

    using StatBase::StatBase;

    void add(std::uint64_t v, std::uint64_t weight = 1);

    std::uint64_t samples() const { return samples_; }
    double sum() const { return sum_; }
    double mean() const
    {
        return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
    }
    /** Smallest / largest recorded sample; 0 when empty. */
    std::uint64_t minSample() const { return samples_ ? min_ : 0; }
    std::uint64_t maxSample() const { return max_; }

    std::uint64_t
    count(std::size_t bucket) const
    {
        RRM_ASSERT(bucket < kNumBuckets, "histogram bucket out of range");
        return counts_[bucket];
    }

    /** Bucket index holding value v (0 for v == 0, else bit_width). */
    static std::size_t bucketOf(std::uint64_t v);

    /** Deterministic label, e.g. "0", "[1,2)", "[4,8)". */
    static std::string bucketLabel(std::size_t bucket);

    void
    accept(StatVisitor &visitor, const std::string &path) const override
    {
        visitor.visitHistogram(path, *this);
    }

    void reset() override;

    void saveCkpt(ckpt::ChunkWriter &w) const override;
    void restoreCkpt(ckpt::ChunkReader &r) override;

  private:
    std::array<std::uint64_t, kNumBuckets> counts_{};
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics and child groups.
 *
 * Groups own their stats; the add* helpers return references that stay
 * valid for the group's lifetime (stats are never removed).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    Scalar &addScalar(const std::string &name, const std::string &desc);
    VectorStat &addVector(const std::string &name, const std::string &desc,
                          std::vector<std::string> bin_names);
    Formula &addFormula(const std::string &name, const std::string &desc,
                        Formula::Fn fn);
    DistributionStat &addDistribution(
        const std::string &name, const std::string &desc,
        std::vector<std::uint64_t> boundaries);
    HistogramStat &addHistogram(const std::string &name,
                                const std::string &desc);

    /** Create (and own) a nested child group. */
    StatGroup &addChild(const std::string &name);

    /**
     * Walk this group and all children with the given visitor, in
     * registration order (own stats first, then children). `prefix`
     * is prepended to every path (empty = paths start at this group).
     */
    void visit(StatVisitor &visitor,
               const std::string &prefix = "") const;

    /** Dump this group and all children, prefixing names with path. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all stats in this group and children. */
    void reset();

    /**
     * Find a stat by its dotted path relative to this group; returns
     * nullptr if not present. Intended for tests and report writers.
     *
     * Resolution rules (ordering-safe — see test_stats.cc):
     *  - a path segment descends into *every* child carrying that
     *    name, in registration order, until one resolves (duplicate
     *    child names — e.g. a group name registered twice — no longer
     *    shadow later-registered children);
     *  - if no child resolves the path, a stat in this group whose
     *    name equals the entire remaining path matches, so stat names
     *    containing dots remain reachable.
     */
    const StatBase *find(const std::string &dotted_path) const;

    /**
     * @{ Checkpoint every stat in this group and its children, in
     * registration order. The payload is self-describing: each stat
     * is framed with a kind tag and its name, and group boundaries
     * are explicit, so restoreCkpt() detects any structural drift
     * between the checkpointed tree and the live one and throws
     * ckpt::CkptError naming the first divergence (a resumed run
     * must register the identical stat tree). Formulas hold no state
     * and are not framed.
     */
    void saveCkpt(ckpt::ChunkWriter &w) const;
    void restoreCkpt(ckpt::ChunkReader &r);
    /** @} */

  private:
    template <typename T, typename... Args>
    T &emplaceStat(Args &&...args);

    std::string name_;
    std::vector<std::unique_ptr<StatBase>> statsInOrder_;
    std::vector<std::unique_ptr<StatGroup>> children_;
};

/**
 * The canonical text renderer: fixed-width gem5-style lines
 * ("path  value  # desc"), vectors expanded per bin plus ::total,
 * distributions expanded into ::samples / ::mean / buckets,
 * histograms into ::samples / ::mean / ::min / ::max plus non-empty
 * buckets. This is exactly what StatGroup::dump() emits.
 */
class TextStatWriter : public StatVisitor
{
  public:
    explicit TextStatWriter(std::ostream &os) : os_(os) {}

    void visitScalar(const std::string &path,
                     const Scalar &stat) override;
    void visitVector(const std::string &path,
                     const VectorStat &stat) override;
    void visitFormula(const std::string &path,
                      const Formula &stat) override;
    void visitDistribution(const std::string &path,
                           const DistributionStat &stat) override;
    void visitHistogram(const std::string &path,
                        const HistogramStat &stat) override;

  private:
    std::ostream &os_;
};

} // namespace rrm::stats

#endif // RRM_STATS_STATS_HH
