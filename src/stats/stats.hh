/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Simulation objects own a StatGroup and register named statistics in
 * it. Groups nest, giving dotted hierarchical names
 * (e.g. "system.memctrl.channel0.readReqs"). Supported kinds:
 *
 *  - Scalar:       a counter / accumulator.
 *  - VectorStat:   a fixed set of named bins (per-bank counters, ...).
 *  - Formula:      a value computed from other stats at dump time.
 *  - DistributionStat: bucketed distribution over uint64 samples.
 *
 * All statistics are dumped by StatGroup::dump() in registration order,
 * producing a stable, diffable text report.
 */

#ifndef RRM_STATS_STATS_HH
#define RRM_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/logging.hh"

namespace rrm::stats
{

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write this stat's line(s), prefixed with the full dotted path. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

    /** Reset to initial value. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple additive counter / accumulator. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &
    operator+=(double v)
    {
        value_ += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        value_ += 1.0;
        return *this;
    }

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A fixed-size vector of named bins. */
class VectorStat : public StatBase
{
  public:
    VectorStat(std::string name, std::string desc,
               std::vector<std::string> bin_names)
        : StatBase(std::move(name), std::move(desc)),
          binNames_(std::move(bin_names)),
          values_(binNames_.size(), 0.0)
    {}

    void
    add(std::size_t bin, double v = 1.0)
    {
        RRM_ASSERT(bin < values_.size(), "stat vector bin out of range");
        values_[bin] += v;
    }

    double
    value(std::size_t bin) const
    {
        RRM_ASSERT(bin < values_.size(), "stat vector bin out of range");
        return values_[bin];
    }

    double total() const;
    std::size_t size() const { return values_.size(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::vector<std::string> binNames_;
    std::vector<double> values_;
};

/** A derived value evaluated lazily at dump time. */
class Formula : public StatBase
{
  public:
    using Fn = std::function<double()>;

    Formula(std::string name, std::string desc, Fn fn)
        : StatBase(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const { return fn_ ? fn_() : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    Fn fn_;
};

/** Bucketed distribution built on BoundedHistogram. */
class DistributionStat : public StatBase
{
  public:
    DistributionStat(std::string name, std::string desc,
                     std::vector<std::uint64_t> boundaries)
        : StatBase(std::move(name), std::move(desc)),
          hist_(std::move(boundaries))
    {}

    void add(std::uint64_t v, std::uint64_t weight = 1)
    {
        hist_.add(v, weight);
        samples_.add(static_cast<double>(v));
    }

    const BoundedHistogram &histogram() const { return hist_; }
    const SampleStats &samples() const { return samples_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override
    {
        hist_.reset();
        samples_.reset();
    }

  private:
    BoundedHistogram hist_;
    SampleStats samples_;
};

/**
 * A named collection of statistics and child groups.
 *
 * Groups own their stats; the add* helpers return references that stay
 * valid for the group's lifetime (stats are never removed).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    Scalar &addScalar(const std::string &name, const std::string &desc);
    VectorStat &addVector(const std::string &name, const std::string &desc,
                          std::vector<std::string> bin_names);
    Formula &addFormula(const std::string &name, const std::string &desc,
                        Formula::Fn fn);
    DistributionStat &addDistribution(
        const std::string &name, const std::string &desc,
        std::vector<std::uint64_t> boundaries);

    /** Create (and own) a nested child group. */
    StatGroup &addChild(const std::string &name);

    /** Dump this group and all children, prefixing names with path. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all stats in this group and children. */
    void reset();

    /**
     * Find a stat by its dotted path relative to this group; returns
     * nullptr if not present. Intended for tests and report writers.
     */
    const StatBase *find(const std::string &dotted_path) const;

  private:
    template <typename T, typename... Args>
    T &emplaceStat(Args &&...args);

    std::string name_;
    std::vector<std::unique_ptr<StatBase>> statsInOrder_;
    std::vector<std::unique_ptr<StatGroup>> children_;
};

} // namespace rrm::stats

#endif // RRM_STATS_STATS_HH
