/**
 * @file
 * Statistics package implementation.
 */

#include "stats.hh"

#include <iomanip>
#include <numeric>

namespace rrm::stats
{

namespace
{

/** Join a prefix and a stat name with a dot (no leading dot). */
std::string
joinPath(const std::string &prefix, const std::string &name)
{
    return prefix.empty() ? name : prefix + "." + name;
}

void
dumpLine(std::ostream &os, const std::string &path, double value,
         const std::string &desc)
{
    os << std::left << std::setw(52) << path << std::right
       << std::setw(18) << std::setprecision(8) << value << "  # " << desc
       << '\n';
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    dumpLine(os, joinPath(prefix, name()), value_, desc());
}

double
VectorStat::total() const
{
    return std::accumulate(values_.begin(), values_.end(), 0.0);
}

void
VectorStat::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = joinPath(prefix, name());
    for (std::size_t i = 0; i < values_.size(); ++i)
        dumpLine(os, base + "::" + binNames_[i], values_[i], desc());
    dumpLine(os, base + "::total", total(), desc());
}

void
VectorStat::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    dumpLine(os, joinPath(prefix, name()), value(), desc());
}

void
DistributionStat::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = joinPath(prefix, name());
    dumpLine(os, base + "::samples",
             static_cast<double>(samples_.count()), desc());
    dumpLine(os, base + "::mean", samples_.mean(), desc());
    for (std::size_t i = 0; i < hist_.numBuckets(); ++i) {
        dumpLine(os, base + "::" + hist_.bucketLabel(i),
                 static_cast<double>(hist_.count(i)), desc());
    }
}

template <typename T, typename... Args>
T &
StatGroup::emplaceStat(Args &&...args)
{
    auto stat = std::make_unique<T>(std::forward<Args>(args)...);
    T &ref = *stat;
    statsInOrder_.push_back(std::move(stat));
    return ref;
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    return emplaceStat<Scalar>(name, desc);
}

VectorStat &
StatGroup::addVector(const std::string &name, const std::string &desc,
                     std::vector<std::string> bin_names)
{
    return emplaceStat<VectorStat>(name, desc, std::move(bin_names));
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      Formula::Fn fn)
{
    return emplaceStat<Formula>(name, desc, std::move(fn));
}

DistributionStat &
StatGroup::addDistribution(const std::string &name, const std::string &desc,
                           std::vector<std::uint64_t> boundaries)
{
    return emplaceStat<DistributionStat>(name, desc,
                                         std::move(boundaries));
}

StatGroup &
StatGroup::addChild(const std::string &name)
{
    children_.push_back(std::make_unique<StatGroup>(name));
    return *children_.back();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string path = joinPath(prefix, name_);
    for (const auto &stat : statsInOrder_)
        stat->dump(os, path);
    for (const auto &child : children_)
        child->dump(os, path);
}

void
StatGroup::reset()
{
    for (auto &stat : statsInOrder_)
        stat->reset();
    for (auto &child : children_)
        child->reset();
}

const StatBase *
StatGroup::find(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        for (const auto &stat : statsInOrder_)
            if (stat->name() == dotted_path)
                return stat.get();
        return nullptr;
    }
    const std::string head = dotted_path.substr(0, dot);
    const std::string rest = dotted_path.substr(dot + 1);
    for (const auto &child : children_)
        if (child->name() == head)
            return child->find(rest);
    return nullptr;
}

} // namespace rrm::stats
