/**
 * @file
 * Statistics package implementation.
 */

#include "stats.hh"

#include <bit>
#include <iomanip>
#include <numeric>

namespace rrm::stats
{

namespace
{

/** Join a prefix and a stat name with a dot (no leading dot). */
std::string
joinPath(const std::string &prefix, const std::string &name)
{
    return prefix.empty() ? name : prefix + "." + name;
}

void
dumpLine(std::ostream &os, const std::string &path, double value,
         const std::string &desc)
{
    os << std::left << std::setw(52) << path << std::right
       << std::setw(18) << std::setprecision(8) << value << "  # " << desc
       << '\n';
}

} // namespace

double
VectorStat::total() const
{
    return std::accumulate(values_.begin(), values_.end(), 0.0);
}

void
VectorStat::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

void
TextStatWriter::visitScalar(const std::string &path, const Scalar &stat)
{
    dumpLine(os_, path, stat.value(), stat.desc());
}

void
TextStatWriter::visitVector(const std::string &path,
                            const VectorStat &stat)
{
    for (std::size_t i = 0; i < stat.size(); ++i) {
        dumpLine(os_, path + "::" + stat.binName(i), stat.value(i),
                 stat.desc());
    }
    dumpLine(os_, path + "::total", stat.total(), stat.desc());
}

void
TextStatWriter::visitFormula(const std::string &path,
                             const Formula &stat)
{
    dumpLine(os_, path, stat.value(), stat.desc());
}

void
TextStatWriter::visitDistribution(const std::string &path,
                                  const DistributionStat &stat)
{
    dumpLine(os_, path + "::samples",
             static_cast<double>(stat.samples().count()), stat.desc());
    dumpLine(os_, path + "::mean", stat.samples().mean(), stat.desc());
    const BoundedHistogram &hist = stat.histogram();
    for (std::size_t i = 0; i < hist.numBuckets(); ++i) {
        dumpLine(os_, path + "::" + hist.bucketLabel(i),
                 static_cast<double>(hist.count(i)), stat.desc());
    }
}

void
HistogramStat::add(std::uint64_t v, std::uint64_t weight)
{
    counts_[bucketOf(v)] += weight;
    samples_ += weight;
    sum_ += static_cast<double>(v) * static_cast<double>(weight);
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

std::size_t
HistogramStat::bucketOf(std::uint64_t v)
{
    return static_cast<std::size_t>(std::bit_width(v));
}

std::string
HistogramStat::bucketLabel(std::size_t bucket)
{
    RRM_ASSERT(bucket < kNumBuckets, "histogram bucket out of range");
    if (bucket == 0)
        return "0";
    const std::uint64_t lo = std::uint64_t(1) << (bucket - 1);
    // Bucket 64's upper bound (2^64) does not fit in a uint64.
    if (bucket == kNumBuckets - 1)
        return "[" + std::to_string(lo) + ",inf)";
    return "[" + std::to_string(lo) + "," + std::to_string(lo * 2) + ")";
}

void
HistogramStat::reset()
{
    counts_.fill(0);
    samples_ = 0;
    sum_ = 0.0;
    min_ = ~std::uint64_t(0);
    max_ = 0;
}

void
TextStatWriter::visitHistogram(const std::string &path,
                               const HistogramStat &stat)
{
    dumpLine(os_, path + "::samples",
             static_cast<double>(stat.samples()), stat.desc());
    dumpLine(os_, path + "::mean", stat.mean(), stat.desc());
    dumpLine(os_, path + "::min",
             static_cast<double>(stat.minSample()), stat.desc());
    dumpLine(os_, path + "::max",
             static_cast<double>(stat.maxSample()), stat.desc());
    for (std::size_t i = 0; i < HistogramStat::kNumBuckets; ++i) {
        if (stat.count(i) == 0)
            continue;
        dumpLine(os_, path + "::" + HistogramStat::bucketLabel(i),
                 static_cast<double>(stat.count(i)), stat.desc());
    }
}

template <typename T, typename... Args>
T &
StatGroup::emplaceStat(Args &&...args)
{
    auto stat = std::make_unique<T>(std::forward<Args>(args)...);
    T &ref = *stat;
    statsInOrder_.push_back(std::move(stat));
    return ref;
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    return emplaceStat<Scalar>(name, desc);
}

VectorStat &
StatGroup::addVector(const std::string &name, const std::string &desc,
                     std::vector<std::string> bin_names)
{
    return emplaceStat<VectorStat>(name, desc, std::move(bin_names));
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      Formula::Fn fn)
{
    return emplaceStat<Formula>(name, desc, std::move(fn));
}

DistributionStat &
StatGroup::addDistribution(const std::string &name, const std::string &desc,
                           std::vector<std::uint64_t> boundaries)
{
    return emplaceStat<DistributionStat>(name, desc,
                                         std::move(boundaries));
}

HistogramStat &
StatGroup::addHistogram(const std::string &name, const std::string &desc)
{
    return emplaceStat<HistogramStat>(name, desc);
}

StatGroup &
StatGroup::addChild(const std::string &name)
{
    children_.push_back(std::make_unique<StatGroup>(name));
    return *children_.back();
}

void
StatGroup::visit(StatVisitor &visitor, const std::string &prefix) const
{
    const std::string path = joinPath(prefix, name_);
    visitor.enterGroup(path);
    for (const auto &stat : statsInOrder_)
        stat->accept(visitor, joinPath(path, stat->name()));
    for (const auto &child : children_)
        child->visit(visitor, path);
    visitor.leaveGroup(path);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    TextStatWriter writer(os);
    visit(writer, prefix);
}

void
StatGroup::reset()
{
    for (auto &stat : statsInOrder_)
        stat->reset();
    for (auto &child : children_)
        child->reset();
}

const StatBase *
StatGroup::find(const std::string &dotted_path) const
{
    // Children first: every same-named child is tried in registration
    // order, so a child created after an identically named sibling
    // (or after stats of this group) still resolves.
    const auto dot = dotted_path.find('.');
    if (dot != std::string::npos) {
        const std::string head = dotted_path.substr(0, dot);
        const std::string rest = dotted_path.substr(dot + 1);
        for (const auto &child : children_) {
            if (child->name() != head)
                continue;
            if (const StatBase *hit = child->find(rest))
                return hit;
        }
    }
    // Whole-path stat match (also covers stat names containing dots).
    for (const auto &stat : statsInOrder_)
        if (stat->name() == dotted_path)
            return stat.get();
    return nullptr;
}

} // namespace rrm::stats
