/**
 * @file
 * Statistics package implementation.
 */

#include "stats.hh"

#include <bit>
#include <iomanip>
#include <numeric>

#include "ckpt/ckpt.hh"

namespace rrm::stats
{

namespace
{

/** Join a prefix and a stat name with a dot (no leading dot). */
std::string
joinPath(const std::string &prefix, const std::string &name)
{
    return prefix.empty() ? name : prefix + "." + name;
}

void
dumpLine(std::ostream &os, const std::string &path, double value,
         const std::string &desc)
{
    os << std::left << std::setw(52) << path << std::right
       << std::setw(18) << std::setprecision(8) << value << "  # " << desc
       << '\n';
}

} // namespace

double
VectorStat::total() const
{
    return std::accumulate(values_.begin(), values_.end(), 0.0);
}

void
VectorStat::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

void
TextStatWriter::visitScalar(const std::string &path, const Scalar &stat)
{
    dumpLine(os_, path, stat.value(), stat.desc());
}

void
TextStatWriter::visitVector(const std::string &path,
                            const VectorStat &stat)
{
    for (std::size_t i = 0; i < stat.size(); ++i) {
        dumpLine(os_, path + "::" + stat.binName(i), stat.value(i),
                 stat.desc());
    }
    dumpLine(os_, path + "::total", stat.total(), stat.desc());
}

void
TextStatWriter::visitFormula(const std::string &path,
                             const Formula &stat)
{
    dumpLine(os_, path, stat.value(), stat.desc());
}

void
TextStatWriter::visitDistribution(const std::string &path,
                                  const DistributionStat &stat)
{
    dumpLine(os_, path + "::samples",
             static_cast<double>(stat.samples().count()), stat.desc());
    dumpLine(os_, path + "::mean", stat.samples().mean(), stat.desc());
    const BoundedHistogram &hist = stat.histogram();
    for (std::size_t i = 0; i < hist.numBuckets(); ++i) {
        dumpLine(os_, path + "::" + hist.bucketLabel(i),
                 static_cast<double>(hist.count(i)), stat.desc());
    }
}

void
HistogramStat::add(std::uint64_t v, std::uint64_t weight)
{
    counts_[bucketOf(v)] += weight;
    samples_ += weight;
    sum_ += static_cast<double>(v) * static_cast<double>(weight);
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

std::size_t
HistogramStat::bucketOf(std::uint64_t v)
{
    return static_cast<std::size_t>(std::bit_width(v));
}

std::string
HistogramStat::bucketLabel(std::size_t bucket)
{
    RRM_ASSERT(bucket < kNumBuckets, "histogram bucket out of range");
    if (bucket == 0)
        return "0";
    const std::uint64_t lo = std::uint64_t(1) << (bucket - 1);
    // Bucket 64's upper bound (2^64) does not fit in a uint64.
    if (bucket == kNumBuckets - 1)
        return "[" + std::to_string(lo) + ",inf)";
    return "[" + std::to_string(lo) + "," + std::to_string(lo * 2) + ")";
}

void
HistogramStat::reset()
{
    counts_.fill(0);
    samples_ = 0;
    sum_ = 0.0;
    min_ = ~std::uint64_t(0);
    max_ = 0;
}

void
TextStatWriter::visitHistogram(const std::string &path,
                               const HistogramStat &stat)
{
    dumpLine(os_, path + "::samples",
             static_cast<double>(stat.samples()), stat.desc());
    dumpLine(os_, path + "::mean", stat.mean(), stat.desc());
    dumpLine(os_, path + "::min",
             static_cast<double>(stat.minSample()), stat.desc());
    dumpLine(os_, path + "::max",
             static_cast<double>(stat.maxSample()), stat.desc());
    for (std::size_t i = 0; i < HistogramStat::kNumBuckets; ++i) {
        if (stat.count(i) == 0)
            continue;
        dumpLine(os_, path + "::" + HistogramStat::bucketLabel(i),
                 static_cast<double>(stat.count(i)), stat.desc());
    }
}

template <typename T, typename... Args>
T &
StatGroup::emplaceStat(Args &&...args)
{
    auto stat = std::make_unique<T>(std::forward<Args>(args)...);
    T &ref = *stat;
    statsInOrder_.push_back(std::move(stat));
    return ref;
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    return emplaceStat<Scalar>(name, desc);
}

VectorStat &
StatGroup::addVector(const std::string &name, const std::string &desc,
                     std::vector<std::string> bin_names)
{
    return emplaceStat<VectorStat>(name, desc, std::move(bin_names));
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      Formula::Fn fn)
{
    return emplaceStat<Formula>(name, desc, std::move(fn));
}

DistributionStat &
StatGroup::addDistribution(const std::string &name, const std::string &desc,
                           std::vector<std::uint64_t> boundaries)
{
    return emplaceStat<DistributionStat>(name, desc,
                                         std::move(boundaries));
}

HistogramStat &
StatGroup::addHistogram(const std::string &name, const std::string &desc)
{
    return emplaceStat<HistogramStat>(name, desc);
}

StatGroup &
StatGroup::addChild(const std::string &name)
{
    children_.push_back(std::make_unique<StatGroup>(name));
    return *children_.back();
}

void
StatGroup::visit(StatVisitor &visitor, const std::string &prefix) const
{
    const std::string path = joinPath(prefix, name_);
    visitor.enterGroup(path);
    for (const auto &stat : statsInOrder_)
        stat->accept(visitor, joinPath(path, stat->name()));
    for (const auto &child : children_)
        child->visit(visitor, path);
    visitor.leaveGroup(path);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    TextStatWriter writer(os);
    visit(writer, prefix);
}

void
StatGroup::reset()
{
    for (auto &stat : statsInOrder_)
        stat->reset();
    for (auto &child : children_)
        child->reset();
}

const StatBase *
StatGroup::find(const std::string &dotted_path) const
{
    // Children first: every same-named child is tried in registration
    // order, so a child created after an identically named sibling
    // (or after stats of this group) still resolves.
    const auto dot = dotted_path.find('.');
    if (dot != std::string::npos) {
        const std::string head = dotted_path.substr(0, dot);
        const std::string rest = dotted_path.substr(dot + 1);
        for (const auto &child : children_) {
            if (child->name() != head)
                continue;
            if (const StatBase *hit = child->find(rest))
                return hit;
        }
    }
    // Whole-path stat match (also covers stat names containing dots).
    for (const auto &stat : statsInOrder_)
        if (stat->name() == dotted_path)
            return stat.get();
    return nullptr;
}

// ------------------------------------------------- checkpointing

namespace
{

// Framing tags of the stats checkpoint payload. Formulas are derived
// state and are not framed at all.
enum CkptTag : std::uint8_t
{
    kTagScalar = 1,
    kTagVector = 2,
    kTagDistribution = 3,
    kTagHistogram = 4,
    kTagEnterGroup = 10,
    kTagLeaveGroup = 11,
};

/** Kind tag of a stat, or 0 for kinds that carry no state. */
std::uint8_t
tagOf(const StatBase &stat)
{
    if (dynamic_cast<const Scalar *>(&stat))
        return kTagScalar;
    if (dynamic_cast<const VectorStat *>(&stat))
        return kTagVector;
    if (dynamic_cast<const DistributionStat *>(&stat))
        return kTagDistribution;
    if (dynamic_cast<const HistogramStat *>(&stat))
        return kTagHistogram;
    return 0;
}

} // namespace

void
Scalar::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.f64(value_);
}

void
Scalar::restoreCkpt(ckpt::ChunkReader &r)
{
    value_ = r.f64();
}

void
VectorStat::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(values_.size()));
    for (const double v : values_)
        w.f64(v);
}

void
VectorStat::restoreCkpt(ckpt::ChunkReader &r)
{
    const std::uint32_t n = r.u32();
    if (n != values_.size())
        throw ckpt::CkptError("stat vector '" + name() + "' has " +
                              std::to_string(values_.size()) +
                              " bins but the checkpoint holds " +
                              std::to_string(n));
    for (double &v : values_)
        v = r.f64();
}

void
DistributionStat::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(hist_.numBuckets()));
    for (std::size_t i = 0; i < hist_.numBuckets(); ++i)
        w.u64(hist_.count(i));
    w.u64(hist_.total());
    const SampleStats::Raw raw = samples_.raw();
    w.u64(raw.n);
    w.f64(raw.sum);
    w.f64(raw.mean);
    w.f64(raw.m2);
    w.f64(raw.min);
    w.f64(raw.max);
}

void
DistributionStat::restoreCkpt(ckpt::ChunkReader &r)
{
    const std::uint32_t n = r.u32();
    if (n != hist_.numBuckets())
        throw ckpt::CkptError("stat distribution '" + name() +
                              "' has " +
                              std::to_string(hist_.numBuckets()) +
                              " buckets but the checkpoint holds " +
                              std::to_string(n));
    std::vector<std::uint64_t> counts(n);
    for (std::uint64_t &c : counts)
        c = r.u64();
    const std::uint64_t total = r.u64();
    hist_.restoreCounts(counts, total);
    SampleStats::Raw raw;
    raw.n = r.u64();
    raw.sum = r.f64();
    raw.mean = r.f64();
    raw.m2 = r.f64();
    raw.min = r.f64();
    raw.max = r.f64();
    samples_.setRaw(raw);
}

void
HistogramStat::saveCkpt(ckpt::ChunkWriter &w) const
{
    for (const std::uint64_t c : counts_)
        w.u64(c);
    w.u64(samples_);
    w.f64(sum_);
    w.u64(min_);
    w.u64(max_);
}

void
HistogramStat::restoreCkpt(ckpt::ChunkReader &r)
{
    for (std::uint64_t &c : counts_)
        c = r.u64();
    samples_ = r.u64();
    sum_ = r.f64();
    min_ = r.u64();
    max_ = r.u64();
}

void
StatGroup::saveCkpt(ckpt::ChunkWriter &w) const
{
    w.u8(kTagEnterGroup);
    w.str(name_);
    for (const auto &stat : statsInOrder_) {
        const std::uint8_t tag = tagOf(*stat);
        if (tag == 0)
            continue;
        w.u8(tag);
        w.str(stat->name());
        stat->saveCkpt(w);
    }
    for (const auto &child : children_)
        child->saveCkpt(w);
    w.u8(kTagLeaveGroup);
}

void
StatGroup::restoreCkpt(ckpt::ChunkReader &r)
{
    if (r.u8() != kTagEnterGroup)
        throw ckpt::CkptError("stats checkpoint: expected group frame "
                              "for '" + name_ + "'");
    if (const std::string saved = r.str(); saved != name_)
        throw ckpt::CkptError("stats checkpoint: group '" + name_ +
                              "' does not match checkpointed group '" +
                              saved + "'");
    for (const auto &stat : statsInOrder_) {
        const std::uint8_t tag = tagOf(*stat);
        if (tag == 0)
            continue;
        const std::uint8_t saved_tag = r.u8();
        const std::string saved_name = r.str();
        if (saved_tag != tag || saved_name != stat->name())
            throw ckpt::CkptError(
                "stats checkpoint: group '" + name_ + "' expects " +
                stat->name() + " next but the checkpoint holds '" +
                saved_name + "' (tag " + std::to_string(saved_tag) +
                ")");
        stat->restoreCkpt(r);
    }
    for (const auto &child : children_)
        child->restoreCkpt(r);
    if (r.u8() != kTagLeaveGroup)
        throw ckpt::CkptError("stats checkpoint: group '" + name_ +
                              "' holds more stats than this build "
                              "registers");
}

} // namespace rrm::stats
