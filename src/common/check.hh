/**
 * @file
 * Contract-checking framework for simulator invariants.
 *
 * Four macro families, all funnelled through one configurable failure
 * policy so the same contract can abort a debug run, throw a typed
 * error a test can assert on, or merely count against a violation
 * counter that the stats package exports (see stats/check_stats.hh):
 *
 *  - RRM_CHECK(cond, ...):   always-on invariant; the workhorse.
 *  - RRM_DCHECK(cond, ...):  debug-only (compiled out under NDEBUG
 *                            unless RRM_FORCE_DCHECKS is defined);
 *                            for checks too hot for release builds.
 *  - RRM_UNREACHABLE(...):   marks impossible control flow. Counted,
 *                            then always throws/aborts regardless of
 *                            policy — execution cannot continue past
 *                            an unreachable point.
 *  - RRM_AUDIT(cond, ...):   used inside Auditable::audit()
 *                            implementations; identical to RRM_CHECK
 *                            but counted in its own category so
 *                            periodic deep audits are separable from
 *                            inline contract failures.
 *
 * This deliberately complements (rather than replaces) RRM_ASSERT /
 * panic() in common/logging.hh: those are unconditional
 * abort-the-simulation bugs; these are policy-routed contracts that
 * production-style runs may choose to survive and count.
 */

#ifndef RRM_COMMON_CHECK_HH
#define RRM_COMMON_CHECK_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rrm::check
{

/** What a failed RRM_CHECK / RRM_AUDIT does. */
enum class FailurePolicy : std::uint8_t
{
    /** Print the violation and abort() (with a backtrace). */
    Abort = 0,

    /** Throw CheckError (default; tests assert on it). */
    Throw,

    /**
     * Record the violation in its counter, warn once per call site
     * burst, and continue. Production-style runs use this so one bad
     * invariant produces a diagnosable stats line, not a dead run.
     */
    LogAndCount,
};

/** Violation categories, each with its own counter. */
enum class ViolationKind : std::uint8_t
{
    Check = 0,
    DCheck,
    Unreachable,
    Audit,
};

inline constexpr std::size_t numViolationKinds = 4;

/** Stable name for a violation kind ("check", "audit", ...). */
std::string_view violationKindName(ViolationKind kind);

/** Error thrown by a failed contract under FailurePolicy::Throw. */
class CheckError : public std::logic_error
{
  public:
    CheckError(ViolationKind kind, const std::string &msg)
        : std::logic_error(msg), kind_(kind)
    {}

    ViolationKind kind() const { return kind_; }

  private:
    ViolationKind kind_;
};

/** @{ Global failure policy (process-wide; tests save/restore). */
FailurePolicy failurePolicy();
void setFailurePolicy(FailurePolicy policy);
/** @} */

/** RAII save/restore of the global failure policy. */
class ScopedFailurePolicy
{
  public:
    explicit ScopedFailurePolicy(FailurePolicy policy)
        : saved_(failurePolicy())
    {
        setFailurePolicy(policy);
    }

    ~ScopedFailurePolicy() { setFailurePolicy(saved_); }

    ScopedFailurePolicy(const ScopedFailurePolicy &) = delete;
    ScopedFailurePolicy &operator=(const ScopedFailurePolicy &) = delete;

  private:
    FailurePolicy saved_;
};

/** @{ Violation counters (monotonic until resetViolations()). */
std::uint64_t violationCount(ViolationKind kind);
std::uint64_t totalViolations();
void resetViolations();
/** @} */

/** Message of the most recent violation ("" if none since reset). */
std::string lastViolationMessage();

/** True if RRM_DCHECK is compiled in for this build. */
constexpr bool
dchecksEnabled()
{
#if !defined(NDEBUG) || defined(RRM_FORCE_DCHECKS)
    return true;
#else
    return false;
#endif
}

namespace detail
{

/**
 * Record a violation and apply the failure policy. Returns only under
 * FailurePolicy::LogAndCount (and never for Unreachable).
 */
void reportViolation(ViolationKind kind, const std::string &message);

/** Build "<kind> failed: '<expr>' at file:line[: detail]". */
template <typename... Args>
std::string
formatViolation(ViolationKind kind, const char *expr, const char *file,
                int line, Args &&...args)
{
    std::ostringstream os;
    os << violationKindName(kind) << " failed: '" << expr << "' at "
       << file << ":" << line;
    if constexpr (sizeof...(Args) > 0) {
        os << ": ";
        (os << ... << std::forward<Args>(args));
    }
    return os.str();
}

template <typename... Args>
void
fail(ViolationKind kind, const char *expr, const char *file, int line,
     Args &&...args)
{
    reportViolation(kind, formatViolation(kind, expr, file, line,
                                          std::forward<Args>(args)...));
}

} // namespace detail
} // namespace rrm::check

/** Always-on contract: routed through the global failure policy. */
#define RRM_CHECK(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rrm::check::detail::fail(                                     \
                ::rrm::check::ViolationKind::Check, #cond, __FILE__,        \
                __LINE__, ##__VA_ARGS__);                                   \
        }                                                                   \
    } while (0)

/** Debug-only contract; vanishes under NDEBUG (sans RRM_FORCE_DCHECKS). */
#if !defined(NDEBUG) || defined(RRM_FORCE_DCHECKS)
#define RRM_DCHECK(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rrm::check::detail::fail(                                     \
                ::rrm::check::ViolationKind::DCheck, #cond, __FILE__,       \
                __LINE__, ##__VA_ARGS__);                                   \
        }                                                                   \
    } while (0)
#else
#define RRM_DCHECK(cond, ...)                                               \
    do {                                                                    \
        if (false) {                                                        \
            (void)(cond);                                                   \
        }                                                                   \
    } while (0)
#endif

/** Impossible control flow; always throws or aborts (never returns). */
#define RRM_UNREACHABLE(...)                                                \
    ::rrm::check::detail::fail(::rrm::check::ViolationKind::Unreachable,    \
                               "unreachable", __FILE__, __LINE__,           \
                               ##__VA_ARGS__)

/** Deep-audit contract; use inside Auditable::audit() bodies. */
#define RRM_AUDIT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rrm::check::detail::fail(                                     \
                ::rrm::check::ViolationKind::Audit, #cond, __FILE__,        \
                __LINE__, ##__VA_ARGS__);                                   \
        }                                                                   \
    } while (0)

#endif // RRM_COMMON_CHECK_HH
