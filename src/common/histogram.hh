/**
 * @file
 * Histogram helpers used for workload characterization (e.g. the
 * Table III write-interval distribution) and statistics reporting.
 */

#ifndef RRM_COMMON_HISTOGRAM_HH
#define RRM_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rrm
{

/**
 * Histogram over user-supplied bucket boundaries.
 *
 * Boundaries b0 < b1 < ... < bk define buckets
 * [-inf,b0), [b0,b1), ..., [bk,+inf) — i.e. k+2 buckets for k+1
 * boundaries. Samples are uint64 (ticks, counts, ...).
 */
class BoundedHistogram
{
  public:
    /** @param boundaries Strictly increasing bucket boundaries. */
    explicit BoundedHistogram(std::vector<std::uint64_t> boundaries);

    /** Add one sample with the given weight. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Number of buckets (boundaries + 1). */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Count in bucket i. */
    std::uint64_t count(std::size_t i) const { return counts_.at(i); }

    /** Total weight added. */
    std::uint64_t total() const { return total_; }

    /** Fraction of total weight in bucket i (0 if empty histogram). */
    double fraction(std::size_t i) const;

    /** Human-readable label of bucket i, e.g. "[1e6, 1e7)". */
    std::string bucketLabel(std::size_t i) const;

    /** Reset all counts. */
    void reset();

    /**
     * Checkpoint restore: replace the counts wholesale. `counts` must
     * match numBuckets(); boundaries are construction state and are
     * not part of the restorable surface.
     */
    void restoreCounts(const std::vector<std::uint64_t> &counts,
                       std::uint64_t total);

  private:
    std::vector<std::uint64_t> boundaries_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Streaming summary of a scalar sample stream: count / sum / min /
 * max / mean / population variance via Welford's algorithm.
 */
class SampleStats
{
  public:
    void add(double v);

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;

    void reset() { *this = SampleStats(); }

    /** Raw accumulator state, for checkpoint save/restore. */
    struct Raw
    {
        std::uint64_t n = 0;
        double sum = 0.0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    Raw raw() const { return {n_, sum_, mean_, m2_, min_, max_}; }

    void
    setRaw(const Raw &r)
    {
        n_ = r.n;
        sum_ = r.sum;
        mean_ = r.mean;
        m2_ = r.m2;
        min_ = r.min;
        max_ = r.max;
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace rrm

#endif // RRM_COMMON_HISTOGRAM_HH
