/**
 * @file
 * Fixed-capacity dynamic bit vector.
 *
 * Models hardware bit-vector state such as the RRM entry's
 * short_retention_vector, whose width depends on the configured
 * Retention Region size (region bytes / 64-byte blocks: 32..256 bits).
 * std::vector<bool> is avoided deliberately (proxy-reference pitfalls,
 * no popcount access); this class stores words and exposes the
 * operations the RRM needs: set/clear/test, popcount, find-all-set.
 */

#ifndef RRM_COMMON_BITVECTOR_HH
#define RRM_COMMON_BITVECTOR_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "logging.hh"

namespace rrm
{

/** Dynamic-width bit vector with word-level popcount and iteration. */
class BitVector
{
  public:
    /** Create an all-zero vector of the given bit width. */
    explicit BitVector(std::size_t num_bits = 0)
        : numBits_(num_bits), words_((num_bits + 63) / 64, 0)
    {}

    std::size_t size() const { return numBits_; }

    bool
    test(std::size_t i) const
    {
        checkIndex(i);
        return (words_[i >> 6] >> (i & 63)) & 1ULL;
    }

    void
    set(std::size_t i)
    {
        checkIndex(i);
        words_[i >> 6] |= (1ULL << (i & 63));
    }

    void
    clear(std::size_t i)
    {
        checkIndex(i);
        words_[i >> 6] &= ~(1ULL << (i & 63));
    }

    /** Clear every bit. */
    void
    reset()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** Number of set bits. */
    std::size_t
    popcount() const
    {
        std::size_t n = 0;
        for (auto w : words_)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /** True if no bit is set. */
    bool
    none() const
    {
        for (auto w : words_)
            if (w)
                return false;
        return true;
    }

    /** True if any bit is set. */
    bool any() const { return !none(); }

    /**
     * Invoke fn(index) for every set bit, in increasing index order.
     * Used by the RRM selective-refresh and demotion paths to walk the
     * short-retention blocks of an entry.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w) {
                const int bit = std::countr_zero(w);
                fn(wi * 64 + static_cast<std::size_t>(bit));
                w &= w - 1;
            }
        }
    }

    bool
    operator==(const BitVector &other) const
    {
        return numBits_ == other.numBits_ && words_ == other.words_;
    }

    /** @{ Raw word access (checkpoint serialization). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    void
    setWords(const std::vector<std::uint64_t> &words)
    {
        RRM_ASSERT(words.size() == words_.size(),
                   "bit-vector word count mismatch: have ",
                   words_.size(), ", got ", words.size());
        words_ = words;
    }
    /** @} */

  private:
    void
    checkIndex(std::size_t i) const
    {
        RRM_ASSERT(i < numBits_, "bit index ", i, " out of range (width ",
                   numBits_, ")");
    }

    std::size_t numBits_;
    std::vector<std::uint64_t> words_;
};

} // namespace rrm

#endif // RRM_COMMON_BITVECTOR_HH
