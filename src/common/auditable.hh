/**
 * @file
 * The Auditable interface: deep, periodic self-checks.
 *
 * An Auditable component knows how to walk its own state and verify
 * every structural invariant it relies on (request conservation, LRU
 * stamp uniqueness, remap bijectivity, ...). Implementations express
 * each invariant with RRM_AUDIT, so a violation is counted, logged,
 * thrown, or aborted according to the global check::FailurePolicy.
 *
 * System runs the audits of every component it owns on a configurable
 * executed-event cadence (SystemConfig::auditEveryEvents); tests call
 * runAudit() directly after seeding deliberate corruption to prove the
 * audits actually bite.
 */

#ifndef RRM_COMMON_AUDITABLE_HH
#define RRM_COMMON_AUDITABLE_HH

#include <cstdint>
#include <string_view>

#include "common/check.hh"

namespace rrm
{

/** A component whose internal invariants can be deep-checked. */
class Auditable
{
  public:
    virtual ~Auditable() = default;

    /** Component name used in audit reports ("rrm", "channel0", ...). */
    virtual std::string_view auditName() const = 0;

    /**
     * Verify every internal invariant via RRM_AUDIT. Under the
     * LogAndCount policy this returns normally with violations
     * counted; under Throw/Abort the first violation escapes.
     */
    virtual void audit() const = 0;
};

/**
 * Run one component's audit and report how many violations it added
 * to the global audit counter. Under FailurePolicy::Throw or Abort
 * the first violation propagates instead (count would be 1).
 */
inline std::uint64_t
runAudit(const Auditable &component)
{
    const std::uint64_t before =
        check::violationCount(check::ViolationKind::Audit);
    component.audit();
    return check::violationCount(check::ViolationKind::Audit) - before;
}

} // namespace rrm

#endif // RRM_COMMON_AUDITABLE_HH
