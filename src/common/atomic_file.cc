#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/logging.hh"

namespace rrm
{

AtomicFile::AtomicFile(const std::string &path, bool binary)
    : path_(path),
      tmpPath_(path + ".tmp." + std::to_string(::getpid()))
{
    std::ios::openmode mode = std::ios::out | std::ios::trunc;
    if (binary)
        mode |= std::ios::binary;
    out_.open(tmpPath_, mode);
    if (!out_)
        fatal("cannot open '", path_, "' for writing (via temporary '",
              tmpPath_, "')");
}

AtomicFile::~AtomicFile()
{
    if (!committed_) {
        out_.close();
        std::remove(tmpPath_.c_str());
    }
}

void
AtomicFile::commit()
{
    RRM_ASSERT(!committed_, "AtomicFile committed twice");
    out_.flush();
    if (!out_)
        fatal("write error on '", path_, "' (temporary '", tmpPath_,
              "')");
    out_.close();
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0)
        fatal("cannot publish '", path_, "': rename from '", tmpPath_,
              "' failed: ", std::strerror(errno));
    committed_ = true;
}

} // namespace rrm
