/**
 * @file
 * BoundedHistogram and SampleStats implementations.
 */

#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "logging.hh"

namespace rrm
{

BoundedHistogram::BoundedHistogram(std::vector<std::uint64_t> boundaries)
    : boundaries_(std::move(boundaries))
{
    RRM_ASSERT(!boundaries_.empty(),
               "histogram needs at least one boundary");
    RRM_ASSERT(std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
                   std::adjacent_find(boundaries_.begin(),
                                      boundaries_.end()) ==
                       boundaries_.end(),
               "histogram boundaries must be strictly increasing");
    counts_.assign(boundaries_.size() + 1, 0);
}

void
BoundedHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
    const auto idx =
        static_cast<std::size_t>(it - boundaries_.begin());
    counts_[idx] += weight;
    total_ += weight;
}

double
BoundedHistogram::fraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(i)) / static_cast<double>(total_);
}

std::string
BoundedHistogram::bucketLabel(std::size_t i) const
{
    RRM_ASSERT(i < counts_.size(), "bucket index out of range");
    std::ostringstream os;
    if (i == 0) {
        os << "< " << boundaries_.front();
    } else if (i == counts_.size() - 1) {
        os << ">= " << boundaries_.back();
    } else {
        os << "[" << boundaries_[i - 1] << ", " << boundaries_[i] << ")";
    }
    return os.str();
}

void
BoundedHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

void
BoundedHistogram::restoreCounts(
    const std::vector<std::uint64_t> &counts, std::uint64_t total)
{
    RRM_ASSERT(counts.size() == counts_.size(),
               "histogram restore with mismatched bucket count");
    counts_ = counts;
    total_ = total;
}

void
SampleStats::add(double v)
{
    if (n_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
}

double
SampleStats::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace rrm
