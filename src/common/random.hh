/**
 * @file
 * Deterministic pseudo random number generation for workload synthesis.
 *
 * All stochastic behaviour in the simulator flows through Random so that
 * a (seed, config) pair fully determines a run. The engine is
 * xoshiro256**, which is fast enough to sit on the trace-generation hot
 * path and has no measurable correlation artifacts at the scales used
 * here.
 */

#ifndef RRM_COMMON_RANDOM_HH
#define RRM_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

#include "logging.hh"

namespace rrm
{

/** Deterministic xoshiro256** PRNG with convenience distributions. */
class Random
{
  public:
    /** Seed the generator; equal seeds give equal streams. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        RRM_ASSERT(bound > 0, "uniform() bound must be positive");
        // Lemire's multiply-shift rejection-free mapping; the tiny
        // modulo bias is irrelevant for workload synthesis.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t
    uniformRange(std::uint64_t lo, std::uint64_t hi)
    {
        RRM_ASSERT(lo <= hi, "uniformRange() needs lo <= hi");
        return lo + uniform(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** Geometric inter-arrival sample with the given mean (>= 1). */
    std::uint64_t geometric(double mean);

    /**
     * Split off an independent child generator. Children seeded from
     * distinct parent draws produce decorrelated streams, which lets
     * each core / pattern own a private RNG while remaining fully
     * reproducible from the top-level seed.
     */
    Random split();

    /** @{ Raw engine state, for checkpoint save/restore. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[static_cast<std::size_t>(i)];
    }
    /** @} */

  private:
    std::uint64_t state_[4];
};

/**
 * Sampler for a Zipf(s) popularity distribution over n items.
 *
 * Uses the classic rejection-inversion method of Hörmann and
 * Derflinger, giving O(1) expected time per sample independent of n.
 * Rank 0 is the most popular item.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items (>= 1).
     * @param s Skew exponent (> 0, != 1 handled, s == 1 handled).
     */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw an item rank in [0, n). */
    std::uint64_t sample(Random &rng) const;

    std::uint64_t numItems() const { return n_; }
    double skew() const { return s_; }

  private:
    double h(double x) const;
    double hInverse(double x) const;

    std::uint64_t n_;
    double s_;
    double hX1_;
    double hXn_;
    double scale_;
};

} // namespace rrm

#endif // RRM_COMMON_RANDOM_HH
