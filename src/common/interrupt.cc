/**
 * @file
 * Interrupt request flag implementation.
 */

#include "interrupt.hh"

#include <atomic>
#include <csignal>

namespace rrm
{

namespace
{

std::atomic<bool> interruptFlag{false};

extern "C" void
interruptSignalHandler(int)
{
    interruptFlag.store(true, std::memory_order_relaxed);
}

} // namespace

bool
interruptRequested()
{
    return interruptFlag.load(std::memory_order_relaxed);
}

void
requestInterrupt()
{
    interruptFlag.store(true, std::memory_order_relaxed);
}

void
clearInterruptRequest()
{
    interruptFlag.store(false, std::memory_order_relaxed);
}

void
installInterruptHandlers()
{
    std::signal(SIGINT, interruptSignalHandler);
    std::signal(SIGTERM, interruptSignalHandler);
}

} // namespace rrm
