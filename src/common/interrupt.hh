/**
 * @file
 * Process-wide interrupt request flag.
 *
 * A signal handler (or an embedding application) requests a graceful
 * stop with requestInterrupt(); the simulator polls
 * interruptRequested() between event batches and raises
 * sys::SimInterruptedError at the next poll, unwinding through the
 * normal error path so a final best-effort checkpoint can be written
 * before exit. The flag is a lone std::atomic<bool>, so
 * requestInterrupt() is async-signal-safe.
 */

#ifndef RRM_COMMON_INTERRUPT_HH
#define RRM_COMMON_INTERRUPT_HH

namespace rrm
{

/** True once an interrupt has been requested (sticky until cleared). */
bool interruptRequested();

/** Request a graceful stop; safe to call from a signal handler. */
void requestInterrupt();

/** Clear the flag (tests; a fresh runner invocation). */
void clearInterruptRequest();

/**
 * Route SIGINT and SIGTERM to requestInterrupt(). Idempotent; call
 * once from main() before running simulations whose checkpoints
 * should survive a ^C.
 */
void installInterruptHandlers();

} // namespace rrm

#endif // RRM_COMMON_INTERRUPT_HH
