/**
 * @file
 * Fundamental time / address / size units used throughout the simulator.
 *
 * The simulation clock is a 64-bit picosecond counter (`Tick`). At 1 ps
 * resolution a uint64_t covers ~213 days of simulated time, far beyond
 * any run this simulator performs. Helper literals convert the
 * human-scale units used by the paper (ns write pulses, second-scale
 * retention times) into ticks without floating-point drift.
 */

#ifndef RRM_COMMON_UNITS_HH
#define RRM_COMMON_UNITS_HH

#include <cstdint>

namespace rrm
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** Cycle count within some clock domain. */
using Cycles = std::uint64_t;

/** A tick value that compares greater than any real event time. */
constexpr Tick maxTick = ~Tick(0);

/** @{ Tick conversion constants. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000 * tickPerPs;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;
/** @} */

/**
 * Convert a cycle count in some clock domain into ticks, given that
 * domain's period. The named helper is the sanctioned way to cross the
 * Cycles -> Tick boundary (rrm-lint units-raw-mix flags raw mixing).
 */
constexpr Tick
cyclesToTicks(Cycles cycles, Tick period)
{
    // rrm-lint: allow(units-raw-mix) this is the conversion helper
    return static_cast<Tick>(cycles) * period;
}

/** Whole cycles of `period` elapsed after `ticks` (truncating). */
constexpr Cycles
ticksToCycles(Tick ticks, Tick period)
{
    return static_cast<Cycles>(ticks / period);
}

/** Convert a floating point number of seconds into ticks (rounded). */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(
        seconds * static_cast<double>(tickPerSec) + 0.5);
}

/** Convert ticks into floating point seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(tickPerSec);
}

/** @{ Size literals (bytes). */
constexpr std::uint64_t kB = 1024;
constexpr std::uint64_t MB = 1024 * kB;
constexpr std::uint64_t GB = 1024 * MB;
/** @} */

inline namespace literals
{

constexpr Tick operator""_ps(unsigned long long v) { return v * tickPerPs; }
constexpr Tick operator""_ns(unsigned long long v) { return v * tickPerNs; }
constexpr Tick operator""_us(unsigned long long v) { return v * tickPerUs; }
constexpr Tick operator""_ms(unsigned long long v) { return v * tickPerMs; }
constexpr Tick operator""_s(unsigned long long v) { return v * tickPerSec; }

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * MB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * GB; }

} // namespace literals

} // namespace rrm

#endif // RRM_COMMON_UNITS_HH
