/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity model (mirrors gem5's base/logging.hh):
 *  - panic():  an internal invariant was violated; a simulator bug.
 *              Aborts (throws PanicError so tests can assert on it).
 *  - fatal():  the user asked for something impossible (bad config).
 *              Throws FatalError.
 *  - warn():   something questionable happened but simulation continues.
 *  - inform(): plain status output.
 */

#ifndef RRM_COMMON_LOGGING_HH
#define RRM_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace rrm
{

/** Error thrown by fatal(): user-caused, unrecoverable condition. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Error thrown by panic(): internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace log_detail
{

/** Concatenate a parameter pack into one message string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

/** abort() instead of throwing when RRM_ABORT_ON_PANIC is set. */
void maybeAbort(const std::string &msg);

/** Count of warnings emitted so far (inspectable from tests). */
std::uint64_t warnCount();

/** Silence / restore warn+inform output (used by tests and sweeps). */
void setQuiet(bool quiet);

} // namespace log_detail

/** Report an internal simulator bug and abort the simulation. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    const std::string msg =
        "panic: " + log_detail::concat(std::forward<Args>(args)...);
    log_detail::maybeAbort(msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error (bad configuration, etc.). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(
        "fatal: " + log_detail::concat(std::forward<Args>(args)...));
}

/** Warn about a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::emitWarn(log_detail::concat(std::forward<Args>(args)...));
}

/** Emit a normal status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    log_detail::emitInform(log_detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define RRM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rrm::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                         ":", __LINE__, ": ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace rrm

#endif // RRM_COMMON_LOGGING_HH
