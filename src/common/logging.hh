/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity model (mirrors gem5's base/logging.hh):
 *  - panic():  an internal invariant was violated; a simulator bug.
 *              Aborts (throws PanicError so tests can assert on it).
 *  - fatal():  the user asked for something impossible (bad config).
 *              Throws FatalError.
 *  - warn():   something questionable happened but simulation continues.
 *  - inform(): plain status output.
 */

#ifndef RRM_COMMON_LOGGING_HH
#define RRM_COMMON_LOGGING_HH

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rrm
{

/** Error thrown by fatal(): user-caused, unrecoverable condition. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Error thrown by panic(): internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Severity of a routed log message. */
enum class LogSeverity : int
{
    Info = 0, ///< inform(): plain status output
    Warn = 1, ///< warn(): questionable but survivable
};

/**
 * Pluggable destination for warn()/inform() messages. The message
 * has no trailing newline and no severity prefix; the sink decides
 * presentation. The default sink writes "info: ..." to stdout and
 * "warn: ..." to stderr, as the simulator always has.
 */
using LogSink = std::function<void(LogSeverity, const std::string &)>;

namespace log_detail
{

/** Concatenate a parameter pack into one message string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

/** True if `category` has not warned before (and mark it). */
bool shouldWarnOnce(const std::string &category);

/** Forget every warn_once() category (tests). */
void resetWarnOnce();

/** abort() instead of throwing when RRM_ABORT_ON_PANIC is set. */
void maybeAbort(const std::string &msg);

/** Count of warnings emitted so far (inspectable from tests). */
std::uint64_t warnCount();

/** Silence / restore warn+inform output (used by tests and sweeps). */
void setQuiet(bool quiet);

/**
 * Install a log sink for warn()/inform() output; an empty function
 * restores the default stderr/stdout sink. setQuiet() and the
 * severity filter apply before the sink sees anything; warnCount()
 * counts every warn() call regardless.
 */
void setLogSink(LogSink sink);

/**
 * Drop messages below `min` before they reach the sink
 * (Warn silences inform(); warnCount() still counts warn() calls).
 */
void setMinSeverity(LogSeverity min);

} // namespace log_detail

/** Report an internal simulator bug and abort the simulation. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    const std::string msg =
        "panic: " + log_detail::concat(std::forward<Args>(args)...);
    log_detail::maybeAbort(msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error (bad configuration, etc.). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(
        "fatal: " + log_detail::concat(std::forward<Args>(args)...));
}

/** Warn about a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::emitWarn(log_detail::concat(std::forward<Args>(args)...));
}

/** Emit a normal status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    log_detail::emitInform(log_detail::concat(std::forward<Args>(args)...));
}

/**
 * Warn at most once per `category` for the process lifetime (e.g.
 * per-feature "this configuration is approximate" notes that would
 * otherwise flood a sweep). The category string is prepended to the
 * message.
 */
template <typename... Args>
void
warn_once(const std::string &category, Args &&...args)
{
    if (!log_detail::shouldWarnOnce(category))
        return;
    warn(category, ": ",
         log_detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define RRM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rrm::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                         ":", __LINE__, ": ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace rrm

#endif // RRM_COMMON_LOGGING_HH
