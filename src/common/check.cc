/**
 * @file
 * Violation accounting and failure-policy dispatch for check.hh.
 */

#include "check.hh"

#include <array>
#include <atomic>
#include <cstdlib>
#include <execinfo.h>
#include <iostream>
#include <mutex>

#include "common/logging.hh"

namespace rrm::check
{

namespace
{

std::atomic<FailurePolicy> globalPolicy{FailurePolicy::Throw};

std::array<std::atomic<std::uint64_t>, numViolationKinds> counters{};

std::mutex lastMessageMutex;
std::string lastMessage; // guarded by lastMessageMutex

} // namespace

std::string_view
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::Check:
        return "check";
      case ViolationKind::DCheck:
        return "dcheck";
      case ViolationKind::Unreachable:
        return "unreachable";
      case ViolationKind::Audit:
        return "audit";
    }
    return "unknown";
}

FailurePolicy
failurePolicy()
{
    return globalPolicy.load(std::memory_order_relaxed);
}

void
setFailurePolicy(FailurePolicy policy)
{
    globalPolicy.store(policy, std::memory_order_relaxed);
}

std::uint64_t
violationCount(ViolationKind kind)
{
    return counters[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
}

std::uint64_t
totalViolations()
{
    std::uint64_t total = 0;
    for (const auto &c : counters)
        total += c.load(std::memory_order_relaxed);
    return total;
}

void
resetViolations()
{
    for (auto &c : counters)
        c.store(0, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(lastMessageMutex);
    lastMessage.clear();
}

std::string
lastViolationMessage()
{
    const std::lock_guard<std::mutex> lock(lastMessageMutex);
    return lastMessage;
}

namespace detail
{

void
reportViolation(ViolationKind kind, const std::string &message)
{
    counters[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(lastMessageMutex);
        lastMessage = message;
    }

    switch (failurePolicy()) {
      case FailurePolicy::Abort: {
        std::cerr << message << '\n';
        void *frames[64];
        const int n = backtrace(frames, 64);
        backtrace_symbols_fd(frames, n, 2);
        std::abort();
      }
      case FailurePolicy::Throw:
        throw CheckError(kind, message);
      case FailurePolicy::LogAndCount:
        // Unreachable code cannot continue regardless of policy; the
        // count above still lands before the throw.
        if (kind == ViolationKind::Unreachable)
            throw CheckError(kind, message);
        warn(message);
        return;
    }
    RRM_ASSERT(false, "corrupt failure policy");
}

} // namespace detail
} // namespace rrm::check
