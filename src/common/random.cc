/**
 * @file
 * xoshiro256** engine and Zipf rejection-inversion sampler.
 */

#include "random.hh"

#include <cmath>

namespace rrm
{

namespace
{

/** splitmix64: expands a single seed into well-mixed engine state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Random::uniformDouble()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformDouble() < p;
}

std::uint64_t
Random::geometric(double mean)
{
    RRM_ASSERT(mean >= 1.0, "geometric() mean must be >= 1");
    if (mean == 1.0)
        return 1;
    const double p = 1.0 / mean;
    double u = uniformDouble();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double v = std::ceil(std::log(u) / std::log1p(-p));
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

Random
Random::split()
{
    return Random(next() ^ 0xd1b54a32d192ed03ULL);
}

// --------------------------------------------------------------------
// ZipfSampler: rejection-inversion after Hörmann & Derflinger (1996).
// hIntegral is the antiderivative of h(x) = x^-s; sampling inverts the
// integral of the dominating density and accepts with the exact ratio.
// --------------------------------------------------------------------

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
    : n_(n), s_(s)
{
    RRM_ASSERT(n >= 1, "ZipfSampler needs at least one item");
    RRM_ASSERT(s > 0.0, "ZipfSampler skew must be positive");
    hX1_ = h(1.5) - 1.0;
    hXn_ = h(static_cast<double>(n_) + 0.5);
    scale_ = hX1_ - hXn_;
}

double
ZipfSampler::h(double x) const
{
    // Antiderivative of x^-s.
    if (s_ == 1.0)
        return std::log(x);
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double
ZipfSampler::hInverse(double x) const
{
    if (s_ == 1.0)
        return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t
ZipfSampler::sample(Random &rng) const
{
    if (n_ == 1)
        return 0;
    while (true) {
        const double u = hXn_ + rng.uniformDouble() * scale_;
        const double x = hInverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        // Accept in the unconditional band, or with the exact ratio.
        if (kd - x <= 0.5 ||
            u >= h(kd + 0.5) - std::pow(kd, -s_)) {
            return k - 1;
        }
    }
}

} // namespace rrm
