/**
 * @file
 * Small numeric helpers: power-of-two math and geometric means.
 */

#ifndef RRM_COMMON_MATH_UTIL_HH
#define RRM_COMMON_MATH_UTIL_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>

#include "logging.hh"

namespace rrm
{

/** True if v is a power of two (v > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. @pre isPowerOfTwo(v). */
inline unsigned
floorLog2(std::uint64_t v)
{
    RRM_ASSERT(v != 0, "floorLog2(0) undefined");
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Smallest number of bits able to represent values 0..v. */
inline unsigned
bitsFor(std::uint64_t v)
{
    unsigned bits = 0;
    while (v) {
        ++bits;
        v >>= 1;
    }
    return bits == 0 ? 1 : bits;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Geometric mean of a sequence of positive values.
 * Used for cross-workload performance/lifetime summaries, matching the
 * paper's reporting convention.
 */
inline double
geomean(std::span<const double> values)
{
    RRM_ASSERT(!values.empty(), "geomean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        RRM_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace rrm

#endif // RRM_COMMON_MATH_UTIL_HH
