/**
 * @file
 * Crash-safe file publication: write to a temporary sibling, then
 * rename into place.
 *
 * Every report/record writer in the repo (run records, bench JSON,
 * sample CSV/JSONL, Perfetto, telemetry, checkpoints) goes through
 * AtomicFile so a run killed mid-write never leaves a truncated
 * artifact behind under the final name: POSIX rename(2) within one
 * directory is atomic, so readers observe either the old file, no
 * file, or the complete new file. An AtomicFile that is destroyed
 * without commit() removes its temporary and leaves the target
 * untouched.
 */

#ifndef RRM_COMMON_ATOMIC_FILE_HH
#define RRM_COMMON_ATOMIC_FILE_HH

#include <fstream>
#include <string>

namespace rrm
{

/**
 * RAII writer targeting `path` through a `<path>.tmp.<pid>` sibling.
 *
 * Usage:
 *     AtomicFile file(path);
 *     file.stream() << ...;   // or hand the stream to a writer
 *     file.commit();          // flush + rename; fatal() on failure
 *
 * fatal() if the temporary cannot be opened (bad directory,
 * permissions), matching the historical open-failure behaviour of the
 * direct-ofstream writers it replaces. A SIGKILL between open and
 * commit leaves only the temporary behind; stale `*.tmp.*` files are
 * harmless and never read back.
 */
class AtomicFile
{
  public:
    /** Open the temporary; `binary` selects std::ios::binary. */
    explicit AtomicFile(const std::string &path, bool binary = false);

    /** Removes the temporary if commit() was never reached. */
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** The stream to write; valid until commit(). */
    std::ostream &stream() { return out_; }

    /** Target path this file will publish to. */
    const std::string &path() const { return path_; }

    /**
     * Flush, close, and rename the temporary over the target.
     * fatal() if the stream errored or the rename fails.
     */
    void commit();

  private:
    std::string path_;
    std::string tmpPath_;
    std::ofstream out_;
    bool committed_ = false;
};

} // namespace rrm

#endif // RRM_COMMON_ATOMIC_FILE_HH
