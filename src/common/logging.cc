/**
 * @file
 * Implementation of the warn/inform output sinks.
 */

#include "logging.hh"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <execinfo.h>
#include <iostream>

namespace rrm
{
namespace log_detail
{

namespace
{

std::atomic<std::uint64_t> warnCounter{0};
std::atomic<bool> quietMode{false};

} // namespace

void
emitWarn(const std::string &msg)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    if (!quietMode.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << '\n';
}

void
emitInform(const std::string &msg)
{
    if (!quietMode.load(std::memory_order_relaxed))
        std::cout << "info: " << msg << '\n';
}

std::uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

void
maybeAbort(const std::string &msg)
{
    if (std::getenv("RRM_ABORT_ON_PANIC")) {
        std::cerr << msg << '\n';
        void *frames[64];
        const int n = backtrace(frames, 64);
        backtrace_symbols_fd(frames, n, 2);
        std::abort();
    }
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

} // namespace log_detail
} // namespace rrm
