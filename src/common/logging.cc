/**
 * @file
 * Implementation of the warn/inform output sinks.
 */

#include "logging.hh"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <execinfo.h>
#include <iostream>
#include <mutex>
#include <unordered_set>

namespace rrm
{
namespace log_detail
{

namespace
{

std::atomic<std::uint64_t> warnCounter{0};
std::atomic<bool> quietMode{false};
std::atomic<int> minSeverity{static_cast<int>(LogSeverity::Info)};

/** Guards the sink and the warn_once registry. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

LogSink &
sinkSlot()
{
    static LogSink sink;
    return sink;
}

std::unordered_set<std::string> &
warnOnceSeen()
{
    static std::unordered_set<std::string> seen;
    return seen;
}

void
defaultSink(LogSeverity severity, const std::string &msg)
{
    // One pre-formatted write per message so concurrent runner
    // workers cannot interleave fragments of their lines.
    std::string line;
    line.reserve(msg.size() + 8);
    line += severity == LogSeverity::Warn ? "warn: " : "info: ";
    line += msg;
    line += '\n';
    if (severity == LogSeverity::Warn)
        std::cerr << line;
    else
        std::cout << line;
}

/**
 * Apply quiet mode and the severity filter, then route to a sink.
 * The sink runs under the log mutex, so concurrent emitters are
 * serialized; sinks must not call back into the log functions.
 */
void
dispatch(LogSeverity severity, const std::string &msg)
{
    if (quietMode.load(std::memory_order_relaxed))
        return;
    if (static_cast<int>(severity) <
        minSeverity.load(std::memory_order_relaxed)) {
        return;
    }
    std::lock_guard<std::mutex> lock(logMutex());
    const LogSink &sink = sinkSlot();
    if (sink)
        sink(severity, msg);
    else
        defaultSink(severity, msg);
}

} // namespace

void
emitWarn(const std::string &msg)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    dispatch(LogSeverity::Warn, msg);
}

void
emitInform(const std::string &msg)
{
    dispatch(LogSeverity::Info, msg);
}

bool
shouldWarnOnce(const std::string &category)
{
    std::lock_guard<std::mutex> lock(logMutex());
    return warnOnceSeen().insert(category).second;
}

void
resetWarnOnce()
{
    std::lock_guard<std::mutex> lock(logMutex());
    warnOnceSeen().clear();
}

std::uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

void
maybeAbort(const std::string &msg)
{
    if (std::getenv("RRM_ABORT_ON_PANIC")) {
        std::cerr << msg << '\n';
        void *frames[64];
        const int n = backtrace(frames, 64);
        backtrace_symbols_fd(frames, n, 2);
        std::abort();
    }
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(logMutex());
    sinkSlot() = std::move(sink);
}

void
setMinSeverity(LogSeverity min)
{
    minSeverity.store(static_cast<int>(min), std::memory_order_relaxed);
}

} // namespace log_detail
} // namespace rrm
