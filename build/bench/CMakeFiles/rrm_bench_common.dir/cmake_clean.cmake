file(REMOVE_RECURSE
  "CMakeFiles/rrm_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/rrm_bench_common.dir/bench_common.cc.o.d"
  "librrm_bench_common.a"
  "librrm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
