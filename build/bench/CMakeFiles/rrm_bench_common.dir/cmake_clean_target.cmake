file(REMOVE_RECURSE
  "librrm_bench_common.a"
)
