# Empty dependencies file for rrm_bench_common.
# This may be replaced when dependencies are built.
