# Empty compiler generated dependencies file for bench_fig7_8_9_10_main.
# This may be replaced when dependencies are built.
