# Empty dependencies file for bench_fig13_entry_size.
# This may be replaced when dependencies are built.
