file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_write_intervals.dir/bench_table3_write_intervals.cc.o"
  "CMakeFiles/bench_table3_write_intervals.dir/bench_table3_write_intervals.cc.o.d"
  "bench_table3_write_intervals"
  "bench_table3_write_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_write_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
