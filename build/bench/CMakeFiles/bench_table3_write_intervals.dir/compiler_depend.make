# Empty compiler generated dependencies file for bench_table3_write_intervals.
# This may be replaced when dependencies are built.
