# Empty dependencies file for bench_fig2_3_4_static.
# This may be replaced when dependencies are built.
