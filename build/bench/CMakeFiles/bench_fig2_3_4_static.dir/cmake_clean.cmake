file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_4_static.dir/bench_fig2_3_4_static.cc.o"
  "CMakeFiles/bench_fig2_3_4_static.dir/bench_fig2_3_4_static.cc.o.d"
  "bench_fig2_3_4_static"
  "bench_fig2_3_4_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_4_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
