file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hot_threshold.dir/bench_fig11_hot_threshold.cc.o"
  "CMakeFiles/bench_fig11_hot_threshold.dir/bench_fig11_hot_threshold.cc.o.d"
  "bench_fig11_hot_threshold"
  "bench_fig11_hot_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hot_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
