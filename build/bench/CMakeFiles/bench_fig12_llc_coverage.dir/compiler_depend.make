# Empty compiler generated dependencies file for bench_fig12_llc_coverage.
# This may be replaced when dependencies are built.
