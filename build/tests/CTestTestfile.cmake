# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_bitvector[1]_include.cmake")
include("/root/repo/build/tests/test_math_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_write_mode[1]_include.cmake")
include("/root/repo/build/tests/test_drift_model[1]_include.cmake")
include("/root/repo/build/tests/test_energy_model[1]_include.cmake")
include("/root/repo/build/tests/test_wear_lifetime[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_memctrl[1]_include.cmake")
include("/root/repo/build/tests/test_region_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_region_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_scheme[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_start_gap[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_stress_properties[1]_include.cmake")
