file(REMOVE_RECURSE
  "CMakeFiles/test_drift_model.dir/test_drift_model.cc.o"
  "CMakeFiles/test_drift_model.dir/test_drift_model.cc.o.d"
  "test_drift_model"
  "test_drift_model.pdb"
  "test_drift_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drift_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
