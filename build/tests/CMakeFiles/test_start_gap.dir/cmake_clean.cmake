file(REMOVE_RECURSE
  "CMakeFiles/test_start_gap.dir/test_start_gap.cc.o"
  "CMakeFiles/test_start_gap.dir/test_start_gap.cc.o.d"
  "test_start_gap"
  "test_start_gap.pdb"
  "test_start_gap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_start_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
