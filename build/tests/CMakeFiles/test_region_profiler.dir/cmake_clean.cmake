file(REMOVE_RECURSE
  "CMakeFiles/test_region_profiler.dir/test_region_profiler.cc.o"
  "CMakeFiles/test_region_profiler.dir/test_region_profiler.cc.o.d"
  "test_region_profiler"
  "test_region_profiler.pdb"
  "test_region_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
