# Empty compiler generated dependencies file for test_write_mode.
# This may be replaced when dependencies are built.
