file(REMOVE_RECURSE
  "CMakeFiles/test_write_mode.dir/test_write_mode.cc.o"
  "CMakeFiles/test_write_mode.dir/test_write_mode.cc.o.d"
  "test_write_mode"
  "test_write_mode.pdb"
  "test_write_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
