# Empty dependencies file for test_wear_lifetime.
# This may be replaced when dependencies are built.
