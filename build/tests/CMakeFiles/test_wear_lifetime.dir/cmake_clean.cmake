file(REMOVE_RECURSE
  "CMakeFiles/test_wear_lifetime.dir/test_wear_lifetime.cc.o"
  "CMakeFiles/test_wear_lifetime.dir/test_wear_lifetime.cc.o.d"
  "test_wear_lifetime"
  "test_wear_lifetime.pdb"
  "test_wear_lifetime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wear_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
