file(REMOVE_RECURSE
  "CMakeFiles/test_stress_properties.dir/test_stress_properties.cc.o"
  "CMakeFiles/test_stress_properties.dir/test_stress_properties.cc.o.d"
  "test_stress_properties"
  "test_stress_properties.pdb"
  "test_stress_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
