# Empty compiler generated dependencies file for test_stress_properties.
# This may be replaced when dependencies are built.
