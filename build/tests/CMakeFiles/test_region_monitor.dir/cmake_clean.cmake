file(REMOVE_RECURSE
  "CMakeFiles/test_region_monitor.dir/test_region_monitor.cc.o"
  "CMakeFiles/test_region_monitor.dir/test_region_monitor.cc.o.d"
  "test_region_monitor"
  "test_region_monitor.pdb"
  "test_region_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
