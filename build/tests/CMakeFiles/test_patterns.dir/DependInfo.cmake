
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_patterns.cc" "tests/CMakeFiles/test_patterns.dir/test_patterns.cc.o" "gcc" "tests/CMakeFiles/test_patterns.dir/test_patterns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/rrm_system.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rrm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rrm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rrm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/rrm_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/rrm/CMakeFiles/rrm_rrm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rrm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/rrm_pcm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
