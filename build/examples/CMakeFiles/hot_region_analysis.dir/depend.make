# Empty dependencies file for hot_region_analysis.
# This may be replaced when dependencies are built.
