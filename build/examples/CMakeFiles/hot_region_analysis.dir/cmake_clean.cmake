file(REMOVE_RECURSE
  "CMakeFiles/hot_region_analysis.dir/hot_region_analysis.cpp.o"
  "CMakeFiles/hot_region_analysis.dir/hot_region_analysis.cpp.o.d"
  "hot_region_analysis"
  "hot_region_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_region_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
