# Empty dependencies file for stats_report.
# This may be replaced when dependencies are built.
