file(REMOVE_RECURSE
  "CMakeFiles/stats_report.dir/stats_report.cpp.o"
  "CMakeFiles/stats_report.dir/stats_report.cpp.o.d"
  "stats_report"
  "stats_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
