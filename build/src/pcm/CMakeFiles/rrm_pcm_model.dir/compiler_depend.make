# Empty compiler generated dependencies file for rrm_pcm_model.
# This may be replaced when dependencies are built.
