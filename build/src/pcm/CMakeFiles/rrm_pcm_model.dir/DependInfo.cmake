
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcm/drift_model.cc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/drift_model.cc.o" "gcc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/drift_model.cc.o.d"
  "/root/repo/src/pcm/energy_model.cc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/energy_model.cc.o" "gcc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/energy_model.cc.o.d"
  "/root/repo/src/pcm/lifetime_model.cc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/lifetime_model.cc.o" "gcc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/lifetime_model.cc.o.d"
  "/root/repo/src/pcm/wear_tracker.cc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/wear_tracker.cc.o" "gcc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/wear_tracker.cc.o.d"
  "/root/repo/src/pcm/write_mode.cc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/write_mode.cc.o" "gcc" "src/pcm/CMakeFiles/rrm_pcm_model.dir/write_mode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
