file(REMOVE_RECURSE
  "CMakeFiles/rrm_pcm_model.dir/drift_model.cc.o"
  "CMakeFiles/rrm_pcm_model.dir/drift_model.cc.o.d"
  "CMakeFiles/rrm_pcm_model.dir/energy_model.cc.o"
  "CMakeFiles/rrm_pcm_model.dir/energy_model.cc.o.d"
  "CMakeFiles/rrm_pcm_model.dir/lifetime_model.cc.o"
  "CMakeFiles/rrm_pcm_model.dir/lifetime_model.cc.o.d"
  "CMakeFiles/rrm_pcm_model.dir/wear_tracker.cc.o"
  "CMakeFiles/rrm_pcm_model.dir/wear_tracker.cc.o.d"
  "CMakeFiles/rrm_pcm_model.dir/write_mode.cc.o"
  "CMakeFiles/rrm_pcm_model.dir/write_mode.cc.o.d"
  "librrm_pcm_model.a"
  "librrm_pcm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_pcm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
