file(REMOVE_RECURSE
  "librrm_pcm_model.a"
)
