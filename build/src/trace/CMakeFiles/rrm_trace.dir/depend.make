# Empty dependencies file for rrm_trace.
# This may be replaced when dependencies are built.
