file(REMOVE_RECURSE
  "CMakeFiles/rrm_trace.dir/benchmark.cc.o"
  "CMakeFiles/rrm_trace.dir/benchmark.cc.o.d"
  "CMakeFiles/rrm_trace.dir/generator.cc.o"
  "CMakeFiles/rrm_trace.dir/generator.cc.o.d"
  "CMakeFiles/rrm_trace.dir/pattern.cc.o"
  "CMakeFiles/rrm_trace.dir/pattern.cc.o.d"
  "CMakeFiles/rrm_trace.dir/workload.cc.o"
  "CMakeFiles/rrm_trace.dir/workload.cc.o.d"
  "librrm_trace.a"
  "librrm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
