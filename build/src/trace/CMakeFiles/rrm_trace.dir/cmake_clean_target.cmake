file(REMOVE_RECURSE
  "librrm_trace.a"
)
