file(REMOVE_RECURSE
  "CMakeFiles/rrm_common.dir/histogram.cc.o"
  "CMakeFiles/rrm_common.dir/histogram.cc.o.d"
  "CMakeFiles/rrm_common.dir/logging.cc.o"
  "CMakeFiles/rrm_common.dir/logging.cc.o.d"
  "CMakeFiles/rrm_common.dir/random.cc.o"
  "CMakeFiles/rrm_common.dir/random.cc.o.d"
  "librrm_common.a"
  "librrm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
