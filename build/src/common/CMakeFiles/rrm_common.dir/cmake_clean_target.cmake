file(REMOVE_RECURSE
  "librrm_common.a"
)
