file(REMOVE_RECURSE
  "CMakeFiles/rrm_stats.dir/stats.cc.o"
  "CMakeFiles/rrm_stats.dir/stats.cc.o.d"
  "librrm_stats.a"
  "librrm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
