# Empty compiler generated dependencies file for rrm_stats.
# This may be replaced when dependencies are built.
