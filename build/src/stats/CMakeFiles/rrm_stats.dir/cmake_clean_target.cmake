file(REMOVE_RECURSE
  "librrm_stats.a"
)
