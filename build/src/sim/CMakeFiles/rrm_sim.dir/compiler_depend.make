# Empty compiler generated dependencies file for rrm_sim.
# This may be replaced when dependencies are built.
