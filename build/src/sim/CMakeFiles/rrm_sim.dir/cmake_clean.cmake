file(REMOVE_RECURSE
  "CMakeFiles/rrm_sim.dir/event_queue.cc.o"
  "CMakeFiles/rrm_sim.dir/event_queue.cc.o.d"
  "librrm_sim.a"
  "librrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
