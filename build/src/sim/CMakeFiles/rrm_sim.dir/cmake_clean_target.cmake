file(REMOVE_RECURSE
  "librrm_sim.a"
)
