# Empty dependencies file for rrm_cache.
# This may be replaced when dependencies are built.
