file(REMOVE_RECURSE
  "CMakeFiles/rrm_cache.dir/cache.cc.o"
  "CMakeFiles/rrm_cache.dir/cache.cc.o.d"
  "CMakeFiles/rrm_cache.dir/hierarchy.cc.o"
  "CMakeFiles/rrm_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/rrm_cache.dir/replacement.cc.o"
  "CMakeFiles/rrm_cache.dir/replacement.cc.o.d"
  "librrm_cache.a"
  "librrm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
