file(REMOVE_RECURSE
  "librrm_cache.a"
)
