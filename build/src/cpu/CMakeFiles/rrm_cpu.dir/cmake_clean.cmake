file(REMOVE_RECURSE
  "CMakeFiles/rrm_cpu.dir/core_model.cc.o"
  "CMakeFiles/rrm_cpu.dir/core_model.cc.o.d"
  "librrm_cpu.a"
  "librrm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
