file(REMOVE_RECURSE
  "librrm_cpu.a"
)
