# Empty dependencies file for rrm_cpu.
# This may be replaced when dependencies are built.
