file(REMOVE_RECURSE
  "librrm_memctrl.a"
)
