file(REMOVE_RECURSE
  "CMakeFiles/rrm_memctrl.dir/channel.cc.o"
  "CMakeFiles/rrm_memctrl.dir/channel.cc.o.d"
  "CMakeFiles/rrm_memctrl.dir/controller.cc.o"
  "CMakeFiles/rrm_memctrl.dir/controller.cc.o.d"
  "CMakeFiles/rrm_memctrl.dir/start_gap.cc.o"
  "CMakeFiles/rrm_memctrl.dir/start_gap.cc.o.d"
  "librrm_memctrl.a"
  "librrm_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
