# Empty dependencies file for rrm_memctrl.
# This may be replaced when dependencies are built.
