
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memctrl/channel.cc" "src/memctrl/CMakeFiles/rrm_memctrl.dir/channel.cc.o" "gcc" "src/memctrl/CMakeFiles/rrm_memctrl.dir/channel.cc.o.d"
  "/root/repo/src/memctrl/controller.cc" "src/memctrl/CMakeFiles/rrm_memctrl.dir/controller.cc.o" "gcc" "src/memctrl/CMakeFiles/rrm_memctrl.dir/controller.cc.o.d"
  "/root/repo/src/memctrl/start_gap.cc" "src/memctrl/CMakeFiles/rrm_memctrl.dir/start_gap.cc.o" "gcc" "src/memctrl/CMakeFiles/rrm_memctrl.dir/start_gap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rrm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rrm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/rrm_pcm_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
