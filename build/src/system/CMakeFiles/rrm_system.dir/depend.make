# Empty dependencies file for rrm_system.
# This may be replaced when dependencies are built.
