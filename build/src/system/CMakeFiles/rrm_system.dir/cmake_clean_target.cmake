file(REMOVE_RECURSE
  "librrm_system.a"
)
