file(REMOVE_RECURSE
  "CMakeFiles/rrm_system.dir/region_profiler.cc.o"
  "CMakeFiles/rrm_system.dir/region_profiler.cc.o.d"
  "CMakeFiles/rrm_system.dir/system.cc.o"
  "CMakeFiles/rrm_system.dir/system.cc.o.d"
  "librrm_system.a"
  "librrm_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
