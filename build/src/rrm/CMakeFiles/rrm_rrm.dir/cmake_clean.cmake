file(REMOVE_RECURSE
  "CMakeFiles/rrm_rrm.dir/region_monitor.cc.o"
  "CMakeFiles/rrm_rrm.dir/region_monitor.cc.o.d"
  "librrm_rrm.a"
  "librrm_rrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_rrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
