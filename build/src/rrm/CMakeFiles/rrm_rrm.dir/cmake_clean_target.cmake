file(REMOVE_RECURSE
  "librrm_rrm.a"
)
