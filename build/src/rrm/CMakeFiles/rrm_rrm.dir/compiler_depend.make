# Empty compiler generated dependencies file for rrm_rrm.
# This may be replaced when dependencies are built.
