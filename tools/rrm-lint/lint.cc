/**
 * @file
 * rrm-lint implementation.
 *
 * Pipeline: load file -> strip comments/strings (keeping the comment
 * text for suppression directives) -> pair `x.hh`/`x.cc` into units ->
 * build per-unit symbol tables -> run each rule -> apply suppressions
 * -> sort.  Everything is plain lexical/regex analysis over the
 * stripped text: cheap, dependency-free, and precise enough for the
 * project idioms it encodes (see lint.hh for the rule families).
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace rrm::lint
{

namespace
{

// ---------------------------------------------------------------- text

struct AllowDirective
{
    std::vector<std::string> rules;
    std::string reason;
    int directiveLine = 0; ///< 1-based line of the comment
    int targetLine = 0;    ///< 1-based line it suppresses; 0 = dangling
    bool reasonMissing = false;
};

struct SourceFile
{
    std::string rel;                 ///< root-relative path
    std::vector<std::string> code;   ///< comment/string-stripped lines
    std::vector<std::string> comment;///< comment text per line
    std::string joined;              ///< code lines joined with '\n'
    std::vector<std::size_t> lineOffset; ///< joined offset of line i
    std::vector<AllowDirective> allows;
};

bool
isBlank(const std::string &s)
{
    return std::all_of(s.begin(), s.end(),
                       [](unsigned char c) { return std::isspace(c); });
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/**
 * Split file content into per-line stripped code and comment text.
 * String and character literals are dropped (their delimiters kept),
 * so lint regexes never match inside quoted text.
 */
void
stripSource(const std::string &content, SourceFile &out)
{
    enum class St { Code, LineComment, BlockComment, Str, Chr };
    St st = St::Code;
    std::string code, comm;
    auto flushLine = [&] {
        out.code.push_back(code);
        out.comment.push_back(comm);
        code.clear();
        comm.clear();
    };
    // Preprocessor lines keep their string content: the layering rule
    // needs to read `#include "module/header.hh"` paths.
    auto isPreprocLine = [&] {
        const std::string t = trim(code);
        return !t.empty() && t[0] == '#';
    };
    for (std::size_t i = 0; i < content.size(); ++i) {
        const char c = content[i];
        const char n = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::LineComment)
                st = St::Code;
            flushLine();
            continue;
        }
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::LineComment;
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::BlockComment;
                ++i;
            } else if (c == '"') {
                code += '"';
                st = St::Str;
            } else if (c == '\'') {
                code += '\'';
                st = St::Chr;
            } else {
                code += c;
            }
            break;
        case St::LineComment:
            comm += c;
            break;
        case St::BlockComment:
            if (c == '*' && n == '/') {
                st = St::Code;
                ++i;
            } else {
                comm += c;
            }
            break;
        case St::Str:
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                code += '"';
                st = St::Code;
            } else if (isPreprocLine()) {
                code += c;
            }
            break;
        case St::Chr:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                code += '\'';
                st = St::Code;
            }
            break;
        }
    }
    flushLine();
    out.joined.clear();
    out.lineOffset.clear();
    for (const std::string &line : out.code) {
        out.lineOffset.push_back(out.joined.size());
        out.joined += line;
        out.joined += '\n';
    }
}

/** 1-based line number of an offset into SourceFile::joined. */
int
lineAt(const SourceFile &f, std::size_t offset)
{
    auto it = std::upper_bound(f.lineOffset.begin(), f.lineOffset.end(),
                               offset);
    return static_cast<int>(it - f.lineOffset.begin());
}

/** Offset just past the ')' matching the '(' at `open`; npos if
 *  unbalanced. */
std::size_t
matchParen(const std::string &s, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

/** Top-level comma split of the argument span (open+1 .. close-1). */
std::vector<std::pair<std::size_t, std::string>>
splitArgs(const std::string &s, std::size_t open, std::size_t close)
{
    std::vector<std::pair<std::size_t, std::string>> args;
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t i = open + 1; i + 1 < close + 1 && i < s.size();
         ++i) {
        const char c = s[i];
        if (c == '(' || c == '[' || c == '{' || c == '<')
            ++depth;
        else if (c == ')' || c == ']' || c == '}' || c == '>')
            --depth;
        else if (c == ',' && depth == 0) {
            args.emplace_back(start, s.substr(start, i - start));
            start = i + 1;
        }
    }
    if (close > open + 1)
        args.emplace_back(start, s.substr(start, close - 1 - start));
    return args;
}

// --------------------------------------------------- suppressions

void
parseAllowDirectives(SourceFile &f)
{
    static const std::regex directive(
        R"(rrm-lint:\s*allow\s*\(([^)]*)\)(.*))");
    for (std::size_t i = 0; i < f.comment.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(f.comment[i], m, directive))
            continue;
        AllowDirective a;
        a.directiveLine = static_cast<int>(i + 1);
        std::stringstream rules(m[1].str());
        std::string rule;
        while (std::getline(rules, rule, ','))
            if (std::string r = trim(rule); !r.empty())
                a.rules.push_back(r);
        a.reason = trim(m[2].str());
        a.reasonMissing = a.reason.empty();
        if (!isBlank(f.code[i])) {
            a.targetLine = a.directiveLine;
        } else {
            for (std::size_t j = i + 1; j < f.code.size(); ++j) {
                if (!isBlank(f.code[j])) {
                    a.targetLine = static_cast<int>(j + 1);
                    break;
                }
            }
        }
        f.allows.push_back(std::move(a));
    }
}

// --------------------------------------------------------- units

/** A pairing unit: `x.hh` + `x.cc` analysed together so members
 *  declared in the header can be checked against the impl. */
struct Unit
{
    std::vector<SourceFile *> files;

    // Symbol tables (unit scope).
    std::set<std::string> unorderedNames;
    std::set<std::string> tickNames;
    std::set<std::string> cycleNames;
    std::map<std::string, std::string> statMembers; ///< name -> kind
};

struct StatRegistration
{
    SourceFile *file;
    int line;
    std::string member;
    std::string addKind; ///< Scalar / Vector / Formula / Distribution
};

void
buildSymbols(Unit &unit, std::vector<StatRegistration> &regs)
{
    static const std::regex unorderedDecl(
        R"(unordered_(?:map|set)\s*<[^;{}()]{0,200}?>\s+([A-Za-z_]\w*)\s*[;{=])");
    static const std::regex tickDecl(R"(\bTick\s+([A-Za-z_]\w*))");
    static const std::regex cycleDecl(R"(\bCycles\s+([A-Za-z_]\w*))");
    static const std::regex statDecl(
        R"(stats::(Scalar|VectorStat|Formula|DistributionStat|HistogramStat)\s*\*\s*([A-Za-z_]\w*)\s*(?:=\s*nullptr\s*)?;)");
    static const std::regex statReg(
        R"(\b([A-Za-z_]\w*)\s*=\s*&[^;=]{0,160}?\badd(Scalar|Vector|Formula|Distribution|Histogram)\s*\()");
    for (SourceFile *f : unit.files) {
        const std::string &s = f->joined;
        for (auto it = std::sregex_iterator(s.begin(), s.end(),
                                            unorderedDecl);
             it != std::sregex_iterator(); ++it)
            unit.unorderedNames.insert((*it)[1].str());
        for (auto it = std::sregex_iterator(s.begin(), s.end(), tickDecl);
             it != std::sregex_iterator(); ++it)
            unit.tickNames.insert((*it)[1].str());
        for (auto it =
                 std::sregex_iterator(s.begin(), s.end(), cycleDecl);
             it != std::sregex_iterator(); ++it)
            unit.cycleNames.insert((*it)[1].str());
        for (auto it = std::sregex_iterator(s.begin(), s.end(), statDecl);
             it != std::sregex_iterator(); ++it)
            unit.statMembers.emplace((*it)[2].str(), (*it)[1].str());
        for (auto it = std::sregex_iterator(s.begin(), s.end(), statReg);
             it != std::sregex_iterator(); ++it) {
            regs.push_back({f,
                            lineAt(*f, static_cast<std::size_t>(
                                           it->position(0))),
                            (*it)[1].str(), (*it)[2].str()});
        }
    }
}

// --------------------------------------------------------- engine

struct Engine
{
    const Config &config;
    std::vector<Diagnostic> diags;

    void
    report(SourceFile &f, int line, const std::string &rule,
           const std::string &message)
    {
        Diagnostic d;
        d.file = f.rel;
        d.line = line;
        d.rule = rule;
        d.message = message;
        for (const AllowDirective &a : f.allows) {
            if (a.targetLine != line || a.reasonMissing)
                continue;
            if (std::find(a.rules.begin(), a.rules.end(), rule) !=
                a.rules.end()) {
                d.suppressed = true;
                d.suppressReason = a.reason;
                break;
            }
        }
        diags.push_back(std::move(d));
    }

    /** Meta diagnostics about the suppression directives themselves. */
    void
    checkDirectives(SourceFile &f)
    {
        for (const AllowDirective &a : f.allows) {
            if (a.reasonMissing)
                report(f, a.directiveLine, "lint-missing-reason",
                       "rrm-lint allow() without a justification; the "
                       "suppression is ignored until a reason follows "
                       "the closing paren");
            for (const std::string &r : a.rules)
                if (!ruleCatalog().count(r))
                    report(f, a.directiveLine, "lint-unknown-rule",
                           "allow() names unknown rule '" + r + "'");
        }
    }

    // ---- determinism ------------------------------------------------

    void
    detUnorderedIter(Unit &unit)
    {
        static const std::regex beginCall(
            R"(\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
        static const std::regex forKw(R"(\bfor\s*\()");
        for (SourceFile *f : unit.files) {
            const std::string &s = f->joined;
            for (auto it = std::sregex_iterator(s.begin(), s.end(),
                                                forKw);
                 it != std::sregex_iterator(); ++it) {
                const auto open = static_cast<std::size_t>(
                    it->position(0) + it->length(0) - 1);
                const std::size_t close = matchParen(s, open);
                if (close == std::string::npos)
                    continue;
                // Find the range-for ':' at top level (not '::').
                int depth = 0;
                std::size_t colon = std::string::npos;
                for (std::size_t i = open + 1; i + 1 < close; ++i) {
                    const char c = s[i];
                    if (c == '(' || c == '[' || c == '{')
                        ++depth;
                    else if (c == ')' || c == ']' || c == '}')
                        --depth;
                    else if (c == ';')
                        break; // classic for loop
                    else if (c == ':' && depth == 0 &&
                             s[i - 1] != ':' && s[i + 1] != ':') {
                        colon = i;
                        break;
                    }
                }
                if (colon == std::string::npos)
                    continue;
                const std::string range =
                    trim(s.substr(colon + 1, close - 2 - colon));
                std::smatch tail;
                static const std::regex lastIdent(
                    R"(([A-Za-z_]\w*)$)");
                if (!std::regex_search(range, tail, lastIdent))
                    continue;
                if (unit.unorderedNames.count(tail[1].str()))
                    report(*f,
                           lineAt(*f, static_cast<std::size_t>(
                                          it->position(0))),
                           "det-unordered-iter",
                           "range-for over unordered container '" +
                               tail[1].str() +
                               "'; iteration order is hash-dependent — "
                               "use std::map / a sorted vector when the "
                               "order can reach stats, output, or "
                               "decisions");
            }
            for (auto it = std::sregex_iterator(s.begin(), s.end(),
                                                beginCall);
                 it != std::sregex_iterator(); ++it) {
                if (unit.unorderedNames.count((*it)[1].str()))
                    report(*f,
                           lineAt(*f, static_cast<std::size_t>(
                                          it->position(0))),
                           "det-unordered-iter",
                           "iterator over unordered container '" +
                               (*it)[1].str() +
                               "'; iteration order is hash-dependent");
            }
        }
    }

    void
    detWallClock(SourceFile &f)
    {
        static const std::regex wallClock(
            R"(std::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|system_clock|utc_clock|gettimeofday|clock_gettime|\blocaltime\s*\()");
        scanLines(f, wallClock, "det-wall-clock",
                  "wall-clock read outside the sanctioned seam; route "
                  "through obs::wallClockSeconds() so SOURCE_DATE_EPOCH "
                  "keeps runs byte-identical");
    }

    void
    detMonotonicClock(SourceFile &f)
    {
        const auto &seams = config.monotonicSeamFiles;
        if (std::find(seams.begin(), seams.end(), f.rel) != seams.end())
            return;
        static const std::regex monoClock(
            R"(steady_clock|high_resolution_clock)");
        scanLines(f, monoClock, "det-monotonic-clock",
                  "monotonic-clock read outside the sanctioned seams; "
                  "route through obs::monotonicSeconds() so "
                  "SOURCE_DATE_EPOCH pins wall metrics to zero and "
                  "seeded outputs stay byte-identical across --jobs");
    }

    void
    detRandom(SourceFile &f)
    {
        static const std::regex ambientRandom(
            R"(std::rand\b|\bsrand\s*\(|\brand\s*\(\s*\)|random_device|default_random_engine)");
        scanLines(f, ambientRandom, "det-random",
                  "ambient randomness; all stochastic behaviour must "
                  "flow through the seeded rrm::Random seam");
    }

    void
    detPointerKey(SourceFile &f)
    {
        static const std::regex ptrKey(
            R"(\b(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*|\bhash\s*<\s*[\w:]+\s*\*\s*>)");
        scanLines(f, ptrKey, "det-pointer-key",
                  "container keyed/ordered by pointer value; addresses "
                  "vary run to run — key by a stable id instead");
    }

    // ---- stats / trace hygiene --------------------------------------

    void
    statsRegisterOnce(Unit &unit,
                      const std::vector<StatRegistration> &regs)
    {
        static const std::map<std::string, std::string> kindToAdd{
            {"Scalar", "Scalar"},
            {"VectorStat", "Vector"},
            {"Formula", "Formula"},
            {"DistributionStat", "Distribution"},
            {"HistogramStat", "Histogram"}};
        for (const auto &[name, kind] : unit.statMembers) {
            std::vector<const StatRegistration *> mine;
            for (const StatRegistration &r : regs)
                if (r.member == name)
                    mine.push_back(&r);
            if (mine.empty()) {
                // Anchor at the declaration.
                reportAtDecl(unit, name,
                             "stat member '" + name +
                                 "' is declared but never registered "
                                 "with its StatGroup");
                continue;
            }
            for (std::size_t i = 1; i < mine.size(); ++i)
                report(*mine[i]->file, mine[i]->line,
                       "stats-register-once",
                       "stat member '" + name + "' registered " +
                           std::to_string(mine.size()) +
                           " times; must be exactly once");
            const std::string &want = kindToAdd.at(kind);
            for (const StatRegistration *r : mine)
                if (r->addKind != want)
                    report(*r->file, r->line, "stats-register-once",
                           "stat member '" + name + "' is a stats::" +
                               kind + " but is registered via add" +
                               r->addKind + "()");
        }
    }

    void
    reportAtDecl(Unit &unit, const std::string &name,
                 const std::string &message)
    {
        const std::regex declHere("stats::\\w+\\s*\\*\\s*" + name +
                                  "\\b");
        for (SourceFile *f : unit.files) {
            std::smatch m;
            if (std::regex_search(f->joined, m, declHere)) {
                report(*f,
                       lineAt(*f,
                              static_cast<std::size_t>(m.position(0))),
                       "stats-register-once", message);
                return;
            }
        }
    }

    void
    statsFormulaOperand(Unit &unit)
    {
        static const std::regex addFormulaCall(R"(\baddFormula\s*\()");
        static const std::regex statIdent(R"(\bstat[A-Z]\w*_\b)");
        for (SourceFile *f : unit.files) {
            const std::string &s = f->joined;
            for (auto it = std::sregex_iterator(s.begin(), s.end(),
                                                addFormulaCall);
                 it != std::sregex_iterator(); ++it) {
                const auto open = static_cast<std::size_t>(
                    it->position(0) + it->length(0) - 1);
                const std::size_t close = matchParen(s, open);
                if (close == std::string::npos)
                    continue;
                const std::string body =
                    s.substr(open, close - open);
                for (auto op = std::sregex_iterator(
                         body.begin(), body.end(), statIdent);
                     op != std::sregex_iterator(); ++op) {
                    const std::string name = op->str();
                    if (!unit.statMembers.count(name))
                        report(*f,
                               lineAt(*f,
                                      open + static_cast<std::size_t>(
                                                 op->position(0))),
                               "stats-formula-operand",
                               "formula references '" + name +
                                   "', which is not a stat member "
                                   "declared in this file pair");
                }
            }
        }
    }

    void
    statsTraceCategory(SourceFile &f)
    {
        if (f.rel == config.traceDeclFile)
            return;
        static const std::regex traceCall(R"(\bRRM_TRACE\s*\()");
        static const std::regex categoryArg(
            R"(^(?:::)?(?:rrm::)?(?:obs::)?TraceCategory::(\w+)$)");
        const std::string &s = f.joined;
        for (auto it =
                 std::sregex_iterator(s.begin(), s.end(), traceCall);
             it != std::sregex_iterator(); ++it) {
            const auto pos = static_cast<std::size_t>(it->position(0));
            const int line = lineAt(f, pos);
            // Skip the macro's own definition in disabled-trace TUs.
            const std::string &codeLine =
                f.code[static_cast<std::size_t>(line - 1)];
            if (trim(codeLine).rfind('#', 0) == 0)
                continue;
            const auto open =
                static_cast<std::size_t>(it->position(0) +
                                         it->length(0) - 1);
            const std::size_t close = matchParen(s, open);
            if (close == std::string::npos)
                continue;
            const auto args = splitArgs(s, open, close);
            if (args.size() < 4)
                continue;
            const std::string cat = trim(args[2].second);
            std::smatch m;
            if (!std::regex_match(cat, m, categoryArg)) {
                report(f, line, "stats-trace-category",
                       "RRM_TRACE category must be a TraceCategory "
                       "enumerator, got '" + cat + "'");
                continue;
            }
            const std::string name = m[1].str();
            const auto &cats = config.traceCategories;
            if (std::find(cats.begin(), cats.end(), name) == cats.end())
                report(f, line, "stats-trace-category",
                       "RRM_TRACE uses undeclared trace category '" +
                           name + "'");
        }
    }

    // ---- units discipline -------------------------------------------

    void
    unitsRawMix(Unit &unit)
    {
        static const std::regex helperNames(
            R"(cyclesToTicks|ticksToCycles|secondsToTicks|ticksToSeconds|tickPer[A-Z]\w*|bytesToTicks)");
        for (SourceFile *f : unit.files) {
            for (std::size_t i = 0; i < f->code.size(); ++i) {
                const std::string &line = f->code[i];
                if (line.empty() ||
                    std::regex_search(line, helperNames))
                    continue;
                const auto ticks =
                    identifierPositions(line, unit.tickNames);
                if (ticks.empty())
                    continue;
                auto others =
                    identifierPositions(line, unit.cycleNames);
                collectByteIdents(line, others);
                if (others.empty())
                    continue;
                if (mixedArithmetic(line, ticks, others))
                    report(*f, static_cast<int>(i + 1),
                           "units-raw-mix",
                           "raw arithmetic mixes a Tick quantity with "
                           "a Cycles/byte quantity; use a named "
                           "conversion helper from common/units.hh");
            }
        }
    }

    static std::vector<std::pair<std::size_t, std::size_t>>
    identifierPositions(const std::string &line,
                        const std::set<std::string> &names)
    {
        std::vector<std::pair<std::size_t, std::size_t>> out;
        static const std::regex ident(R"([A-Za-z_]\w*)");
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            ident);
             it != std::sregex_iterator(); ++it)
            if (names.count(it->str()))
                out.emplace_back(static_cast<std::size_t>(
                                     it->position(0)),
                                 static_cast<std::size_t>(
                                     it->position(0) + it->length(0)));
        return out;
    }

    static void
    collectByteIdents(
        const std::string &line,
        std::vector<std::pair<std::size_t, std::size_t>> &out)
    {
        static const std::regex byteIdent(
            R"(\b[A-Za-z_]\w*[Bb]ytes_?\b)");
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            byteIdent);
             it != std::sregex_iterator(); ++it)
            out.emplace_back(static_cast<std::size_t>(it->position(0)),
                             static_cast<std::size_t>(it->position(0) +
                                                      it->length(0)));
    }

    /** True when some tick identifier and some other-unit identifier
     *  are joined by +,-,*,/ with only member access / whitespace /
     *  casts between them. */
    static bool
    mixedArithmetic(
        const std::string &line,
        const std::vector<std::pair<std::size_t, std::size_t>> &ticks,
        const std::vector<std::pair<std::size_t, std::size_t>> &others)
    {
        static const std::regex joiner(
            R"(^[\w\s_.\[\]()>-]*?[+\-*/][\w\s_.\[\]()<>:-]*$)");
        for (const auto &[tb, te] : ticks) {
            for (const auto &[ob, oe] : others) {
                if (te <= ob) {
                    if (std::regex_match(line.substr(te, ob - te),
                                         joiner))
                        return true;
                } else if (oe <= tb) {
                    if (std::regex_match(line.substr(oe, tb - oe),
                                         joiner))
                        return true;
                }
            }
        }
        return false;
    }

    // ---- layering ---------------------------------------------------

    void
    layerUpwardInclude(SourceFile &f)
    {
        if (f.rel.rfind("src/", 0) != 0)
            return;
        const std::string rest = f.rel.substr(4);
        const auto slash = rest.find('/');
        if (slash == std::string::npos)
            return;
        const std::string module = rest.substr(0, slash);
        const auto &order = config.layerOrder;
        const auto self =
            std::find(order.begin(), order.end(), module);
        if (self == order.end())
            return;
        static const std::regex includeLine(
            R"(#\s*include\s*\"([\w./-]+)\")");
        for (std::size_t i = 0; i < f.code.size(); ++i) {
            std::smatch m;
            if (!std::regex_search(f.code[i], m, includeLine))
                continue;
            const std::string inc = m[1].str();
            const auto incSlash = inc.find('/');
            if (incSlash == std::string::npos)
                continue;
            const std::string incModule = inc.substr(0, incSlash);
            const auto target =
                std::find(order.begin(), order.end(), incModule);
            if (target != order.end() && target > self)
                report(f, static_cast<int>(i + 1),
                       "layer-upward-include",
                       "src/" + module + " includes \"" + inc +
                           "\" from the higher layer src/" + incModule +
                           "; dependencies must point downward");
        }
    }

    void
    layerSchemeDispatch(SourceFile &f)
    {
        const auto &allowed = config.schemeFactoryFiles;
        if (std::find(allowed.begin(), allowed.end(), f.rel) !=
            allowed.end())
            return;
        static const std::regex dispatch(R"(\bSchemeKind\s*::)");
        scanLines(f, dispatch, "layer-scheme-dispatch",
                  "SchemeKind dispatch outside the policy factory "
                  "(src/system/scheme.cc); branch on the WritePolicy "
                  "interface instead");
    }

    // ---- performance ------------------------------------------------

    void
    perfHotStdFunction(SourceFile &f)
    {
        const auto &dirs = config.hotPathDirs;
        const bool hot =
            std::any_of(dirs.begin(), dirs.end(),
                        [&](const std::string &d) {
                            return f.rel.rfind(d, 0) == 0;
                        });
        if (!hot)
            return;
        const auto &seams = config.hotPathSeamFiles;
        if (std::find(seams.begin(), seams.end(), f.rel) != seams.end())
            return;
        static const std::regex stdFunction(R"(\bstd\s*::\s*function\s*<)");
        scanLines(f, stdFunction, "perf-hot-std-function",
                  "std::function on the scheduling/memory hot path; it "
                  "heap-allocates captures and indirects every call — "
                  "use rrm::InlineFunction (sim/callback.hh) or a "
                  "concrete member-function target");
    }

    // ---- shared -----------------------------------------------------

    void
    scanLines(SourceFile &f, const std::regex &pattern,
              const std::string &rule, const std::string &message)
    {
        for (std::size_t i = 0; i < f.code.size(); ++i)
            if (std::regex_search(f.code[i], pattern))
                report(f, static_cast<int>(i + 1), rule, message);
    }
};

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp";
}

} // namespace

// ------------------------------------------------------------- public

Config
defaultConfig()
{
    Config c;
    c.layerOrder = {"common", "ckpt",    "stats", "sim",
                    "obs",    "pcm",     "trace", "cache",
                    "cpu",    "memctrl", "rrm",   "policy",
                    "fault",  "system",  "run"};
    c.traceCategories = {"RrmLifecycle", "Refresh",  "Queue",
                         "StartGap",     "Sampler",  "Fault"};
    c.schemeFactoryFiles = {"src/system/scheme.hh",
                            "src/system/scheme.cc"};
    c.monotonicSeamFiles = {"src/obs/profiler.hh",
                            "src/obs/run_record.cc"};
    c.hotPathDirs = {"src/sim/", "src/memctrl/"};
    c.hotPathSeamFiles = {"src/sim/callback.hh"};
    return c;
}

void
loadTraceCategories(const std::string &root, Config &config)
{
    std::ifstream in(fs::path(root) / config.traceDeclFile);
    if (!in)
        return;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const auto enumPos = content.find("enum class TraceCategory");
    if (enumPos == std::string::npos)
        return;
    const auto open = content.find('{', enumPos);
    const auto close = content.find('}', open);
    if (open == std::string::npos || close == std::string::npos)
        return;
    SourceFile body;
    stripSource(content.substr(open + 1, close - open - 1), body);
    std::vector<std::string> cats;
    static const std::regex enumerator(R"(([A-Za-z_]\w*)\s*(?:=[^,]*)?(?:,|$))");
    const std::string &s = body.joined;
    for (auto it = std::sregex_iterator(s.begin(), s.end(), enumerator);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (name != "NumCategories")
            cats.push_back(name);
    }
    if (!cats.empty())
        config.traceCategories = std::move(cats);
}

const std::map<std::string, std::string> &
ruleCatalog()
{
    static const std::map<std::string, std::string> catalog{
        {"det-unordered-iter",
         "no iteration over unordered containers whose order can reach "
         "stats, output, or decisions"},
        {"det-wall-clock",
         "no wall-clock reads outside obs::wallClockSeconds()"},
        {"det-monotonic-clock",
         "no steady/high-resolution clock reads outside "
         "obs::monotonicSeconds() and the self-profiler"},
        {"det-random",
         "no std::rand/random_device; use the seeded rrm::Random"},
        {"det-pointer-key",
         "no containers keyed or ordered by raw pointer values"},
        {"stats-register-once",
         "every stats::* member declared in a header is registered "
         "exactly once, with the matching add*() kind"},
        {"stats-formula-operand",
         "formulas only reference stat members declared in the same "
         "file pair"},
        {"stats-trace-category",
         "RRM_TRACE calls use a declared TraceCategory enumerator"},
        {"units-raw-mix",
         "no raw arithmetic mixing Tick with Cycles/byte quantities; "
         "use named helpers from common/units.hh"},
        {"perf-hot-std-function",
         "no std::function in src/sim or src/memctrl; hot-path "
         "callbacks use rrm::InlineFunction"},
        {"layer-upward-include",
         "src/ modules only include lower layers (common < ckpt < "
         "stats < sim < obs < pcm < trace < cache < cpu < memctrl < "
         "rrm < policy < fault < system < run)"},
        {"layer-scheme-dispatch",
         "SchemeKind is only named inside the policy factory"},
        {"lint-missing-reason",
         "rrm-lint: allow(...) directives must carry a justification"},
        {"lint-unknown-rule",
         "rrm-lint: allow(...) directives must name known rules"},
    };
    return catalog;
}

std::vector<Diagnostic>
lintFiles(const std::string &root, const std::vector<std::string> &files,
          const Config &config)
{
    // Load and preprocess every file.
    std::vector<std::unique_ptr<SourceFile>> sources;
    for (const std::string &rel : files) {
        std::ifstream in(fs::path(root) / rel);
        if (!in)
            continue;
        std::stringstream buf;
        buf << in.rdbuf();
        auto sf = std::make_unique<SourceFile>();
        sf->rel = rel;
        stripSource(buf.str(), *sf);
        parseAllowDirectives(*sf);
        sources.push_back(std::move(sf));
    }

    // Pair x.hh with x.cc (and x.hpp with x.cpp) from the same
    // directory into one analysis unit.
    std::map<std::string, Unit> units;
    for (auto &sf : sources) {
        fs::path p(sf->rel);
        units[(p.parent_path() / p.stem()).string()].files.push_back(
            sf.get());
    }

    Engine engine{config, {}};
    for (auto &[stem, unit] : units) {
        std::vector<StatRegistration> regs;
        buildSymbols(unit, regs);
        engine.detUnorderedIter(unit);
        engine.statsRegisterOnce(unit, regs);
        engine.statsFormulaOperand(unit);
        engine.unitsRawMix(unit);
        for (SourceFile *f : unit.files) {
            engine.checkDirectives(*f);
            engine.detWallClock(*f);
            engine.detMonotonicClock(*f);
            engine.detRandom(*f);
            engine.detPointerKey(*f);
            engine.perfHotStdFunction(*f);
            engine.statsTraceCategory(*f);
            engine.layerUpwardInclude(*f);
            engine.layerSchemeDispatch(*f);
        }
    }

    std::sort(engine.diags.begin(), engine.diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return std::move(engine.diags);
}

std::vector<Diagnostic>
lintTree(const std::string &root, const Config &config)
{
    std::vector<std::string> files;
    for (const std::string &dir : config.scanDirs) {
        const fs::path base = fs::path(root) / dir;
        if (!fs::exists(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() ||
                !lintableExtension(entry.path()))
                continue;
            files.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    return lintFiles(root, files, config);
}

Summary
summarize(const std::vector<Diagnostic> &diags)
{
    Summary s;
    s.total = diags.size();
    for (const Diagnostic &d : diags)
        (d.suppressed ? s.suppressed : s.unsuppressed) += 1;
    return s;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::string out = d.file + ":" + std::to_string(d.line) +
                      ": error[" + d.rule + "]: " + d.message;
    if (d.suppressed)
        out += " [suppressed: " + d.suppressReason + "]";
    return out;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
diagnosticsToJson(const std::vector<Diagnostic> &diags)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        out += "  {\"file\": \"" + jsonEscape(d.file) +
               "\", \"line\": " + std::to_string(d.line) +
               ", \"rule\": \"" + jsonEscape(d.rule) +
               "\", \"suppressed\": " +
               (d.suppressed ? "true" : "false") +
               ", \"reason\": \"" + jsonEscape(d.suppressReason) +
               "\", \"message\": \"" + jsonEscape(d.message) + "\"}";
        out += i + 1 < diags.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

} // namespace rrm::lint
