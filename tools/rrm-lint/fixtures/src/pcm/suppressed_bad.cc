// Suppression mechanics gone wrong: a reason-less allow() (which must
// NOT suppress the finding) and an allow() naming an unknown rule.
#include <unordered_map>

struct Broken
{
    std::unordered_map<int, int> counts_;

    int
    total()
    {
        int t = 0;
        // rrm-lint: allow(det-unordered-iter)
        for (const auto &[k, v] : counts_) // line 14
            t += v;
        // rrm-lint: allow(no-such-rule) reason present but rule bogus
        return t; // line 17
    }
};
