// A correctly justified suppression: the finding is recorded but does
// not count as a violation.
#include <unordered_map>

struct Sum
{
    std::unordered_map<int, int> counts_;

    int
    total()
    {
        int t = 0;
        // rrm-lint: allow(det-unordered-iter) sum is order independent
        for (const auto &[k, v] : counts_) // line 14
            t += v;
        return t;
    }
};
