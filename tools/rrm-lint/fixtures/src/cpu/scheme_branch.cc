// Seeds layer-scheme-dispatch: branching on SchemeKind outside the
// policy factory.
#include "system/scheme.hh"

bool
isHybrid(rrm::sys::SchemeKind kind)
{
    return kind == rrm::sys::SchemeKind::Rrm; // line 8
}
