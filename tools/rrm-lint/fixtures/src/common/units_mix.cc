// Seeds units-raw-mix: Tick arithmetic against Cycles / byte counts.
using Tick = unsigned long long;
using Cycles = unsigned long long;

Tick
elapsed(Tick period, Cycles spent, unsigned long long lineBytes)
{
    Tick total = spent * period;      // line 8: Cycles * Tick, raw
    total += period + lineBytes;      // line 9: Tick + bytes, raw
    total += cyclesToTicks(spent, period); // ok: named helper
    return total;
}
