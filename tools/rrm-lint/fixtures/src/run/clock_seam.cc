// Seeds det-monotonic-clock (steady/high-resolution clock reads
// outside the sanctioned obs seams).
#include <chrono>

// Deliberately unsuppressed.
struct Stopwatch
{
    double
    elapsed()
    {
        const auto now = std::chrono::steady_clock::now(); // line 11
        return std::chrono::duration<double>(
                   now -
                   std::chrono::high_resolution_clock::now()) // line 14
            .count();
    }
};
