// Seeds det-wall-clock, det-random, det-pointer-key.
#include <ctime>
#include <map>
#include <random>

struct Record
{
    long
    stampNow()
    {
        return static_cast<long>(std::time(nullptr)); // line 11
    }

    int
    jitter()
    {
        std::random_device rd; // line 17
        return static_cast<int>(rd());
    }

    // Pointer-keyed map: iteration order tracks allocation addresses.
    std::map<Record *, int> byOwner_; // line 22
};
