// Seeds stats-register-once, stats-formula-operand and
// stats-trace-category against the members declared in the header.
#include "stats_hygiene.hh"

void
Monitor::regStats(rrm::stats::StatGroup &g)
{
    statTwiceRegistered_ = &g.addScalar("twice", "first is fine");
    statTwiceRegistered_ = &g.addScalar("twice", "dup: line 9");
    statWrongKind_ = &g.addFormula("kind", "mismatch: line 10", [] {
        return 0.0;
    });
    statRatio_ = &g.addFormula("ratio", "operand check", [this] {
        return statUndeclared_->value(); // line 14
    });
    RRM_TRACE(sink_, 0, obs::TraceCategory::Bogus, "ev"); // line 16
}
