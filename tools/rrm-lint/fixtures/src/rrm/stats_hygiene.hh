// Seeds stats-register-once (via the paired .cc) — three members
// with three different registration defects.
namespace rrm::stats
{
class Scalar;
class Formula;
class StatGroup;
} // namespace rrm::stats

struct Monitor
{
    void regStats(rrm::stats::StatGroup &g);

    rrm::stats::Scalar *statNeverRegistered_ = nullptr; // line 14
    rrm::stats::Scalar *statTwiceRegistered_ = nullptr;
    rrm::stats::Scalar *statWrongKind_ = nullptr;
    rrm::stats::Formula *statRatio_ = nullptr;
};
