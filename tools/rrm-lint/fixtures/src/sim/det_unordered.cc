// Seeds det-unordered-iter: iteration over unordered containers.
#include <unordered_map>
#include <unordered_set>

struct Exporter
{
    std::unordered_map<unsigned long, unsigned> perRegion_;
    std::unordered_set<unsigned> live_;

    unsigned long
    exportCsv()
    {
        unsigned long sum = 0;
        for (const auto &[region, count] : perRegion_) // line 14
            sum += region * count;
        return sum;
    }

    unsigned
    firstLive()
    {
        return *live_.begin(); // line 22
    }
};
