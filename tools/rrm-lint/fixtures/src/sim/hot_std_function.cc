// Seeds perf-hot-std-function: std::function on the hot path.
#include <functional>

struct Scheduler
{
    std::function<void()> pending_; // line 6

    void
    schedule(std::function<void()> cb) // line 9
    {
        pending_ = cb;
    }
};
