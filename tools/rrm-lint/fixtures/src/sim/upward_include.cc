// Seeds layer-upward-include: src/sim must not reach into
// src/system (nor any higher layer).
#include "common/units.hh"
#include "system/system.hh" // line 4
