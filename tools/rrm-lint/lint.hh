/**
 * @file
 * rrm-lint: project-specific static analysis for the RRM simulator.
 *
 * The generic toolchain (clang-tidy, -Wall) cannot know that iterating
 * an unordered container in an exporter breaks the golden-record
 * harness, or that a stray std::time() call silently defeats
 * SOURCE_DATE_EPOCH pinning. rrm-lint encodes those *project* rules as
 * a lexical/structural analyzer over src/, bench/, tests/ and
 * examples/: it strips comments and string literals, builds small
 * per-file-pair symbol tables (unordered-container names, Tick/Cycles
 * declarations, stats::* pointer members), and emits file/line
 * diagnostics with stable rule ids.
 *
 * Rule families (see DESIGN.md §13 for the catalog):
 *   det-*    determinism (unordered iteration, wall clock, ambient
 *            randomness, pointer-keyed ordering)
 *   stats-*  stats/trace hygiene (register-exactly-once, formula
 *            operands, declared trace categories)
 *   units-*  units discipline (no raw Tick/Cycles/byte mixing)
 *   layer-*  layering (module include DAG, SchemeKind confinement)
 *   lint-*   meta rules about suppression directives themselves
 *
 * Suppressions: `// rrm-lint: allow(rule-a,rule-b) reason text`
 * suppresses the named rules on the same line, or — when the comment
 * stands on its own line — on the next line that carries code. The
 * reason is mandatory; a missing reason raises lint-missing-reason and
 * leaves the original diagnostic unsuppressed.
 */

#ifndef RRM_TOOLS_LINT_HH
#define RRM_TOOLS_LINT_HH

#include <map>
#include <string>
#include <vector>

namespace rrm::lint
{

/** Diagnostic severity. Every shipped rule is an error: CI fails on
 *  any unsuppressed finding, so a "warning" tier would just rot. */
enum class Severity
{
    Error,
};

/** One finding. */
struct Diagnostic
{
    std::string file; ///< path relative to the lint root
    int line = 0;     ///< 1-based
    std::string rule;
    Severity severity = Severity::Error;
    std::string message;
    bool suppressed = false;
    std::string suppressReason; ///< set iff suppressed
};

/** Tree-wide analysis knobs; defaultConfig() matches this repo. */
struct Config
{
    /** Directories under the root to scan. */
    std::vector<std::string> scanDirs{"src", "bench", "tests",
                                      "examples"};

    /** Module layering, lowest layer first. A file in src/<m>/ may
     *  include src/<n>/ headers only when n is at or below m. */
    std::vector<std::string> layerOrder;

    /** Declared trace categories (TraceCategory enumerators). */
    std::vector<std::string> traceCategories;

    /** Files (root-relative) allowed to name SchemeKind members —
     *  the policy factory. */
    std::vector<std::string> schemeFactoryFiles;

    /** File (root-relative) that declares the RRM_TRACE macro and the
     *  TraceCategory enum; exempt from the trace-category rule. */
    std::string traceDeclFile = "src/obs/trace.hh";

    /** Files (root-relative) allowed to read the monotonic clock —
     *  the obs::monotonicSeconds() seam and the self-profiler. */
    std::vector<std::string> monotonicSeamFiles;

    /** Directory prefixes (root-relative, trailing slash) whose files
     *  sit on the per-event hot path: naming std::function there
     *  raises perf-hot-std-function. */
    std::vector<std::string> hotPathDirs;

    /** Files (root-relative) exempt from perf-hot-std-function — the
     *  InlineFunction seam that implements the ban. */
    std::vector<std::string> hotPathSeamFiles;
};

/** The repo's canonical configuration. */
Config defaultConfig();

/** Refresh config.traceCategories from `<root>/src/obs/trace.hh` when
 *  that file exists; keeps the built-in list otherwise. */
void loadTraceCategories(const std::string &root, Config &config);

/** Stable catalog of every rule id with a one-line description. */
const std::map<std::string, std::string> &ruleCatalog();

/** Lint every matching file under root's scanDirs. Paths in the
 *  returned diagnostics are root-relative; output is sorted by
 *  (file, line, rule) so runs are reproducible. */
std::vector<Diagnostic> lintTree(const std::string &root,
                                 const Config &config);

/** Lint an explicit list of root-relative files (still pairing
 *  `x.hh`/`x.cc` when both are listed). */
std::vector<Diagnostic> lintFiles(const std::string &root,
                                  const std::vector<std::string> &files,
                                  const Config &config);

/** Counts over a diagnostic list. */
struct Summary
{
    std::size_t total = 0;
    std::size_t unsuppressed = 0;
    std::size_t suppressed = 0;
};
Summary summarize(const std::vector<Diagnostic> &diags);

/** Render one diagnostic as "file:line: error[rule]: message". */
std::string formatDiagnostic(const Diagnostic &d);

/** Serialize diagnostics as a deterministic JSON array. */
std::string diagnosticsToJson(const std::vector<Diagnostic> &diags);

} // namespace rrm::lint

#endif // RRM_TOOLS_LINT_HH
