/**
 * @file
 * rrm-lint command line driver.
 *
 * Usage:
 *   rrm_lint [--root DIR] [--json FILE] [--count-suppressions]
 *            [--list-rules] [--quiet] [file...]
 *
 * With no file arguments the whole tree (src/ bench/ tests/ examples/
 * under --root) is scanned. Exit status is 1 when any unsuppressed
 * violation remains, 0 otherwise — which is what the `lint` CMake
 * target and the CI job key off.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "lint.hh"

namespace
{

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--root DIR] [--json FILE] [--count-suppressions]\n"
           "       [--list-rules] [--quiet] [file...]\n\n"
           "Project-specific static analysis for the RRM simulator.\n"
           "Scans src/ bench/ tests/ examples/ under --root (default\n"
           "'.') unless explicit root-relative files are given.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string jsonOut;
    bool countSuppressions = false;
    bool listRules = false;
    bool quiet = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            jsonOut = argv[++i];
        } else if (arg == "--count-suppressions") {
            countSuppressions = true;
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "rrm-lint: unknown option '" << arg << "'\n";
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &[rule, desc] : rrm::lint::ruleCatalog())
            std::cout << rule << "\n    " << desc << "\n";
        return 0;
    }

    rrm::lint::Config config = rrm::lint::defaultConfig();
    rrm::lint::loadTraceCategories(root, config);

    const std::vector<rrm::lint::Diagnostic> diags =
        files.empty() ? rrm::lint::lintTree(root, config)
                      : rrm::lint::lintFiles(root, files, config);
    const rrm::lint::Summary sum = rrm::lint::summarize(diags);

    if (countSuppressions) {
        std::cout << sum.suppressed << "\n";
        return sum.unsuppressed > 0 ? 1 : 0;
    }

    if (!quiet) {
        for (const auto &d : diags)
            if (!d.suppressed)
                std::cout << rrm::lint::formatDiagnostic(d) << "\n";
        std::cout << "rrm-lint: " << sum.total << " findings ("
                  << sum.unsuppressed << " unsuppressed, "
                  << sum.suppressed << " suppressed)\n";
    }

    if (!jsonOut.empty()) {
        try {
            rrm::AtomicFile out(jsonOut);
            out.stream() << rrm::lint::diagnosticsToJson(diags);
            out.commit();
        } catch (const rrm::FatalError &e) {
            std::cerr << "rrm-lint: cannot write " << jsonOut << ": "
                      << e.what() << "\n";
            return 2;
        }
    }

    return sum.unsuppressed > 0 ? 1 : 0;
}
