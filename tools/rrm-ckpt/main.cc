/**
 * @file
 * rrm-ckpt: operator inspection of .rckpt checkpoint files.
 *
 *   rrm-ckpt info   FILE...
 *   rrm-ckpt verify FILE...
 *   rrm-ckpt diff   FILE1 FILE2
 *
 * `info` prints the header (version, config fingerprint, epoch,
 * tick) and a per-section size table. `verify` runs the full
 * validation pass (magic, version, header CRC, every section CRC,
 * whole-file CRC) and exits nonzero naming the first broken file.
 * `diff` compares two checkpoints section by section — same-config
 * runs diverge in a handful of sections, and naming them is usually
 * enough to locate a determinism bug.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/logging.hh"

namespace
{

using namespace rrm;

int
usage()
{
    std::fprintf(stderr, "usage: rrm-ckpt info   FILE...\n"
                         "       rrm-ckpt verify FILE...\n"
                         "       rrm-ckpt diff   FILE1 FILE2\n");
    return 2;
}

void
printHeader(const ckpt::CkptReader &reader)
{
    const ckpt::CkptHeader &h = reader.header();
    std::printf("%s:\n", reader.name().c_str());
    std::printf("  version      %u\n", h.version);
    std::printf("  fingerprint  0x%016llx\n",
                static_cast<unsigned long long>(h.configFingerprint));
    std::printf("  epoch        %llu\n",
                static_cast<unsigned long long>(h.epochIndex));
    std::printf("  tick         %llu\n",
                static_cast<unsigned long long>(h.tick));
}

int
cmdInfo(const std::vector<std::string> &files)
{
    int rc = 0;
    for (const std::string &path : files) {
        try {
            const ckpt::CkptReader reader(path);
            printHeader(reader);
            std::size_t total = 0;
            for (const std::uint32_t id : reader.sectionIds()) {
                const std::size_t size = reader.sectionSize(id);
                total += size;
                std::printf("  section %s  %10zu bytes\n",
                            ckpt::sectionName(id).c_str(), size);
            }
            std::printf("  %u sections, %zu payload bytes\n",
                        static_cast<unsigned>(reader.sectionIds().size()),
                        total);
        } catch (const ckpt::CkptError &e) {
            std::fprintf(stderr, "rrm-ckpt: %s\n", e.what());
            rc = 1;
        }
    }
    return rc;
}

int
cmdVerify(const std::vector<std::string> &files)
{
    int rc = 0;
    for (const std::string &path : files) {
        const std::string error = ckpt::CkptReader::validateFile(path);
        if (error.empty()) {
            std::printf("%s: ok\n", path.c_str());
        } else {
            std::printf("%s: INVALID (%s)\n", path.c_str(),
                        error.c_str());
            rc = 1;
        }
    }
    return rc;
}

int
cmdDiff(const std::vector<std::string> &files)
{
    if (files.size() != 2)
        return usage();
    const ckpt::CkptReader a(files[0]);
    const ckpt::CkptReader b(files[1]);

    bool differ = false;
    const auto note = [&](const std::string &line) {
        differ = true;
        std::printf("%s\n", line.c_str());
    };

    const ckpt::CkptHeader &ha = a.header();
    const ckpt::CkptHeader &hb = b.header();
    if (ha.configFingerprint != hb.configFingerprint)
        note("header: config fingerprints differ");
    if (ha.epochIndex != hb.epochIndex) {
        note("header: epoch " + std::to_string(ha.epochIndex) +
             " vs " + std::to_string(hb.epochIndex));
    }
    if (ha.tick != hb.tick) {
        note("header: tick " + std::to_string(ha.tick) + " vs " +
             std::to_string(hb.tick));
    }

    for (const std::uint32_t id : a.sectionIds()) {
        const std::string name = ckpt::sectionName(id);
        if (!b.hasSection(id)) {
            note("section " + name + ": only in " + a.name());
            continue;
        }
        const auto &da = a.sectionData(id);
        const auto &db = b.sectionData(id);
        if (da.size() != db.size()) {
            note("section " + name + ": " + std::to_string(da.size()) +
                 " vs " + std::to_string(db.size()) + " bytes");
        } else if (da != db) {
            std::size_t first = 0;
            while (first < da.size() && da[first] == db[first])
                ++first;
            note("section " + name + ": payloads differ from byte " +
                 std::to_string(first) + " of " +
                 std::to_string(da.size()));
        }
    }
    for (const std::uint32_t id : b.sectionIds()) {
        if (!a.hasSection(id)) {
            note("section " + ckpt::sectionName(id) + ": only in " +
                 b.name());
        }
    }

    if (!differ) {
        std::printf("checkpoints are identical\n");
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> files(argv + 2, argv + argc);
    try {
        if (cmd == "info")
            return cmdInfo(files);
        if (cmd == "verify")
            return cmdVerify(files);
        if (cmd == "diff")
            return cmdDiff(files);
    } catch (const ckpt::CkptError &e) {
        std::fprintf(stderr, "rrm-ckpt: %s\n", e.what());
        return 1;
    } catch (const rrm::FatalError &e) {
        std::fprintf(stderr, "rrm-ckpt: %s\n", e.what());
        return 1;
    }
    return usage();
}
