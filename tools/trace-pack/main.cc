/**
 * @file
 * trace-pack: generate, inspect, and verify binary trace packs.
 *
 *   trace-pack pack   --out DIR --workload NAME [--workload NAME...]
 *                     [--seed N] [--records N]
 *   trace-pack info   FILE...
 *   trace-pack verify FILE...
 *
 * `pack` replicates the System's per-core seeding exactly — a master
 * Random seeded with --seed hands one seed to each of the four cores
 * in order — and writes one pack per core named
 * "<profile>-c<core>.rtp", the layout System expects from
 * SystemConfig::tracePackDir.
 *
 * `verify` re-runs the generator with the pack's recorded (profile,
 * seed) and byte-compares every record, proving a pack still matches
 * the current generator code.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "trace/generator.hh"
#include "trace/trace_pack.hh"
#include "trace/workload.hh"

namespace
{

using namespace rrm;

constexpr std::uint64_t defaultRecords = 16u << 20;

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace-pack pack --out DIR --workload NAME"
                 " [--workload NAME...] [--seed N] [--records N]\n"
                 "       trace-pack info FILE...\n"
                 "       trace-pack verify FILE...\n");
    return 2;
}

int
cmdPack(const std::vector<std::string> &args)
{
    std::string outDir;
    std::vector<std::string> workloads;
    std::uint64_t seed = 1;
    std::uint64_t records = defaultRecords;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                fatal("option ", a, " needs a value");
            return args[++i];
        };
        if (a == "--out")
            outDir = value();
        else if (a == "--workload")
            workloads.push_back(value());
        else if (a == "--seed")
            seed = std::stoull(value());
        else if (a == "--records")
            records = std::stoull(value());
        else
            fatal("unknown option '", a, "'");
    }
    if (outDir.empty() || workloads.empty())
        return usage();

    for (const auto &name : workloads) {
        const trace::Workload w = trace::workloadFromName(name);
        // Same chain as System::buildCores: one master Random, one
        // next() per core, in core order.
        Random seeder(seed);
        for (std::size_t c = 0; c < w.numCores(); ++c) {
            const auto &profile = trace::benchmarkProfile(w.perCore[c]);
            const std::uint64_t coreSeed = seeder.next();
            trace::TraceGenerator gen(profile, coreSeed);
            const std::string path = outDir + "/" +
                                     std::string(profile.name) + "-c" +
                                     std::to_string(c) + ".rtp";
            trace::writeTracePack(path, std::string(profile.name),
                                  coreSeed, gen, records);
            std::printf("wrote %s: %llu records, seed %llu\n",
                        path.c_str(),
                        static_cast<unsigned long long>(records),
                        static_cast<unsigned long long>(coreSeed));
        }
    }
    return 0;
}

int
cmdInfo(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    for (const auto &path : args) {
        trace::TracePackReader reader(path);
        const auto &h = reader.header();
        std::printf("%s:\n"
                    "  version    %u\n"
                    "  profile    %s\n"
                    "  seed       %llu\n"
                    "  records    %llu\n"
                    "  footprint  %llu bytes\n"
                    "  meanGap    %.6f instructions\n",
                    path.c_str(), h.version, h.profileName.c_str(),
                    static_cast<unsigned long long>(h.seed),
                    static_cast<unsigned long long>(h.recordCount),
                    static_cast<unsigned long long>(h.footprintBytes),
                    h.meanGapInstructions);
    }
    return 0;
}

int
cmdVerify(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    bool ok = true;
    for (const auto &path : args) {
        trace::TracePackReader reader(path);
        const auto &h = reader.header();
        const auto &profile = trace::benchmarkProfile(
            trace::benchmarkFromName(h.profileName));
        trace::TraceGenerator gen(profile, h.seed);
        if (gen.footprintBytes() != h.footprintBytes ||
            gen.meanGapInstructions() != h.meanGapInstructions) {
            std::printf("%s: STALE (profile parameters changed)\n",
                        path.c_str());
            ok = false;
            continue;
        }
        std::uint64_t bad = h.recordCount;
        for (std::uint64_t i = 0; i < h.recordCount; ++i) {
            const trace::TraceRecord want = gen.next();
            const trace::TraceRecord got = reader.record(i);
            if (got.addr != want.addr || got.type != want.type ||
                got.gapInstructions != want.gapInstructions) {
                bad = i;
                break;
            }
        }
        if (bad != h.recordCount) {
            std::printf("%s: MISMATCH at record %llu\n", path.c_str(),
                        static_cast<unsigned long long>(bad));
            ok = false;
        } else {
            std::printf("%s: ok (%llu records)\n", path.c_str(),
                        static_cast<unsigned long long>(h.recordCount));
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "pack")
        return cmdPack(args);
    if (cmd == "info")
        return cmdInfo(args);
    if (cmd == "verify")
        return cmdVerify(args);
    return usage();
}
