/**
 * @file
 * Explore the performance/lifetime frontier exposed by the RRM's
 * hot_threshold knob (paper Section IV-H / Figure 11), and compare it
 * against the two static extremes.
 *
 * Usage: threshold_tuning [workload] [window_ms]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/system.hh"

using namespace rrm;

namespace
{

sys::SimResults
run(const trace::Workload &workload, const sys::Scheme &scheme,
    double window_seconds, unsigned threshold = 16)
{
    sys::SystemConfig cfg;
    cfg.workload = workload;
    cfg.scheme = scheme;
    cfg.windowSeconds = window_seconds;
    cfg.rrm.hotThreshold = threshold;
    sys::System system(std::move(cfg));
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const double window =
        (argc > 2 ? std::atof(argv[2]) : 60.0) / 1e3;
    const trace::Workload workload = trace::workloadFromName(name);

    std::printf("hot_threshold frontier for %s\n\n", name.c_str());
    std::printf("%-22s %10s %12s %12s\n", "configuration", "IPC",
                "life (yr)", "fast writes");

    const auto s7 = run(workload,
                        sys::Scheme::staticScheme(pcm::WriteMode::Sets7),
                        window);
    std::printf("%-22s %10.3f %12.3f %11s\n", "Static-7-SETs",
                s7.aggregateIpc, s7.lifetimeYears, "-");

    for (unsigned threshold : {4u, 8u, 16u, 32u, 64u}) {
        const auto r = run(workload, sys::Scheme::rrmScheme(), window,
                           threshold);
        std::printf("%-22s %10.3f %12.3f %10.1f%%\n",
                    ("RRM, threshold " + std::to_string(threshold))
                        .c_str(),
                    r.aggregateIpc, r.lifetimeYears,
                    100.0 * r.fastWriteFraction());
    }

    const auto s3 = run(workload,
                        sys::Scheme::staticScheme(pcm::WriteMode::Sets3),
                        window);
    std::printf("%-22s %10.3f %12.3f %11s\n", "Static-3-SETs",
                s3.aggregateIpc, s3.lifetimeYears, "-");

    std::printf("\nLower thresholds move the RRM toward Static-3 "
                "performance; higher thresholds toward Static-7 "
                "lifetime (paper Fig. 11).\n");
    return 0;
}
