/**
 * @file
 * Observability tour: run one RRM workload with every output of the
 * obs layer enabled at once —
 *
 *  - a JSONL trace of RRM lifecycle / refresh / queue events,
 *  - a Chrome-trace/Perfetto timeline of the same stream (channel
 *    busy spans, queue counters, decay epochs, lifecycle instants)
 *    to drop into ui.perfetto.dev,
 *  - a CSV time series sampled every RRM decay epoch (0.125 scaled
 *    seconds): hot entries, write-mode mix, queue occupancies,
 *  - hot-path telemetry (event-latency/queue-depth histograms) as a
 *    separate JSON stats tree,
 *  - the full run record (metadata + config + results + stats +
 *    wall-clock profile) as pretty-printed JSON,
 *
 * then print a short digest of each file so the demo is useful even
 * without opening them.
 *
 * Usage: observability_demo [workload] [window_ms] [outdir]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "system/system.hh"

using namespace rrm;

namespace
{

std::uint64_t
countLines(const std::string &path)
{
    std::ifstream is(path);
    std::uint64_t n = 0;
    std::string line;
    while (std::getline(is, line))
        ++n;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const double window_ms = argc > 2 ? std::atof(argv[2]) : 10.0;
    const std::string outdir = argc > 3 ? argv[3] : ".";

    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName(name);
    cfg.scheme = sys::Scheme::rrmScheme();
    cfg.windowSeconds = window_ms / 1000.0;

    const std::string stem = outdir + "/obs_demo";
    cfg.obs.traceFile = stem + ".trace.jsonl";
    cfg.obs.perfettoFile = stem + ".perfetto.json";
    cfg.obs.sampleCsvFile = stem + ".samples.csv";
    cfg.obs.runRecordFile = stem + ".run.json";
    cfg.obs.telemetryJsonFile = stem + ".telemetry.json";
    cfg.obs.profiling = true;

    std::printf("running %s under RRM for %.1f ms with tracing, "
                "sampling, and profiling on...\n\n",
                cfg.workload.name.c_str(), window_ms);

    sys::System system(std::move(cfg));
    const sys::SimResults r = system.run();

    std::printf("results: IPC %.3f, fast-write fraction %.1f%%, "
                "lifetime %.2f years\n\n",
                r.aggregateIpc, 100.0 * r.fastWriteFraction(),
                r.lifetimeYears);

    const obs::TraceSink *sink = system.traceSink();
    std::printf("%s: %llu trace events (%llu dropped)\n",
                (stem + ".trace.jsonl").c_str(),
                (unsigned long long)(sink ? sink->recorded() : 0),
                (unsigned long long)(sink ? sink->dropped() : 0));

    std::printf("%s: %llu lines of Perfetto timeline "
                "(open in ui.perfetto.dev)\n",
                (stem + ".perfetto.json").c_str(),
                (unsigned long long)countLines(stem +
                                               ".perfetto.json"));

    std::printf("%s: %llu lines of telemetry histograms\n",
                (stem + ".telemetry.json").c_str(),
                (unsigned long long)countLines(stem +
                                               ".telemetry.json"));

    const obs::Sampler *sampler = system.sampler();
    std::printf("%s: %zu samples x %zu columns, every %.3f scaled ms\n",
                (stem + ".samples.csv").c_str(),
                sampler ? sampler->rows().size() : 0,
                sampler ? sampler->columnNames().size() : 0,
                sampler ? ticksToSeconds(sampler->interval()) * 1e3
                        : 0.0);

    std::printf("%s: %llu lines of run record\n\n",
                (stem + ".run.json").c_str(),
                (unsigned long long)countLines(stem + ".run.json"));

    if (const obs::Profiler *prof = system.selfProfiler()) {
        std::printf("wall-clock profile:\n");
        prof->report(std::cout);
    }
    return 0;
}
