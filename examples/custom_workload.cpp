/**
 * @file
 * Build a custom workload from scratch — a key-value-store-like
 * mixture that is not part of the paper's SPEC set — and evaluate how
 * the RRM balances it against the static schemes, with full timing.
 * Demonstrates the custom-profile seam of the public API.
 *
 * Usage: custom_workload [window_ms]
 */

#include <cstdio>
#include <cstdlib>

#include "system/system.hh"

using namespace rrm;

namespace
{

/** A synthetic "key-value store": hot log + index + big cold heap. */
trace::BenchmarkProfile
kvStoreProfile()
{
    using Kind = trace::PatternSpec::Kind;

    // Append log: streaming writes. The RRM's dirty-write filter
    // should keep these in slow/long-retention mode.
    trace::PatternSpec log{};
    log.kind = Kind::Stride;
    log.weight = 0.20;
    log.footprintBytes = 256_MiB;
    log.writeFraction = 0.9;
    log.strideBytes = 64;

    // Index pages: heavily rewritten working set (the RRM's target).
    trace::PatternSpec index{};
    index.kind = Kind::ZipfRegion;
    index.weight = 0.50;
    index.footprintBytes = 2_MiB;
    index.writeFraction = 0.6;
    index.zipfSkew = 0.4;
    index.maxBurstBlocks = 32;

    // Value heap: large, read-mostly, random.
    trace::PatternSpec heap{};
    heap.kind = Kind::Chase;
    heap.weight = 0.30;
    heap.footprintBytes = 1_GiB;
    heap.writeFraction = 0.08;

    return trace::BenchmarkProfile{
        "kvstore", 60.0, 0.0, {log, index, heap}};
}

} // namespace

int
main(int argc, char **argv)
{
    const double window =
        (argc > 1 ? std::atof(argv[1]) : 60.0) / 1e3;

    // The profile must outlive every System built from it.
    static const trace::BenchmarkProfile profile = kvStoreProfile();

    std::printf("custom 'kvstore' workload: %llu MB footprint, "
                "%.0f line-touches/kinstr, %.0f ms window\n\n",
                static_cast<unsigned long long>(
                    profile.footprintBytes() / 1_MiB),
                profile.memOpsPerKiloInstr, window * 1e3);

    std::printf("%-15s %10s %8s %12s %12s %12s\n", "scheme", "IPC",
                "MPKI", "life (yr)", "fast frac", "power (W)");

    for (const auto &scheme :
         {sys::Scheme::staticScheme(pcm::WriteMode::Sets7),
          sys::Scheme::staticScheme(pcm::WriteMode::Sets3),
          sys::Scheme::rrmScheme()}) {
        sys::SystemConfig cfg;
        // The workload's name labels the run; its per-core benchmark
        // assignments are overridden by customProfiles below.
        cfg.workload =
            trace::singleWorkload(trace::Benchmark::GemsFDTD);
        cfg.workload.name = "kvstore";
        cfg.customProfiles = {&profile, &profile, &profile, &profile};
        cfg.scheme = scheme;
        cfg.windowSeconds = window;

        sys::System system(std::move(cfg));
        const sys::SimResults r = system.run();
        std::printf("%-15s %10.3f %8.2f %12.3f %11.1f%% %12.3f\n",
                    r.scheme.c_str(), r.aggregateIpc, r.mpki,
                    r.lifetimeYears,
                    100.0 * r.fastWriteFraction(), r.totalPower());
    }

    std::printf(
        "\nThe RRM should speed up the index-page writes (high "
        "temporal write locality) while the append log stays in "
        "slow/long-retention mode and the array keeps most of the "
        "Static-7 lifetime.\n");
    return 0;
}
