/**
 * @file
 * Quickstart: build a 4-core MLC PCM system, run one workload under
 * Static-7-SETs, Static-3-SETs, and RRM, and print the
 * performance/lifetime balance the paper is about.
 *
 * Usage: quickstart [workload] [window_ms]
 *   workload   one of the Table VII names (default GemsFDTD)
 *   window_ms  simulated window in milliseconds (default 10)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/system.hh"

using namespace rrm;

namespace
{

sys::SimResults
runScheme(const trace::Workload &workload, const sys::Scheme &scheme,
          double window_seconds)
{
    sys::SystemConfig cfg;
    cfg.workload = workload;
    cfg.scheme = scheme;
    cfg.windowSeconds = window_seconds;
    if (const char *ts = std::getenv("RRM_TIME_SCALE"))
        cfg.timeScale = std::atof(ts);
    sys::System system(std::move(cfg));
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const double window_ms = argc > 2 ? std::atof(argv[2]) : 10.0;

    const trace::Workload workload = trace::workloadFromName(name);

    const char *ts_env = std::getenv("RRM_TIME_SCALE");
    std::printf("workload: %s, window: %.1f ms (time scale %sx)\n\n",
                workload.name.c_str(), window_ms,
                ts_env ? ts_env : "50");
    std::printf("%-15s %10s %8s %12s %14s %10s\n", "scheme", "IPC",
                "MPKI", "mem writes", "wear (wr/s)", "life (yr)");

    for (const auto &scheme :
         {sys::Scheme::staticScheme(pcm::WriteMode::Sets7),
          sys::Scheme::staticScheme(pcm::WriteMode::Sets3),
          sys::Scheme::rrmScheme()}) {
        const auto r =
            runScheme(workload, scheme, window_ms / 1000.0);
        std::printf("%-15s %10.3f %8.2f %12llu %14.3g %10.2f\n",
                    r.scheme.c_str(), r.aggregateIpc, r.mpki,
                    static_cast<unsigned long long>(r.demandWrites),
                    r.totalWearRate(), r.lifetimeYears);
        if (r.scheme == "RRM") {
            std::printf("  [rrm] fast-write fraction %.1f%%, "
                        "promotions %llu, demotions %llu, hot@end %llu, "
                        "fast refreshes %llu\n",
                        100.0 * r.fastWriteFraction(),
                        (unsigned long long)r.rrmPromotions,
                        (unsigned long long)r.rrmDemotions,
                        (unsigned long long)r.rrmHotEntriesAtEnd,
                        (unsigned long long)r.rrmFastRefreshes);
            std::printf("  [rrm] registrations %llu (clean-filtered "
                        "%llu, hits %llu), allocs %llu, evictions %llu\n",
                        (unsigned long long)r.rrmRegistrations,
                        (unsigned long long)r.rrmCleanFiltered,
                        (unsigned long long)r.rrmRegistrationHits,
                        (unsigned long long)r.rrmAllocations,
                        (unsigned long long)r.rrmEvictions);
        }
    }
    return 0;
}
