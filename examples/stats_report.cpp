/**
 * @file
 * Dump the full hierarchical statistics of one simulation run —
 * caches, memory channels, RRM, cores, and system counters — in the
 * gem5-style text format of the stats package. Useful for digging
 * below the SimResults summary when analyzing a configuration.
 *
 * Usage: stats_report [workload] [scheme] [window_ms]
 *   scheme: rrm (default) | adaptive-rrm | static-3 .. static-7
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "system/system.hh"

using namespace rrm;

namespace
{

sys::Scheme
schemeFromName(std::string name)
{
    // Accept the short static-N form alongside the canonical
    // (case-insensitive) scheme names known to parseScheme.
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.rfind("static-", 0) == 0 &&
        lower.find("sets") == std::string::npos) {
        name += "-SETs";
    }
    return sys::parseScheme(name);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "GemsFDTD";
    const std::string scheme = argc > 2 ? argv[2] : "rrm";
    const double window =
        (argc > 3 ? std::atof(argv[3]) : 30.0) / 1e3;

    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName(workload);
    cfg.scheme = schemeFromName(scheme);
    cfg.windowSeconds = window;

    sys::System system(std::move(cfg));
    const sys::SimResults r = system.run();

    std::printf("---------- summary ----------\n");
    std::printf("workload %s, scheme %s, window %.1f ms "
                "(time scale %.0fx)\n",
                r.workload.c_str(), r.scheme.c_str(),
                r.windowSeconds * 1e3, r.timeScale);
    std::printf("aggregate IPC %.3f | MPKI %.2f | lifetime %.2f y | "
                "power %.3f W\n\n",
                r.aggregateIpc, r.mpki, r.lifetimeYears,
                r.totalPower());

    std::printf("---------- full statistics ----------\n");
    system.statRoot().dump(std::cout);
    return 0;
}
