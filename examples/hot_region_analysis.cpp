/**
 * @file
 * Region write-behaviour analysis (paper Section III-C / Table III).
 *
 * Runs a workload under the Static-7-SETs baseline with the region
 * write profiler enabled and reports:
 *  - realized LLC MPKI against the paper's Table VII target,
 *  - the write-interval histogram over 4 KB regions (Table III),
 *  - the hot-region concentration ("~2% of regions get ~97% of
 *    writes") that motivates the RRM.
 *
 * Usage: hot_region_analysis [workload|all] [window_ms]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "system/system.hh"

using namespace rrm;

namespace
{

void
analyze(const trace::Workload &workload, double window_seconds)
{
    sys::SystemConfig cfg;
    cfg.workload = workload;
    cfg.scheme = sys::Scheme::staticScheme(pcm::WriteMode::Sets7);
    cfg.windowSeconds = window_seconds;
    cfg.profileRegionWrites = true;

    sys::System system(std::move(cfg));
    const auto r = system.run();
    const auto *prof = system.regionProfiler();

    double target_mpki = 0.0;
    for (unsigned c = 0; c < trace::workloadCores; ++c)
        target_mpki += trace::benchmarkProfile(workload.perCore[c])
                           .tableMpki;
    target_mpki /= trace::workloadCores;

    std::printf("== %s ==\n", workload.name.c_str());
    std::printf("  IPC (aggregate)      : %8.3f\n", r.aggregateIpc);
    std::printf("  LLC MPKI             : %8.2f  (Table VII: %.2f)\n",
                r.mpki, target_mpki);
    std::printf("  mem reads / writes   : %8llu / %llu\n",
                static_cast<unsigned long long>(r.memReads),
                static_cast<unsigned long long>(r.demandWrites));
    std::printf("  demand write rate    : %8.3g writes/s\n",
                r.demandWriteRate);

    // Table III analogue: regions classified by mean write interval.
    // Bucket boundaries are the paper's (1e6..1e9 ns, 1 s, 2 s rows)
    // divided by the time scale.
    const auto buckets = prof->regionsByMeanInterval();
    static const char *labels[] = {
        "< 1e6/S ns", "1e6-1e7 /S", "1e7-1e8 /S",
        "1e8-1e9 /S", "1e9-2e9 /S", ">= 2e9/S",
    };
    std::printf("  -- region write-interval distribution "
                "(S = time scale) --\n");
    std::printf("  %-12s %10s %8s %12s %8s\n", "interval", "#regions",
                "%regions", "#writes", "%writes");
    const double total_regions =
        static_cast<double>(prof->totalRegions());
    const double total_writes =
        static_cast<double>(prof->totalWrites());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        std::printf("  %-12s %10llu %7.2f%% %12llu %7.2f%%\n",
                    labels[i],
                    static_cast<unsigned long long>(buckets[i].regions),
                    100.0 * buckets[i].regions / total_regions,
                    static_cast<unsigned long long>(buckets[i].writes),
                    total_writes > 0
                        ? 100.0 * buckets[i].writes / total_writes
                        : 0.0);
    }
    std::printf("  %-12s %10llu %7.2f%%\n", "written once",
                static_cast<unsigned long long>(
                    prof->writtenOnceRegions()),
                100.0 * prof->writtenOnceRegions() / total_regions);
    std::printf("  %-12s %10llu %7.2f%%\n", "never",
                static_cast<unsigned long long>(
                    prof->neverWrittenRegions()),
                100.0 * prof->neverWrittenRegions() / total_regions);
    std::printf("  hot concentration    : %.2f%% of all regions absorb "
                "90%% of writes\n\n",
                100.0 * prof->hotRegionFraction(0.90));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "GemsFDTD";
    const double window_ms = argc > 2 ? std::atof(argv[2]) : 10.0;

    std::vector<trace::Workload> workloads;
    if (which == "all") {
        workloads = trace::standardWorkloads();
    } else {
        workloads.push_back(trace::workloadFromName(which));
    }
    for (const auto &w : workloads)
        analyze(w, window_ms / 1000.0);
    return 0;
}
