/**
 * @file
 * Reproduces paper Figure 13 (Section VI-F): Retention Region (entry
 * coverage) size sweep at fixed 4x LLC coverage. Entry sizes 2/4/8/16
 * KB vary the short_retention_vector width (32..256 bits); set count
 * adjusts to hold total coverage at 24 MB.
 *
 * Paper shape: 2 KB entries are notably worse (regions struggle to
 * accumulate hot_threshold dirty writes); 4/8/16 KB are similar, and
 * 4 KB is preferred because it matches the OS page size.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();
    const std::uint64_t sizes[] = {2_KiB, 4_KiB, 8_KiB, 16_KiB};

    const auto idFor = [](const trace::Workload &w, std::uint64_t region) {
        return w.name + ".rrm-entry" + std::to_string(region / 1024) +
               "K";
    };

    bench::PlanBuilder plan(opts);
    for (const auto &workload : workloads) {
        for (std::uint64_t region : sizes) {
            plan.run(workload, sys::Scheme::rrmScheme())
                .tag(idFor(workload, region))
                .with([region](sys::SystemConfig &cfg) {
                    cfg.rrm.regionBytes = region;
                    // Hold 24 MB total coverage: sets scale
                    // inversely with the entry size.
                    cfg.rrm.numSets = static_cast<unsigned>(
                        24_MiB / (region * cfg.rrm.assoc));
                });
        }
    }
    const run::RunReport report = plan.execute();

    bench::printTitle(
        "Figure 13: sensitivity to the entry coverage size of RRM");
    std::printf("%-12s %10s %14s %14s %12s\n", "workload", "entry",
                "IPC", "lifetime (y)", "fast frac");

    std::vector<double> ipc_geo(4, 1.0), life_geo(4, 1.0);
    for (const auto &workload : workloads) {
        for (std::size_t i = 0; i < 4; ++i) {
            const auto &r =
                report.find(idFor(workload, sizes[i]))->results;
            ipc_geo[i] *= r.aggregateIpc;
            life_geo[i] *= r.lifetimeYears;
            std::printf("%-12s %8llu K %14.3f %14.3f %11.1f%%\n",
                        i == 0 ? workload.name.c_str() : "",
                        static_cast<unsigned long long>(sizes[i] / 1024),
                        r.aggregateIpc, r.lifetimeYears,
                        100.0 * r.fastWriteFraction());
        }
    }
    bench::printRule();
    const double n = static_cast<double>(workloads.size());
    for (std::size_t i = 0; i < 4; ++i) {
        std::printf("geomean %2llu KB entries: IPC %.3f, lifetime "
                    "%.3f y\n",
                    static_cast<unsigned long long>(sizes[i] / 1024),
                    std::pow(ipc_geo[i], 1.0 / n),
                    std::pow(life_geo[i], 1.0 / n));
    }
    std::printf(
        "paper shape: 2 KB worse than the rest; 4/8/16 KB similar "
        "(4 KB chosen to match the OS page size).\n");
    return 0;
}
