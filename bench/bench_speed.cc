/**
 * @file
 * Simulator-throughput benchmark: runs the selected workloads under a
 * representative scheme pair (Static-7-SETs and RRM) and reports host
 * throughput — events executed, wall seconds, events per host second —
 * per run and for the whole plan, as BENCH_speed.json (see
 * run/speed_report.hh for the schema). tools/bench-diff compares two
 * such reports and fails on regression; CI runs that comparison
 * against bench/baselines/BENCH_speed.baseline.json.
 *
 * Unlike the paper-reproduction benches this measures the simulator
 * itself, not any paper metric. Under SOURCE_DATE_EPOCH all wall
 * metrics are pinned to 0, which makes the report byte-identical
 * across --jobs values (exercised by the determinism tests).
 */

#include <cstdio>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "bench_common.hh"
#include "run/speed_report.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();
    const std::vector<sys::Scheme> schemes = {
        sys::Scheme::staticScheme(pcm::WriteMode::Sets7),
        sys::Scheme::rrmScheme(),
    };

    bench::PlanBuilder builder(opts);
    const run::RunReport report =
        builder.matrix(workloads, schemes).execute();

    bench::printTitle("Simulator throughput (host-side)");
    std::printf("%-28s %14s %10s %12s\n", "run", "events", "wall s",
                "Mev/s");
    for (const auto &run : report.runs) {
        std::printf("%-28s %14llu %10.3f %12.3f\n", run.id.c_str(),
                    static_cast<unsigned long long>(run.eventsExecuted),
                    run.wallSeconds, run.eventsPerSecond / 1e6);
    }
    bench::printRule();

    const std::string out =
        opts.jsonOut.empty() ? "BENCH_speed.json" : opts.jsonOut;
    AtomicFile file(out);
    run::writeSpeedReport(file.stream(), "speed", report);
    file.commit();
    std::fprintf(stderr, "speed report: %s\n", out.c_str());
    return 0;
}
