/**
 * @file
 * Bench infrastructure implementation.
 */

#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "obs/run_record.hh"

namespace rrm::bench
{

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--quick") {
            opts.windowSeconds = 0.008;
        } else if (arg == "--window-ms") {
            opts.windowSeconds = std::atof(next_value().c_str()) / 1e3;
        } else if (arg == "--scale") {
            opts.timeScale = std::atof(next_value().c_str());
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(next_value().c_str(), nullptr, 10);
        } else if (arg == "--workloads") {
            std::stringstream ss(next_value());
            std::string name;
            while (std::getline(ss, name, ','))
                opts.workloads.push_back(name);
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--stats-json") {
            opts.statsJsonStem = next_value();
        } else if (arg == "--sample-csv") {
            opts.sampleCsvStem = next_value();
        } else if (arg == "--trace-jsonl") {
            opts.traceJsonlStem = next_value();
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--json-out") {
            opts.jsonOut = next_value();
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "flags: --quick | --window-ms F | --scale F | "
                "--seed N | --workloads a,b,c | --verbose | "
                "--stats-json STEM | --sample-csv STEM | "
                "--trace-jsonl STEM | --profile | --json-out F\n");
            std::exit(0);
        } else {
            fatal("unknown flag '", arg, "'");
        }
    }
    return opts;
}

std::vector<trace::Workload>
BenchOptions::selectedWorkloads() const
{
    if (workloads.empty())
        return trace::standardWorkloads();
    std::vector<trace::Workload> out;
    for (const auto &name : workloads)
        out.push_back(trace::workloadFromName(name));
    return out;
}

sys::SystemConfig
makeConfig(const trace::Workload &workload, const sys::Scheme &scheme,
           const BenchOptions &opts, const ConfigHook &hook)
{
    sys::SystemConfig cfg;
    cfg.workload = workload;
    cfg.scheme = scheme;
    cfg.windowSeconds = opts.windowSeconds;
    cfg.timeScale = opts.timeScale;
    cfg.warmupFraction = opts.warmupFraction;
    cfg.seed = opts.seed;

    const std::string run_tag = workload.name + "." + scheme.name();
    if (!opts.statsJsonStem.empty())
        cfg.obs.runRecordFile = opts.statsJsonStem + "." + run_tag + ".json";
    if (!opts.sampleCsvStem.empty())
        cfg.obs.sampleCsvFile = opts.sampleCsvStem + "." + run_tag + ".csv";
    if (!opts.traceJsonlStem.empty())
        cfg.obs.traceFile = opts.traceJsonlStem + "." + run_tag + ".jsonl";
    cfg.obs.profiling = opts.profile;

    if (hook)
        hook(cfg);
    return cfg;
}

sys::SimResults
runOne(const trace::Workload &workload, const sys::Scheme &scheme,
       const BenchOptions &opts, const ConfigHook &hook)
{
    if (opts.verbose) {
        std::fprintf(stderr, "  running %-12s %s ...\n",
                     workload.name.c_str(), scheme.name().c_str());
    }
    sys::System system(makeConfig(workload, scheme, opts, hook));
    return system.run();
}

std::vector<std::vector<sys::SimResults>>
runMatrix(const std::vector<trace::Workload> &workloads,
          const std::vector<sys::Scheme> &schemes,
          const BenchOptions &opts, const ConfigHook &hook)
{
    std::vector<std::vector<sys::SimResults>> results;
    for (const auto &w : workloads) {
        std::vector<sys::SimResults> row;
        for (const auto &s : schemes)
            row.push_back(runOne(w, s, opts, hook));
        results.push_back(std::move(row));
    }
    return results;
}

double
geomeanOver(const std::vector<sys::SimResults> &results,
            const std::function<double(const sys::SimResults &)> &metric)
{
    std::vector<double> values;
    values.reserve(results.size());
    for (const auto &r : results)
        values.push_back(metric(r));
    return geomean(values);
}

void
printTitle(const std::string &title)
{
    printRule();
    std::printf("%s\n", title.c_str());
    printRule();
}

void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

void
writeBenchReport(const std::string &path,
                 const std::string &bench_name, const BenchOptions &opts,
                 const std::vector<trace::Workload> &workloads,
                 const std::vector<sys::Scheme> &schemes,
                 const std::vector<std::vector<sys::SimResults>> &results)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open bench report file ", path);

    obs::JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("schemaVersion", benchReportSchemaVersion);
    json.field("bench", bench_name);
    json.key("metadata");
    obs::writeRunMetadata(json, obs::currentRunMetadata());

    json.key("options");
    json.beginObject();
    json.field("windowSeconds", opts.windowSeconds);
    json.field("timeScale", opts.timeScale);
    json.field("warmupFraction", opts.warmupFraction);
    json.field("seed", opts.seed);
    json.endObject();

    json.key("workloads");
    json.beginArray();
    for (const auto &w : workloads)
        json.value(w.name);
    json.endArray();
    json.key("schemes");
    json.beginArray();
    for (const auto &s : schemes)
        json.value(s.name());
    json.endArray();

    json.key("runs");
    json.beginArray();
    for (const auto &row : results)
        for (const auto &r : row)
            r.toJson(json);
    json.endArray();

    json.endObject();
    os << '\n';
}

} // namespace rrm::bench
