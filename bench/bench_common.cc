/**
 * @file
 * Bench infrastructure implementation.
 */

#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "common/math_util.hh"
#include "obs/run_record.hh"

namespace rrm::bench
{

namespace
{

/** One entry of the declarative flag table. */
struct BenchFlag
{
    const char *name;      ///< including the leading dashes
    const char *valueName; ///< metavar of the argument; null = none
    const char *doc;       ///< one-line help text
    /** Apply the flag; `value` is empty for argument-less flags. */
    std::function<void(BenchOptions &, const std::string &value)> apply;
};

/**
 * The flag table: name, argument kind, doc string, and effect, in
 * --help order. Adding a runner/bench flag is one entry here.
 */
const std::vector<BenchFlag> &
benchFlagTable()
{
    static const std::vector<BenchFlag> table = {
        {"--quick", nullptr, "8 ms window (smoke-test the bench)",
         [](BenchOptions &o, const std::string &) {
             o.windowSeconds = 0.008;
         }},
        {"--window-ms", "F", "window length in milliseconds",
         [](BenchOptions &o, const std::string &v) {
             o.windowSeconds = std::atof(v.c_str()) / 1e3;
         }},
        {"--scale", "F", "retention time-scale factor",
         [](BenchOptions &o, const std::string &v) {
             o.timeScale = std::atof(v.c_str());
         }},
        {"--seed", "N", "base RNG seed of every run",
         [](BenchOptions &o, const std::string &v) {
             o.seed = std::strtoull(v.c_str(), nullptr, 10);
         }},
        {"--workloads", "a,b,c", "subset of Table VII names",
         [](BenchOptions &o, const std::string &v) {
             std::stringstream ss(v);
             std::string name;
             while (std::getline(ss, name, ','))
                 o.workloads.push_back(name);
         }},
        {"--mix", "SPEC",
         "N-core mix spec, e.g. zeusmp,lbm,lbm,milc:2 (repeatable)",
         [](BenchOptions &o, const std::string &v) {
             o.mixes.push_back(v);
         }},
        {"--tenants", "IDS",
         "tenant id per core of the matching --mix, e.g. 0,0,1,1",
         [](BenchOptions &o, const std::string &v) {
             o.tenants.push_back(v);
         }},
        {"--schemes", "a,b,c", "subset of scheme names",
         [](BenchOptions &o, const std::string &v) {
             std::stringstream ss(v);
             std::string name;
             while (std::getline(ss, name, ','))
                 o.schemes.push_back(name);
         }},
        {"--jobs", "N",
         "worker threads (0 = hardware concurrency, 1 = serial)",
         [](BenchOptions &o, const std::string &v) {
             o.jobs = static_cast<unsigned>(
                 std::strtoul(v.c_str(), nullptr, 10));
         }},
        {"--fail-fast", nullptr,
         "cancel queued runs after the first failure",
         [](BenchOptions &o, const std::string &) {
             o.failFast = true;
         }},
        {"--verbose", nullptr, "per-run progress lines on stderr",
         [](BenchOptions &o, const std::string &) {
             o.verbose = true;
         }},
        {"--stats-json", "STEM",
         "per-run run-record JSON files STEM.<run>.json",
         [](BenchOptions &o, const std::string &v) {
             o.statsJsonStem = v;
         }},
        {"--sample-csv", "STEM",
         "per-run sampled time series STEM.<run>.csv",
         [](BenchOptions &o, const std::string &v) {
             o.sampleCsvStem = v;
         }},
        {"--trace-jsonl", "STEM",
         "per-run JSONL trace files STEM.<run>.jsonl",
         [](BenchOptions &o, const std::string &v) {
             o.traceJsonlStem = v;
         }},
        {"--perfetto-out", "STEM",
         "per-run Perfetto timelines STEM.<run>.perfetto.json",
         [](BenchOptions &o, const std::string &v) {
             o.perfettoStem = v;
         }},
        {"--telemetry", "STEM",
         "per-run telemetry stats STEM.<run>.telemetry.json",
         [](BenchOptions &o, const std::string &v) {
             o.telemetryStem = v;
         }},
        {"--profile", nullptr,
         "wall-clock self-profiling in run records",
         [](BenchOptions &o, const std::string &) {
             o.profile = true;
         }},
        {"--progress", nullptr,
         "throughput/ETA heartbeat lines on stderr",
         [](BenchOptions &o, const std::string &) {
             o.progress = true;
         }},
        {"--json-out", "F", "bench-report path (benches that emit one)",
         [](BenchOptions &o, const std::string &v) { o.jsonOut = v; }},
        {"--timeout", "F", "per-run wall-clock budget in seconds",
         [](BenchOptions &o, const std::string &v) {
             o.timeoutSeconds = std::atof(v.c_str());
         }},
        {"--retries", "N", "re-attempts after a failed/timed-out run",
         [](BenchOptions &o, const std::string &v) {
             o.retries = static_cast<unsigned>(
                 std::strtoul(v.c_str(), nullptr, 10));
         }},
        {"--checkpoint-every", "N",
         "publish a checkpoint every N decay epochs (0 = off)",
         [](BenchOptions &o, const std::string &v) {
             o.checkpointEveryEpochs =
                 std::strtoull(v.c_str(), nullptr, 10);
         }},
        {"--checkpoint-dir", "DIR",
         "root directory for per-run checkpoint subdirectories",
         [](BenchOptions &o, const std::string &v) {
             o.checkpointDir = v;
         }},
        {"--resume", nullptr,
         "resume each run from its newest valid checkpoint",
         [](BenchOptions &o, const std::string &) {
             o.resume = true;
         }},
        {"--fault-retention", nullptr,
         "track retention deadlines of short-retention writes",
         [](BenchOptions &o, const std::string &) {
             o.fault.retentionTracking = true;
         }},
        {"--fault-strict", nullptr,
         "treat a retention violation as a check failure",
         [](BenchOptions &o, const std::string &) {
             o.fault.strict = true;
         }},
        {"--fault-rate", "F", "transient write-failure probability",
         [](BenchOptions &o, const std::string &v) {
             o.fault.transientWriteFailureRate = std::atof(v.c_str());
         }},
        {"--fault-seed", "N", "fault-injector RNG seed",
         [](BenchOptions &o, const std::string &v) {
             o.fault.seed = std::strtoull(v.c_str(), nullptr, 10);
         }},
        {"--fault-wear-threshold", "N",
         "region write count per stuck-at fault chance (0 = off)",
         [](BenchOptions &o, const std::string &v) {
             o.fault.stuckAtWearThreshold =
                 std::strtoull(v.c_str(), nullptr, 10);
         }},
        {"--fault-stall-ms", "F",
         "periodic refresh-queue stall length in milliseconds",
         [](BenchOptions &o, const std::string &v) {
             o.fault.refreshStallSeconds = std::atof(v.c_str()) / 1e3;
         }},
        {"--fault-stall-period-ms", "F",
         "refresh-stall period in milliseconds (0 = 4x length)",
         [](BenchOptions &o, const std::string &v) {
             o.fault.refreshStallPeriodSeconds =
                 std::atof(v.c_str()) / 1e3;
         }},
        {"--trace-cache", nullptr,
         "materialize instruction streams in memory and reuse them",
         [](BenchOptions &o, const std::string &) {
             o.traceMode = trace::TraceMode::Materialized;
         }},
        {"--no-trace-cache", nullptr,
         "generate instruction streams inline (per-record RNG)",
         [](BenchOptions &o, const std::string &) {
             o.traceMode = trace::TraceMode::Generate;
         }},
        {"--trace-packs", "DIR",
         "replay .rtp packs from DIR (see tools/trace-pack)",
         [](BenchOptions &o, const std::string &v) {
             o.traceMode = trace::TraceMode::Pack;
             o.tracePackDir = v;
         }},
        {"--delay-queues", nullptr,
         "deliver fixed-latency hops via DelayQueues",
         [](BenchOptions &o, const std::string &) {
             o.delayQueues = true;
         }},
    };
    return table;
}

/** Print the --help text generated from the flag table. */
void
printFlagHelp()
{
    std::printf("flags:\n");
    for (const BenchFlag &flag : benchFlagTable()) {
        std::string usage = flag.name;
        if (flag.valueName)
            usage += std::string(" ") + flag.valueName;
        std::printf("  %-22s %s\n", usage.c_str(), flag.doc);
    }
    std::printf("  %-22s %s\n", "--help, -h", "this text");
}

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    return parse(argc, argv, BenchOptions{});
}

BenchOptions
BenchOptions::parse(int argc, char **argv, const BenchOptions &defaults)
{
    BenchOptions opts = defaults;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printFlagHelp();
            std::exit(0);
        }
        const BenchFlag *match = nullptr;
        for (const BenchFlag &flag : benchFlagTable()) {
            if (arg == flag.name) {
                match = &flag;
                break;
            }
        }
        if (!match)
            fatal("unknown flag '", arg, "' (see --help)");
        std::string value;
        if (match->valueName) {
            if (i + 1 >= argc)
                fatal("flag ", arg, " needs a value");
            value = argv[++i];
        }
        match->apply(opts, value);
    }
    return opts;
}

std::vector<trace::Workload>
BenchOptions::selectedWorkloads() const
{
    if (tenants.size() > mixes.size()) {
        fatal("--tenants given ", tenants.size(),
              " time(s) but --mix only ", mixes.size(),
              " time(s); each --tenants pairs with one --mix");
    }
    std::vector<trace::Workload> out;
    for (const auto &name : workloads)
        out.push_back(trace::workloadFromName(name));
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        out.push_back(trace::workloadFromSpec(
            mixes[i], i < tenants.size() ? tenants[i] : ""));
    }
    if (out.empty())
        return trace::standardWorkloads();
    return out;
}

std::vector<sys::Scheme>
BenchOptions::selectedSchemes(
    const std::vector<sys::Scheme> &defaults) const
{
    if (schemes.empty())
        return defaults;
    std::vector<sys::Scheme> out;
    for (const auto &name : schemes)
        out.push_back(sys::parseScheme(name));
    return out;
}

run::RunnerOptions
BenchOptions::runnerOptions() const
{
    run::RunnerOptions ro;
    ro.jobs = jobs;
    ro.failFast = failFast;
    ro.verbose = verbose;
    ro.timeoutSeconds = timeoutSeconds;
    ro.retries = retries;
    if (progress) {
        ro.onProgress = [](const run::RunProgress &p) {
            std::fprintf(stderr,
                         "progress: %zu/%zu runs done, last %.2f Mev/s"
                         " (%.2f s), eta %.1f s\n",
                         p.finished, p.total, p.eventsPerSecond / 1e6,
                         p.runSeconds, p.etaSeconds);
        };
    }
    return ro;
}

trace::TraceCache &
globalTraceCache()
{
    static trace::TraceCache cache;
    return cache;
}

PlanBuilder &
PlanBuilder::run(const trace::Workload &workload,
                 const sys::Scheme &scheme)
{
    flush();
    pendingActive_ = true;
    pendingWorkload_ = workload;
    pendingScheme_ = scheme;
    pendingId_.clear();
    pendingHooks_.clear();
    pendingPostRun_ = nullptr;
    return *this;
}

PlanBuilder &
PlanBuilder::tag(std::string id)
{
    RRM_ASSERT(pendingActive_, "PlanBuilder::tag() without run()");
    pendingId_ = std::move(id);
    return *this;
}

PlanBuilder &
PlanBuilder::with(ConfigHook hook)
{
    RRM_ASSERT(pendingActive_, "PlanBuilder::with() without run()");
    pendingHooks_.push_back(std::move(hook));
    return *this;
}

PlanBuilder &
PlanBuilder::postRun(run::PostRunHook hook)
{
    RRM_ASSERT(pendingActive_, "PlanBuilder::postRun() without run()");
    pendingPostRun_ = std::move(hook);
    return *this;
}

PlanBuilder &
PlanBuilder::matrix(const std::vector<trace::Workload> &workloads,
                    const std::vector<sys::Scheme> &schemes,
                    const ConfigHook &hook)
{
    for (const auto &w : workloads)
        for (const auto &s : schemes) {
            run(w, s);
            if (hook)
                with(hook);
        }
    return *this;
}

void
PlanBuilder::flush()
{
    if (!pendingActive_)
        return;
    pendingActive_ = false;
    auto hooks = std::move(pendingHooks_);
    const ConfigHook combined = hooks.empty()
        ? ConfigHook{}
        : [hooks](sys::SystemConfig &cfg) {
              for (const auto &h : hooks)
                  h(cfg);
          };
    run::RunSpec &spec =
        plan_.add(makeConfig(pendingWorkload_, *pendingScheme_, opts_,
                             combined, pendingId_),
                  pendingId_);
    spec.postRun = std::move(pendingPostRun_);
}

run::RunPlan
PlanBuilder::build()
{
    flush();
    return std::move(plan_);
}

run::RunReport
PlanBuilder::execute()
{
    return runPlan(build(), opts_);
}

sys::SystemConfig
makeConfig(const trace::Workload &workload, const sys::Scheme &scheme,
           const BenchOptions &opts, const ConfigHook &hook,
           const std::string &tag)
{
    sys::SystemConfig cfg;
    cfg.workload = workload;
    // Size the private-cache tier to the mix: 1-core solo companions
    // and 8-core mixes get exactly as many cores as the workload
    // names (canned 4-core workloads keep the default hierarchy).
    cfg.hierarchy.numCores = static_cast<unsigned>(workload.numCores());
    cfg.scheme = scheme;
    cfg.windowSeconds = opts.windowSeconds;
    cfg.timeScale = opts.timeScale;
    cfg.warmupFraction = opts.warmupFraction;
    cfg.seed = opts.seed;
    cfg.fault = opts.fault;
    cfg.traceMode = opts.traceMode;
    if (cfg.traceMode == trace::TraceMode::Materialized)
        cfg.traceCache = &globalTraceCache();
    cfg.tracePackDir = opts.tracePackDir;
    cfg.useDelayQueues = opts.delayQueues;

    const std::string run_tag =
        tag.empty() ? workload.name + "." + scheme.name() : tag;
    if (opts.checkpointEveryEpochs > 0 && !opts.checkpointDir.empty()) {
        // Each run owns a subdirectory: sibling runs of one plan
        // must not see each other's .rckpt files.
        cfg.checkpointEveryEpochs = opts.checkpointEveryEpochs;
        cfg.checkpointDir = opts.checkpointDir + "/" + run_tag;
        cfg.resumeFromCheckpoint = opts.resume;
        std::error_code ec;
        std::filesystem::create_directories(cfg.checkpointDir, ec);
        if (ec) {
            fatal("cannot create checkpoint directory ",
                  cfg.checkpointDir, ": ", ec.message());
        }
    }
    if (!opts.statsJsonStem.empty())
        cfg.obs.runRecordFile = opts.statsJsonStem + "." + run_tag + ".json";
    if (!opts.sampleCsvStem.empty())
        cfg.obs.sampleCsvFile = opts.sampleCsvStem + "." + run_tag + ".csv";
    if (!opts.traceJsonlStem.empty())
        cfg.obs.traceFile = opts.traceJsonlStem + "." + run_tag + ".jsonl";
    if (!opts.perfettoStem.empty()) {
        cfg.obs.perfettoFile =
            opts.perfettoStem + "." + run_tag + ".perfetto.json";
    }
    if (!opts.telemetryStem.empty()) {
        cfg.obs.telemetryJsonFile =
            opts.telemetryStem + "." + run_tag + ".telemetry.json";
    }
    cfg.obs.profiling = opts.profile;

    if (hook)
        hook(cfg);
    return cfg;
}

run::RunPlan
buildMatrixPlan(const std::vector<trace::Workload> &workloads,
                const std::vector<sys::Scheme> &schemes,
                const BenchOptions &opts, const ConfigHook &hook)
{
    PlanBuilder builder(opts);
    return builder.matrix(workloads, schemes, hook).build();
}

run::RunReport
runPlan(const run::RunPlan &plan, const BenchOptions &opts)
{
    // ^C / SIGTERM becomes a graceful pool drain: in-flight runs
    // write their final checkpoints (when configured), the report is
    // completed, and the plan fails with a full summary below.
    installInterruptHandlers();
    const run::Runner runner(opts.runnerOptions());
    const run::RunReport report = runner.execute(plan);

    const std::size_t slowest = report.slowestRunIndex();
    std::fprintf(stderr,
                 "plan: %zu/%zu runs ok on %u worker(s) in %.2f s"
                 " (slowest %s: %.2f s)\n",
                 report.completedCount(), report.runs.size(),
                 report.jobs, report.wallSeconds,
                 slowest == std::string::npos
                     ? "n/a"
                     : report.runs[slowest].id.c_str(),
                 slowest == std::string::npos
                     ? 0.0
                     : report.runs[slowest].wallSeconds);

    if (!report.allOk()) {
        fatal(report.interruptedCount() > 0 ? "run plan interrupted: "
                                            : "run plan failed: ",
              report.failureSummary());
    }
    return report;
}

std::vector<std::vector<sys::SimResults>>
runMatrix(const std::vector<trace::Workload> &workloads,
          const std::vector<sys::Scheme> &schemes,
          const BenchOptions &opts, const ConfigHook &hook)
{
    const run::RunReport report =
        runPlan(buildMatrixPlan(workloads, schemes, opts, hook), opts);
    const std::vector<sys::SimResults> flat = report.okResults();

    std::vector<std::vector<sys::SimResults>> results;
    results.reserve(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        results.emplace_back(flat.begin() + w * schemes.size(),
                             flat.begin() + (w + 1) * schemes.size());
    }
    return results;
}

double
geomeanOver(const std::vector<sys::SimResults> &results,
            const std::function<double(const sys::SimResults &)> &metric)
{
    std::vector<double> values;
    values.reserve(results.size());
    for (const auto &r : results)
        values.push_back(metric(r));
    return geomean(values);
}

void
printTitle(const std::string &title)
{
    printRule();
    std::printf("%s\n", title.c_str());
    printRule();
}

void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

void
writeBenchReport(const std::string &path,
                 const std::string &bench_name, const BenchOptions &opts,
                 const std::vector<trace::Workload> &workloads,
                 const std::vector<sys::Scheme> &schemes,
                 const std::vector<std::vector<sys::SimResults>> &results)
{
    AtomicFile file(path);
    std::ostream &os = file.stream();

    obs::JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("schemaVersion", benchReportSchemaVersion);
    json.field("bench", bench_name);
    json.key("metadata");
    obs::writeRunMetadata(json, obs::currentRunMetadata());

    json.key("options");
    json.beginObject();
    json.field("windowSeconds", opts.windowSeconds);
    json.field("timeScale", opts.timeScale);
    json.field("warmupFraction", opts.warmupFraction);
    json.field("seed", opts.seed);
    json.endObject();

    json.key("workloads");
    json.beginArray();
    for (const auto &w : workloads)
        json.value(w.name);
    json.endArray();
    json.key("schemes");
    json.beginArray();
    for (const auto &s : schemes)
        json.value(s.name());
    json.endArray();

    json.key("runs");
    json.beginArray();
    for (const auto &row : results)
        for (const auto &r : row)
            r.toJson(json);
    json.endArray();

    json.endObject();
    os << '\n';
    file.commit();
}

} // namespace rrm::bench
