/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out:
 *
 *  1. the RRM's dirty-write streaming filter (Section IV-D): without
 *     it, streaming footprints turn hot, ballooning selective-refresh
 *     wear for regions that are written once per pass;
 *  2. write pausing (Table V / Qureshi HPCA'10): without it, reads
 *     queue behind multi-SET write pulse trains;
 *  3. the refresh timing mode of the scaled runs (DESIGN.md section
 *     3): RateCorrected vs Detailed vs CountOnly.
 *
 * Each ablation runs a streaming-heavy and a reuse-heavy workload.
 * All variants go into one RunPlan so --jobs parallelises across the
 * whole study; run ids encode the varied knob.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    if (opts.workloads.empty())
        opts.workloads = {"libquantum", "GemsFDTD"};
    const auto workloads = opts.selectedWorkloads();

    const auto s7 = sys::Scheme::staticScheme(pcm::WriteMode::Sets7);
    const auto rrm_scheme = sys::Scheme::rrmScheme();
    const std::pair<sys::RefreshTimingMode, const char *> modes[] = {
        {sys::RefreshTimingMode::RateCorrected, "rate-corr"},
        {sys::RefreshTimingMode::Detailed, "detailed"},
        {sys::RefreshTimingMode::CountOnly, "count-only"},
    };

    // ---- One plan covering all three ablations ----
    bench::PlanBuilder plan(opts);
    for (const auto &w : workloads) {
        for (bool filter : {true, false}) {
            plan.run(w, rrm_scheme)
                .tag(w.name + ".rrm-filter-" + (filter ? "on" : "off"))
                .with([filter](sys::SystemConfig &cfg) {
                    cfg.rrm.dirtyWriteFilter = filter;
                });
        }
        for (const auto &scheme : {s7, rrm_scheme}) {
            for (bool pausing : {true, false}) {
                plan.run(w, scheme)
                    .tag(w.name + "." + scheme.name() + ".pause-" +
                         (pausing ? "on" : "off"))
                    .with([pausing](sys::SystemConfig &cfg) {
                        cfg.memory.writePausing = pausing;
                    });
            }
        }
        for (const auto &[mode, label] : modes) {
            plan.run(w, rrm_scheme)
                .tag(w.name + ".rrm-rt-" + label)
                .with([mode = mode](sys::SystemConfig &cfg) {
                    cfg.refreshTiming = mode;
                });
        }
    }
    const run::RunReport report = plan.execute();

    // ---- 1. dirty-write filter ----
    bench::printTitle(
        "Ablation 1: RRM dirty-write streaming filter (IV-D)");
    std::printf("%-12s %-10s %10s %12s %12s %14s\n", "workload",
                "filter", "IPC", "fast frac", "life (yr)",
                "rrm rf (wr/s)");
    for (const auto &w : workloads) {
        for (bool filter : {true, false}) {
            const auto &r =
                report
                    .find(w.name + ".rrm-filter-" +
                          (filter ? "on" : "off"))
                    ->results;
            std::printf("%-12s %-10s %10.3f %11.1f%% %12.3f %14.4g\n",
                        filter ? w.name.c_str() : "",
                        filter ? "on" : "off", r.aggregateIpc,
                        100.0 * r.fastWriteFraction(),
                        r.lifetimeYears, r.rrmRefreshRate);
        }
    }
    std::printf("expected: without the filter, streaming workloads "
                "mark far more regions hot -> more fast writes but "
                "more selective-refresh wear (shorter lifetime).\n");

    // ---- 2. write pausing ----
    bench::printTitle("Ablation 2: write pausing (Table V)");
    std::printf("%-12s %-14s %-10s %10s\n", "workload", "scheme",
                "pausing", "IPC");
    for (const auto &w : workloads) {
        for (const auto &scheme : {s7, rrm_scheme}) {
            for (bool pausing : {true, false}) {
                const auto &r =
                    report
                        .find(w.name + "." + scheme.name() +
                              ".pause-" + (pausing ? "on" : "off"))
                        ->results;
                std::printf("%-12s %-14s %-10s %10.3f\n",
                            w.name.c_str(), scheme.name().c_str(),
                            pausing ? "on" : "off", r.aggregateIpc);
            }
        }
    }
    std::printf("expected: pausing recovers read latency lost behind "
                "long pulse trains; the gain grows with slower "
                "writes (Static-7).\n");

    // ---- 3. refresh timing mode ----
    bench::printTitle(
        "Ablation 3: RRM refresh timing under time scaling");
    std::printf("%-12s %-14s %10s %12s\n", "workload", "mode", "IPC",
                "life (yr)");
    for (const auto &w : workloads) {
        for (const auto &[mode, label] : modes) {
            const auto &r =
                report.find(w.name + ".rrm-rt-" + label)->results;
            std::printf("%-12s %-14s %10.3f %12.3f\n", w.name.c_str(),
                        label, r.aggregateIpc, r.lifetimeYears);
        }
    }
    std::printf("expected: 'detailed' injects timeScale-x-inflated "
                "refresh traffic into the timing path (pessimistic "
                "for RRM); rate-corrected ~= count-only on IPC, and "
                "all three agree on wear/lifetime.\n");
    return 0;
}
