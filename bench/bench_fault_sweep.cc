/**
 * @file
 * Fault-injection sweep: (scheme x transient-fault-rate) matrix with
 * retention tracking enabled everywhere.
 *
 * Expected shape: the RRM keeps retention violations at zero because
 * every short-retention block it creates stays on the selective
 * refresh schedule, while Static-3-SETs accumulates violations as
 * soon as its blanket fast writes outrun the global refresh
 * assumption encoded in the retention deadline. Transient write
 * faults are absorbed by write-verify retries at every rate the
 * sweep covers; the interesting signal is the retry count.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "obs/run_record.hh"

using namespace rrm;

namespace
{

struct RatePoint
{
    double rate;
    const char *tag; ///< stable id fragment ("fr<tag>")
};

std::string
runId(const trace::Workload &w, const sys::Scheme &s,
      const RatePoint &p)
{
    return w.name + "." + s.name() + ".fr" + p.tag;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();

    const std::vector<sys::Scheme> schemes = {
        sys::Scheme::staticScheme(pcm::WriteMode::Sets7),
        sys::Scheme::staticScheme(pcm::WriteMode::Sets3),
        sys::Scheme::rrmScheme(),
    };
    const std::vector<RatePoint> rates = {
        {0.0, "0"},
        {1e-5, "1e-5"},
        {1e-4, "1e-4"},
        {1e-3, "1e-3"},
    };

    bench::PlanBuilder plan(opts);
    for (const auto &workload : workloads) {
        for (const auto &scheme : schemes) {
            for (const auto &point : rates) {
                plan.run(workload, scheme)
                    .tag(runId(workload, scheme, point))
                    .with([rate = point.rate](sys::SystemConfig &cfg) {
                        cfg.fault.retentionTracking = true;
                        cfg.fault.transientWriteFailureRate = rate;
                    });
            }
        }
    }
    const run::RunReport report = plan.execute();

    bench::printTitle(
        "Fault sweep: retention violations and write-retry recovery");
    std::printf("%-12s %-16s %10s %12s %12s %12s %12s\n", "workload",
                "scheme", "rate", "violations", "retries",
                "unrecovered", "IPC");
    for (const auto &workload : workloads) {
        bool first = true;
        for (const auto &scheme : schemes) {
            for (const auto &point : rates) {
                const auto &r =
                    report.find(runId(workload, scheme, point))
                        ->results;
                std::printf(
                    "%-12s %-16s %10s %12llu %12llu %12llu %12.3f\n",
                    first ? workload.name.c_str() : "",
                    scheme.name().c_str(), point.tag,
                    static_cast<unsigned long long>(
                        r.fault.retentionViolations),
                    static_cast<unsigned long long>(
                        r.fault.writeRetries),
                    static_cast<unsigned long long>(
                        r.fault.writesUnrecovered),
                    r.aggregateIpc);
                first = false;
            }
        }
    }
    bench::printRule();
    std::printf(
        "expected: RRM rows keep zero retention violations at every "
        "fault rate;\nStatic-3-SETs rows accumulate violations, and "
        "retries track the injected rate.\n");

    const std::string path =
        opts.jsonOut.empty() ? "BENCH_fault.json" : opts.jsonOut;
    AtomicFile file(path);
    std::ostream &os = file.stream();
    obs::JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("schemaVersion", bench::benchReportSchemaVersion);
    json.field("bench", "fault_sweep");
    json.key("metadata");
    obs::writeRunMetadata(json, obs::currentRunMetadata());
    json.key("options");
    json.beginObject();
    json.field("windowSeconds", opts.windowSeconds);
    json.field("timeScale", opts.timeScale);
    json.field("warmupFraction", opts.warmupFraction);
    json.field("seed", opts.seed);
    json.endObject();
    json.key("faultRates");
    json.beginArray();
    for (const auto &point : rates)
        json.value(point.rate);
    json.endArray();
    json.key("schemes");
    json.beginArray();
    for (const auto &s : schemes)
        json.value(s.name());
    json.endArray();
    json.key("runs");
    json.beginArray();
    for (const auto &workload : workloads) {
        for (const auto &scheme : schemes) {
            for (const auto &point : rates) {
                const std::string id = runId(workload, scheme, point);
                json.beginObject();
                json.field("id", id);
                json.field("faultRate", point.rate);
                json.key("results");
                report.find(id)->results.toJson(json);
                json.endObject();
            }
        }
    }
    json.endArray();
    json.endObject();
    os << '\n';
    file.commit();
    std::fprintf(stderr, "bench report written to %s\n", path.c_str());
    return 0;
}
