/**
 * @file
 * Multi-tenant fairness sweep (DESIGN.md section 17): runs tenant
 * mixes under the RRM family and reports per-tenant IPC, weighted
 * speedup, and slowdown-versus-alone.
 *
 * Every (mix, scheme) cell is paired with automatic 1-core *solo*
 * companion runs — one per distinct (benchmark, scheme) — whose IPCs
 * are collected through RunPlan postRun hooks and serve as the
 * slowdown baselines. The default matrix is
 *
 *     {MIX_1, MIX_2, bwaves:6,GemsFDTD:2}    (2 tenants each)
 *   x {RRM, Adaptive-RRM, RRM-QoS}
 *
 * overridable with --mix/--tenants and --schemes. The machine-
 * readable report (BENCH_tenant.json, --json-out overrides) carries
 * the full per-run results plus the fairness records and is
 * byte-identical across --jobs values.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "bench_tenant_report.hh"
#include "common/logging.hh"
#include "trace/benchmark.hh"

using namespace rrm;

namespace
{

/** The default 2-tenant evaluation mixes. */
std::vector<trace::Workload>
defaultMixes()
{
    trace::Workload m1 = trace::mix1Workload();
    m1.tenantOf = {0, 0, 1, 1};
    trace::Workload m2 = trace::mix2Workload();
    m2.tenantOf = {0, 0, 1, 1};
    // Asymmetric: a 6-core write-heavy tenant next to a quiet 2-core
    // one — the shape where QoS partitioning should matter. The
    // noisy tenant must leave the quiet one enough throughput for
    // boosted promotions to act on (an all-lbm neighbour starves it
    // of LLC writebacks entirely, and no policy can help then).
    const trace::Workload asym = trace::workloadFromSpec(
        "bwaves:6,GemsFDTD:2", "0,0,0,0,0,0,1,1");
    return {m1, m2, asym};
}

/** Distinct benchmarks across the mixes, first-appearance order. */
std::vector<trace::Benchmark>
distinctBenchmarks(const std::vector<trace::Workload> &mixes)
{
    std::vector<trace::Benchmark> out;
    for (const auto &w : mixes)
        for (const trace::Benchmark b : w.perCore) {
            bool seen = false;
            for (const trace::Benchmark have : out)
                seen = seen || have == b;
            if (!seen)
                out.push_back(b);
        }
    return out;
}

/** The 1-core solo companion workload of one benchmark. */
trace::Workload
soloWorkload(trace::Benchmark b)
{
    trace::Workload w;
    w.name = "solo-" + std::string(trace::benchmarkProfile(b).name);
    w.perCore = {b};
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);

    const std::vector<trace::Workload> mixes =
        (opts.mixes.empty() && opts.workloads.empty())
            ? defaultMixes()
            : opts.selectedWorkloads();
    const std::vector<sys::Scheme> schemes = opts.selectedSchemes(
        {sys::Scheme::rrmScheme(), sys::Scheme::adaptiveRrmScheme(),
         sys::Scheme::rrmQosScheme()});
    const std::vector<trace::Benchmark> benchmarks =
        distinctBenchmarks(mixes);

    // One plan: every solo companion first, then the mixed matrix.
    // Solo IPCs land in the table from postRun hooks on the worker
    // threads; mixed results are read from the report afterwards.
    bench::SoloIpcTable solo;
    bench::PlanBuilder plan(opts);
    for (const trace::Benchmark b : benchmarks) {
        const std::string bench_name(trace::benchmarkProfile(b).name);
        for (const sys::Scheme &scheme : schemes) {
            const std::string scheme_name = scheme.name();
            plan.run(soloWorkload(b), scheme)
                .postRun([&solo, bench_name, scheme_name](
                             const sys::System &,
                             const sys::SimResults &r) {
                    solo.record(bench_name, scheme_name,
                                r.aggregateIpc);
                });
        }
    }
    for (const auto &mix : mixes)
        for (const sys::Scheme &scheme : schemes)
            plan.run(mix, scheme);

    const run::RunReport report = plan.execute();

    // Mixed results, [mix][scheme], plus the fairness of each cell.
    std::vector<std::vector<sys::SimResults>> results;
    std::vector<bench::TenantSweepRow> rows;
    for (const auto &mix : mixes) {
        results.emplace_back();
        for (const sys::Scheme &scheme : schemes) {
            const run::RunResult *rr =
                report.find(mix.name + "." + scheme.name());
            RRM_ASSERT(rr, "mixed run missing from the report");
            results.back().push_back(rr->results);
            rows.push_back({mix.name, scheme.name(),
                            bench::fairnessOf(mix, rr->results,
                                              scheme.name(), solo)});
        }
    }
    std::vector<sys::SimResults> solo_results;
    for (const trace::Benchmark b : benchmarks)
        for (const sys::Scheme &scheme : schemes) {
            const run::RunResult *rr = report.find(
                soloWorkload(b).name + "." + scheme.name());
            RRM_ASSERT(rr, "solo run missing from the report");
            solo_results.push_back(rr->results);
        }

    const std::string json_out =
        opts.jsonOut.empty() ? "BENCH_tenant.json" : opts.jsonOut;
    bench::writeTenantBenchReport(json_out, "tenant_sweep", opts,
                                  mixes, schemes, results,
                                  solo_results, rows);
    std::fprintf(stderr, "bench report written to %s\n",
                 json_out.c_str());

    bench::printFairnessTable(rows);
    return 0;
}
