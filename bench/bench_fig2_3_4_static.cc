/**
 * @file
 * Reproduces paper Figures 2-4 (Section III-A motivation): the five
 * Static-N-SETs schemes across all Table VII workloads.
 *
 *  - Figure 2: raw IPC per workload and scheme.
 *  - Figure 3: IPC normalized to Static-7-SETs.
 *  - Figure 4: wear (block writes/s) split into demand writes vs
 *    global refresh, normalized to Static-7's total.
 *
 * Paper shape targets: fewer SETs -> higher IPC (Static-3 geomean
 * +15.6% over Static-4, up to +90.1% on libquantum vs Static-4);
 * refresh wear dominant for Static-3/-4 (Static-3 lifetime 0.317
 * years from refresh alone). Like the paper, global refresh is not
 * timed — only counted — so Static-3/-4 IPC is optimistic.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();
    const auto schemes = sys::staticSchemes();

    const auto results = bench::runMatrix(workloads, schemes, opts);

    // ---- Figure 2: raw IPC ----
    bench::printTitle("Figure 2: IPC of static write schemes");
    std::printf("%-12s", "workload");
    for (const auto &s : schemes)
        std::printf(" %13s", s.name().c_str());
    std::printf("\n");
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%-12s", workloads[w].name.c_str());
        for (std::size_t s = 0; s < schemes.size(); ++s)
            std::printf(" %13.3f", results[w][s].aggregateIpc);
        std::printf("\n");
    }

    // ---- Figure 3: IPC normalized to Static-7 ----
    bench::printTitle(
        "Figure 3: IPC normalized to Static-7-SETs (paper: fewer SETs "
        "-> faster)");
    std::printf("%-12s", "workload");
    for (const auto &s : schemes)
        std::printf(" %13s", s.name().c_str());
    std::printf("\n");
    std::vector<double> geo(schemes.size(), 1.0);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%-12s", workloads[w].name.c_str());
        const double base = results[w][0].aggregateIpc;
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const double norm = results[w][s].aggregateIpc / base;
            geo[s] *= norm;
            std::printf(" %13.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "geomean");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        std::printf(" %13.3f",
                    std::pow(geo[s], 1.0 / workloads.size()));
    }
    std::printf("\n");
    const double s3 = std::pow(geo[4], 1.0 / workloads.size());
    const double s4 = std::pow(geo[3], 1.0 / workloads.size());
    std::printf("Static-3 over Static-4 geomean: +%.1f%% "
                "(paper: +15.6%%, up to +90.1%% on libquantum)\n",
                100.0 * (s3 / s4 - 1.0));

    // ---- Figure 4: wear split, normalized to Static-7 total ----
    bench::printTitle(
        "Figure 4: normalized wear from writes and refreshes (static "
        "schemes)");
    std::printf("%-12s %-14s %12s %12s %12s\n", "workload", "scheme",
                "write", "refresh", "total");
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double base = results[w][0].totalWearRate();
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const auto &r = results[w][s];
            std::printf("%-12s %-14s %12.3f %12.3f %12.3f\n",
                        s == 0 ? workloads[w].name.c_str() : "",
                        r.scheme.c_str(), r.demandWriteRate / base,
                        r.globalRefreshRate / base,
                        r.totalWearRate() / base);
        }
    }
    bench::printRule();
    std::printf(
        "paper shape: refresh wear becomes dominant for Static-4 and\n"
        "overwhelming for Static-3 (whole-array refresh every 2.01 s);\n"
        "Static-7/-6 wear is essentially all demand writes.\n");
    return 0;
}
