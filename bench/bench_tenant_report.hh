/**
 * @file
 * Reporting helpers of the multi-tenant sweep bench: a thread-safe
 * solo-IPC baseline table fed by RunPlan postRun hooks, fairness
 * computation of mixed runs against those baselines, the
 * BENCH_tenant.json writer, and the stdout fairness table.
 */

#ifndef RRM_BENCH_BENCH_TENANT_REPORT_HH
#define RRM_BENCH_BENCH_TENANT_REPORT_HH

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "system/fairness.hh"

namespace rrm::bench
{

/**
 * Solo-run IPC baselines keyed by (benchmark, scheme) name. The
 * table is filled from RunPlan postRun hooks, which fire on worker
 * threads — hence the mutex. The contents are independent of
 * execution order, so everything derived from a fully-populated
 * table is byte-identical across --jobs values.
 */
class SoloIpcTable
{
  public:
    /** Record the solo IPC of one (benchmark, scheme) companion run. */
    void record(const std::string &benchmark, const std::string &scheme,
                double ipc);

    /** Solo IPC of (benchmark, scheme); fatal() if never recorded. */
    double lookup(const std::string &benchmark,
                  const std::string &scheme) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::pair<std::string, std::string>, double> ipc_;
};

/** Fairness of one (mix, scheme) cell of the sweep. */
struct TenantSweepRow
{
    std::string workload;
    std::string scheme;
    sys::FairnessReport fairness;
};

/**
 * Fairness metrics of one mixed run: each core's solo baseline is the
 * table entry of (its benchmark, the run's scheme).
 */
sys::FairnessReport fairnessOf(const trace::Workload &workload,
                               const sys::SimResults &mixed,
                               const std::string &scheme,
                               const SoloIpcTable &solo);

/** Print the per-tenant fairness table of the whole sweep. */
void printFairnessTable(const std::vector<TenantSweepRow> &rows);

/**
 * writeBenchReport() extended with the tenant sweep's extras: a
 * "soloRuns" array (the 1-core companion results, plan order) and a
 * "fairness" array (one TenantSweepRow per mixed run, matrix order).
 * Execution details stay excluded, so the report is byte-identical
 * across --jobs values.
 */
void writeTenantBenchReport(
    const std::string &path, const std::string &bench_name,
    const BenchOptions &opts,
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes,
    const std::vector<std::vector<sys::SimResults>> &results,
    const std::vector<sys::SimResults> &solo_results,
    const std::vector<TenantSweepRow> &fairness);

} // namespace rrm::bench

#endif // RRM_BENCH_BENCH_TENANT_REPORT_HH
