/**
 * @file
 * Write-policy sweep: the two static anchors (7-SETs, 3-SETs), the
 * paper's RRM, and the Adaptive-RRM extension side by side on the
 * Table VII workloads.
 *
 * Adaptive-RRM adjusts hot_threshold once per decay epoch from
 * refresh-queue pressure and region reuse (see DESIGN.md section 12).
 * The interesting comparison is against fixed-threshold RRM: on
 * low-reuse (streaming) workloads the adaptive floor suppresses
 * useless fast-write promotion, cutting selective refreshes at
 * equal-or-better IPC; on reuse-heavy workloads it should track RRM.
 *
 * Emits BENCH_policy.json (full SimResults per run) for the CI
 * policy-equivalence job and offline analysis.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();

    const std::vector<sys::Scheme> schemes = {
        sys::Scheme::staticScheme(pcm::WriteMode::Sets7),
        sys::Scheme::staticScheme(pcm::WriteMode::Sets3),
        sys::Scheme::rrmScheme(),
        sys::Scheme::adaptiveRrmScheme(),
    };

    const auto results = bench::runMatrix(workloads, schemes, opts);
    bench::writeBenchReport(opts.jsonOut.empty() ? "BENCH_policy.json"
                                                 : opts.jsonOut,
                            "policy_sweep", opts, workloads, schemes,
                            results);

    bench::printTitle("Write-policy sweep: static / RRM / Adaptive-RRM");

    std::printf("%-12s %-14s %10s %12s %12s %12s\n", "workload",
                "scheme", "IPC", "refreshes", "fastWr%", "life (y)");

    const std::size_t n_schemes = schemes.size();
    std::vector<double> ipc_geo(n_schemes, 1.0);
    std::size_t adaptive_wins = 0;

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < n_schemes; ++s) {
            const sys::SimResults &r = results[w][s];
            const std::uint64_t refreshes =
                r.rrmFastRefreshes + r.rrmSlowRefreshes;
            ipc_geo[s] *= r.aggregateIpc;
            std::printf("%-12s %-14s %10.3f %12llu %11.1f%% %12.3f\n",
                        s == 0 ? workloads[w].name.c_str() : "",
                        r.scheme.c_str(), r.aggregateIpc,
                        static_cast<unsigned long long>(refreshes),
                        100.0 * r.fastWriteFraction(),
                        r.lifetimeYears);
        }
        // schemes[2] is RRM, schemes[3] is Adaptive-RRM.
        const sys::SimResults &rrm = results[w][2];
        const sys::SimResults &ada = results[w][3];
        const std::uint64_t rrm_ref =
            rrm.rrmFastRefreshes + rrm.rrmSlowRefreshes;
        const std::uint64_t ada_ref =
            ada.rrmFastRefreshes + ada.rrmSlowRefreshes;
        if (ada_ref < rrm_ref && ada.aggregateIpc >= rrm.aggregateIpc)
            ++adaptive_wins;
    }

    bench::printRule();
    const double n = static_cast<double>(workloads.size());
    std::printf("%-12s %-14s %10s\n", "geomean", "", "IPC");
    for (std::size_t s = 0; s < n_schemes; ++s) {
        std::printf("%-12s %-14s %10.3f\n", "",
                    schemes[s].name().c_str(),
                    std::pow(ipc_geo[s], 1.0 / n));
    }
    std::printf("Adaptive-RRM beats RRM (fewer selective refreshes at "
                "equal-or-better IPC) on %zu of %zu workloads.\n",
                adaptive_wins, workloads.size());
    return 0;
}
