/**
 * @file
 * Reproduces paper Figure 11 (Section VI-D): RRM aggressiveness
 * control through hot_threshold in {8, 16, 32, 64}.
 *
 * Paper shape: raising the threshold lowers performance and extends
 * lifetime. hot_threshold = 8 is only 3.5-3.6% below Static-3-SETs
 * performance while keeping a 5.78-year lifetime; 16 is the default
 * sweet spot.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();
    const unsigned thresholds[] = {8, 16, 32, 64};

    const auto s7 = sys::Scheme::staticScheme(pcm::WriteMode::Sets7);
    const auto s3 = sys::Scheme::staticScheme(pcm::WriteMode::Sets3);

    // One plan: the two static anchors plus the four-threshold RRM
    // sweep, per workload. Sweep runs carry the threshold in the id.
    bench::PlanBuilder plan(opts);
    for (const auto &workload : workloads) {
        plan.run(workload, s7);
        plan.run(workload, s3);
        for (unsigned threshold : thresholds) {
            plan.run(workload, sys::Scheme::rrmScheme())
                .tag(workload.name + ".rrm-t" +
                     std::to_string(threshold))
                .with([threshold](sys::SystemConfig &cfg) {
                    cfg.rrm.hotThreshold = threshold;
                });
        }
    }
    const run::RunReport report = plan.execute();

    bench::printTitle(
        "Figure 11: controlling RRM aggressiveness via hot_threshold");

    std::printf("%-12s %12s %14s %14s %14s\n", "workload",
                "threshold", "IPC", "IPC vs S-7", "lifetime (y)");

    std::vector<double> ipc_geo(4, 1.0), life_geo(4, 1.0);
    double s3_geo = 1.0;

    for (const auto &workload : workloads) {
        const auto &r7 =
            report.find(workload.name + "." + s7.name())->results;
        const auto &r3 =
            report.find(workload.name + "." + s3.name())->results;
        s3_geo *= r3.aggregateIpc;
        for (std::size_t t = 0; t < 4; ++t) {
            const auto &r =
                report
                    .find(workload.name + ".rrm-t" +
                          std::to_string(thresholds[t]))
                    ->results;
            ipc_geo[t] *= r.aggregateIpc;
            life_geo[t] *= r.lifetimeYears;
            std::printf("%-12s %12u %14.3f %13.1f%% %14.3f\n",
                        t == 0 ? workload.name.c_str() : "",
                        thresholds[t], r.aggregateIpc,
                        100.0 * (r.aggregateIpc / r7.aggregateIpc -
                                 1.0),
                        r.lifetimeYears);
        }
    }

    bench::printRule();
    const double n = static_cast<double>(workloads.size());
    std::printf("%-12s %12s %14s %14s %14s\n", "geomean", "",
                "IPC", "vs Static-3", "lifetime (y)");
    for (std::size_t t = 0; t < 4; ++t) {
        const double ipc = std::pow(ipc_geo[t], 1.0 / n);
        const double s3_ipc = std::pow(s3_geo, 1.0 / n);
        std::printf("%-12s %12u %14.3f %13.1f%% %14.3f\n", "",
                    thresholds[t], ipc, 100.0 * (ipc / s3_ipc - 1.0),
                    std::pow(life_geo[t], 1.0 / n));
    }
    std::printf(
        "paper: threshold 8 gives +9.0%% IPC over the default 16 and "
        "a 5.78 y lifetime, only 3.6%% below Static-3;\n"
        "higher thresholds trade performance for lifetime "
        "monotonically.\n");
    return 0;
}
