/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * PRNG/Zipf sampling, trace generation, cache accesses, RRM
 * operations, the event queue, and controller scheduling. These bound
 * the simulator's own throughput (simulated events per host second),
 * not any paper metric.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "common/random.hh"
#include "memctrl/controller.hh"
#include "rrm/region_monitor.hh"
#include "sim/event_queue.hh"
#include "trace/generator.hh"

using namespace rrm;

namespace
{

void
BM_RandomNext(benchmark::State &state)
{
    Random rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RandomNext);

void
BM_ZipfSample(benchmark::State &state)
{
    Random rng(1);
    ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)), 0.8);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_TraceGeneratorNext(benchmark::State &state)
{
    const auto &profile =
        trace::benchmarkProfile(trace::Benchmark::GemsFDTD);
    trace::TraceGenerator gen(profile, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TraceGeneratorNext);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    cache::CacheHierarchy hierarchy(cache::defaultHierarchyConfig());
    Random rng(1);
    // Warm a small working set so the mix has hits and misses.
    for (int i = 0; i < 4096; ++i) {
        const Addr a = rng.uniform(1 << 16) * 64;
        if (hierarchy.access(0, a, false).llcMiss)
            hierarchy.fill(0, a, false);
    }
    for (auto _ : state) {
        const Addr a = rng.uniform(1 << 16) * 64;
        const auto ev = hierarchy.access(0, a, rng.chance(0.3));
        if (ev.llcMiss)
            hierarchy.fill(0, a, false);
    }
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_RrmRegistration(benchmark::State &state)
{
    EventQueue queue;
    monitor::RrmConfig cfg;
    monitor::RegionMonitor rrm(cfg, queue);
    Random rng(1);
    ZipfSampler zipf(6144, 0.8);
    for (auto _ : state) {
        const Addr addr =
            zipf.sample(rng) * 4096 + rng.uniform(64) * 64;
        rrm.registerLlcWrite(addr, true);
    }
}
BENCHMARK(BM_RrmRegistration);

void
BM_RrmWriteModeDecision(benchmark::State &state)
{
    EventQueue queue;
    monitor::RrmConfig cfg;
    monitor::RegionMonitor rrm(cfg, queue);
    Random rng(1);
    for (int i = 0; i < 100000; ++i)
        rrm.registerLlcWrite(rng.uniform(6144) * 4096, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            rrm.writeModeFor(rng.uniform(8192) * 4096));
    }
}
BENCHMARK(BM_RrmWriteModeDecision);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue queue;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            queue.scheduleAfter(static_cast<Tick>(1 + (i * 37) % 200),
                                [&] { ++sink; });
        }
        queue.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_ControllerRandomReads(benchmark::State &state)
{
    EventQueue queue;
    memctrl::MemoryParams params;
    memctrl::Controller ctrl(params, queue);
    Random rng(1);
    std::uint64_t completed = 0;
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i) {
            ctrl.enqueueRead(rng.uniform(1_GiB / 64) * 64,
                             [&](Tick) { ++completed; });
        }
        queue.run();
    }
    benchmark::DoNotOptimize(completed);
}
BENCHMARK(BM_ControllerRandomReads);

} // namespace

BENCHMARK_MAIN();
