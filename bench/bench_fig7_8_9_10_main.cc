/**
 * @file
 * Reproduces the paper's headline evaluation (Section VI-A to VI-C)
 * from one 6-scheme x 11-workload run matrix:
 *
 *  - Figure 7: IPC of RRM vs the static schemes (normalized to
 *    Static-7). Paper: RRM geomean +62.0% over Static-7 and ~10%
 *    below Static-3 (whose refresh cost is not timed, so its real
 *    performance is lower).
 *  - Figure 8: memory lifetime in years. Paper geomeans: Static-7
 *    10.6, RRM 6.4, Static-3 0.3.
 *  - Figure 9: wear split into demand writes / RRM refresh / global
 *    refresh. Paper: both RRM refresh flavours are trivial next to
 *    demand wear; refresh dominates Static-3/-4.
 *  - Figure 10: memory power by cause. Paper: refresh energy
 *    dominates Static-3/-4; RRM total is moderate (+32.8% over
 *    Static-7, driven by running faster).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();
    const auto schemes = sys::allPaperSchemes(); // Static-7..3, RRM

    const auto results = bench::runMatrix(workloads, schemes, opts);
    const std::size_t n = workloads.size();
    const std::size_t rrm_idx = schemes.size() - 1;

    // Machine-readable copy of the whole matrix (--json-out overrides).
    const std::string json_out =
        opts.jsonOut.empty() ? "BENCH_fig7.json" : opts.jsonOut;
    bench::writeBenchReport(json_out, "fig7_8_9_10", opts, workloads,
                            schemes, results);
    std::fprintf(stderr, "bench report written to %s\n",
                 json_out.c_str());

    // ---- Figure 7 ----
    bench::printTitle(
        "Figure 7: IPC normalized to Static-7-SETs (RRM vs statics)");
    std::printf("%-12s", "workload");
    for (const auto &s : schemes)
        std::printf(" %13s", s.name().c_str());
    std::printf("\n");
    std::vector<double> geo(schemes.size(), 1.0);
    for (std::size_t w = 0; w < n; ++w) {
        std::printf("%-12s", workloads[w].name.c_str());
        const double base = results[w][0].aggregateIpc;
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const double norm = results[w][s].aggregateIpc / base;
            geo[s] *= norm;
            std::printf(" %13.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "geomean");
    for (std::size_t s = 0; s < schemes.size(); ++s)
        std::printf(" %13.3f", std::pow(geo[s], 1.0 / n));
    std::printf("\n");
    const double rrm_gain = std::pow(geo[rrm_idx], 1.0 / n) - 1.0;
    const double s3_norm = std::pow(geo[4], 1.0 / n);
    std::printf(
        "RRM over Static-7: +%.1f%% (paper: +62.0%%); RRM vs "
        "Static-3: %.1f%% below (paper: 10.0%% below)\n",
        100.0 * rrm_gain,
        100.0 * (1.0 - std::pow(geo[rrm_idx], 1.0 / n) / s3_norm));

    // ---- Figure 8 ----
    bench::printTitle("Figure 8: memory lifetime (years)");
    std::printf("%-12s", "workload");
    for (const auto &s : schemes)
        std::printf(" %13s", s.name().c_str());
    std::printf("\n");
    std::vector<double> life_geo(schemes.size(), 1.0);
    for (std::size_t w = 0; w < n; ++w) {
        std::printf("%-12s", workloads[w].name.c_str());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            life_geo[s] *= results[w][s].lifetimeYears;
            std::printf(" %13.3f", results[w][s].lifetimeYears);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "geomean");
    for (std::size_t s = 0; s < schemes.size(); ++s)
        std::printf(" %13.3f", std::pow(life_geo[s], 1.0 / n));
    std::printf("\n");
    std::printf(
        "paper geomeans: Static-7 10.6 y, RRM 6.4 y, Static-3 0.3 y; "
        "this testbed's cores sustain a higher absolute write rate,\n"
        "which scales all demand-limited lifetimes down uniformly "
        "(EXPERIMENTS.md); Static-3 stays refresh-bound at ~0.3 y.\n");

    // ---- Figure 9 ----
    bench::printTitle(
        "Figure 9: wear distribution (block writes per second)");
    std::printf("%-12s %-14s %14s %14s %14s %10s\n", "workload",
                "scheme", "demand", "rrm refresh", "global rf",
                "rf share");
    for (std::size_t w = 0; w < n; ++w) {
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const auto &r = results[w][s];
            const double total = r.totalWearRate();
            std::printf(
                "%-12s %-14s %14.4g %14.4g %14.4g %9.1f%%\n",
                s == 0 ? workloads[w].name.c_str() : "",
                r.scheme.c_str(), r.demandWriteRate, r.rrmRefreshRate,
                r.globalRefreshRate,
                100.0 * (r.rrmRefreshRate + r.globalRefreshRate) /
                    total);
        }
    }
    std::printf(
        "paper shape: refresh wear dominates Static-3/-4; for RRM "
        "both refresh kinds are a small fraction of demand wear.\n");

    // ---- Figure 10 ----
    bench::printTitle("Figure 10: memory power by cause (W)");
    std::printf("%-12s %-14s %10s %10s %10s %10s %10s %10s\n",
                "workload", "scheme", "read", "write", "rrm rf",
                "global rf", "total", "vs S-7");
    for (std::size_t w = 0; w < n; ++w) {
        const double base = results[w][0].totalPower();
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const auto &r = results[w][s];
            std::printf("%-12s %-14s %10.3f %10.3f %10.3f %10.3f "
                        "%10.3f %9.2fx\n",
                        s == 0 ? workloads[w].name.c_str() : "",
                        r.scheme.c_str(), r.readPower,
                        r.demandWritePower, r.rrmRefreshPower,
                        r.globalRefreshPower, r.totalPower(),
                        r.totalPower() / base);
        }
    }
    double rrm_energy_geo = 1.0;
    for (std::size_t w = 0; w < n; ++w) {
        rrm_energy_geo *= results[w][rrm_idx].totalPower() /
                          results[w][0].totalPower();
    }
    std::printf(
        "RRM total power vs Static-7 (geomean): %.2fx (paper: +32.8%% "
        "energy, mostly from running faster); refresh power dominates "
        "Static-3/-4 as in the paper.\n",
        std::pow(rrm_energy_geo, 1.0 / n));

    // ---- RRM behaviour summary (supporting data) ----
    bench::printTitle("RRM behaviour summary");
    std::printf("%-12s %10s %12s %12s %12s %12s\n", "workload",
                "fast frac", "promotions", "demotions", "fast rf",
                "hot@end");
    for (std::size_t w = 0; w < n; ++w) {
        const auto &r = results[w][rrm_idx];
        std::printf("%-12s %9.1f%% %12llu %12llu %12llu %12llu\n",
                    workloads[w].name.c_str(),
                    100.0 * r.fastWriteFraction(),
                    static_cast<unsigned long long>(r.rrmPromotions),
                    static_cast<unsigned long long>(r.rrmDemotions),
                    static_cast<unsigned long long>(
                        r.rrmFastRefreshes),
                    static_cast<unsigned long long>(
                        r.rrmHotEntriesAtEnd));
    }
    return 0;
}
