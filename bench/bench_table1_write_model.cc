/**
 * @file
 * Reproduces paper Table I: latency, current, normalized energy, and
 * retention per MLC PCM write mode — both the calibrated constants the
 * simulator uses and the analytic drift model that regenerates the
 * retention trade-off from first principles.
 */

#include <cstdio>

#include "bench_common.hh"
#include "pcm/drift_model.hh"
#include "pcm/energy_model.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    (void)bench::BenchOptions::parse(argc, argv);

    bench::printTitle(
        "Table I: write latency vs. retention trade-off in MLC PCM");

    const pcm::DriftModel drift;
    const pcm::EnergyModel energy;

    std::printf("%-14s %9s %9s %12s %14s %14s %12s %12s\n",
                "write type", "SET(uA)", "N.energy", "latency(ns)",
                "retention(s)", "analytic(s)", "guard(dec)",
                "E/block(nJ)");
    for (pcm::WriteMode mode : pcm::allWriteModes) {
        const auto &p = pcm::writeModeParams(mode);
        std::printf(
            "%-14s %9.0f %9.3f %12llu %14.1f %14.1f %12.3f %12.1f\n",
            (std::string(pcm::writeModeName(mode)) + "-Write").c_str(),
            p.setCurrentUa, p.normalizedEnergy,
            static_cast<unsigned long long>(p.latency / tickPerNs),
            p.retentionSeconds,
            drift.retentionSeconds(mode),
            drift.guardband(pcm::setIterations(mode)),
            energy.blockWriteEnergy(mode) * 1e9);
    }
    bench::printRule();
    std::printf(
        "latency = 100 ns RESET + N x 150 ns SET (exact).\n"
        "'retention' is the calibrated Table I column the simulator\n"
        "uses; 'analytic' is this repo's drift model (log-linear band\n"
        "narrowing, alpha = %.2f), within ~1.5x everywhere.\n"
        "paper: 7-SETs 3054.9 s @ 1150 ns ... 3-SETs 2.01 s @ 550 ns.\n",
        drift.params().alpha);
    return 0;
}
