/**
 * @file
 * Reproduces paper Table III: temporal and spatial write behaviour of
 * GemsFDTD at 4 KB region granularity — the hot/cold imbalance that
 * motivates the RRM. The interval buckets are the paper's, divided by
 * the run's time scale (DESIGN.md section 3).
 *
 * The region profiler lives inside the System, which the runner tears
 * down when a run finishes; a RunSpec postRun hook copies the Table
 * III aggregates into a per-run slot before that happens.
 */

#include <cstdio>

#include "bench_common.hh"
#include "system/region_profiler.hh"

using namespace rrm;

namespace
{

/** Table III aggregates captured from the profiler by a postRun hook. */
struct ProfileCapture
{
    std::vector<sys::RegionWriteProfiler::RegionBucket> buckets;
    std::uint64_t totalRegions = 0;
    std::uint64_t totalWrites = 0;
    std::uint64_t writtenOnce = 0;
    std::uint64_t neverWritten = 0;
    double hot90 = 0.0;
    double hot97 = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    if (opts.workloads.empty())
        opts.workloads = {"GemsFDTD"};
    const auto workloads = opts.selectedWorkloads();
    const auto s7 = sys::Scheme::staticScheme(pcm::WriteMode::Sets7);

    // One Static-7 profiling run per workload. Each postRun hook owns
    // its own capture slot, so the plan stays safe under --jobs > 1.
    auto captures =
        std::make_shared<std::vector<ProfileCapture>>(workloads.size());
    bench::PlanBuilder plan(opts);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        plan.run(workloads[i], s7)
            .with([](sys::SystemConfig &cfg) {
                cfg.profileRegionWrites = true;
            })
            .postRun([captures, i](const sys::System &system,
                                   const sys::SimResults &) {
                const sys::RegionWriteProfiler *prof =
                    system.regionProfiler();
                ProfileCapture &cap = (*captures)[i];
                cap.buckets = prof->regionsByMeanInterval();
                cap.totalRegions = prof->totalRegions();
                cap.totalWrites = prof->totalWrites();
                cap.writtenOnce = prof->writtenOnceRegions();
                cap.neverWritten = prof->neverWrittenRegions();
                cap.hot90 = prof->hotRegionFraction(0.90);
                cap.hot97 = prof->hotRegionFraction(0.97);
            });
    }
    const run::RunReport report = plan.execute();

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto &workload = workloads[i];
        const ProfileCapture &cap = (*captures)[i];
        const sys::SimResults &r =
            report.find(workload.name + "." + s7.name())->results;

        bench::printTitle("Table III: region write behaviour of " +
                          workload.name + " (4 KB regions, Static-7)");

        const char *labels[] = {
            "< 1e6 ns (paper-equiv)", "1e6 ns to 1e7 ns",
            "1e7 ns to 1e8 ns",       "1e8 ns to 1 s",
            "1 s to 2 s",             ">= 2 s",
        };
        const double total_regions =
            static_cast<double>(cap.totalRegions);
        const double total_writes =
            static_cast<double>(cap.totalWrites);

        std::printf("%-24s %10s %9s %12s %9s\n",
                    "avg write interval", "#regions", "%regions",
                    "#writes", "%writes");
        for (std::size_t b = 0; b < cap.buckets.size(); ++b) {
            std::printf("%-24s %10llu %8.2f%% %12llu %8.2f%%\n",
                        labels[b],
                        static_cast<unsigned long long>(
                            cap.buckets[b].regions),
                        100.0 * cap.buckets[b].regions / total_regions,
                        static_cast<unsigned long long>(
                            cap.buckets[b].writes),
                        total_writes ? 100.0 * cap.buckets[b].writes /
                                           total_writes
                                     : 0.0);
        }
        std::printf("%-24s %10llu %8.2f%% %12llu %8.2f%%\n",
                    "written once",
                    static_cast<unsigned long long>(cap.writtenOnce),
                    100.0 * cap.writtenOnce / total_regions,
                    static_cast<unsigned long long>(cap.writtenOnce),
                    total_writes
                        ? 100.0 * cap.writtenOnce / total_writes
                        : 0.0);
        std::printf("%-24s %10llu %8.2f%%\n", "never written",
                    static_cast<unsigned long long>(cap.neverWritten),
                    100.0 * cap.neverWritten / total_regions);
        bench::printRule();
        std::printf(
            "total writes %llu over %.0f ms (x%.0f time scale); "
            "%.2f%% of all regions absorb 90%% of writes; "
            "%.2f%% absorb 97%%.\n"
            "paper (GemsFDTD, 5 s): 1.1%% of regions take 76.6%% of "
            "writes in the 1e6-1e7 ns row; 97.8%% never written;\n"
            "paper conclusion: ~2%% of memory gets ~97%% of writes.\n"
            "(IPC %.3f, MPKI %.2f for this run.)\n",
            static_cast<unsigned long long>(cap.totalWrites),
            r.windowSeconds * 1e3, r.timeScale, 100.0 * cap.hot90,
            100.0 * cap.hot97, r.aggregateIpc, r.mpki);
    }
    return 0;
}
