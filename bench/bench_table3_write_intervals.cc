/**
 * @file
 * Reproduces paper Table III: temporal and spatial write behaviour of
 * GemsFDTD at 4 KB region granularity — the hot/cold imbalance that
 * motivates the RRM. The interval buckets are the paper's, divided by
 * the run's time scale (DESIGN.md section 3).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    if (opts.workloads.empty())
        opts.workloads = {"GemsFDTD"};

    for (const auto &workload : opts.selectedWorkloads()) {
        bench::printTitle("Table III: region write behaviour of " +
                          workload.name + " (4 KB regions, Static-7)");

        sys::SystemConfig cfg = bench::makeConfig(
            workload, sys::Scheme::staticScheme(pcm::WriteMode::Sets7),
            opts);
        cfg.profileRegionWrites = true;
        sys::System system(std::move(cfg));
        const sys::SimResults r = system.run();
        const sys::RegionWriteProfiler *prof = system.regionProfiler();

        const char *labels[] = {
            "< 1e6 ns (paper-equiv)", "1e6 ns to 1e7 ns",
            "1e7 ns to 1e8 ns",       "1e8 ns to 1 s",
            "1 s to 2 s",             ">= 2 s",
        };
        const auto buckets = prof->regionsByMeanInterval();
        const double total_regions =
            static_cast<double>(prof->totalRegions());
        const double total_writes =
            static_cast<double>(prof->totalWrites());

        std::printf("%-24s %10s %9s %12s %9s\n",
                    "avg write interval", "#regions", "%regions",
                    "#writes", "%writes");
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            std::printf("%-24s %10llu %8.2f%% %12llu %8.2f%%\n",
                        labels[i],
                        static_cast<unsigned long long>(
                            buckets[i].regions),
                        100.0 * buckets[i].regions / total_regions,
                        static_cast<unsigned long long>(
                            buckets[i].writes),
                        total_writes
                            ? 100.0 * buckets[i].writes / total_writes
                            : 0.0);
        }
        std::printf("%-24s %10llu %8.2f%% %12llu %8.2f%%\n",
                    "written once",
                    static_cast<unsigned long long>(
                        prof->writtenOnceRegions()),
                    100.0 * prof->writtenOnceRegions() / total_regions,
                    static_cast<unsigned long long>(
                        prof->writtenOnceRegions()),
                    total_writes ? 100.0 * prof->writtenOnceRegions() /
                                       total_writes
                                 : 0.0);
        std::printf("%-24s %10llu %8.2f%%\n", "never written",
                    static_cast<unsigned long long>(
                        prof->neverWrittenRegions()),
                    100.0 * prof->neverWrittenRegions() /
                        total_regions);
        bench::printRule();
        std::printf(
            "total writes %llu over %.0f ms (x%.0f time scale); "
            "%.2f%% of all regions absorb 90%% of writes; "
            "%.2f%% absorb 97%%.\n"
            "paper (GemsFDTD, 5 s): 1.1%% of regions take 76.6%% of "
            "writes in the 1e6-1e7 ns row; 97.8%% never written;\n"
            "paper conclusion: ~2%% of memory gets ~97%% of writes.\n"
            "(IPC %.3f, MPKI %.2f for this run.)\n",
            static_cast<unsigned long long>(prof->totalWrites()),
            r.windowSeconds * 1e3, r.timeScale,
            100.0 * prof->hotRegionFraction(0.90),
            100.0 * prof->hotRegionFraction(0.97), r.aggregateIpc,
            r.mpki);
    }
    return 0;
}
