/**
 * @file
 * Tenant-sweep reporting implementation.
 */

#include "bench_tenant_report.hh"

#include <cstdio>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "obs/run_record.hh"
#include "trace/benchmark.hh"

namespace rrm::bench
{

void
SoloIpcTable::record(const std::string &benchmark,
                     const std::string &scheme, double ipc)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ipc_[{benchmark, scheme}] = ipc;
}

double
SoloIpcTable::lookup(const std::string &benchmark,
                     const std::string &scheme) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = ipc_.find({benchmark, scheme});
    if (it == ipc_.end()) {
        fatal("no solo baseline recorded for benchmark ", benchmark,
              " under scheme ", scheme);
    }
    return it->second;
}

sys::FairnessReport
fairnessOf(const trace::Workload &workload,
           const sys::SimResults &mixed, const std::string &scheme,
           const SoloIpcTable &solo)
{
    std::vector<double> solo_ipc;
    solo_ipc.reserve(workload.numCores());
    for (const trace::Benchmark b : workload.perCore) {
        const std::string name(trace::benchmarkProfile(b).name);
        solo_ipc.push_back(solo.lookup(name, scheme));
    }
    return sys::computeFairness(mixed.ipcPerCore, workload.tenantOf,
                                solo_ipc);
}

void
printFairnessTable(const std::vector<TenantSweepRow> &rows)
{
    printTitle("Tenant fairness (slowdown = solo IPC / mixed IPC)");
    std::printf("%-22s %-14s %7s %10s %10s %10s %10s\n", "mix",
                "scheme", "tenant", "cores", "ipc", "slowdown",
                "ws");
    for (const TenantSweepRow &row : rows) {
        bool first = true;
        for (const auto &t : row.fairness.tenants) {
            std::printf("%-22s %-14s %7u %10zu %10.3f %10.3f %10.3f\n",
                        first ? row.workload.c_str() : "",
                        first ? row.scheme.c_str() : "", t.tenant,
                        t.cores.size(), t.ipc, t.slowdown,
                        t.weightedSpeedup);
            first = false;
        }
        std::printf("%-22s %-14s %7s %10s %10s %10s %10.3f"
                    "   unfairness %.3f\n",
                    "", "", "", "", "", "total",
                    row.fairness.weightedSpeedup,
                    row.fairness.unfairness);
    }
}

void
writeTenantBenchReport(
    const std::string &path, const std::string &bench_name,
    const BenchOptions &opts,
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes,
    const std::vector<std::vector<sys::SimResults>> &results,
    const std::vector<sys::SimResults> &solo_results,
    const std::vector<TenantSweepRow> &fairness)
{
    AtomicFile file(path);
    std::ostream &os = file.stream();

    obs::JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("schemaVersion", benchReportSchemaVersion);
    json.field("bench", bench_name);
    json.key("metadata");
    obs::writeRunMetadata(json, obs::currentRunMetadata());

    json.key("options");
    json.beginObject();
    json.field("windowSeconds", opts.windowSeconds);
    json.field("timeScale", opts.timeScale);
    json.field("warmupFraction", opts.warmupFraction);
    json.field("seed", opts.seed);
    json.endObject();

    json.key("workloads");
    json.beginArray();
    for (const auto &w : workloads)
        json.value(w.name);
    json.endArray();
    json.key("schemes");
    json.beginArray();
    for (const auto &s : schemes)
        json.value(s.name());
    json.endArray();

    json.key("runs");
    json.beginArray();
    for (const auto &row : results)
        for (const auto &r : row)
            r.toJson(json);
    json.endArray();

    json.key("soloRuns");
    json.beginArray();
    for (const auto &r : solo_results)
        r.toJson(json);
    json.endArray();

    json.key("fairness");
    json.beginArray();
    for (const TenantSweepRow &row : fairness) {
        json.beginObject();
        json.field("workload", row.workload);
        json.field("scheme", row.scheme);
        json.field("weightedSpeedup", row.fairness.weightedSpeedup);
        json.field("unfairness", row.fairness.unfairness);
        json.key("tenants");
        json.beginArray();
        for (const auto &t : row.fairness.tenants) {
            json.beginObject();
            json.field("tenant", t.tenant);
            json.key("cores");
            json.beginArray();
            for (const unsigned c : t.cores)
                json.value(c);
            json.endArray();
            json.field("ipc", t.ipc);
            json.field("slowdown", t.slowdown);
            json.field("weightedSpeedup", t.weightedSpeedup);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.endObject();
    os << '\n';
    file.commit();
}

} // namespace rrm::bench
