/**
 * @file
 * Shared infrastructure for the reproduction benches: command-line
 * options, the run loop over (workload, scheme) pairs, and table
 * formatting. Every bench binary regenerates one (or one family of)
 * paper table/figure — see DESIGN.md section 5 for the index.
 */

#ifndef RRM_BENCH_BENCH_COMMON_HH
#define RRM_BENCH_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "system/system.hh"

namespace rrm::bench
{

/** Options common to all reproduction benches. */
struct BenchOptions
{
    /** Simulated window in (scaled) seconds. */
    double windowSeconds = 0.060;

    /** Retention compression factor (DESIGN.md section 3). */
    double timeScale = 50.0;

    double warmupFraction = 0.2;
    std::uint64_t seed = 1;

    /** Workload subset; empty = the full Table VII set. */
    std::vector<std::string> workloads;

    /** Print per-run progress to stderr. */
    bool verbose = false;

    /**
     * @{ Per-run observability outputs. Each stem produces one file
     * per (workload, scheme) run, named
     * `<stem>.<workload>.<scheme><ext>`, via SystemConfig::obs.
     */
    std::string statsJsonStem;  ///< run records (--stats-json)
    std::string sampleCsvStem;  ///< sampled time series (--sample-csv)
    std::string traceJsonlStem; ///< JSONL traces (--trace-jsonl)
    /** @} */

    /** Wall-clock self-profiling into the run records (--profile). */
    bool profile = false;

    /** Bench-report path override (--json-out); bench default if empty. */
    std::string jsonOut;

    /**
     * Parse argv. Recognized flags:
     *   --quick            8 ms window (smoke-test the bench)
     *   --window-ms <f>    window length in milliseconds
     *   --scale <f>        time scale
     *   --seed <n>
     *   --workloads a,b,c  subset of Table VII names
     *   --verbose
     *   --stats-json S     per-run run-record JSON files S.<run>.json
     *   --sample-csv S     per-run sampled time series S.<run>.csv
     *   --trace-jsonl S    per-run JSONL trace files S.<run>.jsonl
     *   --profile          wall-clock self-profiling in run records
     *   --json-out F       bench-report path (benches that emit one)
     */
    static BenchOptions parse(int argc, char **argv);

    /** Workloads selected by the options. */
    std::vector<trace::Workload> selectedWorkloads() const;
};

/** Hook to adjust the SystemConfig before a run (sweep knobs). */
using ConfigHook = std::function<void(sys::SystemConfig &)>;

/** Build the SystemConfig for one run. */
sys::SystemConfig makeConfig(const trace::Workload &workload,
                             const sys::Scheme &scheme,
                             const BenchOptions &opts,
                             const ConfigHook &hook = {});

/** Run one (workload, scheme) simulation. */
sys::SimResults runOne(const trace::Workload &workload,
                       const sys::Scheme &scheme,
                       const BenchOptions &opts,
                       const ConfigHook &hook = {});

/**
 * Run every selected workload under every scheme.
 * Results are indexed [workload][scheme].
 */
std::vector<std::vector<sys::SimResults>> runMatrix(
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes, const BenchOptions &opts,
    const ConfigHook &hook = {});

/** Geometric mean of a per-workload metric. */
double geomeanOver(const std::vector<sys::SimResults> &results,
                   const std::function<double(const sys::SimResults &)>
                       &metric);

/** @{ Table formatting helpers. */
void printTitle(const std::string &title);
void printRule(int width = 98);
/** @} */

/** Schema version of the machine-readable bench reports. */
constexpr int benchReportSchemaVersion = 1;

/**
 * Write a machine-readable report of a bench's run matrix: schema
 * version, bench name, build metadata, the options of the run, and
 * one full SimResults record per (workload, scheme) pair. fatal() if
 * the file cannot be opened.
 */
void writeBenchReport(
    const std::string &path, const std::string &bench_name,
    const BenchOptions &opts,
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes,
    const std::vector<std::vector<sys::SimResults>> &results);

} // namespace rrm::bench

#endif // RRM_BENCH_BENCH_COMMON_HH
