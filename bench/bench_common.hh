/**
 * @file
 * Shared infrastructure for the reproduction benches: command-line
 * options (a declarative flag table), RunPlan construction over
 * (workload, scheme) matrices, parallel execution through
 * run::Runner, and table formatting. Every bench binary regenerates
 * one (or one family of) paper table/figure — see DESIGN.md section 5
 * for the index — by building a RunPlan and formatting the RunReport.
 */

#ifndef RRM_BENCH_BENCH_COMMON_HH
#define RRM_BENCH_BENCH_COMMON_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "run/run_plan.hh"
#include "run/run_report.hh"
#include "run/runner.hh"
#include "system/system.hh"

namespace rrm::bench
{

/** Options common to all reproduction benches. */
struct BenchOptions
{
    /** Simulated window in (scaled) seconds. */
    double windowSeconds = 0.060;

    /** Retention compression factor (DESIGN.md section 3). */
    double timeScale = 50.0;

    double warmupFraction = 0.2;
    std::uint64_t seed = 1;

    /** Workload subset; empty = the full Table VII set. */
    std::vector<std::string> workloads;

    /**
     * @{ Ad-hoc N-core mixes (--mix, repeatable), each optionally
     * paired by index with a tenant grouping (--tenants). A mix spec
     * follows the trace::parseWorkloadSpec grammar
     * ("zeusmp,lbm,lbm,milc:2"); a tenant spec is one id per core
     * ("0,0,1,1"). Mixes are appended after the named workloads (or
     * replace the standard set when --workloads is absent).
     */
    std::vector<std::string> mixes;
    std::vector<std::string> tenants;
    /** @} */

    /** Scheme subset by name (--schemes); empty = bench default. */
    std::vector<std::string> schemes;

    /** Print per-run progress to stderr. */
    bool verbose = false;

    /** Worker threads (--jobs); 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 0;

    /** Cancel queued runs after the first failure (--fail-fast). */
    bool failFast = false;

    /**
     * @{ Per-run observability outputs. Each stem produces one file
     * per run, named `<stem>.<run-id><ext>` (matrix run ids are
     * `<workload>.<scheme>`), via SystemConfig::obs.
     */
    std::string statsJsonStem;  ///< run records (--stats-json)
    std::string sampleCsvStem;  ///< sampled time series (--sample-csv)
    std::string traceJsonlStem; ///< JSONL traces (--trace-jsonl)
    std::string perfettoStem;   ///< Perfetto timelines (--perfetto-out)
    std::string telemetryStem;  ///< telemetry JSON (--telemetry)
    /** @} */

    /** Wall-clock self-profiling into the run records (--profile). */
    bool profile = false;

    /** Throughput/ETA heartbeat lines on stderr (--progress). */
    bool progress = false;

    /** Bench-report path override (--json-out); bench default if empty. */
    std::string jsonOut;

    /** Per-run wall-clock budget in seconds (--timeout); 0 = none. */
    double timeoutSeconds = 0.0;

    /** Re-attempts after a failed/timed-out run (--retries). */
    unsigned retries = 0;

    /**
     * @{ Crash-safe checkpointing (--checkpoint-every /
     * --checkpoint-dir / --resume). Every run checkpoints into its
     * own subdirectory `<checkpointDir>/<run-id>` (created on
     * demand), so one interrupted plan resumes per run. See
     * SystemConfig::checkpointEveryEpochs for the cadence and the
     * byte-identity contract.
     */
    std::uint64_t checkpointEveryEpochs = 0;
    std::string checkpointDir;
    bool resume = false;
    /** @} */

    /**
     * Fault-injection knobs (--fault-*), copied into every run's
     * SystemConfig. All-defaults means the fault layer is absent and
     * bench outputs are byte-identical to builds without it.
     */
    fault::FaultConfig fault;

    /**
     * Instruction-stream source for every run (--trace-cache /
     * --no-trace-cache / --trace-packs). All modes are byte-identical
     * in results; Materialized and Pack trade memory for generation
     * work, which pays off when many runs replay few streams. The
     * default everywhere is Generate — the inline generator is cheap
     * enough that replay only wins on heavily repeated plans.
     */
    trace::TraceMode traceMode = trace::TraceMode::Generate;

    /** Pack directory for TraceMode::Pack (--trace-packs). */
    std::string tracePackDir;

    /**
     * Route fixed-latency hops through DelayQueues (--delay-queues);
     * see SystemConfig::useDelayQueues for the equivalence caveat.
     */
    bool delayQueues = false;

    /**
     * Parse argv against the declarative flag table (see
     * benchFlagTable() in bench_common.cc); --help prints the
     * generated usage text and exits. `defaults` seeds the options a
     * bench wants to differ on (e.g. bench_speed turns the trace
     * cache on) while still letting flags override.
     */
    static BenchOptions parse(int argc, char **argv);
    static BenchOptions parse(int argc, char **argv,
                              const BenchOptions &defaults);

    /** Workloads selected by the options (named + --mix specs). */
    std::vector<trace::Workload> selectedWorkloads() const;

    /**
     * Schemes selected by --schemes (parsed via parseScheme), or
     * `defaults` when the flag was not given.
     */
    std::vector<sys::Scheme>
    selectedSchemes(const std::vector<sys::Scheme> &defaults) const;

    /** Runner policy from these options (jobs, fail-fast, verbose). */
    run::RunnerOptions runnerOptions() const;
};

/** Hook to adjust the SystemConfig before a run (sweep knobs). */
using ConfigHook = std::function<void(sys::SystemConfig &)>;

/**
 * The process-wide materialized-stream cache every bench run shares
 * when BenchOptions::traceMode is Materialized (runs of one plan
 * reuse each other's generated streams).
 */
trace::TraceCache &globalTraceCache();

/**
 * Fluent RunPlan construction. A builder replaces the
 * loop-plus-makeConfig boilerplate of the sweep benches:
 *
 *     bench::PlanBuilder plan(opts);
 *     for (const auto &w : workloads) {
 *         plan.run(w, rrm).tag(w.name + ".rrm-t8")
 *             .with([](sys::SystemConfig &c) { c.rrm.hotThreshold = 8; });
 *     }
 *     const run::RunReport report = plan.execute();
 *
 * run() starts a pending run; tag()/with()/postRun() modify it; the
 * next run() (or build()/execute()) finalizes it via makeConfig, so
 * the id set by tag() also names the run's observability outputs.
 * with() hooks compose in call order.
 *
 * Because hooks execute at finalization (not at the with() call),
 * capture sweep variables BY VALUE — a by-reference capture of a loop
 * counter would read the next iteration's value.
 */
class PlanBuilder
{
  public:
    explicit PlanBuilder(const BenchOptions &opts) : opts_(opts) {}

    /** Start one (workload, scheme) run. */
    PlanBuilder &run(const trace::Workload &workload,
                     const sys::Scheme &scheme);

    /** Set the pending run's id (default "<workload>.<scheme>"). */
    PlanBuilder &tag(std::string id);

    /** Append a config tweak to the pending run. */
    PlanBuilder &with(ConfigHook hook);

    /** Attach a post-run inspection hook to the pending run. */
    PlanBuilder &postRun(run::PostRunHook hook);

    /** Append the whole workload x scheme matrix with default ids. */
    PlanBuilder &matrix(const std::vector<trace::Workload> &workloads,
                        const std::vector<sys::Scheme> &schemes,
                        const ConfigHook &hook = {});

    /** Finalize the pending run and return the plan. */
    run::RunPlan build();

    /** build() and execute with the options' runner policy. */
    run::RunReport execute();

  private:
    void flush();

    const BenchOptions &opts_;
    run::RunPlan plan_;

    bool pendingActive_ = false;
    trace::Workload pendingWorkload_;
    std::optional<sys::Scheme> pendingScheme_;
    std::string pendingId_;
    std::vector<ConfigHook> pendingHooks_;
    run::PostRunHook pendingPostRun_;
};

/**
 * Build the SystemConfig for one run. `tag` names this run's per-run
 * observability outputs (`<stem>.<tag>.json` etc.); empty selects the
 * matrix default "<workload>.<scheme>". Give every variant run of a
 * sweep a distinct tag — RunPlan::validate rejects clashing outputs.
 */
sys::SystemConfig makeConfig(const trace::Workload &workload,
                             const sys::Scheme &scheme,
                             const BenchOptions &opts,
                             const ConfigHook &hook = {},
                             const std::string &tag = "");

/**
 * Plan every selected workload under every scheme, workload-major,
 * with run ids "<workload>.<scheme>".
 */
run::RunPlan buildMatrixPlan(
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes, const BenchOptions &opts,
    const ConfigHook &hook = {});

/**
 * Execute a plan with the options' runner policy and print the
 * plan-level summary (runs, jobs, wall seconds, slowest run) to
 * stderr. fatal() with every failed run id if any run did not finish.
 */
run::RunReport runPlan(const run::RunPlan &plan,
                       const BenchOptions &opts);

/**
 * Run every selected workload under every scheme.
 * Results are indexed [workload][scheme].
 */
std::vector<std::vector<sys::SimResults>> runMatrix(
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes, const BenchOptions &opts,
    const ConfigHook &hook = {});

/** Geometric mean of a per-workload metric. */
double geomeanOver(const std::vector<sys::SimResults> &results,
                   const std::function<double(const sys::SimResults &)>
                       &metric);

/** @{ Table formatting helpers. */
void printTitle(const std::string &title);
void printRule(int width = 98);
/** @} */

/** Schema version of the machine-readable bench reports. */
constexpr int benchReportSchemaVersion = 1;

/**
 * Write a machine-readable report of a bench's run matrix: schema
 * version, bench name, build metadata, the options of the run, and
 * one full SimResults record per (workload, scheme) pair. Execution
 * details (jobs, wall time) are deliberately excluded so reports are
 * byte-identical across --jobs values. fatal() if the file cannot be
 * opened.
 */
void writeBenchReport(
    const std::string &path, const std::string &bench_name,
    const BenchOptions &opts,
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes,
    const std::vector<std::vector<sys::SimResults>> &results);

} // namespace rrm::bench

#endif // RRM_BENCH_BENCH_COMMON_HH
