/**
 * @file
 * Shared infrastructure for the reproduction benches: command-line
 * options (a declarative flag table), RunPlan construction over
 * (workload, scheme) matrices, parallel execution through
 * run::Runner, and table formatting. Every bench binary regenerates
 * one (or one family of) paper table/figure — see DESIGN.md section 5
 * for the index — by building a RunPlan and formatting the RunReport.
 */

#ifndef RRM_BENCH_BENCH_COMMON_HH
#define RRM_BENCH_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "run/run_plan.hh"
#include "run/run_report.hh"
#include "run/runner.hh"
#include "system/system.hh"

namespace rrm::bench
{

/** Options common to all reproduction benches. */
struct BenchOptions
{
    /** Simulated window in (scaled) seconds. */
    double windowSeconds = 0.060;

    /** Retention compression factor (DESIGN.md section 3). */
    double timeScale = 50.0;

    double warmupFraction = 0.2;
    std::uint64_t seed = 1;

    /** Workload subset; empty = the full Table VII set. */
    std::vector<std::string> workloads;

    /** Print per-run progress to stderr. */
    bool verbose = false;

    /** Worker threads (--jobs); 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 0;

    /** Cancel queued runs after the first failure (--fail-fast). */
    bool failFast = false;

    /**
     * @{ Per-run observability outputs. Each stem produces one file
     * per run, named `<stem>.<run-id><ext>` (matrix run ids are
     * `<workload>.<scheme>`), via SystemConfig::obs.
     */
    std::string statsJsonStem;  ///< run records (--stats-json)
    std::string sampleCsvStem;  ///< sampled time series (--sample-csv)
    std::string traceJsonlStem; ///< JSONL traces (--trace-jsonl)
    std::string perfettoStem;   ///< Perfetto timelines (--perfetto-out)
    std::string telemetryStem;  ///< telemetry JSON (--telemetry)
    /** @} */

    /** Wall-clock self-profiling into the run records (--profile). */
    bool profile = false;

    /** Throughput/ETA heartbeat lines on stderr (--progress). */
    bool progress = false;

    /** Bench-report path override (--json-out); bench default if empty. */
    std::string jsonOut;

    /** Per-run wall-clock budget in seconds (--timeout); 0 = none. */
    double timeoutSeconds = 0.0;

    /** Re-attempts after a failed/timed-out run (--retries). */
    unsigned retries = 0;

    /**
     * Fault-injection knobs (--fault-*), copied into every run's
     * SystemConfig. All-defaults means the fault layer is absent and
     * bench outputs are byte-identical to builds without it.
     */
    fault::FaultConfig fault;

    /**
     * Parse argv against the declarative flag table (see
     * benchFlagTable() in bench_common.cc); --help prints the
     * generated usage text and exits.
     */
    static BenchOptions parse(int argc, char **argv);

    /** Workloads selected by the options. */
    std::vector<trace::Workload> selectedWorkloads() const;

    /** Runner policy from these options (jobs, fail-fast, verbose). */
    run::RunnerOptions runnerOptions() const;
};

/** Hook to adjust the SystemConfig before a run (sweep knobs). */
using ConfigHook = std::function<void(sys::SystemConfig &)>;

/**
 * Build the SystemConfig for one run. `tag` names this run's per-run
 * observability outputs (`<stem>.<tag>.json` etc.); empty selects the
 * matrix default "<workload>.<scheme>". Give every variant run of a
 * sweep a distinct tag — RunPlan::validate rejects clashing outputs.
 */
sys::SystemConfig makeConfig(const trace::Workload &workload,
                             const sys::Scheme &scheme,
                             const BenchOptions &opts,
                             const ConfigHook &hook = {},
                             const std::string &tag = "");

/**
 * Plan every selected workload under every scheme, workload-major,
 * with run ids "<workload>.<scheme>".
 */
run::RunPlan buildMatrixPlan(
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes, const BenchOptions &opts,
    const ConfigHook &hook = {});

/**
 * Execute a plan with the options' runner policy and print the
 * plan-level summary (runs, jobs, wall seconds, slowest run) to
 * stderr. fatal() with every failed run id if any run did not finish.
 */
run::RunReport runPlan(const run::RunPlan &plan,
                       const BenchOptions &opts);

/**
 * Run every selected workload under every scheme.
 * Results are indexed [workload][scheme].
 */
std::vector<std::vector<sys::SimResults>> runMatrix(
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes, const BenchOptions &opts,
    const ConfigHook &hook = {});

/** Geometric mean of a per-workload metric. */
double geomeanOver(const std::vector<sys::SimResults> &results,
                   const std::function<double(const sys::SimResults &)>
                       &metric);

/** @{ Table formatting helpers. */
void printTitle(const std::string &title);
void printRule(int width = 98);
/** @} */

/** Schema version of the machine-readable bench reports. */
constexpr int benchReportSchemaVersion = 1;

/**
 * Write a machine-readable report of a bench's run matrix: schema
 * version, bench name, build metadata, the options of the run, and
 * one full SimResults record per (workload, scheme) pair. Execution
 * details (jobs, wall time) are deliberately excluded so reports are
 * byte-identical across --jobs values. fatal() if the file cannot be
 * opened.
 */
void writeBenchReport(
    const std::string &path, const std::string &bench_name,
    const BenchOptions &opts,
    const std::vector<trace::Workload> &workloads,
    const std::vector<sys::Scheme> &schemes,
    const std::vector<std::vector<sys::SimResults>> &results);

} // namespace rrm::bench

#endif // RRM_BENCH_BENCH_COMMON_HH
