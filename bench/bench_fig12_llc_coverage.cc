/**
 * @file
 * Reproduces paper Figure 12 and Table VIII (Section VI-E): RRM LLC
 * coverage rate sweep. Coverage is varied through the set count at
 * fixed 24-way associativity: 128/256/512/1024 sets give 2x/4x/8x/16x
 * the 6 MB LLC's coverage at 48/96/192/384 KB of storage.
 *
 * Paper shape: 2x coverage performs much worse than 4x (entry
 * contention evicts would-be-hot regions); 8x/16x add nothing over
 * 4x, making the default 4x (1.56% of LLC storage) the sweet spot.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace rrm;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::BenchOptions::parse(argc, argv);
    const auto workloads = opts.selectedWorkloads();
    const unsigned set_counts[] = {128, 256, 512, 1024};
    const char *labels[] = {"2x", "4x", "8x", "16x"};

    // ---- Table VIII: storage overheads ----
    bench::printTitle(
        "Table VIII: RRM configuration for different LLC coverage");
    std::printf("%-10s %-22s %12s %14s\n", "coverage", "configuration",
                "storage", "% of LLC");
    for (std::size_t i = 0; i < 4; ++i) {
        monitor::RrmConfig cfg;
        cfg.numSets = set_counts[i];
        std::printf("%-10s %4u sets, %2u ways %14llu KB %13.2f%%\n",
                    labels[i], cfg.numSets, cfg.assoc,
                    static_cast<unsigned long long>(
                        cfg.storageBytes() / 1024),
                    100.0 * static_cast<double>(cfg.storageBytes()) /
                        static_cast<double>(6_MiB));
    }
    std::printf("paper: 48 KB/0.78%%, 96 KB/1.56%%, 192 KB/3.12%%, "
                "384 KB/6.25%%.\n");

    // ---- Figure 12: one plan over the coverage sweep ----
    bench::PlanBuilder plan(opts);
    for (const auto &workload : workloads) {
        for (std::size_t i = 0; i < 4; ++i) {
            const unsigned sets = set_counts[i];
            plan.run(workload, sys::Scheme::rrmScheme())
                .tag(workload.name + ".rrm-cov" + labels[i])
                .with([sets](sys::SystemConfig &cfg) {
                    cfg.rrm.numSets = sets;
                });
        }
    }
    const run::RunReport report = plan.execute();

    bench::printTitle(
        "Figure 12: sensitivity to the LLC coverage rate of RRM");
    std::printf("%-12s %10s %14s %14s %12s\n", "workload", "coverage",
                "IPC", "lifetime (y)", "fast frac");
    std::vector<double> ipc_geo(4, 1.0), life_geo(4, 1.0);
    for (const auto &workload : workloads) {
        for (std::size_t i = 0; i < 4; ++i) {
            const auto &r =
                report.find(workload.name + ".rrm-cov" + labels[i])
                    ->results;
            ipc_geo[i] *= r.aggregateIpc;
            life_geo[i] *= r.lifetimeYears;
            std::printf("%-12s %10s %14.3f %14.3f %11.1f%%\n",
                        i == 0 ? workload.name.c_str() : "",
                        labels[i], r.aggregateIpc, r.lifetimeYears,
                        100.0 * r.fastWriteFraction());
        }
    }
    bench::printRule();
    const double n = static_cast<double>(workloads.size());
    for (std::size_t i = 0; i < 4; ++i) {
        std::printf("geomean %-6s IPC %.3f, lifetime %.3f y\n",
                    labels[i], std::pow(ipc_geo[i], 1.0 / n),
                    std::pow(life_geo[i], 1.0 / n));
    }
    std::printf(
        "paper shape: 2x notably worse than 4x; 4x ~= 8x ~= 16x.\n");
    return 0;
}
