/**
 * @file
 * The run subsystem: RunPlan construction and validation, Runner
 * execution on 1..N workers, and the properties the bench layer
 * depends on — plan-order reports, byte-identical outputs across
 * worker counts (with SOURCE_DATE_EPOCH pinned), captured per-run
 * failures, fail-fast cancellation, and serialized progress
 * callbacks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "run/runner.hh"

namespace rrm::run
{
namespace
{

namespace fs = std::filesystem;

sys::SystemConfig
quickConfig(const std::string &workload, sys::Scheme scheme)
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName(workload);
    cfg.scheme = scheme;
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.008;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    return cfg;
}

const sys::Scheme kStatic7 =
    sys::Scheme::staticScheme(pcm::WriteMode::Sets7);

/** A fast 4-run plan over two workloads and two schemes. */
RunPlan
smallPlan()
{
    RunPlan plan;
    for (const char *w : {"lbm", "libquantum"}) {
        plan.add(quickConfig(w, kStatic7));
        plan.add(quickConfig(w, sys::Scheme::rrmScheme()));
    }
    return plan;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << "cannot open " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

TEST(RunPlan, DefaultsIdsAndLabels)
{
    RunPlan plan;
    RunSpec &a = plan.add(quickConfig("lbm", kStatic7));
    EXPECT_EQ(a.id, "lbm.Static-7-SETs");
    EXPECT_EQ(a.label, "lbm.Static-7-SETs");

    RunSpec &b = plan.add(quickConfig("lbm", kStatic7), "lbm.sweep-1",
                          "lbm sweep point 1");
    EXPECT_EQ(b.id, "lbm.sweep-1");
    EXPECT_EQ(b.label, "lbm sweep point 1");
    EXPECT_EQ(plan.size(), 2u);
    EXPECT_NO_THROW(plan.validate());
}

TEST(RunPlan, MatrixBuildsWorkloadMajorOrder)
{
    const std::vector<trace::Workload> workloads = {
        trace::workloadFromName("lbm"),
        trace::workloadFromName("libquantum")};
    const std::vector<sys::Scheme> schemes = {
        kStatic7, sys::Scheme::rrmScheme()};
    const RunPlan plan = RunPlan::matrix(
        workloads, schemes,
        [](const trace::Workload &w, const sys::Scheme &s) {
            return quickConfig(w.name, s);
        });
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].id, "lbm.Static-7-SETs");
    EXPECT_EQ(plan[1].id, "lbm.RRM");
    EXPECT_EQ(plan[2].id, "libquantum.Static-7-SETs");
    EXPECT_EQ(plan[3].id, "libquantum.RRM");
}

TEST(RunPlan, ValidateAggregatesAllProblemsIntoOneError)
{
    RunPlan plan;
    // Problem 1+2: duplicate id, each with a clashing output file.
    sys::SystemConfig a = quickConfig("lbm", kStatic7);
    a.obs.runRecordFile = "clash.json";
    plan.add(std::move(a), "dup");
    sys::SystemConfig b = quickConfig("lbm", sys::Scheme::rrmScheme());
    b.obs.runRecordFile = "clash.json";
    plan.add(std::move(b), "dup");
    // Problem 3: a config that fails its own validation twice over.
    sys::SystemConfig c = quickConfig("libquantum", kStatic7);
    c.windowSeconds = -1.0;
    c.timeScale = 0.0;
    plan.add(std::move(c), "broken");

    try {
        plan.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("dup"), std::string::npos) << msg;
        EXPECT_NE(msg.find("clash.json"), std::string::npos) << msg;
        EXPECT_NE(msg.find("broken: "), std::string::npos) << msg;
        EXPECT_NE(msg.find("window must be positive"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("time scale must be >= 1"),
                  std::string::npos)
            << msg;
    }
}

TEST(RunPlan, ValidateRejectsEmptyPlan)
{
    EXPECT_THROW(RunPlan{}.validate(), FatalError);
}

TEST(Runner, EffectiveJobsClampsToPlanAndHardware)
{
    RunnerOptions opts;
    opts.jobs = 8;
    EXPECT_EQ(Runner(opts).effectiveJobs(2), 2u);
    EXPECT_EQ(Runner(opts).effectiveJobs(100), 8u);
    opts.jobs = 1;
    EXPECT_EQ(Runner(opts).effectiveJobs(100), 1u);
    opts.jobs = 0; // hardware concurrency, whatever it is: >= 1
    EXPECT_GE(Runner(opts).effectiveJobs(100), 1u);
}

TEST(Runner, ReportIsInPlanOrderWithOkResults)
{
    RunnerOptions opts;
    opts.jobs = 2;
    const RunReport report = Runner(opts).execute(smallPlan());

    ASSERT_EQ(report.runs.size(), 4u);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.completedCount(), 4u);
    EXPECT_EQ(report.failedCount(), 0u);
    EXPECT_EQ(report.cancelledCount(), 0u);
    EXPECT_EQ(report.failureSummary(), "");
    EXPECT_EQ(report.jobs, 2u);
    EXPECT_GT(report.wallSeconds, 0.0);
    EXPECT_LT(report.slowestRunIndex(), 4u);

    EXPECT_EQ(report.runs[0].id, "lbm.Static-7-SETs");
    EXPECT_EQ(report.runs[1].id, "lbm.RRM");
    EXPECT_EQ(report.runs[2].id, "libquantum.Static-7-SETs");
    EXPECT_EQ(report.runs[3].id, "libquantum.RRM");
    for (const RunResult &r : report.runs) {
        EXPECT_EQ(r.status, RunStatus::Ok);
        EXPECT_GT(r.results.totalInstructions, 0u) << r.id;
        EXPECT_GT(r.wallSeconds, 0.0) << r.id;
    }

    const RunResult *rrm = report.find("libquantum.RRM");
    ASSERT_NE(rrm, nullptr);
    EXPECT_EQ(rrm->results.scheme, "RRM");
    EXPECT_EQ(report.find("no-such-run"), nullptr);
    EXPECT_EQ(report.okResults().size(), 4u);
}

TEST(Runner, SerialAndParallelOutputsAreByteIdentical)
{
    // Pin the run-record timestamp (reproducible-builds convention)
    // so the only possible difference is real nondeterminism.
    ::setenv("SOURCE_DATE_EPOCH", "0", 1);
    const fs::path base =
        fs::temp_directory_path() / "rrm_test_runner_det";
    fs::remove_all(base);

    const auto planFor = [&](const std::string &sub) {
        fs::create_directories(base / sub);
        RunPlan plan;
        for (const char *w : {"lbm", "libquantum"}) {
            for (const sys::Scheme &s :
                 {kStatic7, sys::Scheme::rrmScheme()}) {
                sys::SystemConfig cfg = quickConfig(w, s);
                const std::string id =
                    std::string(w) + "." + s.name();
                cfg.obs.runRecordFile =
                    (base / sub / (id + ".json")).string();
                plan.add(std::move(cfg), id);
            }
        }
        return plan;
    };

    RunnerOptions serial;
    serial.jobs = 1;
    const RunReport a = Runner(serial).execute(planFor("serial"));
    RunnerOptions parallel;
    parallel.jobs = 4;
    const RunReport b = Runner(parallel).execute(planFor("parallel"));

    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].id, b.runs[i].id);
        EXPECT_EQ(a.runs[i].results.totalInstructions,
                  b.runs[i].results.totalInstructions)
            << a.runs[i].id;
        EXPECT_EQ(a.runs[i].results.demandWrites,
                  b.runs[i].results.demandWrites)
            << a.runs[i].id;
        EXPECT_DOUBLE_EQ(a.runs[i].results.aggregateIpc,
                         b.runs[i].results.aggregateIpc)
            << a.runs[i].id;

        const std::string serial_record =
            slurp(base / "serial" / (a.runs[i].id + ".json"));
        const std::string parallel_record =
            slurp(base / "parallel" / (a.runs[i].id + ".json"));
        EXPECT_FALSE(serial_record.empty()) << a.runs[i].id;
        EXPECT_EQ(serial_record, parallel_record) << a.runs[i].id;
    }
    fs::remove_all(base);
}

TEST(Runner, PostRunHookSeesTheLiveSystem)
{
    RunPlan plan;
    std::string seen_workload;
    RunSpec &spec = plan.add(quickConfig("lbm", kStatic7));
    spec.postRun = [&](const sys::System &system,
                       const sys::SimResults &results) {
        seen_workload = results.workload;
        EXPECT_EQ(system.config().workload.name, results.workload);
    };
    RunnerOptions opts;
    opts.jobs = 1;
    const RunReport report = Runner(opts).execute(plan);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(seen_workload, "lbm");
}

TEST(Runner, RunFailureIsCapturedNotThrown)
{
    RunPlan plan;
    plan.add(quickConfig("lbm", kStatic7));
    plan.add(quickConfig("lbm", sys::Scheme::rrmScheme())).postRun =
        [](const sys::System &, const sys::SimResults &) {
            throw std::runtime_error("injected failure");
        };
    plan.add(quickConfig("libquantum", kStatic7));

    RunnerOptions opts;
    opts.jobs = 1;
    const RunReport report = Runner(opts).execute(plan);

    ASSERT_EQ(report.runs.size(), 3u);
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.completedCount(), 2u);
    EXPECT_EQ(report.failedCount(), 1u);
    EXPECT_EQ(report.cancelledCount(), 0u);
    EXPECT_EQ(report.runs[1].status, RunStatus::Failed);
    EXPECT_NE(report.runs[1].error.find("injected failure"),
              std::string::npos);
    EXPECT_EQ(report.runs[0].status, RunStatus::Ok);
    EXPECT_EQ(report.runs[2].status, RunStatus::Ok);
    EXPECT_NE(report.failureSummary().find("lbm.RRM"),
              std::string::npos);
    EXPECT_THROW(report.okResults(), FatalError);
}

TEST(Runner, FailFastCancelsQueuedRuns)
{
    RunPlan plan;
    plan.add(quickConfig("lbm", kStatic7), "first");
    plan.add(quickConfig("lbm", sys::Scheme::rrmScheme()), "boom")
            .postRun = [](const sys::System &, const sys::SimResults &) {
        throw std::runtime_error("injected failure");
    };
    plan.add(quickConfig("libquantum", kStatic7), "third");
    plan.add(quickConfig("libquantum", sys::Scheme::rrmScheme()),
             "fourth");

    RunnerOptions opts;
    opts.jobs = 1; // serial: cancellation set is deterministic
    opts.failFast = true;
    const RunReport report = Runner(opts).execute(plan);

    ASSERT_EQ(report.runs.size(), 4u);
    EXPECT_EQ(report.runs[0].status, RunStatus::Ok);
    EXPECT_EQ(report.runs[1].status, RunStatus::Failed);
    EXPECT_EQ(report.runs[2].status, RunStatus::Cancelled);
    EXPECT_EQ(report.runs[3].status, RunStatus::Cancelled);
    EXPECT_EQ(report.completedCount(), 1u);
    EXPECT_EQ(report.failedCount(), 1u);
    EXPECT_EQ(report.cancelledCount(), 2u);

    const std::string summary = report.failureSummary();
    EXPECT_NE(summary.find("boom"), std::string::npos) << summary;
    EXPECT_NE(summary.find("cancelled"), std::string::npos) << summary;
}

TEST(Runner, ProgressCallbackReportsEveryExecutedRun)
{
    std::vector<RunProgress> events;
    RunnerOptions opts;
    opts.jobs = 2;
    opts.onProgress = [&](const RunProgress &p) {
        events.push_back(p);
    };
    const RunReport report = Runner(opts).execute(smallPlan());
    ASSERT_TRUE(report.allOk());

    ASSERT_EQ(events.size(), 4u);
    std::set<std::size_t> indices;
    double slowest = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const RunProgress &p = events[i];
        EXPECT_EQ(p.total, 4u);
        EXPECT_EQ(p.finished, i + 1);
        EXPECT_EQ(p.status, RunStatus::Ok);
        EXPECT_GT(p.runSeconds, 0.0);
        EXPECT_GE(p.slowestSeconds, slowest); // monotone watermark
        slowest = p.slowestSeconds;
        indices.insert(p.index);
    }
    EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(RunReport, RegistersPlanLevelStats)
{
    RunnerOptions opts;
    opts.jobs = 1;
    const RunReport report = Runner(opts).execute(smallPlan());

    stats::StatGroup root("root");
    report.registerStats(root);
    EXPECT_NE(root.find("run.runs"), nullptr);
    EXPECT_NE(root.find("run.completed"), nullptr);
    EXPECT_NE(root.find("run.failed"), nullptr);
    EXPECT_NE(root.find("run.jobs"), nullptr);
    EXPECT_NE(root.find("run.wallSeconds"), nullptr);

    // The wall-clock profile has the plan root plus one node per run.
    const obs::Profiler prof = report.profile();
    EXPECT_EQ(prof.depth(), 0u);
    EXPECT_EQ(prof.nodes().size(), 1 + report.runs.size());
    EXPECT_EQ(prof.nodes().count("run"), 1u);
    EXPECT_EQ(prof.nodes().count("run.lbm.RRM"), 1u);
}

} // namespace
} // namespace rrm::run
