/**
 * @file
 * Tests for the contract-checking framework (common/check.hh): macro
 * semantics, the three failure policies, per-kind violation counters,
 * and the build-type gating of RRM_DCHECK.
 */

#include <gtest/gtest.h>

#include "common/check.hh"

namespace rrm::check
{
namespace
{

/** Every test starts from zero counters and the Throw policy. */
class CheckTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setFailurePolicy(FailurePolicy::Throw);
        resetViolations();
    }

    void TearDown() override
    {
        setFailurePolicy(FailurePolicy::Throw);
        resetViolations();
    }
};

TEST_F(CheckTest, PassingCheckIsFree)
{
    RRM_CHECK(1 + 1 == 2);
    RRM_AUDIT(true, "never shown");
    EXPECT_EQ(totalViolations(), 0u);
    EXPECT_EQ(lastViolationMessage(), "");
}

TEST_F(CheckTest, FailingCheckThrowsTypedErrorUnderThrowPolicy)
{
    try {
        RRM_CHECK(2 + 2 == 5, "arithmetic is broken");
        FAIL() << "RRM_CHECK did not throw";
    } catch (const CheckError &e) {
        EXPECT_EQ(e.kind(), ViolationKind::Check);
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2 + 2 == 5"), std::string::npos) << msg;
        EXPECT_NE(msg.find("test_check.cc"), std::string::npos) << msg;
        EXPECT_NE(msg.find("arithmetic is broken"), std::string::npos)
            << msg;
    }
    EXPECT_EQ(violationCount(ViolationKind::Check), 1u);
}

TEST_F(CheckTest, DetailArgumentsAreStreamed)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    const int got = 7;
    RRM_CHECK(got == 3, "got ", got, " expected ", 3);
    const std::string msg = lastViolationMessage();
    EXPECT_NE(msg.find("got 7 expected 3"), std::string::npos) << msg;
}

TEST_F(CheckTest, LogAndCountContinuesExecution)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    bool reached = false;
    RRM_CHECK(false, "first");
    RRM_CHECK(false, "second");
    reached = true;
    EXPECT_TRUE(reached);
    EXPECT_EQ(violationCount(ViolationKind::Check), 2u);
    EXPECT_EQ(totalViolations(), 2u);
}

TEST_F(CheckTest, CountersArePerKind)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RRM_CHECK(false);
    RRM_AUDIT(false);
    RRM_AUDIT(false);
    EXPECT_EQ(violationCount(ViolationKind::Check), 1u);
    EXPECT_EQ(violationCount(ViolationKind::Audit), 2u);
    EXPECT_EQ(violationCount(ViolationKind::DCheck), 0u);
    EXPECT_EQ(violationCount(ViolationKind::Unreachable), 0u);
    EXPECT_EQ(totalViolations(), 3u);
}

TEST_F(CheckTest, ResetViolationsClearsEverything)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RRM_CHECK(false, "stale");
    ASSERT_GT(totalViolations(), 0u);
    resetViolations();
    EXPECT_EQ(totalViolations(), 0u);
    EXPECT_EQ(lastViolationMessage(), "");
}

TEST_F(CheckTest, AuditFailureThrowsAuditKind)
{
    try {
        RRM_AUDIT(false, "deep check");
        FAIL() << "RRM_AUDIT did not throw";
    } catch (const CheckError &e) {
        EXPECT_EQ(e.kind(), ViolationKind::Audit);
    }
    EXPECT_EQ(violationCount(ViolationKind::Audit), 1u);
    EXPECT_EQ(violationCount(ViolationKind::Check), 0u);
}

TEST_F(CheckTest, UnreachableThrowsEvenUnderLogAndCount)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    EXPECT_THROW(RRM_UNREACHABLE("impossible state"), CheckError);
    EXPECT_EQ(violationCount(ViolationKind::Unreachable), 1u);
}

TEST_F(CheckTest, DcheckFollowsBuildConfiguration)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    int evaluations = 0;
    auto probe = [&evaluations]() {
        ++evaluations;
        return false;
    };
    RRM_DCHECK(probe(), "debug-only contract");
    if (dchecksEnabled()) {
        EXPECT_EQ(evaluations, 1);
        EXPECT_EQ(violationCount(ViolationKind::DCheck), 1u);
    } else {
        // Compiled out: the condition must not even be evaluated.
        EXPECT_EQ(evaluations, 0);
        EXPECT_EQ(violationCount(ViolationKind::DCheck), 0u);
    }
}

TEST_F(CheckTest, ScopedPolicySavesAndRestores)
{
    ASSERT_EQ(failurePolicy(), FailurePolicy::Throw);
    {
        ScopedFailurePolicy outer(FailurePolicy::LogAndCount);
        EXPECT_EQ(failurePolicy(), FailurePolicy::LogAndCount);
        {
            ScopedFailurePolicy inner(FailurePolicy::Abort);
            EXPECT_EQ(failurePolicy(), FailurePolicy::Abort);
        }
        EXPECT_EQ(failurePolicy(), FailurePolicy::LogAndCount);
    }
    EXPECT_EQ(failurePolicy(), FailurePolicy::Throw);
}

TEST_F(CheckTest, ViolationKindNamesAreStable)
{
    EXPECT_EQ(violationKindName(ViolationKind::Check), "check");
    EXPECT_EQ(violationKindName(ViolationKind::DCheck), "dcheck");
    EXPECT_EQ(violationKindName(ViolationKind::Unreachable),
              "unreachable");
    EXPECT_EQ(violationKindName(ViolationKind::Audit), "audit");
}

using CheckDeathTest = CheckTest;

TEST_F(CheckDeathTest, AbortPolicyAborts)
{
    ScopedFailurePolicy policy(FailurePolicy::Abort);
    EXPECT_DEATH(RRM_CHECK(false, "fatal contract"), "fatal contract");
}

} // namespace
} // namespace rrm::check
