/**
 * @file
 * Tests for the three-level inclusive cache hierarchy, including the
 * LLC-write-registration and memory-write event semantics the RRM
 * depends on.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/random.hh"

namespace rrm::cache
{
namespace
{

/** A small hierarchy so evictions are easy to provoke. */
HierarchyConfig
tinyHierarchy()
{
    HierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.l1.name = "l1";
    cfg.l1.sizeBytes = 512; // 8 lines, 2 sets
    cfg.l1.assoc = 4;
    cfg.l1.hitLatency = 1_ns;
    cfg.l2.name = "l2";
    cfg.l2.sizeBytes = 1024; // 16 lines
    cfg.l2.assoc = 4;
    cfg.l2.hitLatency = 6_ns;
    cfg.llc.name = "llc";
    cfg.llc.sizeBytes = 4096; // 64 lines
    cfg.llc.assoc = 4;
    cfg.llc.hitLatency = 17_ns;
    return cfg;
}

TEST(Hierarchy, ColdAccessMissesEverywhere)
{
    CacheHierarchy h(tinyHierarchy());
    const HierarchyEvents ev = h.access(0, 0x1000, false);
    EXPECT_TRUE(ev.llcMiss);
    EXPECT_EQ(ev.hitLevel, 0u);
    EXPECT_EQ(ev.latency, 24_ns); // all three lookup latencies
    EXPECT_FALSE(ev.memWrite);
    EXPECT_FALSE(ev.registration);
}

TEST(Hierarchy, FillMakesLinePresentAtAllLevels)
{
    CacheHierarchy h(tinyHierarchy());
    ASSERT_TRUE(h.access(0, 0x1000, false).llcMiss);
    h.fill(0, 0x1000, false);
    EXPECT_TRUE(h.l1(0).contains(0x1000));
    EXPECT_TRUE(h.l2(0).contains(0x1000));
    EXPECT_TRUE(h.llc().contains(0x1000));
    const HierarchyEvents ev = h.access(0, 0x1000, false);
    EXPECT_EQ(ev.hitLevel, 1u);
    EXPECT_EQ(ev.latency, 1_ns);
}

TEST(Hierarchy, StoreDirtiesL1OnFill)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x40, true);
    h.fill(0, 0x40, true);
    EXPECT_TRUE(h.l1(0).isDirty(0x40));
    EXPECT_FALSE(h.llc().isDirty(0x40));
}

TEST(Hierarchy, DoubleFillPanics)
{
    CacheHierarchy h(tinyHierarchy());
    h.fill(0, 0x40, false);
    EXPECT_THROW(h.fill(0, 0x40, false), PanicError);
}

/**
 * Filling distinct lines mapping to one L1 set pushes dirty victims
 * down to L2 (no registration: lines are still inside the core's
 * private caches).
 */
TEST(Hierarchy, DirtyL1VictimMergesIntoL2)
{
    CacheHierarchy h(tinyHierarchy());
    // L1: 2 sets -> stride 128 B stays in one set.
    const Addr stride = 128;
    h.fill(0, 0, true); // dirty in L1
    for (int i = 1; i <= 4; ++i) {
        const HierarchyEvents ev =
            h.fill(0, static_cast<Addr>(i) * stride, false);
        EXPECT_FALSE(ev.registration);
    }
    // Line 0 left L1 but must be dirty in L2 now.
    EXPECT_FALSE(h.l1(0).contains(0));
    ASSERT_TRUE(h.l2(0).contains(0));
    EXPECT_TRUE(h.l2(0).isDirty(0));
}

/**
 * When a dirty line is evicted from L2 it is written into its LLC
 * line: the hierarchy must emit an LLC Write Registration whose
 * was_dirty flag reflects the LLC line's previous state.
 */
TEST(Hierarchy, L2DirtyEvictionRegistersLlcWrite)
{
    CacheHierarchy h(tinyHierarchy());
    // L2: 4 sets -> stride 256 B maps to one L2 set.
    const Addr stride = 256;
    h.fill(0, 0, true);
    bool registered = false;
    Addr reg_addr = 0;
    bool was_dirty = true;
    for (int i = 1; i <= 8 && !registered; ++i) {
        const HierarchyEvents ev =
            h.fill(0, static_cast<Addr>(i) * stride, false);
        if (ev.registration) {
            registered = true;
            reg_addr = ev.registrationAddr;
            was_dirty = ev.registrationWasDirty;
        }
    }
    ASSERT_TRUE(registered);
    EXPECT_EQ(reg_addr, 0u);
    EXPECT_FALSE(was_dirty); // first writeback: LLC line was clean
    EXPECT_TRUE(h.llc().isDirty(0));
}

/**
 * A second dirty writeback of the same line while its LLC copy is
 * still present must carry was_dirty == true — the signal the RRM's
 * streaming filter keys on.
 */
TEST(Hierarchy, SecondWritebackSeesDirtyLlcLine)
{
    CacheHierarchy h(tinyHierarchy());
    const Addr stride = 256;

    auto push_through_l2 = [&](Addr target) -> HierarchyEvents {
        // Re-dirty the target, then evict it from L2 by filling the
        // set with other lines. The registration can surface either
        // from the access (LLC-hit refill) or from the miss fill.
        h.access(0, target, true);
        for (int i = 1; i <= 8; ++i) {
            const Addr filler = static_cast<Addr>(i) * stride + 0x10000;
            HierarchyEvents ev = h.access(0, filler, false);
            if (ev.registration && ev.registrationAddr == target)
                return ev;
            if (ev.llcMiss) {
                ev = h.fill(0, filler, false);
                if (ev.registration && ev.registrationAddr == target)
                    return ev;
            }
        }
        return HierarchyEvents{};
    };

    h.access(0, 0, true);
    h.fill(0, 0, true);
    const HierarchyEvents first = push_through_l2(0);
    ASSERT_TRUE(first.registration);
    EXPECT_FALSE(first.registrationWasDirty);

    // The line is now only in the LLC (dirty). Touch it again with a
    // store (refills L1/L2 from LLC) and push it through once more.
    ASSERT_FALSE(h.access(0, 0, true).llcMiss);
    const HierarchyEvents second = push_through_l2(0);
    ASSERT_TRUE(second.registration);
    EXPECT_TRUE(second.registrationWasDirty);
}

TEST(Hierarchy, DirtyLlcVictimBecomesMemoryWrite)
{
    CacheHierarchy h(tinyHierarchy());
    // LLC: 16 sets -> stride 1024 B in one LLC set (assoc 4).
    const Addr stride = 1024;
    h.fill(0, 0, true);
    // Evict line 0 from L1/L2 with fillers that share its L1/L2 sets
    // (block multiples of 4) but land in other LLC sets (block not a
    // multiple of 16), pushing the dirty data into the LLC line.
    for (int i : {1, 2, 3, 5, 6, 7, 9, 10})
        h.fill(0, static_cast<Addr>(4 * i) * 64, false);
    ASSERT_TRUE(h.llc().contains(0));
    ASSERT_TRUE(h.llc().isDirty(0));

    bool wrote = false;
    Addr write_addr = 1;
    for (int i = 1; i <= 8 && !wrote; ++i) {
        const HierarchyEvents ev =
            h.fill(0, static_cast<Addr>(i) * stride, false);
        if (ev.memWrite) {
            wrote = true;
            write_addr = ev.memWriteAddr;
        }
    }
    ASSERT_TRUE(wrote);
    EXPECT_EQ(write_addr, 0u);
    EXPECT_FALSE(h.llc().contains(0));
}

TEST(Hierarchy, CleanLlcVictimVanishesSilently)
{
    CacheHierarchy h(tinyHierarchy());
    const Addr stride = 1024;
    h.fill(0, 0, false); // never dirtied
    for (int i = 1; i <= 4; ++i) {
        const HierarchyEvents ev =
            h.fill(0, static_cast<Addr>(i) * stride, false);
        EXPECT_FALSE(ev.memWrite);
    }
}

/**
 * Back-invalidation: an LLC victim whose L1 copy is dirtier than the
 * LLC line must still reach memory with the dirty data accounted.
 */
TEST(Hierarchy, BackInvalidationMergesUpperDirtyCopy)
{
    CacheHierarchy h(tinyHierarchy());
    const Addr stride = 1024;
    h.fill(0, 0, true); // dirty only in L1
    bool wrote = false;
    for (int i = 1; i <= 4; ++i) {
        const HierarchyEvents ev =
            h.fill(0, static_cast<Addr>(i) * stride, false);
        wrote |= ev.memWrite && ev.memWriteAddr == 0;
    }
    EXPECT_TRUE(wrote);
    EXPECT_FALSE(h.l1(0).contains(0));
    EXPECT_FALSE(h.l2(0).contains(0));
}

TEST(Hierarchy, CoresHavePrivateUpperLevels)
{
    CacheHierarchy h(tinyHierarchy());
    h.fill(0, 0x40, false);
    EXPECT_TRUE(h.l1(0).contains(0x40));
    EXPECT_FALSE(h.l1(1).contains(0x40));
    // Core 1 hits the shared LLC, not its own upper levels.
    const HierarchyEvents ev = h.access(1, 0x40, false);
    EXPECT_FALSE(ev.llcMiss);
    EXPECT_EQ(ev.hitLevel, 3u);
}

TEST(Hierarchy, InclusionHoldsUnderRandomTraffic)
{
    CacheHierarchy h(tinyHierarchy());
    Random rng(1234);
    for (int i = 0; i < 20000; ++i) {
        const unsigned core = static_cast<unsigned>(rng.uniform(2));
        const Addr addr = rng.uniform(512) * 64;
        const bool is_write = rng.chance(0.4);
        if (h.access(core, addr, is_write).llcMiss)
            h.fill(core, addr, is_write);
        if (i % 1000 == 0) {
            ASSERT_TRUE(h.checkInclusion()) << "iteration " << i;
        }
    }
    EXPECT_TRUE(h.checkInclusion());
}

TEST(Hierarchy, AtMostOneRegistrationAndWritePerFill)
{
    CacheHierarchy h(tinyHierarchy());
    Random rng(99);
    for (int i = 0; i < 20000; ++i) {
        const unsigned core = static_cast<unsigned>(rng.uniform(2));
        const Addr addr = rng.uniform(256) * 64;
        const bool is_write = rng.chance(0.5);
        const HierarchyEvents ev = h.access(core, addr, is_write);
        if (ev.llcMiss) {
            const HierarchyEvents fe = h.fill(core, addr, is_write);
            if (fe.memWrite) {
                ASSERT_NE(fe.memWriteAddr, addr);
            }
        }
    }
}

TEST(Hierarchy, DefaultConfigMatchesTable4)
{
    const HierarchyConfig cfg = defaultHierarchyConfig();
    EXPECT_EQ(cfg.numCores, 4u);
    EXPECT_EQ(cfg.l1.sizeBytes, 32_KiB);
    EXPECT_EQ(cfg.l1.assoc, 4u);
    EXPECT_EQ(cfg.l2.sizeBytes, 256_KiB);
    EXPECT_EQ(cfg.l2.assoc, 8u);
    EXPECT_EQ(cfg.llc.sizeBytes, 6_MiB);
    EXPECT_EQ(cfg.llc.assoc, 24u);
    EXPECT_EQ(cfg.llc.mshrs, 32u);
}

} // namespace
} // namespace rrm::cache
