/**
 * @file
 * Hot-path telemetry tests: stat registration and hook wiring, the
 * clamping contract of recordRefreshPressure, end-to-end collection
 * through a real System run, and the PR 5 golden guarantee — turning
 * telemetry ON must not change a byte of the run record or sampled
 * time series, because the telemetry tree is standalone (never
 * attached to the System's stat root).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/telemetry.hh"
#include "system/system.hh"

#ifndef RRM_GOLDEN_DIR
#error "RRM_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace rrm
{
namespace
{

TEST(Telemetry, RegistersEveryHookNonNull)
{
    obs::Telemetry t;
    const EventQueueTelemetry *q = t.queueHooks();
    ASSERT_NE(q, nullptr);
    EXPECT_NE(q->executedByPriority, nullptr);
    EXPECT_NE(q->scheduleLatency, nullptr);
    EXPECT_NE(q->queueDepth, nullptr);
    const obs::WritePathTelemetry *w = t.writePathHooks();
    ASSERT_NE(w, nullptr);
    EXPECT_NE(w->writebackOccupancy, nullptr);
    EXPECT_NE(w->refreshOverflowOccupancy, nullptr);
}

TEST(Telemetry, StatsLiveUnderTheStandaloneTelemetryRoot)
{
    obs::Telemetry t;
    EXPECT_EQ(t.statsRoot().name(), "telemetry");
    for (const char *name :
         {"eventsByPriority", "scheduleLatency", "queueDepth",
          "writebackOccupancy", "refreshOverflowOccupancy",
          "refreshPressure"}) {
        EXPECT_NE(t.statsRoot().find(name), nullptr)
            << "missing telemetry stat: " << name;
    }
}

TEST(Telemetry, RefreshPressureIsClampedToPercent)
{
    obs::Telemetry t;
    t.recordRefreshPressure(-0.5); // clamps to 0
    t.recordRefreshPressure(0.5);  // 50
    t.recordRefreshPressure(2.0);  // clamps to 100
    const auto *h = dynamic_cast<const stats::HistogramStat *>(
        t.statsRoot().find("refreshPressure"));
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->samples(), 3u);
    EXPECT_EQ(h->minSample(), 0u);
    EXPECT_EQ(h->maxSample(), 100u);
}

TEST(Telemetry, ExportsContainEveryStat)
{
    obs::Telemetry t;
    t.recordRefreshPressure(0.25);

    std::ostringstream json, csv;
    t.writeJson(json);
    t.writeCsv(csv);
    for (const char *name :
         {"eventsByPriority", "scheduleLatency", "queueDepth",
          "refreshPressure"}) {
        EXPECT_NE(json.str().find(name), std::string::npos) << name;
        EXPECT_NE(csv.str().find(name), std::string::npos) << name;
    }
    EXPECT_EQ(json.str().front(), '{');
    EXPECT_EQ(csv.str().substr(0, 5), "stat,");
}

sys::SystemConfig
smallConfig()
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName("GemsFDTD");
    cfg.scheme = sys::Scheme::rrmScheme();
    cfg.windowSeconds = 0.002;
    return cfg;
}

TEST(Telemetry, SystemRunPopulatesQueueAndWritePathHistograms)
{
    sys::SystemConfig cfg = smallConfig();
    cfg.obs.telemetry = true;
    sys::System system(std::move(cfg));
    system.run();

    ASSERT_NE(system.telemetry(), nullptr);
    const EventQueueTelemetry *q = system.telemetry()->queueHooks();
    EXPECT_GT(q->executedByPriority->total(), 0.0);
    EXPECT_GT(q->scheduleLatency->samples(), 0u);
    EXPECT_GT(q->queueDepth->samples(), 0u);
    const obs::WritePathTelemetry *w =
        system.telemetry()->writePathHooks();
    EXPECT_GT(w->writebackOccupancy->samples(), 0u);
}

TEST(Telemetry, OffByDefault)
{
    sys::System system(smallConfig());
    EXPECT_EQ(system.telemetry(), nullptr);
}

TEST(Telemetry, OutputFileImpliesCollection)
{
    sys::SystemConfig cfg = smallConfig();
    cfg.obs.telemetryJsonFile = "telemetry_implied.telemetry.json";
    sys::System system(std::move(cfg));
    system.run();
    ASSERT_NE(system.telemetry(), nullptr);

    std::ifstream is("telemetry_implied.telemetry.json");
    ASSERT_TRUE(is.good());
    std::ostringstream ss;
    ss << is.rdbuf();
    EXPECT_NE(ss.str().find("queueDepth"), std::string::npos);
}

// ---- Golden byte-identity (the PR 5 contract) ----

/** Drop the volatile metadata lines of a run record. */
std::string
normalize(const std::string &text)
{
    std::istringstream in(text);
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"gitDescribe\"") != std::string::npos ||
            line.find("\"timestampUtc\"") != std::string::npos) {
            continue;
        }
        out += line;
        out += '\n';
    }
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/**
 * The frozen configuration of tests/test_policy_golden.cc, plus
 * telemetry. Telemetry must be invisible to the run record and the
 * sample CSV: its stats tree is standalone and its output goes to
 * separate files.
 */
TEST(TelemetryGolden, RecordsAreByteIdenticalWithTelemetryOn)
{
    setenv("SOURCE_DATE_EPOCH", "0", /*overwrite=*/0);

    const std::string stem = "telemetry_golden.RRM";
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName("GemsFDTD");
    cfg.scheme = sys::parseScheme("RRM");
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.060;
    cfg.warmupFraction = 0.2;
    cfg.seed = 7;
    cfg.obs.runRecordFile = stem + ".json";
    cfg.obs.sampleCsvFile = stem + ".csv";
    cfg.obs.telemetry = true;
    cfg.obs.telemetryJsonFile = stem + ".telemetry.json";
    cfg.obs.telemetryCsvFile = stem + ".telemetry.csv";
    {
        sys::System system(std::move(cfg));
        system.run();
    }

    for (const char *ext : {".json", ".csv"}) {
        const std::string produced = normalize(readFile(stem + ext));
        const std::string golden = readFile(
            std::string(RRM_GOLDEN_DIR) + "/policy.RRM" + ext);
        EXPECT_EQ(produced, golden)
            << ext
            << ": enabling telemetry changed the run output; the "
               "telemetry stats tree must stay off the System's stat "
               "root";
    }
    // And the telemetry files themselves were written.
    EXPECT_NE(readFile(stem + ".telemetry.json").find("queueDepth"),
              std::string::npos);
    EXPECT_NE(readFile(stem + ".telemetry.csv").find("queueDepth"),
              std::string::npos);
}

} // namespace
} // namespace rrm
