/**
 * @file
 * Tests for the deterministic PRNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hh"

namespace rrm
{
namespace
{

TEST(Random, SameSeedSameStream)
{
    Random a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Random, UniformStaysBelowBound)
{
    Random rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000000ULL}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.uniform(bound), bound);
    }
}

TEST(Random, UniformZeroBoundPanics)
{
    Random rng(7);
    EXPECT_THROW(rng.uniform(0), PanicError);
}

TEST(Random, UniformCoversSmallRange)
{
    Random rng(11);
    bool seen[4] = {false, false, false, false};
    for (int i = 0; i < 1000; ++i)
        seen[rng.uniform(4)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Random, UniformRangeInclusive)
{
    Random rng(5);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformRange(10, 13);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 13u);
        lo |= v == 10;
        hi |= v == 13;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Random, UniformDoubleInUnitInterval)
{
    Random rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Random, UniformDoubleMeanNearHalf)
{
    Random rng(17);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniformDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, ChanceExtremes)
{
    Random rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Random, ChanceFrequencyTracksProbability)
{
    Random rng(21);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, GeometricMeanMatches)
{
    Random rng(33);
    for (double mean : {1.0, 2.0, 10.0, 50.0}) {
        double sum = 0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.geometric(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05) << "mean " << mean;
    }
}

TEST(Random, GeometricAtLeastOne)
{
    Random rng(41);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GE(rng.geometric(3.0), 1u);
}

TEST(Random, GeometricBelowOneMeanPanics)
{
    Random rng(2);
    EXPECT_THROW(rng.geometric(0.5), PanicError);
}

TEST(Random, SplitStreamsAreDecorrelated)
{
    Random parent(55);
    Random c1 = parent.split();
    Random c2 = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.next() == c2.next())
            ++same;
    EXPECT_EQ(same, 0);
}

// ---- Zipf sampler ----

struct ZipfCase
{
    std::uint64_t n;
    double s;
};

class ZipfTest : public ::testing::TestWithParam<ZipfCase>
{};

TEST_P(ZipfTest, SamplesInRange)
{
    const auto [n, s] = GetParam();
    ZipfSampler zipf(n, s);
    Random rng(77);
    for (int i = 0; i < 20000; ++i)
        ASSERT_LT(zipf.sample(rng), n);
}

TEST_P(ZipfTest, RankZeroIsModal)
{
    const auto [n, s] = GetParam();
    if (n < 4)
        GTEST_SKIP() << "needs a few items";
    ZipfSampler zipf(n, s);
    Random rng(78);
    std::vector<int> counts(n, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[zipf.sample(rng)];
    for (std::uint64_t k = 1; k < std::min<std::uint64_t>(n, 8); ++k)
        EXPECT_GE(counts[0], counts[k]) << "rank " << k;
}

TEST_P(ZipfTest, FrequencyFollowsPowerLaw)
{
    const auto [n, s] = GetParam();
    if (n < 100 || s < 0.5)
        GTEST_SKIP() << "power-law check needs big skewed case";
    ZipfSampler zipf(n, s);
    Random rng(79);
    std::vector<double> counts(n, 0);
    const int samples = 500000;
    for (int i = 0; i < samples; ++i)
        counts[zipf.sample(rng)] += 1;
    // P(rank 1) / P(rank 10) should be ~10^s.
    const double expected = std::pow(10.0, s);
    const double observed = counts[0] / std::max(counts[9], 1.0);
    EXPECT_NEAR(observed, expected, expected * 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfTest,
    ::testing::Values(ZipfCase{1, 0.5}, ZipfCase{2, 1.0},
                      ZipfCase{10, 0.3}, ZipfCase{100, 0.7},
                      ZipfCase{1000, 1.0}, ZipfCase{4096, 0.8},
                      ZipfCase{10000, 1.2}));

TEST(Zipf, InvalidParamsPanic)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), PanicError);
    EXPECT_THROW(ZipfSampler(10, 0.0), PanicError);
    EXPECT_THROW(ZipfSampler(10, -1.0), PanicError);
}

TEST(Zipf, SingleItemAlwaysZero)
{
    ZipfSampler zipf(1, 0.9);
    Random rng(80);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, HigherSkewConcentratesHead)
{
    Random rng(81);
    ZipfSampler flat(1000, 0.3), steep(1000, 1.2);
    int flat_head = 0, steep_head = 0;
    for (int i = 0; i < 100000; ++i) {
        flat_head += flat.sample(rng) < 10;
        steep_head += steep.sample(rng) < 10;
    }
    EXPECT_GT(steep_head, flat_head);
}

} // namespace
} // namespace rrm
