/**
 * @file
 * Tests for the address map, channel scheduler, and controller:
 * bank timing, queue priorities, write drain, and write pausing.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/random.hh"
#include "memctrl/controller.hh"

namespace rrm::memctrl
{
namespace
{

MemoryParams
defaultParams()
{
    return MemoryParams{};
}

TEST(AddressMap, DecodesWithinGeometry)
{
    const MemoryParams p = defaultParams();
    AddressMap map(p);
    rrm::Random rng(1);
    for (int i = 0; i < 10000; ++i) {
        const Addr addr = rng.uniform(p.memoryBytes / 64) * 64;
        const Location loc = map.decode(addr);
        ASSERT_LT(loc.channel, p.numChannels);
        ASSERT_LT(loc.bank, p.banksPerChannel);
    }
}

TEST(AddressMap, SameRowBufferSegmentSharesRowId)
{
    AddressMap map(defaultParams());
    const Location a = map.decode(0);
    const Location b = map.decode(1023);
    EXPECT_EQ(a.rowId, b.rowId);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
}

TEST(AddressMap, ConsecutiveSegmentsInterleaveChannels)
{
    AddressMap map(defaultParams());
    const Location a = map.decode(0);
    const Location b = map.decode(1024);
    EXPECT_NE(a.channel, b.channel);
}

TEST(AddressMap, OutOfRangePanics)
{
    AddressMap map(defaultParams());
    EXPECT_THROW(map.decode(8_GiB), PanicError);
}

// ---- Channel / controller timing ----

struct Harness
{
    EventQueue queue;
    MemoryParams params;
    Controller ctrl;

    explicit Harness(MemoryParams p = MemoryParams{})
        : params(p), ctrl(params, queue)
    {}

    /** Issue a read and run until it completes; return its latency. */
    Tick
    readLatency(Addr addr)
    {
        const Tick start = queue.now();
        std::optional<Tick> done;
        EXPECT_TRUE(
            ctrl.enqueueRead(addr, [&](Tick t) { done = t; }));
        queue.run();
        EXPECT_TRUE(done.has_value());
        return *done - start;
    }
};

TEST(Channel, ColdReadPaysActivateColumnAndBurst)
{
    Harness h;
    const Tick expected =
        h.params.tRCD + h.params.tCAS + h.params.burstTime();
    EXPECT_EQ(h.readLatency(0), expected);
}

TEST(Channel, RowHitSkipsActivate)
{
    Harness h;
    h.readLatency(0);
    const Tick hit = h.readLatency(64); // same 1 KB segment
    EXPECT_EQ(hit, h.params.tCAS + h.params.burstTime());
}

TEST(Channel, RowMissAfterDifferentSegment)
{
    Harness h;
    h.readLatency(0);
    // Same bank, different segment: bank stride is
    // rowBuffer * channels * banks = 64 KB.
    const Tick miss = h.readLatency(64_KiB);
    EXPECT_EQ(miss,
              h.params.tRCD + h.params.tCAS + h.params.burstTime());
}

TEST(Channel, WriteOccupiesBankForPulseTrain)
{
    Harness h;
    ASSERT_TRUE(h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets7));
    h.queue.run();
    EXPECT_TRUE(h.ctrl.idle());
    // The write must have taken burst + tWP of simulated time.
    EXPECT_GE(h.queue.now(),
              h.params.burstTime() + pcm::writeLatency(
                                         pcm::WriteMode::Sets7));
}

TEST(Channel, WritesToSameBankSerialize)
{
    Harness h;
    // Two writes to the same bank: the second waits for the first.
    ASSERT_TRUE(h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets3));
    ASSERT_TRUE(h.ctrl.enqueueWrite(64, pcm::WriteMode::Sets3));
    h.queue.run();
    const Tick two_writes =
        2 * (pcm::writeLatency(pcm::WriteMode::Sets3));
    EXPECT_GE(h.queue.now(), two_writes);
}

TEST(Channel, ReadsPreferredOverWrites)
{
    Harness h;
    // Enqueue a write and a read to the same bank at t=0; the read
    // must finish before the (long) write.
    std::optional<Tick> read_done;
    ASSERT_TRUE(h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets7));
    ASSERT_TRUE(
        h.ctrl.enqueueRead(64, [&](Tick t) { read_done = t; }));
    h.queue.run();
    ASSERT_TRUE(read_done.has_value());
    // With pausing, the read slots in at the first pulse boundary.
    EXPECT_LT(*read_done, pcm::writeLatency(pcm::WriteMode::Sets7));
}

TEST(Channel, WritePausingBoundsReadDelay)
{
    MemoryParams p;
    p.writePausing = true;
    Harness h(p);
    ASSERT_TRUE(h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets7));
    // Let the write start.
    h.queue.run(10_ns);
    std::optional<Tick> read_done;
    ASSERT_TRUE(
        h.ctrl.enqueueRead(64, [&](Tick t) { read_done = t; }));
    h.queue.run();
    ASSERT_TRUE(read_done.has_value());
    // Worst case: wait for the current pulse (<= 150 ns) plus the
    // read itself; far less than waiting out the full 1150 ns write.
    EXPECT_LE(*read_done, 200_ns + p.tRCD + p.tCAS + p.burstTime());
}

TEST(Channel, NoPausingMakesReadsWaitOutWrites)
{
    MemoryParams p;
    p.writePausing = false;
    Harness h(p);
    ASSERT_TRUE(h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets7));
    h.queue.run(10_ns);
    std::optional<Tick> read_done;
    ASSERT_TRUE(
        h.ctrl.enqueueRead(64, [&](Tick t) { read_done = t; }));
    h.queue.run();
    ASSERT_TRUE(read_done.has_value());
    EXPECT_GT(*read_done,
              h.params.burstTime() +
                  pcm::writeLatency(pcm::WriteMode::Sets7));
}

TEST(Channel, PausedWriteStillCompletes)
{
    Harness h;
    bool write_done = false;
    h.ctrl.setCompletionHook([&](const Request &req, Tick) {
        if (req.kind == ReqKind::Write)
            write_done = true;
    });
    ASSERT_TRUE(h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets7));
    h.queue.run(10_ns);
    ASSERT_TRUE(h.ctrl.enqueueRead(64, [](Tick) {}));
    h.queue.run();
    EXPECT_TRUE(write_done);
    EXPECT_TRUE(h.ctrl.idle());
}

TEST(Channel, RefreshOutranksReads)
{
    Harness h;
    std::vector<int> completion_order;
    h.ctrl.setCompletionHook([&](const Request &req, Tick) {
        completion_order.push_back(req.kind == ReqKind::RrmRefresh ? 1
                                                                   : 0);
    });
    // Same bank: a queued refresh and read; refresh must win the bank.
    ASSERT_TRUE(h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets3));
    h.queue.run(1_ns); // occupy the bank so both queue up
    ASSERT_TRUE(h.ctrl.enqueueRead(64, [](Tick) {}));
    ASSERT_TRUE(h.ctrl.enqueueRefresh(128, pcm::WriteMode::Sets3));
    h.queue.run();
    ASSERT_EQ(completion_order.size(), 3u);
    // Write first (already in flight)...
    // ...then among the two queued ops the refresh issues first, but
    // the read is shorter; compare issue order via the refresh
    // finishing before the read could have if it had to wait.
    EXPECT_EQ(completion_order[0], 0);
}

TEST(Channel, QueueCapacitiesAreEnforced)
{
    MemoryParams p;
    p.readQueueCap = 2;
    p.writeQueueCap = 2;
    p.refreshQueueCap = 1;
    Harness h(p);
    // Same bank so nothing drains instantly... requests go to
    // channel 0 for addr multiples of 4 KB x channel stride.
    EXPECT_TRUE(h.ctrl.enqueueRead(0, [](Tick) {}));
    EXPECT_TRUE(h.ctrl.enqueueRead(64, [](Tick) {}));
    // Third read to the same channel: queue holds pending entries
    // only; issued requests leave the queue, so at least the later
    // ones must eventually refuse.
    int accepted = 0;
    for (int i = 0; i < 8; ++i)
        accepted += h.ctrl.enqueueRead(static_cast<Addr>(i) * 64_KiB,
                                       [](Tick) {});
    EXPECT_LT(accepted, 8);
    h.queue.run();
}

TEST(Channel, WriteDrainModeTriggersAtWatermark)
{
    MemoryParams p;
    p.writeHighWatermark = 4;
    p.writeLowWatermark = 1;
    Harness h(p);
    stats::StatGroup g("g");
    h.ctrl.regStats(g);
    // Keep reads flowing while pushing many writes to one channel.
    for (int i = 0; i < 12; ++i) {
        h.ctrl.enqueueWrite(static_cast<Addr>(i) * 64_KiB,
                            pcm::WriteMode::Sets7);
    }
    h.queue.run();
    const auto *drains = dynamic_cast<const stats::Scalar *>(
        g.find("channel0.drainEntries"));
    ASSERT_NE(drains, nullptr);
    EXPECT_GE(drains->value(), 1.0);
    EXPECT_TRUE(h.ctrl.idle());
}

TEST(Controller, RoutesAcrossChannels)
{
    Harness h;
    stats::StatGroup g("g");
    h.ctrl.regStats(g);
    // 1 KB stride cycles through all four channels.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(
            h.ctrl.enqueueRead(static_cast<Addr>(i) * 1024,
                               [](Tick) {}));
    h.queue.run();
    for (unsigned c = 0; c < 4; ++c) {
        const auto *reads = dynamic_cast<const stats::Scalar *>(
            g.find("channel" + std::to_string(c) + ".reads"));
        ASSERT_NE(reads, nullptr);
        EXPECT_DOUBLE_EQ(reads->value(), 2.0) << "channel " << c;
    }
}

TEST(Controller, ChannelsOperateInParallel)
{
    Harness h;
    // Four cold reads on four different channels complete in the time
    // of one cold read.
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(h.ctrl.enqueueRead(
            static_cast<Addr>(i) * 1024,
            [&](Tick t) { done.push_back(t); }));
    }
    h.queue.run();
    ASSERT_EQ(done.size(), 4u);
    const Tick single =
        h.params.tRCD + h.params.tCAS + h.params.burstTime();
    for (Tick t : done)
        EXPECT_EQ(t, single);
}

TEST(Controller, CompletionHookSeesEveryRequest)
{
    Harness h;
    int completions = 0;
    h.ctrl.setCompletionHook(
        [&](const Request &, Tick) { ++completions; });
    h.ctrl.enqueueRead(0, [](Tick) {});
    h.ctrl.enqueueWrite(64_KiB, pcm::WriteMode::Sets3);
    h.ctrl.enqueueRefresh(128_KiB, pcm::WriteMode::Sets3);
    h.queue.run();
    EXPECT_EQ(completions, 3);
    EXPECT_TRUE(h.ctrl.idle());
}

TEST(Controller, WriteIssuedHookFires)
{
    Harness h;
    int issued = 0;
    h.ctrl.setWriteIssuedHook([&] { ++issued; });
    h.ctrl.enqueueWrite(0, pcm::WriteMode::Sets3);
    h.ctrl.enqueueWrite(64, pcm::WriteMode::Sets3);
    h.queue.run();
    EXPECT_EQ(issued, 2);
}

TEST(Controller, ManyRandomRequestsAllComplete)
{
    Harness h;
    rrm::Random rng(7);
    int completed = 0;
    int expected = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.uniform(1_GiB / 64) * 64;
        if (rng.chance(0.5)) {
            if (h.ctrl.enqueueRead(addr,
                                   [&](Tick) { ++completed; }))
                ++expected;
        } else {
            h.ctrl.enqueueWrite(addr, pcm::WriteMode::Sets5);
        }
        // Drain periodically so queues never stay full.
        if (i % 50 == 0)
            h.queue.run(h.queue.now() + 10_us);
    }
    h.queue.run();
    EXPECT_EQ(completed, expected);
    EXPECT_TRUE(h.ctrl.idle());
}

} // namespace
} // namespace rrm::memctrl
